//! # vlsi-processor — umbrella crate
//!
//! Re-exports the whole VLSI Processor reproduction behind one dependency.
//! See `README.md` for the architecture overview and `DESIGN.md` for the
//! per-paper-section inventory.

pub use vlsi_ap as ap;
pub use vlsi_compile as compile;
pub use vlsi_core as core;
pub use vlsi_cost as cost;
pub use vlsi_csd as csd;
pub use vlsi_fabric as fabric;
pub use vlsi_faults as faults;
pub use vlsi_ingest as ingest;
pub use vlsi_noc as noc;
pub use vlsi_object as object;
pub use vlsi_par as par;
pub use vlsi_prng as prng;
pub use vlsi_runtime as runtime;
pub use vlsi_telemetry as telemetry;
pub use vlsi_topology as topology;
pub use vlsi_workloads as workloads;

/// The cluster layer's front door, re-exported flat: a [`Fleet`] of
/// runtimes plus the fabric types that turn it into one machine.
pub use vlsi_fabric::{Cluster, ClusterConfig, ClusterNetwork, ClusterTopology};
pub use vlsi_runtime::{Fleet, FleetError};

/// The ingestion front door, re-exported flat: the submission ring,
/// admission control, the retrying client, and the tick-boundary
/// service that drives any sink deterministically under overload.
pub use vlsi_ingest::{
    AdmissionVerdict, IngestClient, IngestConfig, IngestError, IngestService, SubmissionRing,
};

//! Quickstart: gather a processor, run a streaming kernel, release it.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Walks the whole lifecycle of Takano's VLSI processor: a chip of
//! replicated clusters, a wormhole-configured gather of a minimum
//! adaptive processor (2×2 clusters = 16 compute + 16 memory objects),
//! an AXPY stream through its datapath, and the release back to free
//! clusters.

use vlsi_processor::core::{ProcState, VlsiChip};
use vlsi_processor::object::Word;
use vlsi_processor::topology::{Cluster, Coord, Region};
use vlsi_processor::workloads::StreamKernel;

fn main() {
    // An 8x8-cluster chip; each cluster carries 4 compute + 4 memory
    // objects and a programmable switch (Figure 4(b)).
    let mut chip = VlsiChip::new(8, 8, Cluster::default());
    println!(
        "chip: {}x{} clusters, {} compute objects total",
        chip.grid().width(),
        chip.grid().height(),
        chip.grid().total_compute_objects()
    );

    // Gather a 2x2 region — the paper's minimum AP (16 PO + 16 MO).
    // Scaling is wormhole routing + switch stores; no scaling instruction.
    let gather = chip
        .gather(Region::rect(Coord::new(0, 0), 2, 2))
        .expect("free clusters gather");
    println!(
        "gathered {} via {} configuration worms in {} NoC cycles ({} switch stores)",
        gather.id, gather.worms, gather.config_latency, gather.switch_stores
    );
    let id = gather.id;
    assert_eq!(chip.state(id).unwrap(), ProcState::Inactive);

    // Install the AXPY kernel (y = 3x + 5 over 16 elements) while the
    // processor is inactive, and fill its input stream through the
    // mailbox — another processor could do this exact sequence.
    let kernel = StreamKernel::axpy(3, 5, 16);
    chip.install(id, kernel.objects.clone()).unwrap();
    let xs: Vec<u64> = (1..=16).collect();
    let words: Vec<Word> = xs.iter().map(|&x| Word(x)).collect();
    chip.write_mailbox(id, 0, 0, &words).unwrap();

    // Invoke: inactive -> active (read/write protected now), configure the
    // datapath through the five-stage management pipeline, and stream.
    chip.activate(id).unwrap();
    let cfg = chip.configure(id, kernel.stream.clone()).unwrap();
    println!(
        "configured: {} object misses (library loads), {} chains, {} pipeline cycles",
        cfg.misses, cfg.routes, cfg.cycles
    );
    let report = chip.execute(id, 0, 1_000_000).unwrap();
    println!(
        "executed: {} cycles, {} firings, {} loads, {} stores",
        report.cycles, report.firings, report.loads, report.stores
    );

    // Results land in memory block 1 (the store stream).
    chip.deactivate(id).unwrap();
    let got = chip.read_mailbox(id, 1, 0, 16).unwrap();
    let expect = StreamKernel::axpy_reference(3, 5, &xs);
    for (g, e) in got.iter().zip(&expect) {
        assert_eq!(g.as_u64(), *e);
    }
    println!("axpy(3,5) over 1..=16 verified: {:?}", &expect[..8]);

    // Release: the clusters return to the free pool, switches unchain.
    chip.release_processor(id).unwrap();
    println!("released; free clusters = {}", chip.free_clusters());
}

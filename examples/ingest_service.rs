//! Serving load: the ingestion front-end over a multi-chip cluster.
//!
//! ```text
//! cargo run --example ingest_service
//! ```
//!
//! An open-loop overload trace (far more arrivals than the machine can
//! serve) is pushed through the full serving path: `IngestClient`
//! retries typed ring backpressure with capped exponential backoff, the
//! `IngestService` drains the submission ring at tick boundaries and
//! hands every request a typed `AdmissionVerdict`, and the sink — a
//! 4-chip ring `Cluster` that loses a die mid-run — absorbs what was
//! admitted. At the end the conservation ledger balances exactly:
//! every arrival was decided, given up, or is still in flight, and
//! every accepted job completed, failed typed, or was lost typed.

use vlsi_processor::core::VlsiChip;
use vlsi_processor::fabric::{Cluster as ChipCluster, ClusterConfig, ClusterTopology};
use vlsi_processor::faults::{Fault, FaultKind, FaultPlan};
use vlsi_processor::ingest::{
    accounting, run_trace, AdmissionConfig, ClientConfig, IngestClient, IngestConfig, IngestService,
};
use vlsi_processor::par::Pool;
use vlsi_processor::runtime::{Fifo, Runtime, RuntimeConfig};
use vlsi_processor::telemetry::{report, TelemetryHandle};
use vlsi_processor::topology::Cluster;
use vlsi_processor::workloads::{arrival_trace, ArrivalProfile};

fn main() {
    // The machine behind the front door: a ring of four small dies,
    // one of which dies at tick 40 (its jobs relocate or fail typed).
    let telemetry = TelemetryHandle::active();
    let mut cluster = ChipCluster::with_telemetry(
        ClusterTopology::ring(4),
        (8, 8),
        Pool::new(2),
        ClusterConfig::standard(),
        TelemetryHandle::active(),
    );
    for _ in 0..4 {
        let chip = VlsiChip::new(8, 8, Cluster::default());
        cluster.push_chip(Runtime::new(chip, Box::new(Fifo), RuntimeConfig::default()));
    }
    let mut plan = FaultPlan::none();
    plan.push(Fault::permanent(FaultKind::ChipDown { chip: 3 }, 40));
    cluster.attach_fault_plan(plan);

    // The front door: a small ring so overload genuinely backpressures,
    // per-tenant token buckets, and degraded-mode hysteresis.
    let mut service = IngestService::with_telemetry(
        cluster,
        IngestConfig {
            ring_capacity: 8,
            admission: AdmissionConfig {
                tenant_rate_milli: 2000,
                tenant_burst: 4,
                high_water: 64,
                low_water: 24,
                max_degraded_level: 4,
            },
        },
        telemetry.clone(),
    );
    let mut client = IngestClient::with_telemetry(
        service.ring(),
        2012,
        ClientConfig::default(),
        telemetry.clone(),
    );

    // Open loop: ~12 jobs/tick offered for 120 ticks across 6 tenants,
    // regardless of what the service admits.
    let trace = arrival_trace(
        2012,
        ArrivalProfile::Overload { rate_milli: 12_000 },
        120,
        6,
    );
    println!(
        "offering {} arrivals over 120 ticks to a 4-chip ring (chip 3 dies at tick 40)\n",
        trace.len()
    );
    let ticks = run_trace(&mut service, &mut client, &trace, 500_000).expect("run drains");

    let ledger = accounting(&service, &client);
    let stats = ledger.stats;
    println!("drained after {ticks} ticks; conservation ledger:");
    println!(
        "  arrivals {:>5} = accepted {} + shed(deadline {} + degraded {}) \
         + rejected(rate {} + sink {}) + gave_up {}",
        ledger.arrivals,
        stats.accepted,
        stats.shed_deadline,
        stats.shed_degraded,
        stats.rejected_rate,
        stats.rejected_sink,
        ledger.gave_up,
    );
    println!(
        "  accepted {:>5} = completed {} + failed {} + lost {}",
        stats.accepted, ledger.completed, ledger.failed, ledger.lost
    );
    assert!(ledger.is_balanced(), "ledger must balance: {ledger:?}");
    println!("  balanced: {}\n", ledger.is_balanced());

    let snap = telemetry.snapshot();
    if let Some(h) = snap.histogram("ingest.sojourn") {
        println!(
            "enqueue→admission sojourn: p50 {} ticks, p99 {} ticks (log2-quantised)",
            h.percentile(500),
            h.percentile(990)
        );
    }
    println!(
        "client: {} retries after backpressure, {} degraded-mode transitions service-side\n",
        client.stats().retries,
        stats.degraded_transitions
    );

    println!("{}", report::render(&snap));
}

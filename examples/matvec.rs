//! Matrix–vector multiply, data-parallel across four adaptive processors.
//!
//! ```text
//! cargo run --example matvec
//! ```
//!
//! The paper's opening premise: "Many-core processors are designed for
//! improving the thread-level parallelism (TLP) across the cores, and for
//! keeping the ILP in each core" — but each application has its own TLP
//! and ILP. Here an 8×8 `y = A·x` is split into four row-blocks, one
//! small AP each (TLP = 4). Within each AP, a multiply–accumulate
//! datapath streams one row at a time from the AP's own memory blocks
//! (the ILP of the chained objects). Inputs arrive over the NoC as worms;
//! results are read back from each AP's store-stream block.

use vlsi_processor::core::VlsiChip;
use vlsi_processor::object::{
    GlobalConfigElement, GlobalConfigStream, LocalConfig, LogicalObject, ObjectId, Operation, Word,
};
use vlsi_processor::topology::Cluster;

const N: usize = 8;

/// The per-AP kernel: stream 2·N words (row-interleaved with x), multiply
/// pairwise, and accumulate N products into one output word per row.
///
/// Layout in block 0: for each of the AP's rows, N pairs `(a[i][j], x[j])`.
/// The datapath: load -> (pairs split by alternating steer? ) — kept
/// simple and *scalar*: the host streams one row at a time and the AP runs
/// a two-load multiply-accumulate chain in scalar mode per row. The
/// point of the example is the TLP split, not ILP heroics.
fn row_kernel() -> (Vec<LogicalObject>, GlobalConfigStream) {
    // Objects: 100 = load a-stream (block 0), 101 = load x-stream (block 1),
    // 0 = multiplier, 1 = accumulator (IAdd looped via self-edge is not
    // supported — accumulate in scalar mode instead).
    let objects =
        vec![
            LogicalObject::memory(ObjectId(100), LocalConfig::op(Operation::Load)).with_init(vec![
                Word(0),
                Word(0),
                Word(N as u64),
            ]),
            LogicalObject::memory(ObjectId(101), LocalConfig::op(Operation::Load)).with_init(vec![
                Word(0),
                Word(1),
                Word(N as u64),
            ]),
            LogicalObject::compute(ObjectId(0), LocalConfig::op(Operation::IMul)),
            LogicalObject::memory(ObjectId(102), LocalConfig::op(Operation::Store))
                .with_init(vec![Word(0), Word(2), Word(0)]),
        ];
    let stream: GlobalConfigStream = [
        GlobalConfigElement::binary(ObjectId(0), ObjectId(100), ObjectId(101)),
        GlobalConfigElement {
            sink: ObjectId(102),
            src_lhs: None,
            src_rhs: Some(ObjectId(0)),
            src_pred: None,
        },
    ]
    .into_iter()
    .collect();
    (objects, stream)
}

fn main() {
    // Deterministic test data.
    let a: Vec<Vec<u64>> = (0..N)
        .map(|i| (0..N).map(|j| ((i * 7 + j * 3) % 10 + 1) as u64).collect())
        .collect();
    let x: Vec<u64> = (0..N).map(|j| (j + 1) as u64).collect();
    let expect: Vec<u64> = a
        .iter()
        .map(|row| row.iter().zip(&x).map(|(&aij, &xj)| aij * xj).sum())
        .collect();

    let mut chip = VlsiChip::new(8, 8, Cluster::default());
    let rows_per_ap = N / 4;
    let mut results = vec![0u64; N];

    // One AP per row-block (TLP = 4).
    let aps: Vec<_> = (0..4).map(|_| chip.gather_any(4).unwrap().id).collect();
    println!("gathered 4 APs for 2 rows each: {aps:?}");

    for (k, &ap) in aps.iter().enumerate() {
        let (objects, stream) = row_kernel();
        chip.install(ap, objects).unwrap();
        for r in 0..rows_per_ap {
            let row = k * rows_per_ap + r;
            // The load/store stream pointers advance monotonically across
            // runs (they are live object state), so row r's data lives at
            // offset r·N in each block.
            let base = (r * N) as u64;
            // The supervisor worms the row of A and x into the AP's
            // mailboxes (blocks 0 and 1) while it is inactive.
            let row_words: Vec<Word> = a[row].iter().map(|&v| Word(v)).collect();
            let x_words: Vec<Word> = x.iter().map(|&v| Word(v)).collect();
            chip.send_message(None, ap, 0, base, &row_words).unwrap();
            chip.send_message(None, ap, 1, base, &x_words).unwrap();

            chip.activate(ap).unwrap();
            chip.configure(ap, stream.clone()).unwrap();
            chip.execute(ap, 0, 1_000_000).unwrap();
            chip.deactivate(ap).unwrap();

            // Products land in block 2; the reduction is one mailbox read.
            let products = chip.read_mailbox(ap, 2, base, N).unwrap();
            results[row] = products.iter().map(|w| w.as_u64()).sum();
        }
    }

    println!("y = {results:?}");
    assert_eq!(results, expect);
    println!("matvec verified across 4 processors ({N}x{N})");
    for ap in aps {
        chip.release_processor(ap).unwrap();
    }
    assert_eq!(chip.free_clusters(), 64);
}

//! Streaming datapaths and virtual hardware.
//!
//! ```text
//! cargo run --example streaming_pipeline
//! ```
//!
//! Demonstrates the two execution regimes of §2.5:
//!
//! * **streaming** — a datapath whose working set fits the array capacity
//!   `C` is chained once and data flows through it; per §2.4, reuse makes
//!   later configurations hit the object cache;
//! * **virtual hardware (scalar)** — a datapath *larger than the array*
//!   still runs, with objects swapped in and out of the library on
//!   demand; the cost shows up as misses and write-backs.

use vlsi_processor::ap::{AdaptiveProcessor, ApConfig};
use vlsi_processor::object::{
    GlobalConfigElement, GlobalConfigStream, LocalConfig, LogicalObject, ObjectId, Operation, Word,
};
use vlsi_processor::workloads::StreamKernel;

fn main() {
    // --- streaming on a paper-sized AP (16 compute objects) -------------
    let mut ap = AdaptiveProcessor::new(ApConfig::default());
    let kernel = StreamKernel::fanout_reduce([2, 3, 4], 32);
    ap.install(kernel.objects.clone()).unwrap();
    let xs: Vec<u64> = (0..32).map(|i| i * i + 1).collect();
    for (i, &x) in xs.iter().enumerate() {
        ap.memory_mut(0).unwrap().store(i as u64, Word(x)).unwrap();
    }
    let cfg = ap.configure(kernel.stream.clone()).unwrap();
    let run = ap.execute(0, 1_000_000).unwrap();
    let expect = StreamKernel::fanout_reduce_reference([2, 3, 4], &xs);
    for (i, e) in expect.iter().enumerate() {
        assert_eq!(ap.memory(1).unwrap().peek(i as u64).unwrap().as_u64(), *e);
    }
    println!(
        "streaming fanout-reduce: {} elements, {} misses on first configure, \
         {} exec cycles, {:.2} ops/cycle",
        xs.len(),
        cfg.misses,
        run.cycles,
        run.firings as f64 / run.cycles as f64
    );

    // Reconfigure the same kernel: the object cache hits (stack placement
    // kept the objects resident after release).
    let cfg2 = ap.configure(kernel.stream.clone()).unwrap();
    println!(
        "reconfigure: {} misses (object cache), {} vs {} pipeline cycles",
        cfg2.misses, cfg2.cycles, cfg.cycles
    );
    assert_eq!(cfg2.misses, 0);

    // --- virtual hardware: a 40-stage chain on a 16-slot array ----------
    let mut small = AdaptiveProcessor::new(ApConfig::default());
    let stages = 40u32;
    let mut objects = vec![LogicalObject::compute(
        ObjectId(0),
        LocalConfig::with_imm(Operation::Const, Word(1)),
    )];
    for i in 1..=stages {
        objects.push(LogicalObject::compute(
            ObjectId(i),
            LocalConfig::with_imm(Operation::AddImm, Word(1)),
        ));
    }
    small.install(objects).unwrap();
    let stream: GlobalConfigStream = (1..=stages)
        .map(|i| GlobalConfigElement::unary(ObjectId(i), ObjectId(i - 1)))
        .collect();

    // Streaming is rejected: the working set exceeds C.
    let err = small.configure(stream.clone()).unwrap_err();
    println!("streaming a 41-object working set on C=16: {err}");

    // Scalar mode swaps objects through the library instead.
    let values = small.execute_scalar(&stream).unwrap();
    let m = small.metrics();
    println!(
        "virtual hardware: result={} misses={} swap-outs={} hit-rate={:.2}",
        values[&ObjectId(stages)].as_u64(),
        m.object_misses,
        m.swap_outs,
        m.hit_rate()
    );
    assert_eq!(values[&ObjectId(stages)].as_u64(), 1 + u64::from(stages));

    // --- multiple resident datapaths (§1) --------------------------------
    // Two unrelated chains share one AP's array and channels; each runs
    // on demand without reconfiguring the other.
    let mut multi = AdaptiveProcessor::new(ApConfig::default());
    multi
        .install([
            LogicalObject::compute(
                ObjectId(0),
                LocalConfig::with_imm(Operation::Const, Word(100)),
            ),
            LogicalObject::compute(
                ObjectId(1),
                LocalConfig::with_imm(Operation::AddImm, Word(11)),
            ),
            LogicalObject::compute(
                ObjectId(10),
                LocalConfig::with_imm(Operation::Const, Word(6)),
            ),
            LogicalObject::compute(
                ObjectId(11),
                LocalConfig::with_imm(Operation::MulImm, Word(7)),
            ),
        ])
        .unwrap();
    let adder: GlobalConfigStream = [GlobalConfigElement::unary(ObjectId(1), ObjectId(0))]
        .into_iter()
        .collect();
    let scaler: GlobalConfigStream = [GlobalConfigElement::unary(ObjectId(11), ObjectId(10))]
        .into_iter()
        .collect();
    multi.configure(adder).unwrap();
    multi.configure_another(scaler).unwrap();
    let a = multi.execute_datapath(0, 1, 100_000).unwrap();
    let b = multi.execute_datapath(1, 1, 100_000).unwrap();
    println!(
        "two resident datapaths on one AP: adder -> {}, scaler -> {} \
         ({} chains live on the CSD network)",
        a.taps[&ObjectId(1)][0].as_u64(),
        b.taps[&ObjectId(11)][0].as_u64(),
        multi.csd().live_routes()
    );
    assert_eq!(a.taps[&ObjectId(1)], vec![Word(111)]);
    assert_eq!(b.taps[&ObjectId(11)], vec![Word(42)]);
}

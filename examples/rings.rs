//! Rings on the S-topology (Figure 5) and the die-stacked fold
//! (Figure 6(d)).
//!
//! ```text
//! cargo run --example rings
//! ```

use vlsi_processor::core::VlsiChip;
use vlsi_processor::topology::{fold, Cluster, Coord, Region};

fn main() {
    let mut chip = VlsiChip::new(8, 8, Cluster::default());

    // Figure 5 shows several rectangular rings coexisting on one chip.
    let rings = [
        Region::rect(Coord::new(0, 0), 4, 2),
        Region::rect(Coord::new(0, 4), 2, 4),
        Region::rect(Coord::new(4, 2), 4, 4),
    ];
    for region in rings {
        let out = chip.gather_ring(region.clone()).unwrap();
        let p = chip.processor(out.id).unwrap();
        println!(
            "ring {}: {} clusters, fold closes: {}, worms {}, config latency {}",
            out.id,
            p.scale(),
            p.fold.closes_as_ring(),
            out.worms,
            out.config_latency
        );
        assert!(p.fold.closes_as_ring());
        // The programmed switches really form a cycle: tracing the shift
        // path from the start returns to it after exactly |region| hops.
        let start = p.fold.path()[0];
        let traced = chip.fabric().trace_shift_path(start, 1000);
        assert_eq!(traced.len(), p.scale());
    }

    // A hollow ring (donut) — an arbitrary shape per §3.1, on a fresh
    // chip (the rings above already own most of this one).
    let mut donut_chip = VlsiChip::new(8, 8, Cluster::default());
    let mut cells: Vec<Coord> = Region::rect(Coord::new(2, 2), 3, 3).cells().collect();
    cells.retain(|&c| c != Coord::new(3, 3));
    let donut = Region::new(cells);
    let out = donut_chip.gather_ring(donut).unwrap();
    println!(
        "donut {}: 8 clusters around a hole, fold closes: {}",
        out.id,
        donut_chip.processor(out.id).unwrap().fold.closes_as_ring()
    );

    // The 3D die-stack fold: a 4x4 array doubled across two dies, still
    // with single-hop stack shifts, closing through the 3D switch.
    let f = fold::die_stack(4, 4);
    println!(
        "die-stack fold: {} positions across 2 dies, max hop distance {}, ring: {}",
        f.len(),
        f.max_hop_distance(),
        f.closes_as_ring()
    );
    assert_eq!(f.len(), 32);
    assert_eq!(f.max_hop_distance(), 1);
}

//! Defect tolerance by re-fusing around a failed adaptive processor.
//!
//! ```text
//! cargo run --example defect_tolerance
//! ```
//!
//! The introduction's scenario: "when four APs are used on chip … When a
//! second AP fail[s], the first processor can become a small-scale
//! processor, the third and fourth processors can be fused into the a
//! medium-scale processor or split into two small-scale processors."

use vlsi_processor::core::VlsiChip;
use vlsi_processor::topology::{Cluster, Coord, Region};

fn main() {
    let mut chip = VlsiChip::new(8, 8, Cluster::default());

    // Four 2x2 APs in a row (the paper's minimum-AP scale).
    let regions: Vec<Region> = (0..4)
        .map(|i| Region::rect(Coord::new(i * 2, 0), 2, 2))
        .collect();
    let ids: Vec<_> = regions
        .iter()
        .map(|r| chip.gather(r.clone()).unwrap().id)
        .collect();
    println!("gathered four minimum APs: {:?}", ids);
    println!("{}", chip.layout_text());
    for id in &ids {
        let p = chip.processor(*id).unwrap();
        println!(
            "  {}: {} clusters = {}+{} objects",
            id,
            p.scale(),
            p.ap.config().compute_objects,
            p.ap.config().memory_objects
        );
    }

    // The second AP fails: release it and mark its clusters defective so
    // no future gather touches them.
    let failed = ids[1];
    println!("\nAP {failed} fails — excising its clusters from the resource pool");
    chip.release_processor(failed).unwrap();
    for c in regions[1].cells() {
        chip.mark_defective(c);
    }
    // Gathering over the defect is rejected.
    let err = chip
        .gather(Region::rect(Coord::new(0, 0), 8, 2))
        .unwrap_err();
    println!("gather across the defect correctly fails: {err}");

    // The first processor stays a small-scale AP; the third and fourth
    // fuse into a medium-scale processor.
    let fused = chip.fuse(ids[2], ids[3]).unwrap();
    let p = chip.processor(fused.id).unwrap();
    println!(
        "fused {} + {} -> {} ({} clusters, {}+{} objects, configured in {} NoC cycles)",
        ids[2],
        ids[3],
        fused.id,
        p.scale(),
        p.ap.config().compute_objects,
        p.ap.config().memory_objects,
        fused.config_latency
    );

    // …or split back into two small-scale processors.
    let halves = [
        Region::rect(Coord::new(4, 0), 2, 2),
        Region::rect(Coord::new(6, 0), 2, 2),
    ];
    let parts = chip.split(fused.id, &halves).unwrap();
    println!(
        "split {} back into {} and {}",
        fused.id, parts[0].id, parts[1].id
    );
    println!("\nfinal floorplan ('#' = quarantined defects):");
    println!("{}", chip.layout_text());
    println!(
        "surviving processors: {}, free clusters: {} (4 quarantined as defective)",
        chip.processors().count(),
        chip.free_clusters()
    );
    assert_eq!(chip.processors().count(), 3);
    assert_eq!(chip.free_clusters(), 64 - 3 * 4 - 4);
}

//! Figure 7: a conditional program partitioned onto four processors.
//!
//! ```text
//! cargo run --example conditional_blocks
//! ```
//!
//! The paper's example program
//!
//! ```text
//! if (x > y) z = x + 1; else z = y + 2;  z -> buff
//! ```
//!
//! is partitioned into four atomic basic blocks (Figure 7(b)); each block
//! is gathered as its own small processor. Execution follows Figure 7(d):
//! the preceding processor writes operands into the following processor's
//! memory blocks while that one is *inactive*, then activates it; the
//! branch condition decides which arm ever runs. Control flow never
//! flushes a datapath — it only chooses which processor to wake.

use std::collections::HashMap;
use vlsi_processor::core::{BlockExecutor, VlsiChip};
use vlsi_processor::topology::Cluster;
use vlsi_processor::workloads::figure7;

fn main() {
    let mut chip = VlsiChip::new(8, 8, Cluster::default());
    let program = figure7::program();
    let blocks = program.partition();
    println!("program partitioned into {} atomic blocks:", blocks.len());
    for b in &blocks {
        println!(
            "  block {}: {} assigns, inputs {:?}, outputs {:?}, {:?}",
            b.id,
            b.assigns.len(),
            b.inputs(),
            b.outputs(),
            b.terminator
        );
    }

    let exec = BlockExecutor::deploy(&mut chip, blocks).expect("deploy blocks");
    println!(
        "deployed onto {} processors ({} clusters each), {} free clusters remain",
        exec.processor_count(),
        4,
        chip.free_clusters()
    );

    for (x, y) in [(9i64, 4i64), (2, 5), (5, 5), (-8, -3)] {
        let inputs = HashMap::from([("x".to_string(), x), ("y".to_string(), y)]);
        let (env, stats) = exec.run(&mut chip, &inputs).expect("run");
        let got = env[figure7::RESULT_VAR];
        let want = figure7::reference(x, y);
        assert_eq!(got, want);
        println!(
            "x={x:3} y={y:3} -> buff={got:3}  ({} blocks activated, {} mailbox writes, {} exec cycles)",
            stats.blocks_executed, stats.mailbox_writes, stats.exec_cycles
        );
    }
    println!("all cases match the reference semantics");
}

//! Figure 3 in miniature: locality versus used CSD channels.
//!
//! ```text
//! cargo run --example csd_locality --release
//! ```
//!
//! Runs the functional CSD simulator over random one-source datapaths at
//! a sweep of localities and prints the channel consumption per array
//! size — the curve family of Figure 3. (The full bench-grade regeneration
//! lives in `cargo run -p vlsi-bench --bin figure3 --release`.)

use vlsi_processor::csd::CsdSimulator;

fn main() {
    let localities = [1.0, 0.9, 0.75, 0.5, 0.25, 0.0];
    println!(
        "{:>8} | channels used (locality 1.0 -> 0.0: left = local)",
        "Nobject"
    );
    println!("{:->8}-+{:->36}", "", "");
    for &n in &[16usize, 32, 64, 128, 256] {
        let sim = CsdSimulator::new(n, n);
        print!("{n:>8} |");
        for &loc in &localities {
            let usage = sim.sweep_point(loc, 20, 0xF163);
            print!(" {:>5}", usage.used_channels);
        }
        println!();
    }
    println!(
        "\nThe paper's observations hold: N channels are never all used, and\n\
         ~N/2 channels suffice for a fully random datapath; high locality\n\
         needs almost none."
    );
}

//! Observability end to end: run a mixed tenant batch with telemetry
//! live, print the end-of-run summary table, and export the traces.
//!
//! ```text
//! cargo run --example telemetry_trace
//! ```
//!
//! Writes `target/trace.json` — open it in a Chrome-trace viewer
//! (`chrome://tracing`, Perfetto) to see per-worm NoC spans, per-gather
//! core spans, and per-job runtime spans against their simulated clocks
//! — plus `target/telemetry.json` and `target/telemetry.csv` snapshot
//! exports. Every byte of all three files is deterministic: rerunning
//! this example reproduces them exactly.

use vlsi_processor::core::VlsiChip;
use vlsi_processor::runtime::mix::mixed_jobs;
use vlsi_processor::runtime::{Priority, Runtime, RuntimeConfig};
use vlsi_processor::telemetry::{report, TelemetryHandle};
use vlsi_processor::topology::{Cluster, Coord};

fn main() {
    let telemetry = TelemetryHandle::active();
    let chip = VlsiChip::with_telemetry(8, 8, Cluster::default(), telemetry);
    let mut rt = Runtime::new(chip, Box::new(Priority), RuntimeConfig::default());

    // A deterministic mixed batch, with a defect landing mid-run so the
    // fault path shows up on the trace too.
    rt.inject_defect_at(5, Coord::new(2, 2));
    for spec in mixed_jobs(2012, 24) {
        rt.submit(spec);
    }
    let summary = rt.run_until_idle(500_000).expect("the batch drains");

    println!(
        "policy={} ticks={} completed={} failed={} makespan={}",
        summary.policy, summary.ticks, summary.completed, summary.failed, summary.makespan
    );

    let snap = rt.telemetry().snapshot();
    println!("\n{}", report::render(&snap));

    std::fs::create_dir_all("target").expect("target dir");
    let trace = rt.telemetry().trace_chrome_json();
    std::fs::write("target/trace.json", &trace).expect("write trace");
    std::fs::write("target/telemetry.json", snap.to_json()).expect("write json");
    std::fs::write("target/telemetry.csv", snap.to_csv()).expect("write csv");
    println!(
        "wrote target/trace.json ({} bytes, {} span events), \
         target/telemetry.json, target/telemetry.csv",
        trace.len(),
        rt.telemetry().span_count()
    );
}

//! Object code and the stream optimizer: the application-side toolchain.
//!
//! ```text
//! cargo run --example object_code
//! ```
//!
//! §1 asks "how to interface between the VLSI processor and its
//! application"; §2.4 observes the interface is an *object code showing
//! the object IDs*. This example assembles such a program from text, runs
//! it, and then shows the §2.7 optimisation — reordering the stream to
//! shorten dependency distances — paying off as fewer object-cache misses
//! on a small array.

use vlsi_processor::ap::{AdaptiveProcessor, ApConfig};
use vlsi_processor::object::Word;
use vlsi_processor::workloads::{assemble, disassemble, optimize_stream, RandomDatapath};

const PROGRAM: &str = r"
# Object code for: y = (x + 10) * 3 over a 5-element stream.
object 1000 load   init=0,0,5      # stream source: block 0, 5 words
object 0    addimm imm=10
object 1    mulimm imm=3
object 1001 store  init=0,1,0      # stream sink: block 1
element 0    lhs=1000
element 1    lhs=0
element 1001 rhs=1
";

fn main() {
    // --- assemble and run ------------------------------------------------
    let (objects, stream) = assemble(PROGRAM).expect("valid object code");
    println!(
        "assembled {} objects, {} stream elements; working set = {}",
        objects.len(),
        stream.len(),
        stream.working_set().len()
    );
    let mut ap = AdaptiveProcessor::new(ApConfig::default());
    ap.install(objects.clone()).unwrap();
    for i in 0..5u64 {
        ap.memory_mut(0).unwrap().store(i, Word(i + 1)).unwrap();
    }
    ap.configure(stream.clone()).unwrap();
    ap.execute(0, 1_000_000).unwrap();
    let results: Vec<u64> = (0..5)
        .map(|i| ap.memory(1).unwrap().peek(i).unwrap().as_u64())
        .collect();
    println!("results: {results:?}");
    assert_eq!(results, vec![33, 36, 39, 42, 45]);

    // Disassembly round-trips.
    let text = disassemble(&objects, &stream);
    assert_eq!(assemble(&text).unwrap().0, objects);
    println!("\ndisassembly:\n{text}");

    // --- the dependency-distance optimizer -------------------------------
    let gen = RandomDatapath {
        n_objects: 16,
        n_elements: 120,
        locality: 0.5,
        seed: 4,
    };
    let original = gen.stream();
    let optimized = optimize_stream(&original);
    println!(
        "random stream: mean dependency distance {:.2} -> {:.2} after optimisation",
        RandomDatapath::mean_dependency_distance(&original),
        RandomDatapath::mean_dependency_distance(&optimized)
    );
    let misses = |stream: &vlsi_processor::object::GlobalConfigStream| {
        let mut ap = AdaptiveProcessor::new(ApConfig {
            compute_objects: 4,
            ..ApConfig::default()
        });
        ap.install(gen.objects()).unwrap();
        ap.execute_scalar(stream).unwrap();
        ap.metrics().object_misses
    };
    println!(
        "virtual-hardware misses on a 4-slot array: {} -> {}",
        misses(&original),
        misses(&optimized)
    );

    // Working-set curve (Denning): how many resources should this stream
    // request from the chip?
    let curve = original.working_set_curve(24);
    println!(
        "working-set curve ws(tau): tau=4 -> {:.1}, tau=12 -> {:.1}, tau=24 -> {:.1}",
        curve[3], curve[11], curve[23]
    );
}

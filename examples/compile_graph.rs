//! Compiling a dataflow graph and serving it through the front door.
//!
//! ```text
//! cargo run --example compile_graph
//! ```
//!
//! The full software stack of the paper's §5, end to end: a textual
//! dataflow netlist goes through every `vlsi-compile` pass (parse →
//! partition → shape → place → channels → schedule), the intermediate
//! artifacts are dumped the way `vlsic --emit-after=<pass>` would show
//! them, and the compiled `StagedProgram`s are then submitted as
//! first-class jobs through the `IngestClient`/`IngestService` serving
//! path onto a two-chip ring cluster. Every job carries the netlist
//! evaluator's reference outputs, so the runtime itself verifies that
//! what the compiler scheduled is what the silicon computes.

use std::collections::HashMap;
use vlsi_processor::compile::{compile, CompileOptions, Pass};
use vlsi_processor::core::VlsiChip;
use vlsi_processor::fabric::{Cluster as ChipCluster, ClusterConfig, ClusterTopology};
use vlsi_processor::ingest::{IngestClient, IngestConfig, IngestService};
use vlsi_processor::par::Pool;
use vlsi_processor::prng::Prng;
use vlsi_processor::runtime::{Fifo, JobSpec, Runtime, RuntimeConfig};
use vlsi_processor::telemetry::TelemetryHandle;
use vlsi_processor::topology::Cluster;
use vlsi_processor::workloads::netgen;

fn main() {
    // Compile one graph verbosely to show the artifact trail...
    let demo = "graph demo\n\
                input x\n\
                input y\n\
                const k 3\n\
                node scaled mul x k\n\
                node summed add scaled y\n\
                node big gt summed k\n\
                output result summed\n\
                output overflow big\n";
    let telemetry = TelemetryHandle::active();
    let opts = CompileOptions {
        max_nodes_per_stage: 2, // force a multi-stage pipeline
        telemetry: telemetry.clone(),
        ..CompileOptions::default()
    };
    let compiled = compile(demo, &opts).expect("demo graph compiles");
    for pass in [Pass::Partition, Pass::Shape, Pass::Place, Pass::Schedule] {
        println!("-- vlsic --emit-after={} --", pass.name());
        print!("{}", compiled.emit_after(pass));
        println!();
    }

    // ...then compile the whole deterministic corpus for serving.
    let corpus_opts = CompileOptions {
        telemetry: telemetry.clone(),
        ..CompileOptions::default()
    };
    let mut jobs: Vec<JobSpec> = Vec::new();
    let mut rng = Prng::seed_from_u64(2012);
    for (name, text) in netgen::corpus(2012) {
        let c = compile(&text, &corpus_opts).expect("corpus graph compiles");
        let mut datasets = Vec::new();
        let mut expected = Vec::new();
        for _ in 0..2 {
            let env: HashMap<String, i64> = c
                .netlist
                .input_names()
                .into_iter()
                .map(|n| (n.to_string(), i64::from(rng.gen_range(-100..100i32))))
                .collect();
            expected.push(c.netlist.evaluate(&env));
            datasets.push(env);
        }
        jobs.push(JobSpec::for_staged(
            name,
            c.program,
            datasets,
            Some(expected),
        ));
    }
    println!(
        "compiled {} corpus graphs ({} passes each); serving them through the ingest front door",
        jobs.len(),
        Pass::ALL.len()
    );

    // The machine: a two-chip ring behind the ingestion service.
    let mut cluster = ChipCluster::with_telemetry(
        ClusterTopology::ring(2),
        (16, 16),
        Pool::new(2),
        ClusterConfig::standard(),
        TelemetryHandle::active(),
    );
    for _ in 0..2 {
        let chip = VlsiChip::new(16, 16, Cluster::default());
        cluster.push_chip(Runtime::new(chip, Box::new(Fifo), RuntimeConfig::default()));
    }
    let mut service = IngestService::new(cluster, IngestConfig::default());
    let mut client = IngestClient::new(service.ring(), 2012, Default::default());

    let mut queue: std::collections::VecDeque<JobSpec> = jobs.into_iter().collect();
    let mut ticks = 0u64;
    while !queue.is_empty() || client.has_pending() || !service.is_idle() {
        assert!(ticks < 100_000, "serving hung");
        let t = service.now() + 1;
        client.tick(t);
        if let Some(spec) = queue.pop_front() {
            client.submit(t, 0, spec);
        }
        service.tick().expect("service tick");
        ticks += 1;
    }

    let ledger = vlsi_processor::ingest::accounting(&service, &client);
    println!(
        "drained after {ticks} ticks: accepted {}, completed {}, failed {} (ledger balanced: {})",
        ledger.stats.accepted,
        ledger.completed,
        ledger.failed,
        ledger.is_balanced(),
    );
    assert_eq!(
        ledger.failed, 0,
        "every compiled job must match its reference"
    );

    let snap = telemetry.snapshot();
    println!(
        "compiler telemetry: {} graphs, last graph {} stages / {} cut edges / {} channels / {} clusters ({}‰ compute utilisation)",
        snap.counter("compile.graphs"),
        snap.gauge("compile.stages"),
        snap.gauge("compile.cut_edges"),
        snap.gauge("compile.channels"),
        snap.gauge("compile.clusters"),
        snap.gauge("compile.utilization_milli"),
    );
}

//! Multi-tenant scheduling: many jobs share one chip through the runtime.
//!
//! ```text
//! cargo run --example runtime_scheduler
//! ```
//!
//! The paper lets an application "request the resources" it needs (§1);
//! `vlsi-runtime` arbitrates when several applications ask at once. This
//! demo submits a mixed batch — verified streaming kernels, a partitioned
//! basic-block program, idle capacity reservations — under the priority
//! policy, injects a defect mid-run, and prints the summary plus the
//! interesting lines of the event log.

use vlsi_processor::core::VlsiChip;
use vlsi_processor::runtime::{
    EventKind, JobSpec, JobState, Priority, Runtime, RuntimeConfig, Workload,
};
use vlsi_processor::topology::{Cluster, Coord};
use vlsi_processor::workloads::StreamKernel;

fn main() {
    let chip = VlsiChip::new(8, 8, Cluster::default());
    let mut rt = Runtime::new(chip, Box::new(Priority), RuntimeConfig::default());

    // A cluster goes bad at tick 3, while tenants occupy the die.
    rt.inject_defect_at(3, Coord::new(1, 1));

    // Streaming tenants: each carries its kernel, input, and the
    // expected output the runtime verifies on completion.
    let xs: Vec<u64> = (1..=16).collect();
    let axpy = rt.submit(
        JobSpec::for_stream(
            "axpy",
            4,
            StreamKernel::axpy(3, 5, 16),
            xs.clone(),
            StreamKernel::axpy_reference(3, 5, &xs),
        )
        .with_priority(2),
    );
    let horner = rt.submit(
        JobSpec::for_stream(
            "horner",
            6,
            StreamKernel::horner(&[2, 1, 4], 16),
            xs.clone(),
            StreamKernel::horner_reference(&[2, 1, 4], &xs),
        )
        .with_priority(5),
    );

    // The paper's Figure 7 conditional, partitioned into basic blocks —
    // each non-empty block gets its own 4-cluster processor.
    let program = vlsi_processor::workloads::figure7::program();
    let mut env = std::collections::HashMap::new();
    env.insert("x".to_string(), 9i64);
    env.insert("y".to_string(), 4i64);
    let cond = rt.submit(JobSpec::for_blocks("figure7", program, vec![env], "z").with_priority(7));

    // Capacity reservations with a deadline: one feasible, one doomed.
    let hold = rt.submit(JobSpec::new("reserve", 8, Workload::Idle { ticks: 4 }));
    let doomed =
        rt.submit(JobSpec::new("doomed", 12, Workload::Idle { ticks: 10 }).with_deadline(1));

    let summary = rt.run_until_idle(100_000).expect("the batch drains");

    println!(
        "policy={} ticks={} completed={} failed={} makespan={} util={:.2}",
        summary.policy,
        summary.ticks,
        summary.completed,
        summary.failed,
        summary.makespan,
        summary.utilization
    );
    for (label, id) in [
        ("axpy", axpy),
        ("horner", horner),
        ("figure7", cond),
        ("reserve", hold),
        ("doomed", doomed),
    ] {
        let rec = rt.job(id).unwrap();
        match rec.state {
            JobState::Completed => println!(
                "  {label:>8}: completed, waited {} ticks, {} relocations",
                rec.stats.wait, rec.stats.relocations
            ),
            JobState::Failed => println!(
                "  {label:>8}: failed gracefully — {}",
                rec.failure.as_ref().unwrap()
            ),
            other => println!("  {label:>8}: {other:?}"),
        }
    }

    println!("event log highlights:");
    for e in rt.events() {
        match e.kind {
            EventKind::DefectInjected { .. }
            | EventKind::DefectRecovered { .. }
            | EventKind::Requeued { .. }
            | EventKind::Compacted { .. }
            | EventKind::Failed { .. }
            | EventKind::PoolWoken { .. } => println!("  t={:>3} {:?}", e.tick, e.kind),
            _ => {}
        }
    }

    assert_eq!(rt.job(axpy).unwrap().state, JobState::Completed);
    assert_eq!(rt.job(doomed).unwrap().state, JobState::Failed);
}

//! The dynamic CMP in action: applications request resources by *count*,
//! processors come and go, data moves over the router network, and a
//! partitioned program pipelines across block processors.
//!
//! ```text
//! cargo run --example dynamic_cmp
//! ```
//!
//! This is the paper's §1 story end to end: "the scale of the processor is
//! dynamically variable, looking like up or down scale on demand" — with
//! no application partitioning onto fixed tiles, no scaling instruction,
//! and placement handled by the chip itself (§5: "The VLSI processor is
//! manageable").

use std::collections::HashMap;
use vlsi_processor::core::{BlockExecutor, VlsiChip};
use vlsi_processor::object::Word;
use vlsi_processor::topology::Cluster;
use vlsi_processor::workloads::{figure7, StreamKernel};

fn main() {
    let mut chip = VlsiChip::new(8, 8, Cluster::default());

    // --- three applications request resources by count ------------------
    // A streaming app wants a big datapath; two small apps want minimum APs.
    let big = chip.gather_any(9).expect("9 clusters");
    let small_a = chip.gather_any(4).expect("4 clusters");
    let small_b = chip.gather_any(4).expect("4 clusters");
    println!(
        "allocated: big={} ({} clusters), a={} and b={} (4 each); \
         free={} fragmentation={:.2}",
        big.id,
        chip.processor(big.id).unwrap().scale(),
        small_a.id,
        small_b.id,
        chip.free_clusters(),
        chip.fragmentation()
    );

    // --- feed the big processor over the router network -----------------
    let kernel = StreamKernel::axpy(5, 1, 12);
    chip.install(big.id, kernel.objects.clone()).unwrap();
    let xs: Vec<Word> = (1..=12u64).map(Word).collect();
    let latency = chip
        .send_message(None, big.id, 0, 0, &xs)
        .expect("message lands in the inactive processor's mailbox");
    println!("input stream delivered by NoC worm in {latency} cycles");

    chip.activate(big.id).unwrap();
    chip.configure(big.id, kernel.stream.clone()).unwrap();
    chip.execute(big.id, 0, 1_000_000).unwrap();
    chip.deactivate(big.id).unwrap();
    let out = chip.read_mailbox(big.id, 1, 0, 12).unwrap();
    assert_eq!(out[2].as_u64(), 5 * 3 + 1);
    println!("axpy(5,1) results verified on {}", big.id);

    // --- the small processors are released; the app pipeline moves in ---
    chip.release_processor(small_a.id).unwrap();
    chip.release_processor(small_b.id).unwrap();
    let blocks = figure7::program().partition();
    let exec = BlockExecutor::deploy(&mut chip, blocks).expect("deploy");
    let datasets: Vec<HashMap<String, i64>> = (0..10i64)
        .map(|i| HashMap::from([("x".to_string(), i), ("y".to_string(), 9 - i)]))
        .collect();
    let (results, report) = exec.run_pipelined(&mut chip, &datasets).unwrap();
    for (i, env) in results.iter().enumerate() {
        let i = i as i64;
        assert_eq!(env[figure7::RESULT_VAR], figure7::reference(i, 9 - i));
    }
    println!(
        "figure-7 pipeline over {} datasets: {} cycles sequential, {} pipelined ({:.2}x)",
        report.datasets, report.sequential_cycles, report.pipelined_cycles, report.speedup
    );

    // --- everything returns to the pool ---------------------------------
    chip.release_processor(big.id).unwrap();
    for i in 0..4 {
        if let Some(id) = exec.processor_of(i) {
            chip.release_processor(id).unwrap();
        }
    }
    println!(
        "released all processors; free={} fragmentation={:.2}",
        chip.free_clusters(),
        chip.fragmentation()
    );
    assert_eq!(chip.free_clusters(), 64);
}

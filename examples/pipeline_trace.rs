//! Watching the Figure 1 configuration procedure, event by event.
//!
//! ```text
//! cargo run --example pipeline_trace
//! ```
//!
//! Configures a small diamond datapath twice on one adaptive processor
//! and prints the management pipeline's event trace: the cold pass shows
//! the request → miss → library-load → stack-shift → chaining sequence;
//! the warm pass shows pure hits (the object cache at work), chained over
//! the same channels.

use vlsi_processor::ap::{ObjectStack, Pipeline, TraceEvent, WorkingSetRegisterFile};
use vlsi_processor::csd::DynamicCsd;
use vlsi_processor::object::{
    GlobalConfigElement, GlobalConfigStream, LocalConfig, LogicalObject, ObjectId, ObjectLibrary,
    Operation, Word,
};

fn show(trace: &[TraceEvent]) {
    for e in trace {
        match e {
            TraceEvent::Fetched { index, sink } => {
                println!("  fetch   element {index} (sink {sink})")
            }
            TraceEvent::Hit { id, distance } => {
                println!("  hit     {id} at stack distance {distance}")
            }
            TraceEvent::Miss { id } => println!("  miss    {id} -> library load"),
            TraceEvent::Loaded { ids, stall } => {
                println!("  load    {} object(s), {stall} stall cycles", ids.len())
            }
            TraceEvent::Evicted { id } => println!("  evict   {id} (LRU write-back)"),
            TraceEvent::Chained { source, sink, hops } => {
                println!("  chain   {source} -> {sink} over {hops} hop(s)")
            }
        }
    }
}

fn main() {
    // Structures of one AP, driven directly for visibility.
    let mut stack = ObjectStack::new(8);
    let mut wsrf = WorkingSetRegisterFile::new();
    let mut library = ObjectLibrary::new();
    let mut csd = DynamicCsd::new(8, 4);
    library
        .register_all([
            LogicalObject::compute(
                ObjectId(0),
                LocalConfig::with_imm(Operation::Const, Word(7)),
            ),
            LogicalObject::compute(
                ObjectId(1),
                LocalConfig::with_imm(Operation::AddImm, Word(1)),
            ),
            LogicalObject::compute(
                ObjectId(2),
                LocalConfig::with_imm(Operation::MulImm, Word(3)),
            ),
            LogicalObject::compute(ObjectId(3), LocalConfig::op(Operation::IAdd)),
        ])
        .unwrap();
    // The diamond: 0 fans out to 1 and 2, joining at 3.
    let stream: GlobalConfigStream = [
        GlobalConfigElement::unary(ObjectId(1), ObjectId(0)),
        GlobalConfigElement::unary(ObjectId(2), ObjectId(0)),
        GlobalConfigElement::binary(ObjectId(3), ObjectId(1), ObjectId(2)),
    ]
    .into_iter()
    .collect();

    let pipeline = Pipeline::new();
    println!("cold configuration (everything is a compulsory miss):");
    let (out, trace) = pipeline
        .configure_traced(&stream, &mut stack, &mut wsrf, &mut library, &mut csd, &[])
        .unwrap();
    show(&trace);
    println!(
        "  => {} cycles, {} misses, {} chains over {} total hops\n",
        out.cycles, out.misses, out.routes, out.chain_hops
    );

    // Release the chains (objects stay cached in the stack) and redo.
    let routes: Vec<_> = csd.routes().map(|r| r.id).collect();
    for r in routes {
        csd.disconnect(r).unwrap();
    }
    println!("warm configuration (object cache hits):");
    let (out, trace) = pipeline
        .configure_traced(&stream, &mut stack, &mut wsrf, &mut library, &mut csd, &[])
        .unwrap();
    show(&trace);
    println!(
        "  => {} cycles, {} misses ({} hits)",
        out.cycles, out.misses, out.hits
    );
    assert_eq!(out.misses, 0);
}

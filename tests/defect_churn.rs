//! Integration: defect tolerance under allocation churn.
//!
//! Defects land while processors are inactive *and* active; relocation
//! must preserve mailbox contents and lifecycle state, and compaction
//! must measurably reduce fragmentation.

use vlsi_processor::core::{ProcState, VlsiChip};
use vlsi_processor::object::Word;
use vlsi_processor::topology::{Cluster, Coord, Region};

fn words(xs: &[u64]) -> Vec<Word> {
    xs.iter().map(|&x| Word(x)).collect()
}

#[test]
fn defect_under_an_inactive_processor_relocates_with_mailboxes_intact() {
    let mut chip = VlsiChip::new(8, 8, Cluster::default());
    let id = chip
        .gather(Region::rect(Coord::new(0, 0), 2, 2))
        .unwrap()
        .id;
    let payload = [11u64, 22, 33, 44, 55];
    chip.write_mailbox(id, 0, 0, &words(&payload)).unwrap();
    chip.write_mailbox(id, 1, 4, &words(&[99, 98])).unwrap();

    // The defect appears under the (inactive) processor's region.
    chip.mark_defective(Coord::new(1, 1));
    let old_region = chip.processor(id).unwrap().region.clone();
    chip.relocate(id).unwrap();

    let p = chip.processor(id).unwrap();
    assert_ne!(p.region, old_region, "must move off the defect");
    assert!(!p.region.cells().any(|c| chip.is_defective(c)));
    assert_eq!(p.state, ProcState::Inactive, "lifecycle state preserved");
    let got = chip.read_mailbox(id, 0, 0, payload.len()).unwrap();
    assert_eq!(
        got.iter().map(|w| w.as_u64()).collect::<Vec<_>>(),
        payload,
        "block-0 mailbox moved intact"
    );
    let got = chip.read_mailbox(id, 1, 4, 2).unwrap();
    assert_eq!(got.iter().map(|w| w.as_u64()).collect::<Vec<_>>(), [99, 98]);
}

#[test]
fn defect_under_an_active_processor_survives_deactivate_then_relocate() {
    let mut chip = VlsiChip::new(8, 8, Cluster::default());
    let id = chip
        .gather(Region::rect(Coord::new(0, 0), 2, 2))
        .unwrap()
        .id;
    let payload = [7u64, 6, 5, 4];
    chip.write_mailbox(id, 0, 0, &words(&payload)).unwrap();
    chip.activate(id).unwrap();
    assert_eq!(chip.state(id).unwrap(), ProcState::Active);

    // Defect while running: the host deactivates, relocates, resumes.
    chip.mark_defective(Coord::new(0, 1));
    chip.deactivate(id).unwrap();
    chip.relocate(id).unwrap();
    assert!(!chip
        .processor(id)
        .unwrap()
        .region
        .cells()
        .any(|c| chip.is_defective(c)));
    let got = chip.read_mailbox(id, 0, 0, payload.len()).unwrap();
    assert_eq!(got.iter().map(|w| w.as_u64()).collect::<Vec<_>>(), payload);

    // The full lifecycle still works after the move.
    chip.activate(id).unwrap();
    assert_eq!(chip.state(id).unwrap(), ProcState::Active);
    chip.sleep(id, Some(3)).unwrap();
    assert_eq!(chip.state(id).unwrap(), ProcState::Sleep);
    let woke = chip.tick_timers(3);
    assert_eq!(woke, vec![id]);
    chip.deactivate(id).unwrap();
    chip.release_processor(id).unwrap();
    assert_eq!(chip.free_clusters() + chip.defective_count(), 64);
}

#[test]
fn compaction_reduces_fragmentation_after_churny_releases() {
    let mut chip = VlsiChip::new(8, 8, Cluster::default());
    // Tile the die with four 2×8 strips, then release the two middle
    // ones: 32 clusters free, but split into separated strips.
    let ids: Vec<_> = (0..4)
        .map(|i| {
            chip.gather(Region::rect(Coord::new(i * 2, 0), 2, 8))
                .unwrap()
                .id
        })
        .collect();
    chip.release_processor(ids[1]).unwrap();
    chip.release_processor(ids[3]).unwrap();

    let free_before = chip.free_clusters();
    let frag_before = chip.fragmentation();
    assert_eq!(free_before, 32);
    assert!(
        frag_before > 0.0,
        "separated free strips must show fragmentation, got {frag_before}"
    );

    let moved = chip.compact();
    assert!(moved > 0, "some processor must relocate");
    let frag_after = chip.fragmentation();
    assert!(
        frag_after < frag_before,
        "compaction must reduce fragmentation ({frag_before} -> {frag_after})"
    );
    assert_eq!(chip.free_clusters(), free_before, "no clusters lost");
    assert!(
        chip.largest_gatherable() > 16,
        "the merged hole admits requests no strip could"
    );

    // The survivors still hold their regions and remain releasable.
    for id in [ids[0], ids[2]] {
        assert_eq!(chip.state(id).unwrap(), ProcState::Inactive);
        chip.release_processor(id).unwrap();
    }
    assert_eq!(chip.free_clusters(), 64);
}

#[test]
fn churn_with_defects_keeps_the_allocator_consistent() {
    // Gather/release churn while defects accumulate: the allocator must
    // never hand out a defective cluster and accounting must balance.
    let mut chip = VlsiChip::new(8, 8, Cluster::default());
    let defects = [Coord::new(3, 3), Coord::new(6, 1), Coord::new(1, 6)];
    let mut live: Vec<_> = Vec::new();
    for round in 0..6 {
        if round < defects.len() {
            let d = defects[round];
            chip.mark_defective(d);
            // The defect may land under a live processor: relocate it
            // off the bad cluster (or release it if the die is too
            // packed to move).
            if let Some(victim) = chip.processor_at(d) {
                if chip.relocate(victim).is_err() {
                    chip.release_processor(victim).unwrap();
                    live.retain(|id| *id != victim);
                }
            }
        }
        // Gather as much as fits in 4-cluster bites.
        while let Ok(out) = chip.gather_any(4) {
            live.push(out.id);
        }
        for id in &live {
            let p = chip.processor(*id).unwrap();
            assert!(
                !p.region.cells().any(|c| chip.is_defective(c)),
                "round {round}: defective cluster handed out"
            );
        }
        // Release every other processor and compact.
        let released: Vec<_> = live
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 2 == round % 2)
            .map(|(_, id)| *id)
            .collect();
        for id in &released {
            chip.release_processor(*id).unwrap();
        }
        live.retain(|id| !released.contains(id));
        chip.compact();
        let held: usize = live
            .iter()
            .map(|id| chip.processor(*id).unwrap().region.len())
            .sum();
        assert_eq!(
            chip.free_clusters() + chip.defective_count() + held,
            64,
            "round {round}: accounting broke"
        );
    }
}

//! Integration: the application toolchain — object code in, optimised
//! stream, executed results out.

use std::collections::HashMap;
use vlsi_processor::ap::{AdaptiveProcessor, ApConfig};
use vlsi_processor::object::{ObjectId, Word};
use vlsi_processor::workloads::{assemble, disassemble, optimize_stream, RandomDatapath};

#[test]
fn object_code_program_executes() {
    // The paper's "interface between the VLSI processor and its
    // application": a textual program assembles and streams.
    let (objects, stream) = assemble(
        r"
# y = (x + 10) * 2 over 6 elements
object 1000 load  init=0,0,6
object 0    addimm imm=10
object 1    mulimm imm=2
object 1001 store init=0,1,0
element 0    lhs=1000
element 1    lhs=0
element 1001 rhs=1
",
    )
    .expect("assembles");
    let mut ap = AdaptiveProcessor::new(ApConfig::default());
    ap.install(objects).unwrap();
    for i in 0..6u64 {
        ap.memory_mut(0).unwrap().store(i, Word(i * 5)).unwrap();
    }
    ap.configure(stream).unwrap();
    ap.execute(0, 1_000_000).unwrap();
    for i in 0..6u64 {
        assert_eq!(
            ap.memory(1).unwrap().peek(i).unwrap(),
            Word((i * 5 + 10) * 2)
        );
    }
}

#[test]
fn disassembled_programs_rebuild_identically() {
    let gen = RandomDatapath {
        n_objects: 10,
        n_elements: 30,
        locality: 0.4,
        seed: 11,
    };
    let objects = gen.objects();
    let stream = gen.stream();
    let text = disassemble(&objects, &stream);
    let (objects2, stream2) = assemble(&text).unwrap();
    assert_eq!(objects, objects2);
    assert_eq!(stream, stream2);
}

#[test]
fn optimizer_preserves_scalar_semantics_end_to_end() {
    for seed in 0..6 {
        let gen = RandomDatapath {
            n_objects: 14,
            n_elements: 70,
            locality: 0.2,
            seed,
        };
        let original = gen.stream();
        let optimized = optimize_stream(&original);

        let run = |stream: &vlsi_processor::object::GlobalConfigStream| {
            let mut ap = AdaptiveProcessor::new(ApConfig::default());
            ap.install(gen.objects()).unwrap();
            ap.execute_scalar(stream).unwrap()
        };
        let a: HashMap<ObjectId, Word> = run(&original);
        let b = run(&optimized);
        assert_eq!(a, b, "seed {seed}: optimization changed results");
    }
}

#[test]
fn advice_sizes_a_processor_that_actually_runs_the_stream() {
    // The §1 methodology end to end: size the request from the stream,
    // gather exactly that many clusters, and the datapath streams.
    use vlsi_processor::ap::advise;
    use vlsi_processor::core::VlsiChip;
    use vlsi_processor::topology::Cluster;
    use vlsi_processor::workloads::StreamKernel;

    let kernel = StreamKernel::wide_tree(6, 1, 8);
    let memory_ids = [StreamKernel::LOAD_ID, StreamKernel::STORE_ID];
    let advice = advise(&kernel.stream, &memory_ids);
    assert_eq!(advice.compute_objects, kernel.compute_working_set());

    let cluster = Cluster::default();
    let clusters = advice.clusters(cluster.compute_objects, cluster.memory_objects);
    let mut chip = VlsiChip::new(8, 8, cluster);
    let id = chip.gather_any(clusters).unwrap().id;
    // The gathered processor holds at least the advised resources.
    let cfg = *chip.processor(id).unwrap().ap.config();
    assert!(cfg.compute_objects >= advice.compute_objects);
    assert!(cfg.memory_objects >= advice.memory_objects);

    chip.install(id, kernel.objects.clone()).unwrap();
    for i in 0..8u64 {
        chip.write_mailbox(id, 0, i, &[Word(i + 1)]).unwrap();
    }
    chip.activate(id).unwrap();
    chip.configure(id, kernel.stream.clone()).unwrap();
    chip.execute(id, 0, 1_000_000).unwrap();
    chip.deactivate(id).unwrap();
    let got = chip.read_mailbox(id, 1, 0, 8).unwrap();
    let expect = StreamKernel::wide_tree_reference(6, 1, &(1..=8).collect::<Vec<_>>());
    assert_eq!(got.iter().map(|w| w.as_u64()).collect::<Vec<_>>(), expect);
}

#[test]
fn optimizer_reduces_misses_on_small_arrays() {
    // The §2.7 payoff: shorter dependency distances mean fewer object
    // cache misses at a given capacity. Compare virtual-hardware miss
    // counts on a 4-slot array, aggregated across seeds (the greedy
    // heuristic can lose on individual streams).
    let mut before_total = 0u64;
    let mut after_total = 0u64;
    for seed in 0..10 {
        let gen = RandomDatapath {
            n_objects: 16,
            n_elements: 120,
            locality: 0.5,
            seed,
        };
        let misses = |stream: &vlsi_processor::object::GlobalConfigStream| {
            let mut ap = AdaptiveProcessor::new(ApConfig {
                compute_objects: 4,
                ..ApConfig::default()
            });
            ap.install(gen.objects()).unwrap();
            ap.execute_scalar(stream).unwrap();
            ap.metrics().object_misses
        };
        before_total += misses(&gen.stream());
        after_total += misses(&optimize_stream(&gen.stream()));
    }
    assert!(
        after_total < before_total,
        "optimized {after_total} !< original {before_total}"
    );
}

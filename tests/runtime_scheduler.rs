//! Integration: the multi-tenant runtime scheduler end to end.
//!
//! The acceptance workload: a mixed batch of 50+ jobs (verified streaming
//! kernels, basic-block programs, idle reservations; varied priorities
//! and deadlines) runs to completion deterministically under all three
//! scheduling policies, surviving injected defects and failing
//! deadline-doomed jobs gracefully.

use vlsi_processor::core::VlsiChip;
use vlsi_processor::runtime::mix::mixed_jobs;
use vlsi_processor::runtime::{
    EventKind, Fifo, JobSpec, JobState, Priority, Runtime, RuntimeConfig, RuntimeError,
    SchedPolicy, SmallestFitBackfill, Workload,
};
use vlsi_processor::telemetry::TelemetryHandle;
use vlsi_processor::topology::{Cluster, Coord};

const SEED: u64 = 2012;
const JOBS: usize = 54;

fn policies() -> Vec<Box<dyn SchedPolicy>> {
    vec![
        Box::new(Fifo),
        Box::new(Priority),
        Box::new(SmallestFitBackfill),
    ]
}

/// The acceptance run: the mixed batch, three mid-run defects, and one
/// deadline-doomed straggler, on an 8×8 chip.
fn acceptance_run(policy: Box<dyn SchedPolicy>) -> Runtime {
    // The acceptance bar includes telemetry: the whole batch runs with a
    // live registry, which must never perturb the schedule.
    let chip = VlsiChip::with_telemetry(8, 8, Cluster::default(), TelemetryHandle::active());
    let mut rt = Runtime::new(chip, policy, RuntimeConfig::default());
    // Defects land while the chip is under load; coordinates in the
    // middle of the die are almost always owned by some tenant then.
    rt.inject_defect_at(4, Coord::new(1, 1));
    rt.inject_defect_at(8, Coord::new(5, 4));
    rt.inject_defect_at(12, Coord::new(3, 6));
    rt.inject_defect_at(18, Coord::new(6, 2));
    rt.inject_defect_at(26, Coord::new(2, 5));
    for spec in mixed_jobs(SEED, JOBS) {
        rt.submit(spec);
    }
    // A job that cannot possibly meet its deadline: graceful failure.
    rt.submit(JobSpec::new("doomed", 16, Workload::Idle { ticks: 10 }).with_deadline(1));
    rt.run_until_idle(500_000).expect("the mix must drain");
    rt
}

#[test]
fn mixed_workload_drains_under_every_policy() {
    for policy in policies() {
        let name = policy.name();
        let rt = acceptance_run(policy);
        let summary = rt.summary();
        assert_eq!(
            summary.completed + summary.failed,
            (JOBS + 1) as u64,
            "{name}: every job resolves"
        );
        assert!(
            summary.completed >= (JOBS as u64 * 3) / 4,
            "{name}: most jobs complete (got {})",
            summary.completed
        );
        // Completed stream jobs carry their (verified) outputs; failed
        // jobs carry typed errors; nothing is left in limbo.
        for rec in rt.jobs() {
            match rec.state {
                JobState::Completed => {
                    assert!(rec.output.is_some(), "{name}: {} lacks output", rec.id);
                    assert!(rec.failure.is_none());
                }
                JobState::Failed => {
                    assert!(rec.failure.is_some(), "{name}: {} lacks error", rec.id)
                }
                other => panic!("{name}: {} still {other:?}", rec.id),
            }
        }
        // After draining the warm pool, every non-defective cluster is
        // free again — nothing leaked across 55 jobs and 5 defects.
        let mut rt = rt;
        assert_eq!(rt.outstanding(), 0, "{name}");
        rt.drain_pool().unwrap();
        assert_eq!(rt.chip().defective_count(), 5, "{name}: defects stuck");
        assert_eq!(
            rt.chip().free_clusters() + rt.chip().defective_count(),
            64,
            "{name}: clusters leaked"
        );
    }
}

#[test]
fn event_log_is_identical_for_identical_seeds() {
    for policy in ["fifo", "priority", "backfill"] {
        let make = || -> Box<dyn SchedPolicy> {
            match policy {
                "fifo" => Box::new(Fifo),
                "priority" => Box::new(Priority),
                _ => Box::new(SmallestFitBackfill),
            }
        };
        let a = acceptance_run(make());
        let b = acceptance_run(make());
        assert_eq!(
            a.events(),
            b.events(),
            "{policy}: same seed must replay the exact same event log"
        );
        assert!(a.events().len() > 2 * JOBS, "{policy}: log too thin");
        assert_eq!(
            a.telemetry().snapshot().to_json(),
            b.telemetry().snapshot().to_json(),
            "{policy}: same seed must replay the exact same telemetry"
        );
    }
}

#[test]
fn defects_are_injected_and_survived_in_the_mix() {
    for policy in policies() {
        let name = policy.name();
        let rt = acceptance_run(policy);
        let injected = rt
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::DefectInjected { .. }))
            .count();
        assert_eq!(injected, 5, "{name}");
        // At least one defect hit a live tenant and was handled — either
        // relocated in place or re-queued for a fresh gather.
        let handled = rt.events().iter().any(|e| {
            matches!(
                e.kind,
                EventKind::DefectRecovered { .. } | EventKind::Requeued { .. }
            )
        });
        assert!(handled, "{name}: no defect recovery exercised");
        // Victims of recovery still resolved.
        for e in rt.events() {
            if let Some(job) = e.job() {
                let rec = rt.job(job).unwrap();
                assert_ne!(rec.state, JobState::Running, "{name}: {job} unresolved");
            }
        }
    }
}

#[test]
fn deadline_doomed_job_fails_gracefully_in_the_mix() {
    for policy in policies() {
        let name = policy.name();
        let rt = acceptance_run(policy);
        let doomed = rt
            .jobs()
            .find(|r| r.spec.name == "doomed")
            .expect("submitted");
        assert_eq!(doomed.state, JobState::Failed, "{name}");
        assert!(
            matches!(
                doomed.failure,
                Some(RuntimeError::DeadlineMissed { deadline: 1, .. })
            ),
            "{name}: {:?}",
            doomed.failure
        );
        assert!(
            rt.events().iter().any(|e| matches!(
                e.kind,
                EventKind::Failed { job, reason: "deadline" } if job == doomed.id
            )),
            "{name}: no deadline-failure event"
        );
    }
}

#[test]
fn a_mid_run_stream_defect_relocates_and_reruns() {
    // A single long-running stream job; a defect lands inside its region
    // while the datapath is mid-flight. The runtime must relocate the
    // processor, restart the kernel, and still produce verified output.
    let chip = VlsiChip::new(8, 8, Cluster::default());
    let config = RuntimeConfig {
        cycles_per_tick: 1, // stretch the run so the defect lands mid-flight
        ..RuntimeConfig::default()
    };
    let mut rt = Runtime::new(chip, Box::new(Fifo), config);
    let xs: Vec<u64> = (1..=24).collect();
    let job = rt.submit(JobSpec::for_stream(
        "victim",
        4,
        vlsi_processor::workloads::StreamKernel::horner(&[3, 1, 2, 7], 24),
        xs.clone(),
        vlsi_processor::workloads::StreamKernel::horner_reference(&[3, 1, 2, 7], &xs),
    ));
    // The first gather on an empty chip starts at the origin.
    rt.inject_defect_at(2, Coord::new(0, 0));
    rt.run_until_idle(100_000).unwrap();

    let rec = rt.job(job).unwrap();
    assert_eq!(rec.state, JobState::Completed);
    assert_eq!(rec.stats.relocations, 1);
    assert!(rt.events().iter().any(|e| matches!(
        e.kind,
        EventKind::DefectRecovered { job: j, reran: true, .. } if j == job
    )));
    // The relocated region avoids the defective cluster.
    assert!(rt.chip().is_defective(Coord::new(0, 0)));
    assert_eq!(rt.chip().processor_at(Coord::new(0, 0)), None);
}

#[test]
fn policies_disagree_on_ordering_but_not_on_results() {
    // Same batch, three policies: completed stream outputs are identical
    // (they are functions of the job, not the schedule), while admission
    // order differs between FIFO and backfill under contention.
    let runs: Vec<Runtime> = policies().into_iter().map(acceptance_run).collect();
    let admission_orders: Vec<Vec<_>> = runs
        .iter()
        .map(|rt| {
            rt.events()
                .iter()
                .filter_map(|e| match e.kind {
                    EventKind::Admitted { job, .. } => Some(job),
                    _ => None,
                })
                .collect()
        })
        .collect();
    assert_ne!(
        admission_orders[0], admission_orders[2],
        "fifo and backfill should order a contended mix differently"
    );
    for rt in &runs {
        for rec in rt.jobs() {
            if rec.state == JobState::Completed {
                let baseline = runs[0].job(rec.id).unwrap();
                if baseline.state == JobState::Completed {
                    assert_eq!(rec.output, baseline.output, "{} diverged", rec.id);
                }
            }
        }
    }
}

//! Integration: scaling operations — gather/fuse/split economics and the
//! reservation discipline.

use vlsi_processor::core::{CoreError, VlsiChip};
use vlsi_processor::topology::{Cluster, Coord, Region};

#[test]
fn configuration_latency_grows_with_region_size() {
    // Ablation C's hypothesis, as a coarse monotonicity check: gathering
    // a bigger region takes more worms, more switch stores, and a longer
    // maximum worm latency.
    let mut last = (0usize, 0u64, 0u64);
    for side in [1u16, 2, 4, 6] {
        let mut chip = VlsiChip::new(8, 8, Cluster::default());
        let out = chip
            .gather(Region::rect(Coord::new(0, 0), side, side))
            .unwrap();
        let cur = (out.worms, out.switch_stores, out.config_latency);
        assert!(cur.0 > last.0);
        assert!(cur.1 > last.1);
        assert!(cur.2 >= last.2);
        last = cur;
    }
}

#[test]
fn up_and_down_scaling_cycle() {
    // 4 small -> 2 medium -> 1 large -> release, on one chip.
    let mut chip = VlsiChip::new(8, 8, Cluster::default());
    let small: Vec<_> = (0..4u16)
        .map(|i| {
            chip.gather(Region::rect(Coord::new(i * 2, 0), 2, 2))
                .unwrap()
                .id
        })
        .collect();
    let m1 = chip.fuse(small[0], small[1]).unwrap().id;
    let m2 = chip.fuse(small[2], small[3]).unwrap().id;
    assert_eq!(chip.processor(m1).unwrap().scale(), 8);
    let large = chip.fuse(m1, m2).unwrap().id;
    let p = chip.processor(large).unwrap();
    assert_eq!(p.scale(), 16);
    assert_eq!(p.ap.config().compute_objects, 64);
    chip.release_processor(large).unwrap();
    assert_eq!(chip.free_clusters(), 64);
    assert_eq!(chip.fabric().programmed_coords().count(), 0);
}

#[test]
fn reservation_flags_serialise_conflicting_gathers() {
    // Two gathers race for overlapping clusters: the first worm-programs
    // its switches; the second must fail atomically and leave the first
    // intact (§3.3's conflict-avoidance role of the reservation flag).
    let mut chip = VlsiChip::new(8, 8, Cluster::default());
    let a = chip.gather(Region::rect(Coord::new(0, 0), 3, 3)).unwrap();
    let before = chip.free_clusters();
    let err = chip
        .gather(Region::rect(Coord::new(2, 2), 3, 3))
        .unwrap_err();
    assert!(matches!(err, CoreError::Topology(_)));
    assert_eq!(
        chip.free_clusters(),
        before,
        "failed gather left no residue"
    );
    // The winner still traces cleanly.
    let p = chip.processor(a.id).unwrap();
    let traced = chip
        .fabric()
        .trace_shift_path(p.fold.path()[0], p.fold.len() + 2);
    assert_eq!(traced.len(), 9);
}

#[test]
fn no_dedicated_scaling_state_leaks_across_processors() {
    // Gather/release in a loop at the same location: IDs advance,
    // resources do not leak, and the NoC keeps delivering.
    let mut chip = VlsiChip::new(4, 4, Cluster::default());
    let mut last_latency = None;
    for _ in 0..16 {
        let out = chip.gather(Region::rect(Coord::new(1, 1), 2, 2)).unwrap();
        if let Some(l) = last_latency {
            // Same shape, same supervisor: identical configuration cost.
            assert_eq!(out.config_latency, l);
        }
        last_latency = Some(out.config_latency);
        chip.release_processor(out.id).unwrap();
    }
    assert_eq!(chip.free_clusters(), 16);
}

#[test]
fn arbitrary_shapes_gather() {
    // §3.1: "any arbitrary shape that may be formed by connecting the
    // clusters". T, L, S pentomino-ish shapes.
    let shapes: Vec<Vec<(u16, u16)>> = vec![
        vec![(0, 0), (1, 0), (0, 1), (1, 1), (0, 2)], // P
        vec![(4, 0), (4, 1), (4, 2), (5, 2), (6, 2)], // L
        vec![(0, 4), (1, 4), (1, 5), (2, 5), (2, 6)], // S/Z
    ];
    let mut chip = VlsiChip::new(8, 8, Cluster::default());
    for cells in shapes {
        let region = Region::new(cells.into_iter().map(|(x, y)| Coord::new(x, y)));
        let out = chip.gather(region.clone()).unwrap();
        let p = chip.processor(out.id).unwrap();
        assert_eq!(p.fold.len(), region.len());
        assert!(p.fold.max_hop_distance() <= 1);
    }

    // A T-pentomino has three degree-1 tips: no linear stack can thread
    // it, and the gather must say so rather than wedge.
    let t = Region::new(
        [(4u16, 4u16), (5, 4), (6, 4), (5, 5), (5, 6)]
            .into_iter()
            .map(|(x, y)| Coord::new(x, y)),
    );
    assert!(matches!(
        chip.gather(t),
        Err(CoreError::Topology(
            vlsi_processor::topology::TopologyError::NoLinearPath
        ))
    ));
}

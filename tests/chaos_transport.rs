//! Chaos harness: seed-driven fault sweeps across every transport layer.
//!
//! The fixed seed × fault-rate matrix below is the CI chaos suite
//! (`ci.sh` runs this file as a dedicated step). The contract under
//! chaos is always the same three clauses:
//!
//! 1. **never panic or hang** — every run terminates inside its budget;
//! 2. **never silently wrong** — every operation either succeeds with
//!    verified data or surfaces a *typed* error;
//! 3. **bit-identical per seed** — the same seed replays the exact same
//!    outcome, faults included.

use vlsi_processor::core::VlsiChip;
use vlsi_processor::csd::DynamicCsd;
use vlsi_processor::faults::{Fault, FaultKind, FaultPlan, FaultPlanBuilder};
use vlsi_processor::noc::{NocError, NocNetwork};
use vlsi_processor::prng::Prng;
use vlsi_processor::runtime::mix::mixed_jobs;
use vlsi_processor::runtime::{EventKind, Fifo, JobState, Runtime, RuntimeConfig};
use vlsi_processor::telemetry::{report, TelemetryHandle};
use vlsi_processor::topology::{Cluster, Coord};

/// The CI seed matrix: three seeds, three transient-fault rates.
const SEEDS: [u64; 3] = [11, 4242, 987_654_321];
const RATES: [f64; 3] = [0.005, 0.02, 0.08];

// --- NoC ---------------------------------------------------------------------

/// One deterministic NoC chaos run: 24 seed-driven worms on a 6×6 mesh
/// under a seed-driven fault plan. Returns a comparable digest.
#[allow(clippy::type_complexity)]
fn noc_chaos_run(
    seed: u64,
    rate: f64,
) -> (
    Vec<(vlsi_processor::noc::WormId, Coord, Vec<u64>)>,
    Vec<(vlsi_processor::noc::WormId, NocError)>,
    vlsi_processor::noc::NetworkStats,
    String,
) {
    let (w, h) = (6u16, 6u16);
    // Chaos runs with telemetry live: retransmission/misroute accounting
    // now lives in the registry, and its exports join the replay digest.
    let mut net = NocNetwork::with_telemetry(w, h, TelemetryHandle::active());
    // The horizon covers the batch's drain window (plus retransmission
    // backoff), so fault windows overlap live traffic.
    let plan = FaultPlanBuilder::new(seed)
        .grid(w, h)
        .horizon(512)
        .link_down_rate(rate)
        .link_corrupt_rate(rate)
        .router_stall_rate(rate / 2.0)
        .build();
    net.attach_fault_plan(plan);

    let mut rng = Prng::seed_from_u64(seed ^ 0xC0FF_EE00);
    let mut expected = std::collections::BTreeMap::new();
    for _ in 0..24 {
        let src = Coord::new(rng.gen_range(0..w), rng.gen_range(0..h));
        let dest = Coord::new(rng.gen_range(0..w), rng.gen_range(0..h));
        let len = rng.gen_range(0..8usize);
        let payload: Vec<u64> = (0..len).map(|_| rng.next_u64()).collect();
        let worm = net.inject(src, dest, payload.clone()).unwrap();
        expected.insert(worm, (dest, payload));
    }
    // Clause 1: the drain budget bounds the hang.
    net.run_until_drained(2_000_000)
        .expect("chaos run must terminate");
    assert!(net.is_idle());

    // Clause 2: full accounting — delivered ∪ failed == injected, and
    // every delivered payload is exact (the checksum caught the rest).
    let mut delivered: Vec<_> = net
        .take_delivered()
        .into_iter()
        .map(|(p, _)| (p.worm, p.dest, p.payload))
        .collect();
    delivered.sort_by_key(|(w, ..)| *w);
    let failed = net.take_failed();
    assert_eq!(delivered.len() + failed.len(), expected.len());
    for (worm, dest, payload) in &delivered {
        let (exp_dest, exp_payload) = &expected[worm];
        assert_eq!(dest, exp_dest, "misdelivered worm");
        assert_eq!(payload, exp_payload, "silent corruption slipped through");
    }
    for (worm, err) in &failed {
        assert!(expected.contains_key(worm));
        assert!(
            matches!(err, NocError::Undeliverable { .. }),
            "failure must be typed: {err}"
        );
    }
    // The registry's view must agree with the harness's own accounting:
    // the counters mirror the struct stats, and the latency histogram
    // saw exactly the delivered worms.
    let snap = net.telemetry().snapshot();
    assert_eq!(
        snap.counter("noc.link_crossings"),
        net.stats().link_crossings
    );
    let latencies = snap.histogram("noc.latency").map_or(0, |h| h.count());
    assert_eq!(latencies, net.stats().worms_delivered);
    let digest = format!(
        "{}\n{}",
        snap.to_json(),
        net.telemetry().trace_chrome_json()
    );
    (delivered, failed, net.stats().clone(), digest)
}

#[test]
fn noc_chaos_sweep_never_hangs_or_lies() {
    for seed in SEEDS {
        for rate in RATES {
            noc_chaos_run(seed, rate);
        }
    }
}

#[test]
fn noc_chaos_replays_bit_identically_per_seed() {
    for seed in SEEDS {
        for rate in RATES {
            let a = noc_chaos_run(seed, rate);
            let b = noc_chaos_run(seed, rate);
            assert_eq!(a.0, b.0, "deliveries diverged (seed {seed}, rate {rate})");
            assert_eq!(a.1, b.1, "failures diverged (seed {seed}, rate {rate})");
            assert_eq!(a.2, b.2, "stats diverged (seed {seed}, rate {rate})");
            // Clause 3 extends to observability: snapshot and Chrome
            // trace exports are byte-identical per seed.
            assert_eq!(a.3, b.3, "telemetry diverged (seed {seed}, rate {rate})");
        }
    }
}

// --- CSD ---------------------------------------------------------------------

/// Seed-driven CSD chaos: random connect/disconnect traffic while the
/// fault plan kills segments mid-run. Invariants hold after every step;
/// every outcome is typed.
fn csd_chaos_run(seed: u64, rate: f64) -> (u64, u64, u64, u64) {
    let positions = 24;
    let channels = 6;
    let mut csd = DynamicCsd::new(positions, channels);
    let plan = FaultPlanBuilder::new(seed)
        .csd(channels, positions - 1)
        .csd_segment_rate(rate)
        .horizon(200)
        .build();

    let mut rng = Prng::seed_from_u64(seed ^ 0x5EED_CAFE);
    let mut live: Vec<vlsi_processor::csd::RouteId> = Vec::new();
    for t in 0..200u64 {
        let due: Vec<(usize, usize)> = plan.csd_segments_activating_at(t).collect();
        for (ch, seg) in due {
            let outcome = csd
                .fail_segment(ch, seg)
                .expect("in-range segment fault is typed, not a panic");
            if let Some(vlsi_processor::csd::SegmentFaultOutcome::Unroutable { route }) = outcome {
                live.retain(|id| *id != route.id);
            }
        }
        // Traffic: mostly connects, some disconnects.
        if rng.gen_bool(0.7) {
            let a = rng.gen_range(0..positions);
            let b = rng.gen_range(0..positions);
            if a != b {
                if let Ok(id) = csd.connect(a.min(b), a.max(b)) {
                    live.push(id);
                }
            }
        } else if !live.is_empty() {
            let i = rng.gen_range(0..live.len());
            let id = live.swap_remove(i);
            csd.disconnect(id).expect("live route disconnects cleanly");
        }
        csd.check_invariants()
            .unwrap_or_else(|e| panic!("invariant broke at t={t}: {e}"));
    }
    for id in live.drain(..) {
        csd.disconnect(id).unwrap();
    }
    csd.check_invariants().unwrap();
    assert_eq!(csd.live_routes(), 0);
    (
        csd.grant_count(),
        csd.rejection_count(),
        csd.segment_fault_count(),
        csd.rechain_count(),
    )
}

#[test]
fn csd_chaos_sweep_keeps_invariants() {
    for seed in SEEDS {
        for rate in RATES {
            let counters = csd_chaos_run(seed, rate);
            let replay = csd_chaos_run(seed, rate);
            assert_eq!(counters, replay, "seed {seed} rate {rate} diverged");
        }
    }
}

// --- Runtime / S-topology ----------------------------------------------------

/// One deterministic runtime chaos run: a mixed tenant batch while
/// seed-driven switch faults land mid-run.
fn runtime_chaos_run(seed: u64, rate: f64) -> Runtime {
    // Telemetry stays live through every chaos run: recording must never
    // perturb the schedule, and the end-of-run report must render.
    let chip = VlsiChip::with_telemetry(8, 8, Cluster::default(), TelemetryHandle::active());
    let mut rt = Runtime::new(chip, Box::new(Fifo), RuntimeConfig::default());
    let plan = FaultPlanBuilder::new(seed)
        .grid(8, 8)
        .horizon(120)
        .switch_stuck_rate(rate / 8.0) // per-switch; keep enough die alive
        .build();
    rt.attach_fault_plan(plan);
    for spec in mixed_jobs(seed, 18) {
        rt.submit(spec);
    }
    rt.run_until_idle(500_000)
        .expect("chaos batch must drain — no hang");
    rt
}

#[test]
fn runtime_chaos_resolves_every_job_and_replays_identically() {
    for seed in SEEDS {
        for rate in RATES {
            let rt = runtime_chaos_run(seed, rate);
            // Clause 2: nothing in limbo — every job completed or
            // carries a typed failure.
            for rec in rt.jobs() {
                match rec.state {
                    JobState::Completed => assert!(rec.failure.is_none()),
                    JobState::Failed => assert!(rec.failure.is_some(), "{} untyped", rec.id),
                    other => panic!("job {} left {other:?}", rec.id),
                }
            }
            // Every consumed fault report maps to a defect on the die.
            assert_eq!(
                rt.stats().faults_reported as usize,
                rt.chip().defective_count(),
            );
            // The registry agrees with the runtime's own counters.
            let snap = rt.telemetry().snapshot();
            if rt.telemetry().is_enabled() {
                assert_eq!(
                    snap.counter("runtime.faults_reported"),
                    rt.stats().faults_reported
                );
                assert_eq!(snap.counter("runtime.submissions"), rt.stats().submitted);
            }
            // Clause 3: the whole event log — and every telemetry
            // export — replays bit-identically.
            let replay = runtime_chaos_run(seed, rate);
            assert_eq!(rt.events(), replay.events(), "seed {seed} rate {rate}");
            assert_eq!(
                snap.to_json(),
                replay.telemetry().snapshot().to_json(),
                "telemetry snapshot diverged (seed {seed}, rate {rate})"
            );
            // The end-of-run report renders from any chaos snapshot.
            let table = report::render(&snap);
            assert!(table.contains("instrument"), "report must render a table");
        }
    }
}

/// The acceptance chain, end to end through the public API: a scheduled
/// switch fault is reported by the topology layer, the runtime marks the
/// cluster defective, and the victim tenant is relocated or re-queued —
/// all visible, in order, in the event log.
#[test]
fn switch_fault_chain_is_visible_end_to_end() {
    let chip = VlsiChip::new(8, 8, Cluster::default());
    let mut rt = Runtime::new(chip, Box::new(Fifo), RuntimeConfig::default());
    let job = rt.submit(vlsi_processor::runtime::JobSpec::new(
        "victim",
        4,
        vlsi_processor::runtime::Workload::Idle { ticks: 30 },
    ));
    rt.tick().unwrap(); // admitted; the first gather starts at the origin
    let hit = Coord::new(0, 0);
    assert!(rt.chip().processor_at(hit).is_some());

    let mut plan = FaultPlan::none();
    plan.push(Fault::permanent(FaultKind::SwitchStuck { at: hit }, 3));
    rt.attach_fault_plan(plan);
    rt.run_until_idle(1_000).unwrap();

    assert!(rt.chip().is_switch_stuck(hit));
    assert!(rt.chip().is_defective(hit));
    assert_eq!(rt.job(job).unwrap().state, JobState::Completed);

    let pos = |pred: fn(&EventKind) -> bool| {
        rt.events()
            .iter()
            .position(|e| pred(&e.kind))
            .expect("chain link missing from the event log")
    };
    let reported = pos(|k| {
        matches!(
            k,
            EventKind::FaultReported {
                layer: "s-topology",
                ..
            }
        )
    });
    let defected = pos(|k| {
        matches!(
            k,
            EventKind::DefectInjected {
                victim: Some(_),
                ..
            }
        )
    });
    let recovered = pos(|k| {
        matches!(
            k,
            EventKind::DefectRecovered { .. } | EventKind::Requeued { .. }
        )
    });
    assert!(reported < defected && defected < recovered);
    assert_eq!(rt.chip().processor_at(hit), None, "tenant moved off");
}

//! Acceptance tests for the telemetry subsystem, end to end through the
//! umbrella crate: deterministic exports, a genuinely free disabled
//! mode, and power-of-two histogram boundaries at the public API.

use vlsi_processor::core::VlsiChip;
use vlsi_processor::runtime::mix::mixed_jobs;
use vlsi_processor::runtime::{Fifo, Runtime, RuntimeConfig};
use vlsi_processor::telemetry::{report, Histogram, TelemetryHandle, HISTOGRAM_BUCKETS};
use vlsi_processor::topology::Cluster;

const SEED: u64 = 2012;
const JOBS: usize = 24;

/// The reference workload: the scheduler mix on a telemetry-carrying
/// chip, exercising every instrumented layer (NoC worms, switch stores,
/// AP configuration, CSD chaining, runtime scheduling).
fn run(telemetry: TelemetryHandle) -> Runtime {
    let chip = VlsiChip::with_telemetry(8, 8, Cluster::default(), telemetry);
    let mut rt = Runtime::new(chip, Box::new(Fifo), RuntimeConfig::default());
    for spec in mixed_jobs(SEED, JOBS) {
        rt.submit(spec);
    }
    rt.run_until_idle(500_000).expect("mix must drain");
    rt
}

#[test]
fn same_seed_exports_are_byte_identical() {
    let a = run(TelemetryHandle::active());
    let b = run(TelemetryHandle::active());
    let (sa, sb) = (a.telemetry().snapshot(), b.telemetry().snapshot());
    assert!(!sa.is_empty(), "the mix must hit the instruments");
    assert_eq!(sa.to_json(), sb.to_json(), "JSON snapshot must replay");
    assert_eq!(sa.to_csv(), sb.to_csv(), "CSV snapshot must replay");
    assert_eq!(
        a.telemetry().trace_chrome_json(),
        b.telemetry().trace_chrome_json(),
        "Chrome trace must replay"
    );
    assert_eq!(
        report::render(&sa),
        report::render(&sb),
        "rendered report must replay"
    );
}

#[test]
fn disabled_handle_records_nothing_and_costs_no_schedule() {
    let off = run(TelemetryHandle::disabled());
    assert!(!off.telemetry().is_enabled());
    let snap = off.telemetry().snapshot();
    assert!(snap.is_empty(), "no instruments without a registry");
    assert_eq!(snap.counter("noc.link_crossings"), 0);
    assert_eq!(snap.dropped_spans(), 0);
    assert_eq!(off.telemetry().span_count(), 0);
    assert_eq!(off.telemetry().trace_chrome_json(), r#"{"traceEvents":[]}"#);

    // Observation must not perturb: disabled and enabled runs produce
    // the identical schedule and event log.
    let on = run(TelemetryHandle::active());
    assert_eq!(off.events(), on.events());
    assert_eq!(off.summary().makespan, on.summary().makespan);
}

#[test]
fn histogram_boundaries_sit_at_powers_of_two() {
    // Through the handle: values on either side of each boundary land
    // in adjacent buckets.
    let t = TelemetryHandle::active();
    for k in 1..=16usize {
        let floor = 1u64 << (k - 1);
        t.record("b", floor); // first value of bucket k
        t.record("b", 2 * floor - 1); // last value of bucket k
    }
    t.record("b", 0);
    if let Some(h) = t.snapshot().histogram("b") {
        assert_eq!(h.bucket(0), 1, "zero gets its own bucket");
        for k in 1..=16usize {
            assert_eq!(h.bucket(k), 2, "bucket {k} holds [2^{}, 2^{k})", k - 1);
        }
        assert_eq!(h.count(), 33);
    } else {
        panic!("histogram must exist on an active handle");
    }

    // The raw type agrees, across the whole index range.
    assert_eq!(HISTOGRAM_BUCKETS, 65);
    assert_eq!(Histogram::bucket_of(0), 0);
    for k in 1..=63usize {
        let floor = Histogram::bucket_floor(k);
        assert_eq!(floor, 1u64 << (k - 1));
        assert_eq!(Histogram::bucket_of(floor), k);
        assert_eq!(Histogram::bucket_of(floor * 2 - 1), k);
        assert_eq!(Histogram::bucket_of(floor * 2), k + 1);
    }
}

#[test]
fn cross_layer_counters_hang_together() {
    let rt = run(TelemetryHandle::active());
    let snap = rt.telemetry().snapshot();
    // Every layer shows up in one registry.
    for key in [
        "noc.link_crossings",
        "topology.switch_stores",
        "csd.chains",
        "ap.hits",
        "core.gathers",
        "runtime.submissions",
    ] {
        assert!(snap.counter(key) > 0, "{key} must record under the mix");
    }
    // Internal consistency: per-link utilization lanes sum to the total
    // crossings, and the runtime saw exactly the submitted jobs.
    assert_eq!(
        snap.counter_family("noc.link_util"),
        snap.counter("noc.link_crossings")
    );
    assert_eq!(snap.counter("runtime.submissions"), JOBS as u64);
    let turnaround = snap.histogram("runtime.turnaround").expect("completions");
    assert_eq!(turnaround.count(), rt.stats().completed);
}

//! Integration: the whole stack is deterministic — identical seeds and
//! inputs give bit-identical metrics and results across runs.

use std::collections::HashMap;
use vlsi_processor::core::{BlockExecutor, VlsiChip};
use vlsi_processor::csd::CsdSimulator;
use vlsi_processor::faults::FaultPlanBuilder;
use vlsi_processor::runtime::mix::mixed_jobs;
use vlsi_processor::runtime::{EventKind, Fifo, Runtime, RuntimeConfig};
use vlsi_processor::topology::{Cluster, Coord, Region};
use vlsi_processor::workloads::{figure7, RandomDatapath, StreamKernel};

fn full_scenario() -> (Vec<u64>, u64, u64, Vec<i64>) {
    let mut chip = VlsiChip::new(8, 8, Cluster::default());
    // Streaming kernel on one AP.
    let id = chip
        .gather(Region::rect(Coord::new(4, 4), 2, 2))
        .unwrap()
        .id;
    let kernel = StreamKernel::axpy(3, 7, 16);
    chip.install(id, kernel.objects.clone()).unwrap();
    let xs: Vec<vlsi_processor::object::Word> =
        (0..16u64).map(vlsi_processor::object::Word).collect();
    chip.write_mailbox(id, 0, 0, &xs).unwrap();
    chip.activate(id).unwrap();
    let cfg = chip.configure(id, kernel.stream.clone()).unwrap();
    let report = chip.execute(id, 0, 1_000_000).unwrap();
    chip.deactivate(id).unwrap();
    let outputs: Vec<u64> = chip
        .read_mailbox(id, 1, 0, 16)
        .unwrap()
        .iter()
        .map(|w| w.as_u64())
        .collect();

    // Partitioned program on four more APs.
    let exec = BlockExecutor::deploy(&mut chip, figure7::program().partition()).unwrap();
    let mut results = Vec::new();
    for i in 0..6i64 {
        let inputs = HashMap::from([("x".to_string(), i), ("y".to_string(), 3 - i)]);
        let (env, _) = exec.run(&mut chip, &inputs).unwrap();
        results.push(env[figure7::RESULT_VAR]);
    }
    (outputs, cfg.cycles, report.cycles, results)
}

#[test]
fn chip_scenarios_are_deterministic() {
    let a = full_scenario();
    let b = full_scenario();
    assert_eq!(a, b);
}

#[test]
fn csd_sweeps_are_deterministic() {
    let sim = CsdSimulator::new(64, 64);
    let a = sim.sweep_point(0.4, 10, 99);
    let b = sim.sweep_point(0.4, 10, 99);
    assert_eq!(a, b);
}

#[test]
fn scalar_metrics_are_deterministic() {
    use vlsi_processor::ap::{AdaptiveProcessor, ApConfig};
    let run = || {
        let gen = RandomDatapath {
            n_objects: 20,
            n_elements: 150,
            locality: 0.3,
            seed: 12345,
        };
        let mut ap = AdaptiveProcessor::new(ApConfig::default());
        ap.install(gen.objects()).unwrap();
        ap.execute_scalar(&gen.stream()).unwrap();
        ap.metrics()
    };
    assert_eq!(run(), run());
}

#[test]
fn defect_event_sequences_are_byte_identical_across_same_seed_runs() {
    // Defects live in the flat FabricIndex bitmap, not a hash-ordered
    // set, so everything derived from them — the runtime's defect events
    // and the chip's defect view — must replay byte-for-byte from the
    // same seed.
    let run = || {
        let chip = VlsiChip::new(16, 16, Cluster::default());
        let mut rt = Runtime::new(chip, Box::new(Fifo), RuntimeConfig::default());
        let plan = FaultPlanBuilder::new(77)
            .grid(16, 16)
            .horizon(60)
            .switch_stuck_rate(0.01)
            .build();
        rt.attach_fault_plan(plan);
        for spec in mixed_jobs(77, 12) {
            rt.submit(spec);
        }
        rt.run_until_idle(200_000).expect("faulted mix must drain");
        let defect_bytes: Vec<u8> = rt
            .events()
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    EventKind::DefectInjected { .. }
                        | EventKind::DefectRecovered { .. }
                        | EventKind::FaultReported { .. }
                )
            })
            .flat_map(|e| format!("{e:?}\n").into_bytes())
            .collect();
        let coords: Vec<Coord> = rt.chip().defective_coords().collect();
        (defect_bytes, coords)
    };
    let (bytes_a, coords_a) = run();
    let (bytes_b, coords_b) = run();
    assert!(
        !coords_a.is_empty(),
        "the plan must actually inject defects"
    );
    assert_eq!(
        bytes_a, bytes_b,
        "defect event sequence must be byte-identical"
    );
    assert_eq!(coords_a, coords_b);
    // The defect view is row-major, not hash-ordered.
    let mut sorted = coords_a.clone();
    sorted.sort_by_key(|c| (c.layer, c.y, c.x));
    assert_eq!(coords_a, sorted);
}

//! Overload chaos harness for the ingestion front-end.
//!
//! The CI matrix is seeds × arrival profiles (sustained / burst /
//! overload) × a chip-down storm, and the contract under overload is
//! the robustness contract everywhere else in this repo, plus exact
//! accounting:
//!
//! 1. **never panic or hang** — every run drains inside a bounded tick
//!    budget (the `run_trace` Hung guard is itself exercised);
//! 2. **never silently lose a job** — the conservation ledger balances
//!    exactly: every arrival is accepted, shed, rejected, given up, or
//!    still in flight, and every accepted job completes, fails typed,
//!    or is lost typed;
//! 3. **bit-identical per seed** — the same seed and profile replay the
//!    exact same ledger, event logs, and telemetry at 1, 2, and 8
//!    threads.

use vlsi_processor::core::VlsiChip;
use vlsi_processor::fabric::{Cluster as ChipCluster, ClusterConfig, ClusterTopology};
use vlsi_processor::faults::{Fault, FaultKind, FaultPlan};
use vlsi_processor::ingest::{
    accounting, run_trace, AccountingReport, AdmissionConfig, ClientConfig, IngestClient,
    IngestConfig, IngestError, IngestService,
};
use vlsi_processor::par::Pool;
use vlsi_processor::runtime::{Fifo, Runtime, RuntimeConfig};
use vlsi_processor::telemetry::TelemetryHandle;
use vlsi_processor::topology::Cluster;
use vlsi_processor::workloads::{arrival_trace, ArrivalProfile};

const SEEDS: [u64; 3] = [11, 4242, 987_654_321];

fn profiles() -> [ArrivalProfile; 3] {
    [
        ArrivalProfile::Sustained { rate_milli: 900 },
        ArrivalProfile::Burst {
            base_milli: 300,
            burst_milli: 9000,
            period: 40,
            burst_len: 8,
        },
        ArrivalProfile::Overload { rate_milli: 8000 },
    ]
}

/// A 4-chip ring of small dies behind the ingest front door, with a
/// chip-down storm: chip 3 dies early, chip 1 dies mid-trace.
fn service_under_storm(threads: usize) -> (IngestService<ChipCluster>, TelemetryHandle) {
    let mut cluster = ChipCluster::with_telemetry(
        ClusterTopology::ring(4),
        (8, 8),
        Pool::new(threads),
        ClusterConfig::standard(),
        TelemetryHandle::active(),
    );
    for _ in 0..4 {
        let chip = VlsiChip::with_telemetry(8, 8, Cluster::default(), TelemetryHandle::active());
        cluster.push_chip(Runtime::new(chip, Box::new(Fifo), RuntimeConfig::default()));
    }
    let mut plan = FaultPlan::none();
    plan.push(Fault::permanent(FaultKind::ChipDown { chip: 3 }, 25));
    plan.push(Fault::permanent(FaultKind::ChipDown { chip: 1 }, 70));
    cluster.attach_fault_plan(plan);

    let telemetry = TelemetryHandle::active();
    let service = IngestService::with_telemetry(
        cluster,
        IngestConfig {
            // Below the overload tier's per-tick arrival rate, so the
            // ring genuinely backpressures and retry chains can exhaust.
            ring_capacity: 6,
            admission: AdmissionConfig {
                tenant_rate_milli: 1500,
                tenant_burst: 4,
                high_water: 48,
                low_water: 16,
                max_degraded_level: 4,
            },
        },
        telemetry.clone(),
    );
    (service, telemetry)
}

fn client_for(
    service: &IngestService<ChipCluster>,
    seed: u64,
    telemetry: &TelemetryHandle,
) -> IngestClient {
    IngestClient::with_telemetry(
        service.ring(),
        seed,
        ClientConfig::default(),
        telemetry.clone(),
    )
}

/// One full chaos run; returns the ledger plus a replay digest over the
/// ledger, merged events, and both telemetry exports.
fn chaos_run(seed: u64, profile: ArrivalProfile, threads: usize) -> (AccountingReport, String) {
    let (mut service, telemetry) = {
        let (s, t) = service_under_storm(threads);
        (s, t)
    };
    let mut client = client_for(&service, seed, &telemetry);
    let trace = arrival_trace(seed, profile, 150, 5);
    let arrivals = trace.len() as u64;
    let ticks =
        run_trace(&mut service, &mut client, &trace, 200_000).expect("chaos run must drain");
    assert!(ticks >= 150, "the trace horizon was simulated");

    let ledger = accounting(&service, &client);
    assert_eq!(ledger.arrivals, arrivals, "every trace event was delivered");
    assert!(
        ledger.is_balanced(),
        "seed {seed} {}: unbalanced ledger {ledger:?}",
        profile.label()
    );
    assert_eq!(ledger.in_ring, 0, "drained runs end with an empty ring");
    assert_eq!(ledger.in_retry, 0, "no retry may be stranded");
    assert_eq!(ledger.sink_outstanding, 0, "the sink drained");

    let mut digest = format!("{ledger:?}\n");
    for (c, e) in service.sink().merged_events() {
        digest.push_str(&format!("{c} {e:?}\n"));
    }
    digest.push_str(&telemetry.snapshot().to_json());
    digest.push('\n');
    digest.push_str(&service.sink().merged_telemetry().snapshot().to_json());
    (ledger, digest)
}

#[test]
fn chaos_matrix_balances_exactly_and_replays() {
    for seed in SEEDS {
        for profile in profiles() {
            let (ledger, digest) = chaos_run(seed, profile, 1);
            // Replay: bit-identical digest for the same seed.
            let (ledger2, digest2) = chaos_run(seed, profile, 1);
            assert_eq!(ledger, ledger2, "seed {seed} {} ledger", profile.label());
            assert_eq!(digest, digest2, "seed {seed} {} digest", profile.label());
        }
    }
}

#[test]
fn chaos_overload_actually_overloads() {
    // The overload tier must exercise every protection path at least
    // once across the seed set: typed shedding, rate-limit rejections,
    // and client give-ups — otherwise the matrix is vacuous.
    let mut shed = 0u64;
    let mut rejected = 0u64;
    let mut gave_up = 0u64;
    for seed in SEEDS {
        let (ledger, _) = chaos_run(seed, ArrivalProfile::Overload { rate_milli: 8000 }, 1);
        shed += ledger.stats.shed_deadline + ledger.stats.shed_degraded;
        rejected += ledger.stats.rejected_rate + ledger.stats.rejected_sink;
        gave_up += ledger.gave_up;
        assert!(ledger.stats.accepted > 0, "some work is still admitted");
        assert!(ledger.completed > 0, "admitted work completes");
    }
    assert!(shed > 0, "overload must shed");
    assert!(rejected > 0, "overload must rate-limit");
    assert!(gave_up > 0, "backpressure must exhaust some retries");
}

#[test]
fn chaos_runs_are_bit_identical_across_thread_counts() {
    for seed in SEEDS {
        for profile in profiles() {
            let serial = chaos_run(seed, profile, 1);
            for threads in [2, 8] {
                let parallel = chaos_run(seed, profile, threads);
                assert_eq!(
                    serial,
                    parallel,
                    "seed {seed} {} at {threads} threads",
                    profile.label()
                );
            }
        }
    }
}

#[test]
fn zero_burst_tenant_admits_nothing_and_ledger_balances() {
    // Regression: TokenBucket::new used to clamp burst=0 up to a
    // one-job capacity and start full, so a tenant configured to admit
    // nothing still got jobs through. A zero-burst bucket must reject
    // every request with the typed rate-limit reason while the
    // conservation ledger stays exactly balanced.
    let mut cluster = ChipCluster::with_telemetry(
        ClusterTopology::ring(2),
        (8, 8),
        Pool::serial(),
        ClusterConfig::standard(),
        TelemetryHandle::active(),
    );
    for _ in 0..2 {
        let chip = VlsiChip::new(8, 8, Cluster::default());
        cluster.push_chip(Runtime::new(chip, Box::new(Fifo), RuntimeConfig::default()));
    }
    let mut service = IngestService::new(
        cluster,
        IngestConfig {
            ring_capacity: 6,
            admission: AdmissionConfig {
                tenant_rate_milli: 1500,
                tenant_burst: 0,
                high_water: 48,
                low_water: 16,
                max_degraded_level: 4,
            },
        },
    );
    let mut client = client_for(&service, 21, &TelemetryHandle::disabled());
    let trace = arrival_trace(21, ArrivalProfile::Sustained { rate_milli: 900 }, 120, 4);
    run_trace(&mut service, &mut client, &trace, 200_000).expect("still drains");
    let ledger = accounting(&service, &client);
    assert!(ledger.is_balanced(), "unbalanced: {ledger:?}");
    assert_eq!(ledger.stats.accepted, 0, "zero burst admits nothing");
    assert_eq!(ledger.completed, 0, "nothing admitted, nothing runs");
    assert!(
        ledger.stats.rejected_rate > 0,
        "every drained request rejects typed: {ledger:?}"
    );
}

#[test]
fn hung_guard_fires_typed_instead_of_hanging() {
    // A tick budget far smaller than the trace horizon must surface the
    // bounded-progress guard as a typed error, never a hang.
    let (mut service, telemetry) = service_under_storm(1);
    let mut client = client_for(&service, 7, &telemetry);
    let trace = arrival_trace(7, ArrivalProfile::Sustained { rate_milli: 900 }, 150, 5);
    let err = run_trace(&mut service, &mut client, &trace, 10).expect_err("budget too small");
    match err {
        IngestError::Hung { ticks, outstanding } => {
            assert_eq!(ticks, 10);
            assert!(outstanding > 0, "the guard reports what was left");
        }
        other => panic!("expected Hung, got {other:?}"),
    }
}

#[test]
fn all_chips_down_rejects_typed_rather_than_panicking() {
    // Kill every chip: accepted admission turns into typed sink
    // rejections (the cluster's try_submit has nowhere to place), and
    // the ledger still balances.
    let mut cluster = ChipCluster::with_telemetry(
        ClusterTopology::ring(2),
        (8, 8),
        Pool::serial(),
        ClusterConfig::standard(),
        TelemetryHandle::active(),
    );
    for _ in 0..2 {
        let chip = VlsiChip::new(8, 8, Cluster::default());
        cluster.push_chip(Runtime::new(chip, Box::new(Fifo), RuntimeConfig::default()));
    }
    let mut plan = FaultPlan::none();
    plan.push(Fault::permanent(FaultKind::ChipDown { chip: 0 }, 2));
    plan.push(Fault::permanent(FaultKind::ChipDown { chip: 1 }, 2));
    cluster.attach_fault_plan(plan);

    let mut service = IngestService::new(cluster, IngestConfig::default());
    let mut client = client_for(&service, 3, &TelemetryHandle::disabled());
    let trace = arrival_trace(3, ArrivalProfile::Sustained { rate_milli: 700 }, 60, 3);
    run_trace(&mut service, &mut client, &trace, 200_000).expect("still drains");
    let ledger = accounting(&service, &client);
    assert!(ledger.is_balanced(), "unbalanced: {ledger:?}");
    assert!(
        ledger.stats.rejected_sink > 0,
        "dead cluster rejects typed: {ledger:?}"
    );
}

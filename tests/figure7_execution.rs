//! Integration: the complete Figure 7 scenario on the chip.

use std::collections::HashMap;
use vlsi_processor::core::{BlockExecutor, CoreError, ProcState, VlsiChip};
use vlsi_processor::topology::Cluster;
use vlsi_processor::workloads::figure7;

#[test]
fn four_processor_speculative_pipeline() {
    let mut chip = VlsiChip::new(8, 8, Cluster::default());
    let blocks = figure7::program().partition();
    assert_eq!(blocks.len(), 4, "Figure 7(b): four atomic blocks");
    let exec = BlockExecutor::deploy(&mut chip, blocks).unwrap();
    assert_eq!(exec.processor_count(), 4);

    // Sweep a grid of inputs including the boundary x == y.
    for x in -5..=5i64 {
        for y in -5..=5i64 {
            let inputs = HashMap::from([("x".to_string(), x), ("y".to_string(), y)]);
            let (env, stats) = exec.run(&mut chip, &inputs).unwrap();
            assert_eq!(env[figure7::RESULT_VAR], figure7::reference(x, y));
            // Exactly one arm runs per invocation: entry + arm + buffer.
            assert_eq!(stats.blocks_executed, 3);
        }
    }
}

#[test]
fn only_the_taken_arm_is_activated() {
    let mut chip = VlsiChip::new(8, 8, Cluster::default());
    let blocks = figure7::program().partition();
    let exec = BlockExecutor::deploy(&mut chip, blocks).unwrap();
    let (_, stats) = exec
        .run(
            &mut chip,
            &HashMap::from([("x".to_string(), 10i64), ("y".to_string(), 0i64)]),
        )
        .unwrap();
    // 4 processors deployed, but only 3 activations (one arm stays dark).
    assert_eq!(stats.blocks_executed, 3);
    assert_eq!(exec.processor_count(), 4);
}

#[test]
fn mailbox_writes_respect_protection() {
    let mut chip = VlsiChip::new(8, 8, Cluster::default());
    let blocks = figure7::program().partition();
    let exec = BlockExecutor::deploy(&mut chip, blocks).unwrap();
    let entry = exec.processor_of(0).unwrap();

    // While inactive, the supervisor can write operands.
    chip.write_mailbox(entry, 0, 0, &[vlsi_processor::object::Word(1)])
        .unwrap();
    // While active, the same write is a protection violation.
    chip.activate(entry).unwrap();
    assert!(matches!(
        chip.write_mailbox(entry, 0, 0, &[vlsi_processor::object::Word(2)]),
        Err(CoreError::ProtectionViolation { .. })
    ));
    chip.deactivate(entry).unwrap();
    assert_eq!(chip.state(entry).unwrap(), ProcState::Inactive);
}

#[test]
fn deployment_survives_many_runs_with_alternating_arms() {
    let mut chip = VlsiChip::new(8, 8, Cluster::default());
    let blocks = figure7::program().partition();
    let exec = BlockExecutor::deploy(&mut chip, blocks).unwrap();
    for i in 0..20i64 {
        let (x, y) = if i % 2 == 0 { (i, -i) } else { (-i, i) };
        let inputs = HashMap::from([("x".to_string(), x), ("y".to_string(), y)]);
        let (env, _) = exec.run(&mut chip, &inputs).unwrap();
        assert_eq!(
            env[figure7::RESULT_VAR],
            figure7::reference(x, y),
            "run {i}"
        );
    }
    // All processors back to inactive after the runs.
    for i in 0..4 {
        if let Some(id) = exec.processor_of(i) {
            assert_eq!(chip.state(id).unwrap(), ProcState::Inactive);
        }
    }
}

//! Integration: the Figure 1 configuration procedure across crates.
//!
//! Exercises the request → acknowledge → acquirement sequence end to end:
//! the management pipeline (vlsi-ap) drives the object library
//! (vlsi-object) and the dynamic CSD network (vlsi-csd), and the whole
//! thing is observable through the WSRF and the network's route table.

use vlsi_processor::ap::{AdaptiveProcessor, ApConfig};
use vlsi_processor::object::{
    GlobalConfigElement, GlobalConfigStream, LocalConfig, LogicalObject, ObjectId, Operation, Word,
};

fn diamond_stream() -> (Vec<LogicalObject>, GlobalConfigStream) {
    // 0 (const) fans out to 1 and 2, which join at 3.
    let objects = vec![
        LogicalObject::compute(
            ObjectId(0),
            LocalConfig::with_imm(Operation::Const, Word(10)),
        ),
        LogicalObject::compute(
            ObjectId(1),
            LocalConfig::with_imm(Operation::AddImm, Word(1)),
        ),
        LogicalObject::compute(
            ObjectId(2),
            LocalConfig::with_imm(Operation::MulImm, Word(3)),
        ),
        LogicalObject::compute(ObjectId(3), LocalConfig::op(Operation::IAdd)),
    ];
    let stream: GlobalConfigStream = [
        GlobalConfigElement::unary(ObjectId(1), ObjectId(0)),
        GlobalConfigElement::unary(ObjectId(2), ObjectId(0)),
        GlobalConfigElement::binary(ObjectId(3), ObjectId(1), ObjectId(2)),
    ]
    .into_iter()
    .collect();
    (objects, stream)
}

#[test]
fn configuration_acquires_chains_and_wsrf_entries() {
    let mut ap = AdaptiveProcessor::new(ApConfig::default());
    let (objects, stream) = diamond_stream();
    ap.install(objects).unwrap();
    let out = ap.configure(stream).unwrap();

    // Every object was a compulsory miss, loaded from the library.
    assert_eq!(out.misses, 4);
    assert_eq!(ap.library().load_count(), 4);
    // All four are acquired in the WSRF…
    assert_eq!(ap.wsrf().len(), 4);
    // …and chained over the CSD network (4 producer->consumer edges).
    assert_eq!(out.routes, 4);
    assert_eq!(ap.csd().live_routes(), 4);
    ap.csd().check_invariants().unwrap();

    // The diamond executes: (10+1) + (10*3) = 41.
    let report = ap.execute(1, 100_000).unwrap();
    assert_eq!(report.taps[&ObjectId(3)], vec![Word(41)]);
}

#[test]
fn release_tokens_free_chains_but_cache_objects() {
    let mut ap = AdaptiveProcessor::new(ApConfig::default());
    let (objects, stream) = diamond_stream();
    ap.install(objects).unwrap();
    ap.configure(stream.clone()).unwrap();
    let report = ap.execute(1, 100_000).unwrap();
    // Release tokens propagated source-first through the datapath.
    assert_eq!(report.release_order[0], ObjectId(0));
    assert!(report.release_tokens > 0);

    ap.release();
    assert_eq!(ap.csd().live_routes(), 0, "chains torn down");
    assert_eq!(ap.wsrf().len(), 0, "acquirements cleared");
    assert_eq!(ap.stack().len(), 4, "objects stay cached");

    // The paper's §2.3 replay: requesting again hits every object.
    let again = ap.configure(stream).unwrap();
    assert_eq!(again.misses, 0);
    assert!(again.hits > 0);
}

#[test]
fn cache_miss_inserts_library_load_sequence() {
    // Capacity 2 with a 4-object *scalar* trace: every new element faults,
    // and the faults cost library loads + stack shifts.
    let mut ap = AdaptiveProcessor::new(ApConfig {
        compute_objects: 2,
        ..ApConfig::default()
    });
    let objects: Vec<LogicalObject> = (0..4)
        .map(|i| {
            LogicalObject::compute(
                ObjectId(i),
                LocalConfig::with_imm(Operation::AddImm, Word(1)),
            )
        })
        .collect();
    ap.install(objects).unwrap();
    let stream: GlobalConfigStream = (1..4)
        .map(|i| GlobalConfigElement::unary(ObjectId(i), ObjectId(i - 1)))
        .collect();
    ap.execute_scalar(&stream).unwrap();
    let m = ap.metrics();
    assert!(m.object_misses >= 4);
    assert!(m.swap_outs >= 2, "LRU victims written back");
    assert_eq!(
        ap.library().store_count(),
        m.swap_outs,
        "every swap-out is a library write-back"
    );
}

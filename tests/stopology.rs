//! Integration: S-topology folds, switch programming, and the chip's view
//! of both.

use vlsi_processor::core::VlsiChip;
use vlsi_processor::topology::{fold, Cluster, Coord, Region};

#[test]
fn every_gathered_fold_has_unit_hops() {
    // The defining S-topology property survives the full gather path:
    // whatever shape is gathered, consecutive stack slots are adjacent.
    let mut chip = VlsiChip::new(8, 8, Cluster::default());
    let shapes = [
        Region::rect(Coord::new(0, 0), 1, 1),
        Region::rect(Coord::new(2, 0), 3, 2),
        Region::new([
            Coord::new(0, 2),
            Coord::new(0, 3),
            Coord::new(1, 3),
            Coord::new(1, 4),
            Coord::new(0, 4),
        ]),
        Region::rect(Coord::new(6, 6), 2, 2),
    ];
    for region in shapes {
        let id = chip.gather(region).unwrap().id;
        let p = chip.processor(id).unwrap();
        assert!(p.fold.max_hop_distance() <= 1);
        // Switch state is consistent with the fold: tracing reproduces it.
        let traced = chip
            .fabric()
            .trace_shift_path(p.fold.path()[0], p.fold.len() + 2);
        assert_eq!(traced, p.fold.path().to_vec());
    }
}

#[test]
fn stack_shift_direction_is_programmable_end_to_end() {
    // Gather, then verify each cluster's unidirectional switch points at
    // the next fold hop (Figure 6(b)).
    let mut chip = VlsiChip::new(4, 4, Cluster::default());
    let id = chip
        .gather(Region::rect(Coord::new(0, 0), 4, 2))
        .unwrap()
        .id;
    let fold_path = chip.processor(id).unwrap().fold.path().to_vec();
    for w in fold_path.windows(2) {
        let state = chip.fabric().state(w[0]);
        let dir = w[0].dir_to(w[1]).unwrap();
        assert_eq!(state.shift_out, Some(dir));
        let next_state = chip.fabric().state(w[1]);
        assert_eq!(next_state.shift_in, Some(dir.opposite()));
        assert!(chip.fabric().is_chained(w[0], w[1]));
    }
}

#[test]
fn chip_scale_bookkeeping_matches_cost_model_minimum_ap() {
    // A 2x2 gather of default clusters is exactly the cost model's AP:
    // 16 physical objects + 16 memory blocks.
    let mut chip = VlsiChip::new(8, 8, Cluster::default());
    let id = chip
        .gather(Region::rect(Coord::new(0, 0), 2, 2))
        .unwrap()
        .id;
    let cfg = *chip.processor(id).unwrap().ap.config();
    let comp = vlsi_processor::cost::ApComposition::default();
    assert_eq!(cfg.compute_objects as u32, comp.compute_objects);
    assert_eq!(cfg.memory_objects as u32, comp.memory_objects);
}

#[test]
fn folds_compose_across_scales() {
    // §3.1's "hierarchical or fractal" requirement: the serpentine works
    // at every rectangular scale, and the die stack doubles it.
    for (w, h) in [(1u16, 1u16), (2, 2), (4, 4), (8, 8), (16, 16), (5, 9)] {
        let f = fold::serpentine(w, h);
        assert_eq!(f.len(), w as usize * h as usize);
        assert!(f.max_hop_distance() <= 1);
        let d = fold::die_stack(w, h);
        assert_eq!(d.len(), 2 * f.len());
        assert!(d.max_hop_distance() <= 1);
    }
}

#[test]
fn manhattan_distance_of_chains_bounded_by_fold_span() {
    // Physical distance between any two stack slots never exceeds the
    // region's half-perimeter (the Manhattan diameter) — the quantity the
    // paper's delay analysis keys on.
    let f = fold::serpentine(8, 8);
    for a in (0..f.len()).step_by(7) {
        for b in (0..f.len()).step_by(11) {
            let d = f.physical_distance(a, b).unwrap();
            assert!(d <= 14, "slots {a},{b} at distance {d}");
        }
    }
}

//! Integration: streaming kernels on gathered processors, virtual
//! hardware, and scaling under load.

use vlsi_processor::core::{CoreError, VlsiChip};
use vlsi_processor::object::Word;
use vlsi_processor::topology::{Cluster, Coord, Region};
use vlsi_processor::workloads::{RandomDatapath, StreamKernel};

#[test]
fn all_stream_kernels_verify_on_a_gathered_processor() {
    let xs: Vec<u64> = (0..24).map(|i| i * 3 + 1).collect();
    let cases: Vec<(StreamKernel, Vec<u64>)> = vec![
        (
            StreamKernel::axpy(7, 9, xs.len() as u64),
            StreamKernel::axpy_reference(7, 9, &xs),
        ),
        (
            StreamKernel::chain(&[1, 2, 3, 4, 5], xs.len() as u64),
            StreamKernel::chain_reference(&[1, 2, 3, 4, 5], &xs),
        ),
        (
            StreamKernel::fanout_reduce([2, 4, 8], xs.len() as u64),
            StreamKernel::fanout_reduce_reference([2, 4, 8], &xs),
        ),
        (
            StreamKernel::horner(&[3, 1, 2, 7], xs.len() as u64),
            StreamKernel::horner_reference(&[3, 1, 2, 7], &xs),
        ),
        (
            StreamKernel::wide_tree(4, 2, xs.len() as u64),
            StreamKernel::wide_tree_reference(4, 2, &xs),
        ),
    ];
    for (kernel, expect) in cases {
        let mut chip = VlsiChip::new(4, 4, Cluster::default());
        let id = chip
            .gather(Region::rect(Coord::new(0, 0), 2, 2))
            .unwrap()
            .id;
        chip.install(id, kernel.objects.clone()).unwrap();
        let words: Vec<Word> = xs.iter().map(|&x| Word(x)).collect();
        chip.write_mailbox(id, 0, 0, &words).unwrap();
        chip.activate(id).unwrap();
        chip.configure(id, kernel.stream.clone()).unwrap();
        let report = chip.execute(id, 0, 1_000_000).unwrap();
        assert_eq!(report.stores, expect.len() as u64, "{}", kernel.name);
        chip.deactivate(id).unwrap();
        let got = chip.read_mailbox(id, 1, 0, expect.len()).unwrap();
        for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
            assert_eq!(g.as_u64(), *e, "{}[{}]", kernel.name, i);
        }
    }
}

#[test]
fn random_datapaths_configure_or_fail_cleanly_at_every_locality() {
    // Fuzz the full configure path with the §2.6.2 generator. Datapaths
    // whose working set fits must configure; all others must fail with
    // the capacity error, never panic.
    for locality in [0.0, 0.5, 1.0] {
        for seed in 0..10 {
            let gen = RandomDatapath {
                n_objects: 12,
                n_elements: 24,
                locality,
                seed,
            };
            let mut chip = VlsiChip::new(4, 4, Cluster::default());
            let id = chip
                .gather(Region::rect(Coord::new(0, 0), 2, 2))
                .unwrap()
                .id;
            chip.install(id, gen.objects()).unwrap();
            chip.activate(id).unwrap();
            let stream = gen.stream();
            use vlsi_processor::ap::ApError;
            match chip.configure(id, stream.clone()) {
                Ok(out) => {
                    assert!(out.misses as usize <= 12);
                }
                // Routability exhaustion is a legitimate outcome the paper
                // itself warns about ("the number of channels determines
                // the routability", §6); anything else is a bug.
                Err(CoreError::Ap(ApError::Csd(_))) => {}
                Err(e) => panic!("locality {locality} seed {seed}: {e}"),
            }
        }
    }
}

#[test]
fn virtual_hardware_equivalence_on_chip() {
    // The same chain computed streamed (on a big processor) and scalar
    // (on a small one) gives identical results.
    use vlsi_processor::object::{
        GlobalConfigElement, GlobalConfigStream, LocalConfig, LogicalObject, ObjectId, Operation,
    };
    let stages = 30u32;
    let objects: Vec<LogicalObject> = std::iter::once(LogicalObject::compute(
        ObjectId(0),
        LocalConfig::with_imm(Operation::Const, Word(5)),
    ))
    .chain((1..=stages).map(|i| {
        LogicalObject::compute(
            ObjectId(i),
            LocalConfig::with_imm(Operation::AddImm, Word(u64::from(i))),
        )
    }))
    .collect();
    let stream: GlobalConfigStream = (1..=stages)
        .map(|i| GlobalConfigElement::unary(ObjectId(i), ObjectId(i - 1)))
        .collect();

    // Big processor (3x3 clusters = 36 compute objects): streams.
    let mut chip = VlsiChip::new(8, 8, Cluster::default());
    let big = chip
        .gather(Region::rect(Coord::new(0, 0), 3, 3))
        .unwrap()
        .id;
    chip.install(big, objects.clone()).unwrap();
    chip.activate(big).unwrap();
    chip.configure(big, stream.clone()).unwrap();
    let report = chip.execute(big, 1, 1_000_000).unwrap();
    let streamed = report.taps[&ObjectId(stages)][0];

    // Small processor (1 cluster = 4 compute objects): virtual hardware.
    let small = chip
        .gather(Region::rect(Coord::new(4, 0), 1, 1))
        .unwrap()
        .id;
    chip.install(small, objects).unwrap();
    chip.activate(small).unwrap();
    let scalar = chip.execute_scalar(small, &stream).unwrap();
    assert_eq!(streamed, scalar[&ObjectId(stages)]);
    // And it really swapped: more misses than the object count is only
    // possible through replacement.
    let m = chip.processor(small).unwrap().ap.metrics();
    assert!(m.swap_outs > 0);
}

#[test]
fn many_processors_run_concurrent_workloads() {
    // Four independent APs on one chip, each running a different AXPY.
    let mut chip = VlsiChip::new(8, 8, Cluster::default());
    let params: [(u64, u64); 4] = [(2, 1), (3, 5), (5, 0), (7, 7)];
    let xs: Vec<u64> = (1..=8).collect();
    let mut ids = Vec::new();
    for (i, &(a, b)) in params.iter().enumerate() {
        let origin = Coord::new((i as u16 % 4) * 2, (i as u16 / 4) * 2);
        let id = chip.gather(Region::rect(origin, 2, 2)).unwrap().id;
        let kernel = StreamKernel::axpy(a, b, xs.len() as u64);
        chip.install(id, kernel.objects.clone()).unwrap();
        let words: Vec<Word> = xs.iter().map(|&x| Word(x)).collect();
        chip.write_mailbox(id, 0, 0, &words).unwrap();
        chip.activate(id).unwrap();
        chip.configure(id, kernel.stream.clone()).unwrap();
        ids.push(id);
    }
    for (i, &(a, b)) in params.iter().enumerate() {
        chip.execute(ids[i], 0, 1_000_000).unwrap();
        chip.deactivate(ids[i]).unwrap();
        let got = chip.read_mailbox(ids[i], 1, 0, xs.len()).unwrap();
        let expect = StreamKernel::axpy_reference(a, b, &xs);
        assert_eq!(
            got.iter().map(|w| w.as_u64()).collect::<Vec<_>>(),
            expect,
            "processor {i}"
        );
    }
}

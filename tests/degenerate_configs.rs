//! Integration: degenerate and hostile configurations fail cleanly, never
//! panic.

use vlsi_processor::ap::{AdaptiveProcessor, ApConfig, ApError};
use vlsi_processor::core::{CoreError, VlsiChip};
use vlsi_processor::csd::{CsdError, DynamicCsd};
use vlsi_processor::noc::NocNetwork;
use vlsi_processor::object::{
    GlobalConfigElement, GlobalConfigStream, LocalConfig, LogicalObject, ObjectId, Operation,
};
use vlsi_processor::topology::{Cluster, Coord, Region};

#[test]
fn zero_channel_network_rejects_everything() {
    let mut net = DynamicCsd::new(8, 0);
    assert!(matches!(
        net.connect(0, 5),
        Err(CsdError::NoChannelAvailable { .. })
    ));
    assert_eq!(net.used_channels(), 0);
}

#[test]
fn one_by_one_chip_works() {
    let mut chip = VlsiChip::new(1, 1, Cluster::default());
    let out = chip.gather(Region::rect(Coord::new(0, 0), 1, 1)).unwrap();
    assert_eq!(out.worms, 1);
    chip.activate(out.id).unwrap();
    chip.deactivate(out.id).unwrap();
    chip.release_processor(out.id).unwrap();
    assert_eq!(chip.free_clusters(), 1);
    // No room for anything bigger.
    assert!(chip.gather_any(2).is_err());
}

#[test]
fn tiny_ap_still_streams_tiny_datapaths() {
    let mut ap = AdaptiveProcessor::new(ApConfig {
        compute_objects: 2,
        memory_objects: 0,
        channels: 1,
        ..ApConfig::default()
    });
    ap.install([
        LogicalObject::compute(
            ObjectId(0),
            LocalConfig::with_imm(Operation::Const, vlsi_processor::object::Word(1)),
        ),
        LogicalObject::compute(
            ObjectId(1),
            LocalConfig::with_imm(Operation::AddImm, vlsi_processor::object::Word(1)),
        ),
    ])
    .unwrap();
    let stream: GlobalConfigStream = [GlobalConfigElement::unary(ObjectId(1), ObjectId(0))]
        .into_iter()
        .collect();
    ap.configure(stream).unwrap();
    let r = ap.execute(1, 10_000).unwrap();
    assert_eq!(r.taps[&ObjectId(1)], vec![vlsi_processor::object::Word(2)]);
}

#[test]
fn memory_object_in_stream_but_not_installed() {
    let mut ap = AdaptiveProcessor::new(ApConfig::default());
    ap.install([LogicalObject::compute(
        ObjectId(1),
        LocalConfig::op(Operation::Pass),
    )])
    .unwrap();
    // Object 999 was never installed anywhere.
    let stream: GlobalConfigStream = [GlobalConfigElement::unary(ObjectId(1), ObjectId(999))]
        .into_iter()
        .collect();
    assert!(matches!(ap.configure(stream), Err(ApError::Object(_))));
}

#[test]
fn all_clusters_defective_leaves_nothing_to_gather() {
    let mut chip = VlsiChip::new(2, 2, Cluster::default());
    for c in Region::rect(Coord::new(0, 0), 2, 2).cells() {
        chip.mark_defective(c);
    }
    assert_eq!(chip.free_clusters(), 0);
    assert!(matches!(
        chip.gather(Region::rect(Coord::new(0, 0), 1, 1)),
        Err(CoreError::DefectiveCluster(_))
    ));
    assert!(chip.gather_any(1).is_err());
    assert_eq!(chip.fragmentation(), 0.0, "no free space, no fragmentation");
}

#[test]
fn noc_of_width_one_routes_vertically() {
    let mut net = NocNetwork::new(1, 8);
    net.inject(Coord::new(0, 0), Coord::new(0, 7), vec![1, 2])
        .unwrap();
    net.run_until_drained(10_000).unwrap();
    assert_eq!(net.take_delivered().len(), 1);
}

#[test]
fn empty_mailbox_write_is_a_noop() {
    let mut chip = VlsiChip::new(4, 4, Cluster::default());
    let id = chip
        .gather(Region::rect(Coord::new(0, 0), 1, 1))
        .unwrap()
        .id;
    chip.write_mailbox(id, 0, 0, &[]).unwrap();
    assert_eq!(chip.read_mailbox(id, 0, 0, 0).unwrap(), vec![]);
}

#[test]
fn gather_any_zero_clusters_fails() {
    let mut chip = VlsiChip::new(4, 4, Cluster::default());
    assert!(chip.gather_any(0).is_err());
}

#[test]
fn wsrf_overflow_detected_before_chaining() {
    // A working set larger than the WSRF but within the stack capacity.
    let mut ap = AdaptiveProcessor::new(ApConfig {
        compute_objects: 16,
        wsrf_entries: 3,
        ..ApConfig::default()
    });
    let objects: Vec<LogicalObject> = (0..6u32)
        .map(|i| {
            LogicalObject::compute(
                ObjectId(i),
                LocalConfig::with_imm(Operation::AddImm, vlsi_processor::object::Word(1)),
            )
        })
        .collect();
    ap.install(objects).unwrap();
    let stream: GlobalConfigStream = (1..6u32)
        .map(|i| GlobalConfigElement::unary(ObjectId(i), ObjectId(i - 1)))
        .collect();
    assert!(matches!(
        ap.configure(stream),
        Err(ApError::WorkingSetExceedsWsrf { .. })
    ));
}

//! Integration: parallel execution is bit-identical to serial.
//!
//! The `vlsi-par` pool uses a *static* task→worker assignment and every
//! parallel section in the stack (the sharded NoC tick, the fleet's
//! chip→task mapping) commits cross-shard effects in a fixed serial
//! order — so a run at 2 or 8 threads must reproduce the serial run
//! byte for byte: event logs, telemetry exports, delivered lists,
//! checksums, everything. This file is the cross-layer pin; `ci.sh`
//! additionally `cmp`s whole `bench --digest` files across the thread
//! matrix.

use vlsi_bench::hotpath::{fleet_mix, noc_storm, FAULT_STORM_WORMS};
use vlsi_processor::noc::NocNetwork;
use vlsi_processor::par::Pool;
use vlsi_processor::prng::Prng;
use vlsi_processor::telemetry::TelemetryHandle;
use vlsi_processor::topology::Coord;

const THREADS: [usize; 3] = [1, 2, 8];

/// A seed-driven storm on a sharded mesh, returning everything
/// observable: the delivered (packet, latency) list, the failure list,
/// final stats, and the full telemetry export.
fn storm_observables(threads: usize, seed: u64, worms: usize) -> String {
    let (w, h) = (16u16, 16u16);
    let mut net = NocNetwork::with_telemetry(w, h, TelemetryHandle::active());
    net.set_parallel(Pool::new(threads), 0);
    let mut rng = Prng::seed_from_u64(seed);
    for _ in 0..worms {
        let src = Coord::new(rng.gen_range(0..w), rng.gen_range(0..h));
        let dest = Coord::new(rng.gen_range(0..w), rng.gen_range(0..h));
        let payload: Vec<u64> = (0..rng.gen_range(1..10u64)).collect();
        net.inject(src, dest, payload).unwrap();
    }
    net.run_until_drained(4_000_000).expect("storm must drain");
    format!(
        "{:?}\n{:?}\n{:?}\n{}",
        net.take_delivered(),
        net.take_failed(),
        net.stats(),
        net.telemetry().snapshot().to_json(),
    )
}

#[test]
fn sharded_noc_storm_is_bit_identical_across_thread_counts() {
    for seed in [3, 2012] {
        let serial = storm_observables(1, seed, 96);
        for threads in THREADS {
            assert_eq!(
                storm_observables(threads, seed, 96),
                serial,
                "seed {seed}, {threads} threads"
            );
        }
    }
}

#[test]
fn fleet_mix_is_bit_identical_across_thread_counts() {
    let serial = fleet_mix(1, 3);
    assert!(serial.0 > 0, "the fleet must complete jobs");
    for threads in THREADS {
        assert_eq!(fleet_mix(threads, 3), serial, "{threads} threads");
    }
}

#[test]
fn bench_storm_digest_matches_across_thread_counts() {
    let serial = noc_storm(1);
    for threads in THREADS {
        assert_eq!(noc_storm(threads), serial, "{threads} threads");
    }
    // Determinism also means replay: the same thread count twice.
    assert_eq!(noc_storm(8), serial);
}

#[test]
fn fault_storm_replays_under_sharding() {
    // The faulted acceptance storm uses retransmission (purges, replays)
    // — the hardest path to keep shard-count-invariant. Compare the
    // serial NoC against an 8-way sharded one on the exact same plan.
    use vlsi_processor::faults::FaultPlanBuilder;
    let run = |threads: usize| {
        let (w, h) = (8u16, 8u16);
        let mut net = NocNetwork::with_telemetry(w, h, TelemetryHandle::active());
        net.set_parallel(Pool::new(threads), 0);
        let plan = FaultPlanBuilder::new(2012)
            .grid(w, h)
            .horizon(192)
            .link_down_rate(0.05)
            .link_corrupt_rate(0.05)
            .permanent_fraction(0.0)
            .build();
        net.attach_fault_plan(plan);
        let mut rng = Prng::seed_from_u64(2012);
        let mut injected = 0;
        while injected < FAULT_STORM_WORMS {
            for _ in 0..10.min(FAULT_STORM_WORMS - injected) {
                let src = Coord::new(rng.gen_range(0..w), rng.gen_range(0..h));
                let dest = Coord::new(rng.gen_range(0..w), rng.gen_range(0..h));
                let payload: Vec<u64> = (0..rng.gen_range(8..16u64)).collect();
                net.inject(src, dest, payload).unwrap();
                injected += 1;
            }
            for _ in 0..8 {
                net.tick();
            }
        }
        net.run_until_drained(4_000_000).expect("must drain");
        format!(
            "{:?}\n{:?}\n{}",
            net.take_delivered(),
            net.stats(),
            net.telemetry().snapshot().to_json(),
        )
    };
    let serial = run(1);
    for threads in THREADS {
        assert_eq!(run(threads), serial, "{threads} threads");
    }
}

/// A cross-chip traffic storm on a 2×2 torus of 16×16 dies: 96
/// seed-driven sends between random chips/routers, drained through the
/// two-phase fabric tick. Returns every observable: deliveries,
/// failures, fabric stats, and the merged telemetry export.
fn fabric_storm_observables(threads: usize, seed: u64, kill_a_chip: bool) -> String {
    use vlsi_processor::fabric::{ClusterNetwork, ClusterTopology, FabricConfig};
    let (w, h) = (16u16, 16u16);
    let mut net = ClusterNetwork::with_telemetry(
        ClusterTopology::torus(2, 2),
        (w, h),
        Pool::new(threads),
        FabricConfig::default(),
        TelemetryHandle::active(),
    );
    let mut rng = Prng::seed_from_u64(seed);
    for _ in 0..96 {
        let src_chip = rng.gen_range(0..4u16) as usize;
        let dst_chip = rng.gen_range(0..4u16) as usize;
        let src = Coord::new(rng.gen_range(0..w), rng.gen_range(0..h));
        let dst = Coord::new(rng.gen_range(0..w), rng.gen_range(0..h));
        let payload: Vec<u64> = (0..rng.gen_range(1..8u64)).collect();
        net.send(src_chip, src, dst_chip, dst, payload).unwrap();
    }
    if kill_a_chip {
        // Mid-storm whole-chip failure: in-transit messages reroute or
        // fail typed, and the remaining traffic must still drain.
        for _ in 0..2 {
            net.tick();
        }
        net.fail_chip(3);
    }
    let mut ticks = 0;
    while !net.is_idle() {
        net.tick();
        ticks += 1;
        assert!(ticks < 10_000, "fabric storm must never hang");
    }
    format!(
        "{:?}\n{:?}\n{:?}\n{}",
        net.take_delivered(),
        net.take_failed(),
        net.stats(),
        net.merged_telemetry().snapshot().to_json(),
    )
}

#[test]
fn cross_chip_storm_is_bit_identical_across_thread_counts() {
    for seed in [7, 2012] {
        let serial = fabric_storm_observables(1, seed, false);
        assert!(serial.contains("delivered"), "storm must deliver");
        for threads in THREADS {
            assert_eq!(
                fabric_storm_observables(threads, seed, false),
                serial,
                "seed {seed}, {threads} threads"
            );
        }
    }
}

#[test]
fn cross_chip_storm_with_chip_failure_is_bit_identical() {
    let serial = fabric_storm_observables(1, 2012, true);
    for threads in THREADS {
        assert_eq!(
            fabric_storm_observables(threads, 2012, true),
            serial,
            "{threads} threads"
        );
    }
    // Replay at the same thread count too.
    assert_eq!(fabric_storm_observables(8, 2012, true), serial);
}

#[test]
fn cluster_chaos_run_is_bit_identical_across_thread_counts() {
    use vlsi_bench::hotpath::cluster_4x;
    let serial = cluster_4x(1);
    assert!(serial.0 > 0, "the cluster must complete jobs");
    assert!(serial.1 > 0, "migration must ride the fabric");
    for threads in THREADS {
        assert_eq!(cluster_4x(threads), serial, "{threads} threads");
    }
}

#[test]
fn staged_pipeline_is_bit_identical_across_thread_counts() {
    // The Fig. 7(d) cross-dataset wavefront: pipelined outputs must
    // equal the sequential walk's *and* stay put when the per-tick
    // region sweep runs on 2 or 8 workers.
    use vlsi_bench::hotpath::staged_pipeline;
    let serial = staged_pipeline(1, 6);
    assert_eq!(
        serial.digest_seq, serial.digest_pipe,
        "pipelined outputs must match the sequential walk"
    );
    for threads in THREADS {
        let r = staged_pipeline(threads, 6);
        assert_eq!(r.digest_pipe, serial.digest_pipe, "{threads} threads");
        assert_eq!(r.digest_seq, serial.digest_seq, "{threads} threads");
    }
    // Determinism also means replay: the same thread count twice.
    assert_eq!(staged_pipeline(8, 6).digest_pipe, serial.digest_pipe);
}

//! End-to-end tests for the vlsi-compile pipeline: every corpus graph
//! compiles through all six passes and *executes* — on a clean chip, on
//! a chip with an injected defect plan, through the runtime scheduler,
//! and with digests that are byte-identical across thread counts.

use std::collections::HashMap;
use vlsi_bench::hotpath::compile_corpus;
use vlsi_compile::{compile, CompileError, CompileOptions, Netlist};
use vlsi_core::{StagedExecutor, VlsiChip};
use vlsi_prng::Prng;
use vlsi_runtime::{Fifo, JobSpec, Runtime, RuntimeConfig};
use vlsi_topology::{Cluster, Coord};
use vlsi_workloads::netgen;

/// Deterministic input environments for a parsed graph.
fn envs_for(netlist: &Netlist, seed: u64, n: usize) -> Vec<HashMap<String, i64>> {
    let mut rng = Prng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            netlist
                .input_names()
                .into_iter()
                .map(|name| (name.to_string(), i64::from(rng.gen_range(-1000..1000i32))))
                .collect()
        })
        .collect()
}

/// Every corpus graph's compiled placement executes on a clean 32×32
/// chip and matches the netlist evaluator's reference outputs.
#[test]
fn corpus_matches_reference_on_a_clean_chip() {
    let opts = CompileOptions::default();
    for (name, text) in netgen::corpus(2012) {
        let c = compile(&text, &opts).unwrap_or_else(|e| panic!("{name}: {e}"));
        let mut chip = VlsiChip::new(32, 32, Cluster::default());
        let exec = StagedExecutor::deploy(&mut chip, c.program.clone())
            .unwrap_or_else(|e| panic!("{name}: deploy: {e:?}"));
        for env in envs_for(&c.netlist, 7, 3) {
            let (got, _) = exec
                .run(&mut chip, &env)
                .unwrap_or_else(|e| panic!("{name}: run: {e:?}"));
            assert_eq!(got, c.netlist.evaluate(&env), "{name}");
        }
        exec.release(&mut chip).expect("release");
        assert_eq!(chip.free_clusters(), chip.total_clusters());
    }
}

/// Compiling against a defect plan places around the bad clusters, and
/// the *exact compiled regions* deploy and execute correctly on a chip
/// with those defects injected.
#[test]
fn corpus_matches_reference_with_injected_defects() {
    let defects = vec![
        Coord::new(0, 0),
        Coord::new(1, 0),
        Coord::new(3, 2),
        Coord::new(9, 9),
    ];
    let opts = CompileOptions {
        defects: defects.clone(),
        ..CompileOptions::default()
    };
    for (name, text) in netgen::corpus(2012) {
        let c = compile(&text, &opts).unwrap_or_else(|e| panic!("{name}: {e}"));
        for r in &c.placement.regions {
            for cell in r.cells() {
                assert!(
                    !defects.contains(&cell),
                    "{name}: placed on defect {cell:?}"
                );
            }
        }
        let mut chip = VlsiChip::new(32, 32, Cluster::default());
        for &d in &defects {
            chip.mark_defective(d);
        }
        let exec =
            StagedExecutor::deploy_placed(&mut chip, c.program.clone(), &c.placement.regions)
                .unwrap_or_else(|e| panic!("{name}: deploy_placed: {e:?}"));
        for env in envs_for(&c.netlist, 11, 2) {
            let (got, _) = exec
                .run(&mut chip, &env)
                .unwrap_or_else(|e| panic!("{name}: run: {e:?}"));
            assert_eq!(got, c.netlist.evaluate(&env), "{name}");
        }
        exec.release(&mut chip).expect("release");
    }
}

/// Compiled programs ride the runtime as first-class staged jobs: the
/// scheduler admits them, the executor checks every dataset against the
/// attached reference outputs, and all corpus jobs complete.
#[test]
fn corpus_completes_as_runtime_jobs() {
    let opts = CompileOptions::default();
    let chip = VlsiChip::new(32, 32, Cluster::default());
    let mut rt = Runtime::new(chip, Box::new(Fifo), RuntimeConfig::default());
    let corpus = netgen::corpus(2012);
    let n_jobs = corpus.len() as u64;
    for (name, text) in corpus {
        let c = compile(&text, &opts).unwrap_or_else(|e| panic!("{name}: {e}"));
        let datasets = envs_for(&c.netlist, 13, 2);
        let expected = datasets.iter().map(|env| c.netlist.evaluate(env)).collect();
        rt.submit(JobSpec::for_staged(
            name,
            c.program,
            datasets,
            Some(expected),
        ));
    }
    let summary = rt.run_until_idle(100_000).expect("runtime must drain");
    assert_eq!(summary.completed, n_jobs);
    assert_eq!(summary.failed, 0);
}

/// A job whose attached reference outputs disagree with the compiled
/// program is failed by the runtime, not silently completed.
#[test]
fn runtime_rejects_wrong_reference_outputs() {
    let text = "graph g\ninput x\nconst k 2\nnode a mul x k\noutput o a\n";
    let c = compile(text, &CompileOptions::default()).unwrap();
    let chip = VlsiChip::new(8, 8, Cluster::default());
    let mut rt = Runtime::new(chip, Box::new(Fifo), RuntimeConfig::default());
    let env: HashMap<String, i64> = HashMap::from([("x".to_string(), 3)]);
    rt.submit(JobSpec::for_staged(
        "wrong",
        c.program,
        vec![env],
        Some(vec![vec![999]]), // reference says 999; the chip computes 6
    ));
    let summary = rt.run_until_idle(100_000).expect("runtime must drain");
    assert_eq!(summary.completed, 0);
    assert_eq!(summary.failed, 1);
}

/// The bench compile workload — the full corpus compiled and executed
/// on fleet and cluster sinks — produces one byte pattern at 1, 2, and
/// 8 threads (the digest the CI thread-matrix gate compares).
#[test]
fn compile_corpus_digest_is_thread_invariant() {
    let (graphs_1, completed_1, digest_1) = compile_corpus(1);
    assert_eq!(graphs_1, 12);
    assert_eq!(completed_1, 24, "12 graphs on each of two sinks");
    for threads in [2, 8] {
        let (graphs, completed, digest) = compile_corpus(threads);
        assert_eq!(graphs, graphs_1);
        assert_eq!(completed, completed_1);
        assert_eq!(digest, digest_1, "digest diverged at {threads} threads");
    }
}

/// A defect plan dense enough to exclude every placement yields the
/// typed `Unplaceable` error rather than a panic or a bad layout.
#[test]
fn impossible_defect_plans_fail_typed() {
    let text = "graph g\ninput x\ninput y\nnode a add x y\noutput o a\n";
    // A 2×2 die with every cluster defective.
    let opts = CompileOptions {
        chip_width: 2,
        chip_height: 2,
        defects: vec![
            Coord::new(0, 0),
            Coord::new(1, 0),
            Coord::new(0, 1),
            Coord::new(1, 1),
        ],
        ..CompileOptions::default()
    };
    match compile(text, &opts) {
        Err(CompileError::Unplaceable { .. }) => {}
        other => panic!("expected Unplaceable, got {other:?}"),
    }
}

#!/usr/bin/env bash
# The repository's CI gate: formatting, lints as errors, full test suite.
# Everything runs offline — the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== chaos suite (fixed seed matrix: 3 seeds x 3 fault rates)"
cargo test -q --offline --test chaos_transport

echo "== ingest overload chaos (3 seeds x 3 arrival profiles x chip-down storm)"
cargo test -q --offline --test ingest_overload

echo "== cargo test -q"
cargo test -q --workspace --offline

echo "== cargo build --release (warnings are errors)"
RUSTFLAGS="-D warnings" cargo build -q --release --offline --workspace

echo "== bench smoke (one iteration per workload, emitted JSON validates)"
BENCH_SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$BENCH_SMOKE_DIR"' EXIT
./target/release/bench --smoke --out "$BENCH_SMOKE_DIR"
# --check validates the fresh JSONs (cluster, ingest, and compile
# included) and
# compares medians against the committed BENCH_*.json at the repo root.
# The smoke tier gates fatally but with a generous threshold (smoke runs
# are single-iteration and noisy); the full-run tier stays warn-only at
# 0.25 for trend tracking.
./target/release/bench --check "$BENCH_SMOKE_DIR" --baseline . --check-threshold 1.0 --check-fatal

echo "== thread-matrix determinism (bench --digest at 1/2/8 threads, double-run)"
# The digest covers the fleet, sharded-NoC, acceptance, chaos,
# cluster_4x, ingest_open_loop, compile_corpus, soa_sweep, and
# staged_pipeline workloads — the cluster lines gate the inter-chip
# fabric, the ingest lines the admission front door, the compile lines
# pin the compiler's full artifact trail plus its executed output on
# both fleet and cluster sinks, and the staged_pipeline lines pin the
# Fig. 7(d) cross-dataset wavefront's outputs to one byte pattern at
# every thread count.
./target/release/bench --digest "$BENCH_SMOKE_DIR/digest.t1" --threads 1 >/dev/null
./target/release/bench --digest "$BENCH_SMOKE_DIR/digest.t1b" --threads 1 >/dev/null
./target/release/bench --digest "$BENCH_SMOKE_DIR/digest.t2" --threads 2 >/dev/null
./target/release/bench --digest "$BENCH_SMOKE_DIR/digest.t8" --threads 8 >/dev/null
./target/release/bench --digest "$BENCH_SMOKE_DIR/digest.t8b" --threads 8 >/dev/null
cmp "$BENCH_SMOKE_DIR/digest.t1" "$BENCH_SMOKE_DIR/digest.t1b"
cmp "$BENCH_SMOKE_DIR/digest.t8" "$BENCH_SMOKE_DIR/digest.t8b"
cmp "$BENCH_SMOKE_DIR/digest.t1" "$BENCH_SMOKE_DIR/digest.t2"
cmp "$BENCH_SMOKE_DIR/digest.t1" "$BENCH_SMOKE_DIR/digest.t8"

echo "== per-AP vs SoA equivalence (soa_sweep digests must match)"
# The digest file carries one line per path; the region sweep must
# produce byte-identical reports and memory images to the per-AP loop.
perap="$(awk '/^soa_sweep_1024ap digest_perap/ {print $3}' "$BENCH_SMOKE_DIR/digest.t1")"
soa="$(awk '/^soa_sweep_1024ap digest_soa/ {print $3}' "$BENCH_SMOKE_DIR/digest.t1")"
test -n "$perap"
test "$perap" = "$soa"

echo "== sequential vs pipelined equivalence (staged_pipeline digests must match)"
# The pipelined wavefront must drain every dataset to byte-identical
# outputs against the N-sequential-runs walk.
seq="$(awk '/^staged_pipeline digest_seq/ {print $3}' "$BENCH_SMOKE_DIR/digest.t1")"
pipe="$(awk '/^staged_pipeline digest_pipe/ {print $3}' "$BENCH_SMOKE_DIR/digest.t1")"
test -n "$seq"
test "$seq" = "$pipe"
cargo test -q --offline --test parallel_determinism

echo "== telemetry determinism (same seed => byte-identical exports)"
cargo test -q --offline --test telemetry
cargo run -q --offline --example telemetry_trace >/dev/null
cp target/trace.json target/trace.first.json
cp target/telemetry.json target/telemetry.first.json
cargo run -q --offline --example telemetry_trace >/dev/null
cmp target/trace.first.json target/trace.json
cmp target/telemetry.first.json target/telemetry.json

echo "CI green."

#!/usr/bin/env bash
# The repository's CI gate: formatting, lints as errors, full test suite.
# Everything runs offline — the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== chaos suite (fixed seed matrix: 3 seeds x 3 fault rates)"
cargo test -q --offline --test chaos_transport

echo "== cargo test -q"
cargo test -q --workspace --offline

echo "== bench smoke (one iteration per workload, emitted JSON validates)"
cargo build -q --release --offline -p vlsi-bench
BENCH_SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$BENCH_SMOKE_DIR"' EXIT
./target/release/bench --smoke --out "$BENCH_SMOKE_DIR"
./target/release/bench --check "$BENCH_SMOKE_DIR"

echo "== telemetry determinism (same seed => byte-identical exports)"
cargo test -q --offline --test telemetry
cargo run -q --offline --example telemetry_trace >/dev/null
cp target/trace.json target/trace.first.json
cp target/telemetry.json target/telemetry.first.json
cargo run -q --offline --example telemetry_trace >/dev/null
cmp target/trace.first.json target/trace.json
cmp target/telemetry.first.json target/telemetry.json

echo "CI green."

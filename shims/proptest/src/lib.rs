//! # proptest-shim — an offline, deterministic subset of proptest
//!
//! This workspace builds with **no registry access**, so the real
//! `proptest` crate cannot be downloaded. This shim implements the slice
//! of its API the repo's property tests use — the `proptest!` macro with
//! `x in strategy` / `x: Type` parameters, `prop_assert!`/
//! `prop_assert_eq!`, `prop_oneof!`, `Just`, `any::<T>()`,
//! `prop::collection::vec`, `prop::sample::select`, tuple strategies, and
//! `Strategy::prop_map` — on top of the workspace's own SplitMix64
//! generator.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the values bound by
//!   that case (via the normal assert message); it is not minimised.
//! * **Fixed deterministic seeding.** Every test runs
//!   [`CASES`] cases whose seeds derive from the case index alone, so a
//!   failure reproduces on every run and every machine.
//! * **Strategies are sampled, not explored**: ranges draw uniformly.

#![forbid(unsafe_code)]

use vlsi_prng::{Bounded, Prng, UniformSample};

/// Cases each property runs (real proptest defaults to 256; the chip
/// properties here gather/execute on every case, so a smaller count keeps
/// `cargo test` quick while still sweeping each strategy well).
pub const CASES: u64 = 64;

/// The RNG for one test case. Seeds are a function of the case index
/// only: deterministic across runs, machines, and test-order shuffles.
pub fn case_rng(case: u64) -> Prng {
    Prng::seed_from_u64(0x9E3C_A5E5_EED5_EED0 ^ case.wrapping_mul(0xA24B_AED4_963E_E407))
}

// --- Strategy ---------------------------------------------------------------

/// A generator of test-case values (the shim's take on
/// `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of value this strategy yields.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut Prng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_value(&self, rng: &mut Prng) -> V {
        self.0.new_value(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn new_value(&self, rng: &mut Prng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut Prng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    T: UniformSample + Bounded,
{
    type Value = T;
    fn new_value(&self, rng: &mut Prng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    T: UniformSample,
{
    type Value = T;
    fn new_value(&self, rng: &mut Prng) -> T {
        rng.gen_range(self.clone())
    }
}

/// String strategies from a regex subset, matching proptest's
/// `impl Strategy for &str`. Supported: concatenations of literal
/// characters and `[...]` classes (ranges, `\n`/`\t`/`\\`/`\-`/`\]`
/// escapes), each with an optional `{m,n}` / `{n}` / `*` / `+` / `?`
/// quantifier. This covers the patterns used in this workspace's tests.
impl Strategy for &str {
    type Value = String;
    fn new_value(&self, rng: &mut Prng) -> String {
        let atoms = parse_regex_subset(self)
            .unwrap_or_else(|e| panic!("unsupported regex strategy {self:?}: {e}"));
        let mut out = String::new();
        for (class, (lo, hi)) in &atoms {
            let n = rng.gen_range(*lo..=*hi);
            for _ in 0..n {
                let &(a, b) = rng.choose(class).expect("non-empty class");
                let span = b as u32 - a as u32;
                let c = char::from_u32(a as u32 + rng.gen_range(0..=span))
                    .expect("range endpoints are chars");
                out.push(c);
            }
        }
        out
    }
}

type CharClass = Vec<(char, char)>;
type RegexAtom = (CharClass, (usize, usize));

/// Parses the supported regex subset into `(class, (min, max))` atoms.
fn parse_regex_subset(pattern: &str) -> Result<Vec<RegexAtom>, String> {
    let mut atoms: Vec<RegexAtom> = Vec::new();
    let mut chars = pattern.chars().peekable();
    let unescape = |c: char| match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    };
    while let Some(c) = chars.next() {
        let class: CharClass = match c {
            '[' => {
                let mut class = Vec::new();
                loop {
                    let item = match chars.next() {
                        None => return Err("unterminated class".into()),
                        Some(']') => break,
                        Some('\\') => unescape(chars.next().ok_or("dangling escape")?),
                        Some(other) => other,
                    };
                    // A range `a-z`? Only when `-` is not last in class.
                    if chars.peek() == Some(&'-') {
                        let mut ahead = chars.clone();
                        ahead.next(); // the '-'
                        match ahead.peek() {
                            Some(']') | None => {}
                            _ => {
                                chars.next(); // consume '-'
                                let end = match chars.next() {
                                    Some('\\') => unescape(chars.next().ok_or("dangling escape")?),
                                    Some(e) => e,
                                    None => return Err("unterminated range".into()),
                                };
                                if end < item {
                                    return Err(format!("reversed range {item:?}-{end:?}"));
                                }
                                class.push((item, end));
                                continue;
                            }
                        }
                    }
                    class.push((item, item));
                }
                if class.is_empty() {
                    return Err("empty class".into());
                }
                class
            }
            '\\' => {
                let e = unescape(chars.next().ok_or("dangling escape")?);
                vec![(e, e)]
            }
            '.' | '(' | ')' | '|' | '^' | '$' => {
                return Err(format!("unsupported regex operator {c:?}"));
            }
            literal => vec![(literal, literal)],
        };
        // Optional quantifier.
        let reps = match chars.peek() {
            Some('{') => {
                chars.next();
                let body: String = chars.by_ref().take_while(|&c| c != '}').collect();
                let parts: Vec<&str> = body.split(',').collect();
                match parts.as_slice() {
                    [n] => {
                        let n = n.trim().parse::<usize>().map_err(|e| e.to_string())?;
                        (n, n)
                    }
                    [m, n] => (
                        m.trim().parse::<usize>().map_err(|e| e.to_string())?,
                        n.trim().parse::<usize>().map_err(|e| e.to_string())?,
                    ),
                    _ => return Err(format!("bad quantifier {{{body}}}")),
                }
            }
            Some('*') => {
                chars.next();
                (0, 16)
            }
            Some('+') => {
                chars.next();
                (1, 16)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        atoms.push((class, reps));
    }
    Ok(atoms)
}

macro_rules! tuple_strategy {
    ($($s:ident/$i:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut Prng) -> Self::Value {
                ($(self.$i.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A / 0);
tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

/// Uniform choice between boxed alternatives (backs `prop_oneof!`).
pub struct OneOf<V>(pub Vec<BoxedStrategy<V>>);

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn new_value(&self, rng: &mut Prng) -> V {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.gen_range(0..self.0.len());
        self.0[i].new_value(rng)
    }
}

// --- Arbitrary (the `any::<T>()` / `x: Type` path) --------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of the type.
    fn arbitrary(rng: &mut Prng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut Prng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut Prng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy wrapper for [`Arbitrary`] types.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut Prng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// --- prop:: modules ---------------------------------------------------------

/// The `prop::` namespace (`prop::collection`, `prop::sample`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use vlsi_prng::{Prng, SampleRange};

        /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
        pub struct VecStrategy<S, R> {
            elem: S,
            len: R,
        }

        /// `vec(element_strategy, length_range)`.
        pub fn vec<S: Strategy, R: SampleRange<usize>>(elem: S, len: R) -> VecStrategy<S, R> {
            VecStrategy { elem, len }
        }

        impl<S: Strategy, R: SampleRange<usize>> Strategy for VecStrategy<S, R> {
            type Value = Vec<S::Value>;
            fn new_value(&self, rng: &mut Prng) -> Vec<S::Value> {
                let (lo, hi) = self.len.bounds();
                let n = rng.gen_range(lo..=hi);
                (0..n).map(|_| self.elem.new_value(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::Strategy;
        use vlsi_prng::Prng;

        /// Uniform choice from a fixed set of values.
        pub struct Select<T: Clone>(Vec<T>);

        /// `select(values)` — draws uniformly from `values`.
        pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
            assert!(!values.is_empty(), "select() needs at least one value");
            Select(values)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn new_value(&self, rng: &mut Prng) -> T {
                rng.choose(&self.0).expect("non-empty").clone()
            }
        }
    }
}

// --- macros -----------------------------------------------------------------

/// The `proptest!` block: each contained `#[test] fn name(params) { .. }`
/// becomes a zero-argument test that runs [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    () => {};
    ($(#[$attr:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            for __case in 0..$crate::CASES {
                let mut __rng = $crate::case_rng(__case);
                $crate::__proptest_bind!(__rng, $($params)*);
                $body
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Internal: binds one `proptest!` parameter list against an RNG.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident,) => {};
    ($rng:ident, $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::new_value(&($strat), &mut $rng);
    };
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::new_value(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident : $ty:ty) => {
        let $name = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
    };
    ($rng:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
}

/// `prop_assert!` — plain `assert!` (no shrinking to report).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` — plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_assert_ne!` — plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// `prop_oneof![s1, s2, ...]` — uniform choice between the arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Op {
        Push(u64),
        Pop,
    }

    fn ops() -> impl Strategy<Value = Vec<Op>> {
        prop::collection::vec(
            prop_oneof![any::<u64>().prop_map(Op::Push), Just(Op::Pop)],
            1..20,
        )
    }

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 0u16..5, ab in (any::<u8>(), any::<u8>()), v in prop::collection::vec((0usize..4, -3i64..=3), 1..10)) {
            prop_assert!(x < 5);
            let _ = ab;
            for (p, q) in v {
                prop_assert!(p < 4);
                prop_assert!((-3..=3).contains(&q));
            }
        }

        #[test]
        fn oneof_and_select(script in ops(), pick in prop::sample::select(vec![1u8, 3, 5])) {
            prop_assert!(!script.is_empty());
            prop_assert_eq!(pick % 2, 1);
        }

        #[test]
        fn typed_params_draw(seed: u64, flag: bool) {
            // Just exercise the `name: Type` binding path.
            let _ = (seed, flag);
        }
    }

    proptest! {
        #[test]
        fn regex_strategy_generates_matching_text(text in "[ -~\n]{0,200}", word in "ab[0-9]{2}x?") {
            prop_assert!(text.len() <= 200);
            prop_assert!(text.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
            prop_assert!(word.starts_with("ab"));
            let digits: String = word[2..4].to_string();
            prop_assert!(digits.chars().all(|c| c.is_ascii_digit()), "{}", word);
            prop_assert!(word.len() == 4 || (word.len() == 5 && word.ends_with('x')));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let draw = |case| {
            let mut rng = super::case_rng(case);
            ops().new_value(&mut rng)
        };
        assert_eq!(draw(3), draw(3));
        assert_ne!(draw(3), draw(4));
    }
}

//! # criterion-shim — an offline subset of the criterion API
//!
//! The workspace builds with no registry access, so the real `criterion`
//! crate is unavailable. This shim keeps every bench source-compatible:
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group` with `bench_with_input`/`throughput`, `BenchmarkId`,
//! `Bencher::iter`/`iter_batched`, `black_box`, `Throughput`, and
//! `BatchSize`.
//!
//! Measurement is deliberately simple: each benchmark warms up briefly,
//! then runs timed batches until ~`MEASURE_MS` of wall clock is spent,
//! and prints the mean time per iteration (plus throughput when set).
//! There are no statistics, plots, or saved baselines — the benches'
//! value here is (a) the printed ablation tables and (b) their built-in
//! assertions, both of which run fine on wall clock.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget per benchmark, in milliseconds.
const MEASURE_MS: u64 = 200;
/// Warm-up budget per benchmark, in milliseconds.
const WARMUP_MS: u64 = 50;

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortises setup (ignored by the shim's timer; kept
/// for source compatibility).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Exactly one setup per iteration.
    PerIteration,
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("label", param)`.
    pub fn new<P: fmt::Display>(function_id: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// `BenchmarkId::from_parameter(param)`.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything usable as a bench name (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// The per-benchmark timing driver passed to bench closures.
pub struct Bencher {
    /// Total time spent in timed routine calls.
    elapsed: Duration,
    /// Timed routine calls performed.
    iters: u64,
}

impl Bencher {
    fn new() -> Bencher {
        Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        }
    }

    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up, untimed.
        let warm = Instant::now();
        while warm.elapsed() < Duration::from_millis(WARMUP_MS) {
            black_box(routine());
        }
        // Timed batches.
        let budget = Duration::from_millis(MEASURE_MS);
        let start = Instant::now();
        while start.elapsed() < budget {
            let t = Instant::now();
            black_box(routine());
            self.elapsed += t.elapsed();
            self.iters += 1;
        }
    }

    /// Times `routine` on fresh inputs from `setup` (setup is untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm = Instant::now();
        while warm.elapsed() < Duration::from_millis(WARMUP_MS) {
            black_box(routine(setup()));
        }
        let budget = Duration::from_millis(MEASURE_MS);
        let start = Instant::now();
        while start.elapsed() < budget {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.elapsed += t.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.iters == 0 {
            println!("{name:<48} (no timed iterations)");
            return;
        }
        let per_iter = self.elapsed.as_nanos() as f64 / self.iters as f64;
        let mut line = format!("{name:<48} {:>14}/iter", format_ns(per_iter));
        if let Some(t) = throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            let rate = count as f64 / (per_iter / 1e9);
            line.push_str(&format!("   {:>14.0} {unit}/s", rate));
        }
        println!("{line}");
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<N: IntoBenchmarkId, F>(&mut self, id: N, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&name, self.throughput);
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<N: IntoBenchmarkId, I: ?Sized, F>(
        &mut self,
        id: N,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher::new();
        f(&mut b, input);
        b.report(&name, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The top-level benchmark harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(name, None);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }
}

/// `criterion_group!(name, bench_fn, ...)` — a function running each
/// bench fn against a fresh `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// `criterion_main!(group, ...)` — the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut b = Bencher::new();
        b.iter(|| 1 + 1);
        assert!(b.iters > 0);
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("local", 64).to_string(), "local/64");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn group_runs_benches() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(4));
        let mut ran = false;
        g.bench_with_input(BenchmarkId::new("t", 1), &3u64, |b, &x| {
            ran = true;
            b.iter(|| x * 2);
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(format_ns(12.0), "12.0 ns");
        assert_eq!(format_ns(1_500.0), "1.50 µs");
        assert_eq!(format_ns(2_000_000.0), "2.00 ms");
    }
}

//! # vlsi-par — a deterministic static-partition worker pool
//!
//! The execution layer the parallel simulator paths share. The design
//! rule is **determinism first**: there is no work stealing and no
//! scheduler feedback of any kind. Task `i` of an `n`-thread region
//! always runs on worker `i % n`, results are always reduced in task
//! order, and nothing about timing can change *what* is computed — so a
//! run at 8 threads is bit-identical to the same run at 1 thread, which
//! is what the thread-matrix CI gate (`ci.sh`) enforces end to end.
//!
//! The pool is zero-dependency (std only) and persistent: workers are
//! spawned once and parked on a condvar between parallel regions, so a
//! region costs two lock handoffs per worker rather than a thread
//! spawn. That keeps fine-grained regions (the sharded NoC tick) viable
//! while coarse regions (fleet chips, bench seeds) amortise it to
//! nothing.
//!
//! ```
//! use vlsi_par::Pool;
//!
//! let pool = Pool::new(4);
//! // Results come back in task order no matter which worker ran what.
//! let squares = pool.map(8, |i| (i as u64) * (i as u64));
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```
//!
//! ## Safety model
//!
//! The one `unsafe` corner is lifetime erasure of the region closure:
//! [`Pool::run`] publishes `&dyn Fn(usize)` to the workers as a raw
//! pointer and **does not return until every worker has finished its
//! share** (the `running` count reaches zero under the pool mutex), so
//! the borrow strictly outlives every dereference. Workers never touch
//! the pointer outside the epoch window that published it.
//!
//! Re-entrant regions (a task calling back into the pool) execute
//! inline on the calling thread — deterministic and deadlock-free, so
//! e.g. a fleet chip whose NoC is also pool-attached degrades to a
//! serial NoC tick instead of wedging the pool.

#![deny(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

thread_local! {
    /// Whether the current thread is already inside a pool region.
    static IN_REGION: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// A region closure, lifetime-erased for the worker mailbox. Only ever
/// dereferenced between an epoch publish and the matching `running == 0`
/// acknowledgement, while the original borrow is pinned by [`Pool::run`].
#[derive(Clone, Copy)]
struct TaskRef(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from any thread are fine)
// and the pointer is only dereferenced inside the region window during
// which `Pool::run` keeps the referent alive and borrowed.
unsafe impl Send for TaskRef {}

struct State {
    /// Region counter; workers run at most one share per epoch.
    epoch: u64,
    /// The published region closure, `None` between regions.
    task: Option<TaskRef>,
    /// Number of tasks in the current region.
    tasks: usize,
    /// Workers still executing the current region.
    running: usize,
    /// A worker share panicked; the leader re-panics after the barrier.
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signals workers that a new epoch (or shutdown) is available.
    start: Condvar,
    /// Signals the leader that `running` reached zero.
    done: Condvar,
}

struct Inner {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

/// A deterministic static-partition worker pool.
///
/// `Pool::new(1)` (or [`Pool::serial`]) spawns no threads and runs every
/// region inline — the serial baseline the parallel runs must match
/// bit for bit.
pub struct Pool {
    inner: Option<Inner>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads())
            .finish()
    }
}

impl Pool {
    /// A pool of `threads` executors (the caller's thread counts as one:
    /// `threads - 1` workers are spawned). `threads <= 1` yields the
    /// inline serial pool.
    pub fn new(threads: usize) -> Arc<Pool> {
        if threads <= 1 {
            return Arc::new(Pool { inner: None });
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                task: None,
                tasks: 0,
                running: 0,
                panicked: false,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("vlsi-par-{w}"))
                    .spawn(move || worker_loop(&shared, w, threads))
                    .expect("spawn pool worker")
            })
            .collect();
        Arc::new(Pool {
            inner: Some(Inner {
                shared,
                workers,
                threads,
            }),
        })
    }

    /// The inline serial pool: no threads, every region runs on the
    /// caller. Bit-identical to any thread count by construction.
    pub fn serial() -> Arc<Pool> {
        Pool::new(1)
    }

    /// Executor count (including the calling thread).
    pub fn threads(&self) -> usize {
        self.inner.as_ref().map_or(1, |i| i.threads)
    }

    /// Runs `f(0), f(1), …, f(tasks - 1)` across the pool and returns
    /// once all have finished. Task `i` runs on executor `i % threads` —
    /// a fixed assignment, so the partition never depends on timing.
    /// Tasks must confine their effects to per-task state; reduce in
    /// task order afterwards for a deterministic result.
    ///
    /// Calls from inside a pool task run inline on the calling thread.
    pub fn run(&self, tasks: usize, f: &(dyn Fn(usize) + Sync)) {
        if tasks == 0 {
            return;
        }
        let inline = self.inner.is_none() || tasks == 1 || IN_REGION.with(|r| r.get());
        if inline {
            for i in 0..tasks {
                f(i);
            }
            return;
        }
        let inner = self.inner.as_ref().expect("checked above");
        let n = inner.threads;
        // SAFETY: see the module docs — the erased borrow is pinned for
        // the whole region because this function blocks on `running == 0`
        // before returning (or unwinding past the barrier).
        let task = TaskRef(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        });
        {
            let mut st = inner.shared.state.lock().unwrap();
            debug_assert!(st.task.is_none(), "pool regions never overlap");
            st.task = Some(task);
            st.tasks = tasks;
            st.running = n - 1;
            st.panicked = false;
            st.epoch += 1;
            inner.shared.start.notify_all();
        }
        // The leader is executor 0 and runs its own share.
        IN_REGION.with(|r| r.set(true));
        let leader = catch_unwind(AssertUnwindSafe(|| {
            let mut i = 0;
            while i < tasks {
                f(i);
                i += n;
            }
        }));
        IN_REGION.with(|r| r.set(false));
        let mut st = inner.shared.state.lock().unwrap();
        while st.running > 0 {
            st = inner.shared.done.wait(st).unwrap();
        }
        st.task = None;
        let worker_panicked = st.panicked;
        drop(st);
        if let Err(p) = leader {
            std::panic::resume_unwind(p);
        }
        if worker_panicked {
            panic!("a pool task panicked on a worker thread");
        }
    }

    /// [`Pool::run`] with collected results, returned **in task order**
    /// regardless of which executor produced them.
    pub fn map<R, F>(&self, tasks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let slots: Vec<Mutex<Option<R>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
        self.run(tasks, &|i| {
            *slots[i].lock().unwrap() = Some(f(i));
        });
        slots
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("every task ran"))
            .collect()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        {
            let mut st = inner.shared.state.lock().unwrap();
            st.shutdown = true;
            inner.shared.start.notify_all();
        }
        for w in inner.workers {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared, index: usize, threads: usize) {
    IN_REGION.with(|r| r.set(true));
    let mut seen = 0u64;
    loop {
        let (task, tasks, epoch) = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    if let Some(t) = st.task {
                        break (t, st.tasks, st.epoch);
                    }
                }
                st = shared.start.wait(st).unwrap();
            }
        };
        seen = epoch;
        // SAFETY: the leader pins the referent until `running == 0`,
        // which we only signal after this dereference window closes.
        let f = unsafe { &*task.0 };
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut i = index;
            while i < tasks {
                f(i);
                i += threads;
            }
        }));
        let mut st = shared.state.lock().unwrap();
        if result.is_err() {
            st.panicked = true;
        }
        st.running -= 1;
        if st.running == 0 {
            shared.done.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn map_results_come_back_in_task_order() {
        for threads in [1, 2, 3, 8] {
            let pool = Pool::new(threads);
            let out = pool.map(37, |i| i * 3);
            assert_eq!(out, (0..37).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn serial_pool_runs_inline() {
        let pool = Pool::serial();
        assert_eq!(pool.threads(), 1);
        let main_id = std::thread::current().id();
        pool.run(4, &|_| assert_eq!(std::thread::current().id(), main_id));
    }

    #[test]
    fn effects_land_regardless_of_thread_count() {
        for threads in [1, 2, 8] {
            let pool = Pool::new(threads);
            let total = AtomicU64::new(0);
            pool.run(100, &|i| {
                total.fetch_add(i as u64, Ordering::Relaxed);
            });
            assert_eq!(total.load(Ordering::Relaxed), 4950);
        }
    }

    #[test]
    fn reentrant_regions_run_inline_and_complete() {
        let pool = Pool::new(4);
        let out = pool.map(4, |i| {
            // A task fanning out again must not deadlock the pool.
            pool.map(3, |j| i * 10 + j)
        });
        assert_eq!(out[2], vec![20, 21, 22]);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn empty_and_single_task_regions() {
        let pool = Pool::new(4);
        pool.run(0, &|_| panic!("no tasks to run"));
        assert_eq!(pool.map(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn many_regions_reuse_the_workers() {
        let pool = Pool::new(4);
        let mut acc = 0u64;
        for round in 0..200u64 {
            let v = pool.map(8, |i| round * 8 + i as u64);
            acc += v.iter().sum::<u64>();
        }
        let expect: u64 = (0..1600u64).sum();
        assert_eq!(acc, expect);
    }

    #[test]
    fn worker_panic_propagates_to_the_leader() {
        let pool = Pool::new(4);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, &|i| {
                // Task 1 lands on worker 1 (fixed assignment), so the
                // panic crosses a thread boundary.
                assert_ne!(i, 1, "boom");
            });
        }));
        assert!(r.is_err());
        // The pool survives and serves later regions.
        assert_eq!(pool.map(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = Pool::new(8);
        pool.run(8, &|_| {});
        drop(pool); // must not hang or leak
    }
}

//! Property-based tests for the dynamic CSD network.

use proptest::prelude::*;
use vlsi_csd::{CsdError, CsdSimulator, DynamicCsd, ProtocolSim};

/// A random mixed script of connects, disconnects, and stack shifts.
#[derive(Clone, Debug)]
enum Action {
    Connect(usize, usize),
    DisconnectNth(usize),
    Shift,
}

fn actions(n_pos: usize) -> impl Strategy<Value = Vec<Action>> {
    prop::collection::vec(
        prop_oneof![
            ((0..n_pos), (0..n_pos)).prop_map(|(a, b)| Action::Connect(a, b)),
            (0usize..8).prop_map(Action::DisconnectNth),
            Just(Action::Shift),
        ],
        1..60,
    )
}

proptest! {
    /// After any script of operations, the network's segment-ownership
    /// invariants hold: live routes own exactly their spans, dead routes
    /// own nothing.
    #[test]
    fn invariants_hold_under_any_script(script in actions(12)) {
        let mut net = DynamicCsd::new(12, 4);
        let mut live = Vec::new();
        for a in script {
            match a {
                Action::Connect(s, k) => {
                    if let Ok(r) = net.connect(s, k) {
                        live.push(r);
                    }
                }
                Action::DisconnectNth(i) => {
                    if !live.is_empty() {
                        let r = live.remove(i % live.len());
                        net.disconnect(r).unwrap();
                    }
                }
                Action::Shift => {
                    let evicted = net.stack_shift();
                    live.retain(|r| !evicted.iter().any(|e| e.id == *r));
                }
            }
            net.check_invariants().unwrap();
            prop_assert_eq!(net.live_routes(), live.len());
        }
    }

    /// No two live routes ever share a segment: for each channel, spans of
    /// routes granted on it are pairwise disjoint.
    #[test]
    fn grants_are_exclusive(pairs in prop::collection::vec((0usize..16, 0usize..16), 1..40)) {
        let mut net = DynamicCsd::new(16, 5);
        for (s, k) in pairs {
            let _ = net.connect(s, k);
        }
        let routes: Vec<_> = net.routes().cloned().collect();
        for (i, a) in routes.iter().enumerate() {
            for b in routes.iter().skip(i + 1) {
                if a.channel == b.channel {
                    let (alo, ahi) = a.span();
                    let (blo, bhi) = b.span();
                    prop_assert!(
                        ahi <= blo || bhi <= alo,
                        "routes {:?} and {:?} overlap on {}", a, b, a.channel
                    );
                }
            }
        }
    }

    /// The cycle-level protocol and the atomic allocator always agree on
    /// success/failure and on the granted channel.
    #[test]
    fn protocol_agrees_with_allocator(pairs in prop::collection::vec((0usize..10, 0usize..10), 1..30)) {
        // Run the same request sequence through both paths side by side.
        let mut atomic = DynamicCsd::new(10, 3);
        let mut stepped = DynamicCsd::new(10, 3);
        for (s, k) in pairs {
            let a = atomic.connect(s, k);
            let p = ProtocolSim::new(&mut stepped).handshake(s, k);
            match (a, p.route) {
                (Ok(ra), Ok(rp)) => {
                    prop_assert_eq!(
                        atomic.route(ra).unwrap().channel,
                        stepped.route(rp).unwrap().channel
                    );
                }
                (Err(ea), Err(ep)) => {
                    // Zero-span/bad-position short-circuit differently in the
                    // protocol (empty survivor list), so compare the class.
                    match (ea, ep) {
                        (CsdError::NoChannelAvailable { .. }, CsdError::NoChannelAvailable { .. }) => {}
                        (x, y) => prop_assert_eq!(x, y),
                    }
                }
                (a, p) => prop_assert!(false, "disagreement: atomic={a:?} protocol={p:?}"),
            }
        }
    }

    /// Channel usage never exceeds the provisioned channel count, and with
    /// N channels a one-source datapath is always routable. The paper's
    /// stronger claim — N channels are never all used — holds from N = 8
    /// up (a 4-object array can consume all 4 channels with overlapping
    /// spans, which the paper's 16-object-and-up sweep never sees).
    #[test]
    fn n_channels_always_route(seed: u64, n in 4usize..64) {
        let sim = CsdSimulator::new(n, n);
        let wl = vlsi_csd::sim::LocalityWorkload { n_objects: n, locality: 0.0, seed };
        let u = sim.run(&wl.generate());
        prop_assert_eq!(u.rejected, 0);
        prop_assert!(u.used_channels <= n);
        if n >= 8 {
            prop_assert!(u.used_channels < n, "all {n} channels used");
        }
    }

    /// Disconnecting everything returns the network to pristine state.
    #[test]
    fn full_teardown_restores_capacity(pairs in prop::collection::vec((0usize..12, 0usize..12), 1..30)) {
        let mut net = DynamicCsd::new(12, 4);
        let mut live = Vec::new();
        for (s, k) in pairs {
            if let Ok(r) = net.connect(s, k) {
                live.push(r);
            }
        }
        for r in live {
            net.disconnect(r).unwrap();
        }
        prop_assert_eq!(net.used_channels(), 0);
        prop_assert_eq!(net.segment_utilization(), 0.0);
        // The longest possible route is allocatable again.
        prop_assert!(net.connect(0, 11).is_ok());
    }
}

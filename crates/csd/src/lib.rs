//! # vlsi-csd — the dynamic channel-segmentation-distribution network
//!
//! The adaptive processor chains objects over a global interconnection
//! network. A flat global network scales linearly in channel count with the
//! number of physical objects, which only works for small arrays (§2.6).
//! The paper's remedy is **channel segmentation distribution** (CSD): run a
//! *constant* number of channels along the linear array and segment every
//! channel at every hop, so disjoint spans of one channel can carry
//! different communications simultaneously.
//!
//! The **dynamic** CSD network (§2.6.2, Figure 2) allocates channels at run
//! time with a pure hardware handshake:
//!
//! 1. the **source** object broadcasts a request on every channel; the
//!    request propagates through request-network segments whose default
//!    state is *chained*, but is blocked by segments already consumed by
//!    other communications;
//! 2. the **sink** object's **priority encoder** picks one surviving
//!    channel and raises a grant;
//! 3. the grant is stored in a **memory cell** which (a) *unchains* the
//!    request network at the span boundary so later requests do not leak
//!    through, and (b) gates data from the channel into the sink;
//! 4. the grant travels back to the source as the acknowledgement.
//!
//! [`network::DynamicCsd`] is the allocation-level model (who owns which
//! segments) and [`protocol`] is the cycle-level handshake simulation of
//! Figure 2. [`sim`] is the functional simulator behind Figure 3: it
//! measures how many channels a random datapath with a given locality
//! actually consumes.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod channel;
pub mod error;
pub mod network;
pub mod protocol;
pub mod sim;

pub use channel::{ChannelId, Position, RouteId};
pub use error::CsdError;
pub use network::{DynamicCsd, Route, SegmentFaultOutcome};
pub use protocol::{HandshakeEvent, HandshakeOutcome, ProtocolSim};
pub use sim::{ChannelUsage, CsdSimulator};

//! The functional CSD simulator behind Figure 3.
//!
//! §2.6.2: "We developed a functional CSD simulator for the evaluation.
//! Figure 3 shows the evaluation results of a one-source model …, and how
//! many channels are used in a random datapath configuration. … A random
//! request of a sink object and a locality based request of a source object
//! were used. Regarding the source object ID, the preceding sink object ID
//! and an offset are used, and therefore by controlling the offset we can
//! generate a random configuration with the locality."
//!
//! [`LocalityWorkload`] reproduces exactly that generator: sink IDs are
//! uniform-random; each source ID is the *previous element's sink ID plus a
//! random offset* whose magnitude is controlled by a locality parameter
//! (locality 1.0 ⇒ offset ≈ 0, locality 0.0 ⇒ offset spans the whole
//! array). [`CsdSimulator`] configures the resulting datapath on a
//! [`DynamicCsd`] and reports the Figure 3 metric — the number of channels
//! used — plus routability statistics.

use crate::channel::Position;
use crate::network::DynamicCsd;
use vlsi_prng::Prng;

/// One chaining request of the one-source model: connect the object at
/// `source` to the object at `sink`.
pub type Request = (Position, Position);

/// Generator for the paper's locality-controlled random datapath.
#[derive(Clone, Debug)]
pub struct LocalityWorkload {
    /// Number of objects (and positions) in the array.
    pub n_objects: usize,
    /// Locality in `[0, 1]`: 1.0 keeps every source adjacent to the
    /// preceding sink (offset ≈ 0); 0.0 draws offsets across the whole
    /// array (fully random configuration).
    pub locality: f64,
    /// RNG seed, for reproducibility.
    pub seed: u64,
}

impl LocalityWorkload {
    /// Generates the chaining requests for one datapath configuration.
    ///
    /// Produces `n_objects` elements (every element requests one sink,
    /// matching "a random datapath configuration" over the array). Sink IDs
    /// are uniform-random; the source ID of each element is its preceding
    /// sink ID plus a locality-bounded random offset ("the preceding sink
    /// object ID and an offset are used", §2.6.2) — the sink immediately
    /// preceding the source in the dependency chain, i.e. the producer it
    /// reads from. At locality 1.0 the offset is zero, so source == sink
    /// ("a higher locality takes a very small number or is equal to zero")
    /// and the request needs no channel at all; the simulator skips it.
    pub fn generate(&self) -> Vec<Request> {
        let n = self.n_objects;
        assert!(n >= 2, "need at least two objects to chain");
        let mut rng = Prng::seed_from_u64(self.seed);
        // Maximum |offset| the locality allows. locality 1 -> 0 hops;
        // locality 0 -> anywhere in the array.
        let max_off = ((1.0 - self.locality.clamp(0.0, 1.0)) * (n - 1) as f64).round() as i64;
        let mut requests = Vec::with_capacity(n);
        for _ in 0..n {
            let sink = rng.gen_range(0..n as i64);
            let off = if max_off == 0 {
                0
            } else {
                rng.gen_range(-max_off..=max_off)
            };
            // Source = the sink's preceding object ID + offset, clamped
            // onto the array.
            let source = (sink + off).clamp(0, n as i64 - 1);
            requests.push((source as Position, sink as Position));
        }
        requests
    }

    /// Generates chaining requests for the **two-source model**: every
    /// element draws *two* independent locality-bounded sources for its
    /// sink (the model the paper mentions alongside Figure 3's one-source
    /// results). Produces `2 · n_objects` point-to-point requests.
    pub fn generate_two_source(&self) -> Vec<Request> {
        let n = self.n_objects;
        assert!(n >= 2, "need at least two objects to chain");
        let mut rng = Prng::seed_from_u64(self.seed.wrapping_add(0x2507));
        let max_off = ((1.0 - self.locality.clamp(0.0, 1.0)) * (n - 1) as f64).round() as i64;
        let mut requests = Vec::with_capacity(2 * n);
        for _ in 0..n {
            let sink = rng.gen_range(0..n as i64);
            for _ in 0..2 {
                let off = if max_off == 0 {
                    0
                } else {
                    rng.gen_range(-max_off..=max_off)
                };
                let source = (sink + off).clamp(0, n as i64 - 1);
                requests.push((source as Position, sink as Position));
            }
        }
        requests
    }

    /// Generates **fan-out** requests: each of `n_objects` sources
    /// broadcasts to `fanout` locality-bounded sinks, consuming one
    /// channel spanning them all ("the necessity of a fan-out (broadcast)
    /// requires more channels, i.e., up to `N_object` channels", §2.6.2).
    pub fn generate_fanout(&self, fanout: usize) -> Vec<(Position, Vec<Position>)> {
        let n = self.n_objects;
        assert!(n >= 2 && fanout >= 1);
        let mut rng = Prng::seed_from_u64(self.seed.wrapping_add(0xFA0));
        let max_off = ((1.0 - self.locality.clamp(0.0, 1.0)) * (n - 1) as f64).round() as i64;
        (0..n)
            .map(|_| {
                let source = rng.gen_range(0..n as i64);
                let sinks = (0..fanout)
                    .map(|_| {
                        let off = if max_off == 0 {
                            0
                        } else {
                            rng.gen_range(-max_off..=max_off)
                        };
                        (source + off).clamp(0, n as i64 - 1) as Position
                    })
                    .filter(|&s| s != source as Position)
                    .collect();
                (source as Position, sinks)
            })
            .collect()
    }

    /// The mean request span in hops — the measured locality of a generated
    /// workload (lower = more local). Useful as an x-axis that does not
    /// depend on the generator's internal parameterisation.
    pub fn mean_span(requests: &[Request]) -> f64 {
        if requests.is_empty() {
            return 0.0;
        }
        let total: usize = requests.iter().map(|&(s, k)| s.max(k) - s.min(k)).sum();
        total as f64 / requests.len() as f64
    }
}

/// Channel-usage statistics of one configured datapath.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct ChannelUsage {
    /// Channels in use once the whole datapath is configured (Figure 3's
    /// y-axis).
    pub used_channels: usize,
    /// Requests that found no channel (routability failures).
    pub rejected: usize,
    /// Requests successfully granted.
    pub granted: usize,
    /// Requests skipped because source == sink.
    pub zero_span: usize,
    /// Mean hop span of granted routes.
    pub mean_span: f64,
    /// Fraction of all channel segments occupied.
    pub segment_utilization: f64,
}

/// Functional simulator: configures a datapath on a fresh dynamic CSD
/// network and measures channel consumption.
#[derive(Clone, Debug)]
pub struct CsdSimulator {
    /// Objects along the array.
    pub n_objects: usize,
    /// Channels provisioned in the network.
    pub n_channels: usize,
}

impl CsdSimulator {
    /// A simulator for `n_objects` positions and `n_channels` channels.
    pub fn new(n_objects: usize, n_channels: usize) -> CsdSimulator {
        CsdSimulator {
            n_objects,
            n_channels,
        }
    }

    /// Configures the given requests on a fresh network; all routes stay
    /// live (a fully configured streaming datapath), so the result reports
    /// the peak channel requirement.
    pub fn run(&self, requests: &[Request]) -> ChannelUsage {
        let mut net = DynamicCsd::new(self.n_objects, self.n_channels);
        let mut usage = ChannelUsage::default();
        let mut span_total = 0usize;
        for &(source, sink) in requests {
            if source == sink {
                usage.zero_span += 1;
                continue;
            }
            match net.connect(source, sink) {
                Ok(_) => {
                    usage.granted += 1;
                    span_total += source.max(sink) - source.min(sink);
                }
                Err(_) => usage.rejected += 1,
            }
        }
        usage.used_channels = net.used_channels();
        usage.mean_span = if usage.granted > 0 {
            span_total as f64 / usage.granted as f64
        } else {
            0.0
        };
        usage.segment_utilization = net.segment_utilization();
        usage
    }

    /// Configures fan-out requests (one channel per broadcast set) on a
    /// fresh network.
    pub fn run_fanout(&self, requests: &[(Position, Vec<Position>)]) -> ChannelUsage {
        let mut net = DynamicCsd::new(self.n_objects, self.n_channels);
        let mut usage = ChannelUsage::default();
        let mut span_total = 0usize;
        for (source, sinks) in requests {
            if sinks.is_empty() {
                usage.zero_span += 1;
                continue;
            }
            match net.connect_fanout(*source, sinks) {
                Ok(r) => {
                    usage.granted += 1;
                    span_total += net.route(r).map(|r| r.hops()).unwrap_or(0);
                }
                Err(crate::CsdError::ZeroSpan(_)) => usage.zero_span += 1,
                Err(_) => usage.rejected += 1,
            }
        }
        usage.used_channels = net.used_channels();
        usage.mean_span = if usage.granted > 0 {
            span_total as f64 / usage.granted as f64
        } else {
            0.0
        };
        usage.segment_utilization = net.segment_utilization();
        usage
    }

    /// One sweep point with its seed-to-seed spread: `(mean usage, min
    /// used channels, max used channels)` over `runs` seeds. The spread
    /// is the error bar the paper's Figure 3 omits.
    pub fn sweep_point_spread(
        &self,
        locality: f64,
        runs: usize,
        seed: u64,
    ) -> (ChannelUsage, usize, usize) {
        let mut min_used = usize::MAX;
        let mut max_used = 0usize;
        for i in 0..runs {
            let wl = LocalityWorkload {
                n_objects: self.n_objects,
                locality,
                seed: seed
                    .wrapping_add(i as u64)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15),
            };
            let u = self.run(&wl.generate());
            min_used = min_used.min(u.used_channels);
            max_used = max_used.max(u.used_channels);
        }
        (
            self.sweep_point(locality, runs, seed),
            if runs == 0 { 0 } else { min_used },
            max_used,
        )
    }

    /// Runs `runs` random datapaths at the given locality and averages the
    /// channel usage — one point of a Figure 3 curve.
    pub fn sweep_point(&self, locality: f64, runs: usize, seed: u64) -> ChannelUsage {
        let mut acc = ChannelUsage::default();
        for i in 0..runs {
            let wl = LocalityWorkload {
                n_objects: self.n_objects,
                locality,
                seed: seed
                    .wrapping_add(i as u64)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15),
            };
            let u = self.run(&wl.generate());
            acc.used_channels += u.used_channels;
            acc.rejected += u.rejected;
            acc.granted += u.granted;
            acc.zero_span += u.zero_span;
            acc.mean_span += u.mean_span;
            acc.segment_utilization += u.segment_utilization;
        }
        let n = runs.max(1) as f64;
        ChannelUsage {
            used_channels: (acc.used_channels as f64 / n).round() as usize,
            rejected: acc.rejected,
            granted: acc.granted,
            zero_span: acc.zero_span,
            mean_span: acc.mean_span / n,
            segment_utilization: acc.segment_utilization / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_per_seed() {
        let wl = LocalityWorkload {
            n_objects: 32,
            locality: 0.5,
            seed: 7,
        };
        assert_eq!(wl.generate(), wl.generate());
        let other = LocalityWorkload { seed: 8, ..wl };
        assert_ne!(wl.generate(), other.generate());
    }

    #[test]
    fn full_locality_makes_offsets_zero() {
        let wl = LocalityWorkload {
            n_objects: 64,
            locality: 1.0,
            seed: 3,
        };
        // With locality 1.0 the offset is always 0 ("a higher locality
        // takes a very small number or is equal to zero"): source == sink.
        for (s, k) in wl.generate() {
            assert_eq!(s, k);
        }
    }

    #[test]
    fn high_locality_uses_fewer_channels_than_random() {
        let sim = CsdSimulator::new(64, 64);
        let local = sim.sweep_point(0.9, 20, 11);
        let random = sim.sweep_point(0.0, 20, 11);
        assert!(
            local.used_channels < random.used_channels,
            "local {} !< random {}",
            local.used_channels,
            random.used_channels
        );
    }

    #[test]
    fn random_datapath_needs_at_most_half_the_channels() {
        // The paper's headline: "Nobject channels were not used, and
        // Nobject/2 channels are sufficient for the random datapath."
        for &n in &[16usize, 32, 64] {
            let sim = CsdSimulator::new(n, n);
            let u = sim.sweep_point(0.0, 30, 42);
            assert!(
                u.used_channels <= n / 2 + n / 8,
                "N={n}: used {} channels, expected ≈ N/2",
                u.used_channels
            );
            assert_eq!(u.rejected, 0, "N channels must always be routable");
        }
    }

    #[test]
    fn under_provisioned_network_rejects() {
        let sim = CsdSimulator::new(64, 2);
        let u = sim.sweep_point(0.0, 10, 5);
        assert!(u.rejected > 0);
    }

    #[test]
    fn mean_span_tracks_locality() {
        let sim = CsdSimulator::new(128, 128);
        let tight = sim.sweep_point(1.0, 10, 1);
        let loose = sim.sweep_point(0.0, 10, 1);
        assert!(tight.mean_span < loose.mean_span);
    }

    #[test]
    fn zero_span_requests_are_skipped() {
        let sim = CsdSimulator::new(8, 8);
        let u = sim.run(&[(3, 3), (1, 2)]);
        assert_eq!(u.zero_span, 1);
        assert_eq!(u.granted, 1);
    }

    #[test]
    fn spread_brackets_the_mean() {
        let sim = CsdSimulator::new(32, 32);
        let (mean, lo, hi) = sim.sweep_point_spread(0.3, 15, 4);
        assert!(lo <= mean.used_channels);
        assert!(mean.used_channels <= hi);
        assert!(hi <= 32);
    }

    #[test]
    fn two_source_model_uses_more_channels() {
        let n = 64usize;
        let sim = CsdSimulator::new(n, n);
        let wl = LocalityWorkload {
            n_objects: n,
            locality: 0.3,
            seed: 5,
        };
        let one = sim.run(&wl.generate());
        let two = sim.run(&wl.generate_two_source());
        assert!(
            two.used_channels > one.used_channels,
            "two-source {} !> one-source {}",
            two.used_channels,
            one.used_channels
        );
    }

    #[test]
    fn two_source_generates_two_requests_per_sink() {
        let wl = LocalityWorkload {
            n_objects: 16,
            locality: 0.5,
            seed: 1,
        };
        assert_eq!(wl.generate_two_source().len(), 32);
    }

    #[test]
    fn fanout_consumes_toward_n_channels() {
        // §2.6.2: broadcast needs more channels, up to N_object.
        let n = 64usize;
        let sim = CsdSimulator::new(n, n);
        let wl = LocalityWorkload {
            n_objects: n,
            locality: 0.0,
            seed: 9,
        };
        let narrow = sim.run_fanout(&wl.generate_fanout(1));
        let wide = sim.run_fanout(&wl.generate_fanout(6));
        assert!(wide.used_channels > narrow.used_channels);
        assert!(wide.used_channels <= n);
        // Wide broadcasts span more hops on average.
        assert!(wide.mean_span > narrow.mean_span);
    }

    #[test]
    fn fanout_generator_excludes_self_sinks() {
        let wl = LocalityWorkload {
            n_objects: 16,
            locality: 0.0,
            seed: 2,
        };
        for (source, sinks) in wl.generate_fanout(4) {
            assert!(!sinks.contains(&source));
        }
    }
}

//! Allocation-level model of the dynamic CSD network.
//!
//! [`DynamicCsd`] tracks which route owns which single-hop segments of which
//! channel. `connect` performs what the Figure 2 hardware does in three
//! cycles — request broadcast, priority encode, grant/ack — as one atomic
//! allocation: scan the channels in priority order (lowest index first, the
//! priority encoder of the sink) and take the first one whose segments over
//! the requested span are all free.
//!
//! Fan-out ("the necessity of a fan-out (broadcast) requires more channels,
//! i.e., up to `N_object` channels", §2.6.2) is a single allocation whose
//! span covers the source and *all* sinks.
//!
//! Stack shifts (§2.4) move every object one slot toward the bottom; the
//! network supports them by shifting segment ownership the same way
//! ("This approach is capable of stack-shifting from the top to the bottom
//! of the stack"). Routes pushed off the bottom of the array are torn down
//! and reported, mirroring the eviction of their objects.

use crate::channel::{ChannelId, ChannelSegments, Position, RouteId};
use crate::error::CsdError;
use std::collections::HashMap;
use vlsi_telemetry::TelemetryHandle;

/// A live communication on the network.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Route {
    /// This route's identifier.
    pub id: RouteId,
    /// The granted channel.
    pub channel: ChannelId,
    /// Source object position.
    pub source: Position,
    /// Sink object positions (one for point-to-point, several for fan-out).
    pub sinks: Vec<Position>,
}

/// What became of a route whose channel lost a segment underneath it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SegmentFaultOutcome {
    /// The victim was moved — same span, same ID — onto another channel
    /// with a healthy free span (the priority encoder re-ran for it).
    Rechained {
        /// The affected route (still live).
        route: RouteId,
        /// The channel it was riding when the segment failed.
        from: ChannelId,
        /// The channel now carrying it.
        to: ChannelId,
    },
    /// Every other channel was occupied or broken over the span: the
    /// route was torn down. The typed degradation result — the caller
    /// (an AP pipeline or the runtime) decides whether to retry, shrink,
    /// or fail the dependent computation.
    Unroutable {
        /// The torn-down route.
        route: Route,
    },
}

impl Route {
    /// Segment span `[lo, hi)` consumed on the channel.
    pub fn span(&self) -> (Position, Position) {
        let lo = self
            .sinks
            .iter()
            .copied()
            .chain([self.source])
            .min()
            .expect("route has at least a source");
        let hi = self
            .sinks
            .iter()
            .copied()
            .chain([self.source])
            .max()
            .expect("route has at least a source");
        (lo, hi)
    }

    /// Manhattan span length in hops.
    pub fn hops(&self) -> usize {
        let (lo, hi) = self.span();
        hi - lo
    }
}

/// The dynamic CSD network of one adaptive processor.
///
/// ```
/// use vlsi_csd::DynamicCsd;
///
/// // 8 objects, 2 channels.
/// let mut net = DynamicCsd::new(8, 2);
/// // Two disjoint spans share channel 0; an overlapping span takes 1.
/// let a = net.connect(0, 3).unwrap();
/// let b = net.connect(5, 7).unwrap();
/// let c = net.connect(2, 6).unwrap();
/// assert_eq!(net.route(a).unwrap().channel, net.route(b).unwrap().channel);
/// assert_ne!(net.route(a).unwrap().channel, net.route(c).unwrap().channel);
/// assert_eq!(net.used_channels(), 2);
/// // Releasing a route re-chains its segments for reuse.
/// net.disconnect(a).unwrap();
/// assert!(net.connect(1, 2).is_ok());
/// ```
#[derive(Clone, Debug)]
pub struct DynamicCsd {
    n_positions: usize,
    channels: Vec<ChannelSegments>,
    routes: HashMap<RouteId, Route>,
    next_route: u32,
    grants: u64,
    rejections: u64,
    segment_faults: u64,
    rechains: u64,
    /// Observability sink; the default handle is a no-op.
    telemetry: TelemetryHandle,
}

impl DynamicCsd {
    /// A network for `n_positions` objects and `n_channels` channels
    /// (telemetry disabled).
    pub fn new(n_positions: usize, n_channels: usize) -> DynamicCsd {
        DynamicCsd::with_telemetry(n_positions, n_channels, TelemetryHandle::disabled())
    }

    /// A network recording into `telemetry`: `csd.*` counters (chains,
    /// unchains, rejections, segment faults, re-chains), the
    /// `csd.rechain_span` histogram (hop span re-granted per re-chain —
    /// the allocation-level cost of a repair), and the `csd.occupancy`
    /// gauge (segments currently claimed).
    pub fn with_telemetry(
        n_positions: usize,
        n_channels: usize,
        telemetry: TelemetryHandle,
    ) -> DynamicCsd {
        DynamicCsd {
            n_positions,
            channels: (0..n_channels)
                .map(|_| ChannelSegments::new(n_positions))
                .collect(),
            routes: HashMap::new(),
            next_route: 0,
            grants: 0,
            rejections: 0,
            segment_faults: 0,
            rechains: 0,
            telemetry,
        }
    }

    fn record_occupancy(&self) {
        if self.telemetry.is_enabled() {
            let occ: usize = self.channels.iter().map(|c| c.occupied()).sum();
            self.telemetry.gauge_set("csd.occupancy", occ as i64);
        }
    }

    /// Array length the network spans.
    pub fn positions(&self) -> usize {
        self.n_positions
    }

    /// Channel count.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Establishes a point-to-point communication from `source` to `sink`.
    ///
    /// Returns the granted route. Fails with
    /// [`CsdError::NoChannelAvailable`] when the request survives on no
    /// channel — the routability limit of an under-provisioned network.
    pub fn connect(&mut self, source: Position, sink: Position) -> Result<RouteId, CsdError> {
        self.connect_fanout(source, &[sink])
    }

    /// Establishes a fan-out communication from `source` to every position
    /// in `sinks` on one channel spanning them all.
    pub fn connect_fanout(
        &mut self,
        source: Position,
        sinks: &[Position],
    ) -> Result<RouteId, CsdError> {
        if sinks.is_empty() {
            return Err(CsdError::EmptyFanOut);
        }
        if source >= self.n_positions {
            return Err(CsdError::BadPosition(source));
        }
        if let Some(&bad) = sinks.iter().find(|&&s| s >= self.n_positions) {
            return Err(CsdError::BadPosition(bad));
        }
        let lo = sinks.iter().copied().chain([source]).min().unwrap();
        let hi = sinks.iter().copied().chain([source]).max().unwrap();
        if lo == hi {
            return Err(CsdError::ZeroSpan(lo));
        }
        // Priority encoder: lowest channel whose span is free wins.
        let Some(ch) = self.channels.iter().position(|c| c.span_free(lo, hi)) else {
            self.rejections += 1;
            self.telemetry.count("csd.rejections", 1);
            return Err(CsdError::NoChannelAvailable { lo, hi });
        };
        let id = RouteId(self.next_route);
        self.next_route += 1;
        self.channels[ch].claim(lo, hi, id);
        self.routes.insert(
            id,
            Route {
                id,
                channel: ChannelId(ch as u16),
                source,
                sinks: sinks.to_vec(),
            },
        );
        self.grants += 1;
        self.telemetry.count("csd.chains", 1);
        self.record_occupancy();
        Ok(id)
    }

    /// Tears down a route (the release-token path: a released object frees
    /// its communications).
    pub fn disconnect(&mut self, id: RouteId) -> Result<Route, CsdError> {
        let route = self.routes.remove(&id).ok_or(CsdError::UnknownRoute(id))?;
        self.channels[route.channel.0 as usize].release(id);
        self.telemetry.count("csd.unchains", 1);
        self.record_occupancy();
        Ok(route)
    }

    /// Fails one segment of one channel (a broken chain switch or wire).
    ///
    /// The segment is withdrawn from allocation until
    /// [`heal_segment`](Self::heal_segment). If a route was riding it,
    /// the grant machinery re-runs for that route's span: it is
    /// **re-chained** onto the lowest other channel with a healthy free
    /// span, or — when no channel can carry it — torn down with a typed
    /// [`SegmentFaultOutcome::Unroutable`]. Returns what happened to the
    /// victim (`None` when the segment was idle).
    pub fn fail_segment(
        &mut self,
        channel: usize,
        segment: usize,
    ) -> Result<Option<SegmentFaultOutcome>, CsdError> {
        if channel >= self.channels.len() || segment >= self.channels[channel].len() {
            return Err(CsdError::BadSegment { channel, segment });
        }
        self.segment_faults += 1;
        self.telemetry.count("csd.segment_faults", 1);
        let Some(victim) = self.channels[channel].fail_segment(segment) else {
            return Ok(None);
        };
        Ok(Some(self.rehome(victim)))
    }

    /// Repairs a previously failed segment (a transient fault healing).
    /// Routes torn down while it was broken are not resurrected.
    pub fn heal_segment(&mut self, channel: usize, segment: usize) -> Result<(), CsdError> {
        if channel >= self.channels.len() || segment >= self.channels[channel].len() {
            return Err(CsdError::BadSegment { channel, segment });
        }
        self.channels[channel].heal_segment(segment);
        Ok(())
    }

    /// Moves `victim` off its current channel: re-chained onto the lowest
    /// channel with a healthy free span, or torn down as unroutable.
    fn rehome(&mut self, victim: RouteId) -> SegmentFaultOutcome {
        let route = self.routes.get(&victim).expect("victim is live").clone();
        let (lo, hi) = route.span();
        let from = route.channel;
        self.channels[from.0 as usize].release(victim);
        if let Some(ch) = self.channels.iter().position(|c| c.span_free(lo, hi)) {
            self.channels[ch].claim(lo, hi, victim);
            let to = ChannelId(ch as u16);
            self.routes
                .get_mut(&victim)
                .expect("victim is live")
                .channel = to;
            self.rechains += 1;
            self.telemetry.count("csd.rechains", 1);
            self.telemetry.record("csd.rechain_span", (hi - lo) as u64);
            self.record_occupancy();
            SegmentFaultOutcome::Rechained {
                route: victim,
                from,
                to,
            }
        } else {
            let route = self.routes.remove(&victim).expect("victim is live");
            self.rejections += 1;
            self.telemetry.count("csd.rejections", 1);
            self.record_occupancy();
            SegmentFaultOutcome::Unroutable { route }
        }
    }

    /// Applies one stack shift: every object (and therefore every route
    /// endpoint) moves one position toward the bottom. Routes whose span
    /// would leave the array are torn down and returned — as are routes
    /// that shift onto a failed segment and cannot be re-chained
    /// elsewhere (failure marks belong to the physical wire and do not
    /// shift with the data).
    pub fn stack_shift(&mut self) -> Vec<Route> {
        let mut evicted: Vec<RouteId> = Vec::new();
        for c in &mut self.channels {
            if let Some(r) = c.shift_down() {
                if !evicted.contains(&r) {
                    evicted.push(r);
                }
            }
        }
        // Remove evicted routes entirely (their remaining segments too).
        let mut out = Vec::new();
        for id in evicted {
            if let Some(route) = self.routes.remove(&id) {
                self.channels[route.channel.0 as usize].release(id);
                out.push(route);
            }
        }
        // Update surviving routes' endpoint bookkeeping.
        for route in self.routes.values_mut() {
            route.source += 1;
            for s in &mut route.sinks {
                *s += 1;
            }
        }
        // Routes that slid onto a broken wire re-run the grant machinery
        // (in route order, for determinism).
        let mut stranded: Vec<RouteId> = self
            .routes
            .values()
            .filter(|r| {
                let (lo, hi) = r.span();
                let ch = &self.channels[r.channel.0 as usize];
                (lo..hi).any(|s| ch.is_failed(s))
            })
            .map(|r| r.id)
            .collect();
        stranded.sort_unstable();
        for id in stranded {
            if let SegmentFaultOutcome::Unroutable { route } = self.rehome(id) {
                out.push(route);
            }
        }
        out
    }

    /// The route table entry for `id`.
    pub fn route(&self, id: RouteId) -> Option<&Route> {
        self.routes.get(&id)
    }

    /// Number of live routes.
    pub fn live_routes(&self) -> usize {
        self.routes.len()
    }

    /// Iterates over live routes (unordered).
    pub fn routes(&self) -> impl Iterator<Item = &Route> {
        self.routes.values()
    }

    /// Figure 3 metric: the number of channels carrying at least one
    /// communication.
    pub fn used_channels(&self) -> usize {
        self.channels.iter().filter(|c| c.in_use()).count()
    }

    /// Fraction of all segments currently occupied, in `[0, 1]`.
    pub fn segment_utilization(&self) -> f64 {
        let total: usize = self.channels.iter().map(|c| c.len()).sum();
        if total == 0 {
            return 0.0;
        }
        let occ: usize = self.channels.iter().map(|c| c.occupied()).sum();
        occ as f64 / total as f64
    }

    /// Grants issued since construction.
    pub fn grant_count(&self) -> u64 {
        self.grants
    }

    /// Requests that survived on no channel since construction.
    pub fn rejection_count(&self) -> u64 {
        self.rejections
    }

    /// Segment faults injected since construction.
    pub fn segment_fault_count(&self) -> u64 {
        self.segment_faults
    }

    /// Routes successfully re-chained around a failed segment.
    pub fn rechain_count(&self) -> u64 {
        self.rechains
    }

    /// Segments currently marked failed, network-wide.
    pub fn failed_segments(&self) -> usize {
        self.channels.iter().map(|c| c.failed_count()).sum()
    }

    /// Internal consistency check (used by property tests): every live
    /// route's span is exactly the set of segments it owns, and no segment
    /// is owned by a dead route.
    pub fn check_invariants(&self) -> Result<(), String> {
        for route in self.routes.values() {
            let (lo, hi) = route.span();
            let ch = &self.channels[route.channel.0 as usize];
            for seg in lo..hi {
                if ch.owner_of(seg) != Some(route.id) {
                    return Err(format!(
                        "route {} should own segment {seg} of {}",
                        route.id, route.channel
                    ));
                }
            }
        }
        for (ci, ch) in self.channels.iter().enumerate() {
            for seg in 0..ch.len() {
                if let Some(owner) = ch.owner_of(seg) {
                    if ch.is_failed(seg) {
                        return Err(format!("failed segment {seg} of ch{ci} owned by {owner}"));
                    }
                    let Some(route) = self.routes.get(&owner) else {
                        return Err(format!("segment {seg} of ch{ci} owned by dead {owner}"));
                    };
                    let (lo, hi) = route.span();
                    if seg < lo || seg >= hi {
                        return Err(format!(
                            "segment {seg} of ch{ci} outside {owner}'s span [{lo},{hi})"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_prefers_lowest_channel() {
        let mut net = DynamicCsd::new(8, 4);
        let r0 = net.connect(0, 3).unwrap();
        assert_eq!(net.route(r0).unwrap().channel, ChannelId(0));
        // Overlapping span is pushed to the next channel.
        let r1 = net.connect(1, 4).unwrap();
        assert_eq!(net.route(r1).unwrap().channel, ChannelId(1));
        // Disjoint span reuses channel 0.
        let r2 = net.connect(5, 7).unwrap();
        assert_eq!(net.route(r2).unwrap().channel, ChannelId(0));
        assert_eq!(net.used_channels(), 2);
        net.check_invariants().unwrap();
    }

    #[test]
    fn exhaustion_is_a_routability_failure() {
        let mut net = DynamicCsd::new(4, 2);
        net.connect(0, 3).unwrap();
        net.connect(0, 3).unwrap();
        let err = net.connect(1, 2).unwrap_err();
        assert_eq!(err, CsdError::NoChannelAvailable { lo: 1, hi: 2 });
        assert_eq!(net.rejection_count(), 1);
    }

    #[test]
    fn disconnect_frees_the_span() {
        let mut net = DynamicCsd::new(4, 1);
        let r = net.connect(0, 3).unwrap();
        assert!(net.connect(1, 2).is_err());
        net.disconnect(r).unwrap();
        assert!(net.connect(1, 2).is_ok());
        net.check_invariants().unwrap();
    }

    #[test]
    fn direction_does_not_matter() {
        // §3.1: a bidirectional path is possible on the dynamic CSD.
        let mut net = DynamicCsd::new(8, 1);
        let r = net.connect(5, 2).unwrap();
        assert_eq!(net.route(r).unwrap().span(), (2, 5));
        assert_eq!(net.route(r).unwrap().hops(), 3);
    }

    #[test]
    fn fanout_spans_all_sinks() {
        let mut net = DynamicCsd::new(8, 2);
        let r = net.connect_fanout(3, &[1, 6]).unwrap();
        assert_eq!(net.route(r).unwrap().span(), (1, 6));
        assert_eq!(net.route(r).unwrap().channel, ChannelId(0));
        // The whole span is consumed on channel 0, so an overlapping
        // request is pushed to channel 1.
        let r2 = net.connect(2, 4).unwrap();
        assert_eq!(net.route(r2).unwrap().channel, ChannelId(1));
        net.check_invariants().unwrap();
    }

    #[test]
    fn zero_span_rejected() {
        let mut net = DynamicCsd::new(8, 2);
        assert_eq!(net.connect(3, 3), Err(CsdError::ZeroSpan(3)));
        assert_eq!(net.connect_fanout(3, &[]), Err(CsdError::EmptyFanOut));
    }

    #[test]
    fn bad_positions_rejected() {
        let mut net = DynamicCsd::new(4, 2);
        assert_eq!(net.connect(0, 4), Err(CsdError::BadPosition(4)));
        assert_eq!(net.connect(9, 1), Err(CsdError::BadPosition(9)));
    }

    #[test]
    fn stack_shift_moves_routes_down() {
        let mut net = DynamicCsd::new(4, 2);
        let r = net.connect(0, 1).unwrap();
        let evicted = net.stack_shift();
        assert!(evicted.is_empty());
        let route = net.route(r).unwrap();
        assert_eq!((route.source, route.sinks[0]), (1, 2));
        net.check_invariants().unwrap();
    }

    #[test]
    fn stack_shift_evicts_bottom_routes() {
        let mut net = DynamicCsd::new(4, 2);
        let _r = net.connect(2, 3).unwrap();
        let evicted = net.stack_shift();
        assert_eq!(evicted.len(), 1);
        assert_eq!(net.live_routes(), 0);
        assert_eq!(net.used_channels(), 0);
        net.check_invariants().unwrap();
    }

    #[test]
    fn idle_segment_failure_just_withdraws_it() {
        let mut net = DynamicCsd::new(8, 2);
        assert_eq!(net.fail_segment(0, 3), Ok(None));
        assert_eq!(net.failed_segments(), 1);
        // The broken segment pushes an overlapping request to channel 1.
        let r = net.connect(2, 5).unwrap();
        assert_eq!(net.route(r).unwrap().channel, ChannelId(1));
        // A request clear of the break still gets channel 0.
        let r2 = net.connect(5, 7).unwrap();
        assert_eq!(net.route(r2).unwrap().channel, ChannelId(0));
        net.check_invariants().unwrap();
    }

    #[test]
    fn victim_route_is_rechained_onto_another_channel() {
        let mut net = DynamicCsd::new(8, 2);
        let r = net.connect(1, 5).unwrap();
        assert_eq!(net.route(r).unwrap().channel, ChannelId(0));
        let outcome = net.fail_segment(0, 3).unwrap();
        assert_eq!(
            outcome,
            Some(SegmentFaultOutcome::Rechained {
                route: r,
                from: ChannelId(0),
                to: ChannelId(1),
            })
        );
        // Same span, same ID, new channel; the datapath survived.
        let route = net.route(r).unwrap();
        assert_eq!(route.channel, ChannelId(1));
        assert_eq!(route.span(), (1, 5));
        assert_eq!(net.rechain_count(), 1);
        net.check_invariants().unwrap();
    }

    #[test]
    fn unroutable_victim_is_torn_down_typed() {
        let mut net = DynamicCsd::new(8, 2);
        let victim = net.connect(1, 5).unwrap();
        let blocker = net.connect(2, 6).unwrap(); // occupies channel 1
        let outcome = net.fail_segment(0, 3).unwrap();
        let Some(SegmentFaultOutcome::Unroutable { route }) = outcome else {
            panic!("expected Unroutable, got {outcome:?}");
        };
        assert_eq!(route.id, victim);
        assert!(net.route(victim).is_none(), "victim torn down");
        assert!(net.route(blocker).is_some(), "bystander survives");
        net.check_invariants().unwrap();
    }

    #[test]
    fn heal_restores_the_segment() {
        let mut net = DynamicCsd::new(8, 1);
        net.fail_segment(0, 2).unwrap();
        assert!(net.connect(1, 4).is_err());
        net.heal_segment(0, 2).unwrap();
        assert!(net.connect(1, 4).is_ok());
        net.check_invariants().unwrap();
    }

    #[test]
    fn bad_fault_sites_rejected() {
        let mut net = DynamicCsd::new(8, 2);
        assert_eq!(
            net.fail_segment(5, 0),
            Err(CsdError::BadSegment {
                channel: 5,
                segment: 0
            })
        );
        assert_eq!(
            net.fail_segment(0, 7),
            Err(CsdError::BadSegment {
                channel: 0,
                segment: 7
            })
        );
        assert!(net.heal_segment(9, 9).is_err());
    }

    #[test]
    fn stack_shift_rechains_routes_that_slide_onto_a_break() {
        let mut net = DynamicCsd::new(8, 2);
        let r = net.connect(0, 2).unwrap(); // segments 0,1 of channel 0
                                            // Break segment 2 of channel 0: idle today, but the shift slides
                                            // the route onto it (span 0..2 → 1..3).
        net.fail_segment(0, 2).unwrap();
        let evicted = net.stack_shift();
        assert!(evicted.is_empty(), "re-chaining saves the route");
        let route = net.route(r).unwrap();
        assert_eq!(route.channel, ChannelId(1));
        assert_eq!(route.span(), (1, 3));
        net.check_invariants().unwrap();
    }

    #[test]
    fn stack_shift_evicts_stranded_routes_with_no_spare_channel() {
        let mut net = DynamicCsd::new(8, 1);
        let r = net.connect(0, 2).unwrap();
        net.fail_segment(0, 2).unwrap();
        let evicted = net.stack_shift();
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].id, r);
        assert_eq!(net.live_routes(), 0);
        net.check_invariants().unwrap();
    }

    #[test]
    fn utilization_accounting() {
        let mut net = DynamicCsd::new(5, 2); // 2 channels x 4 segments
        assert_eq!(net.segment_utilization(), 0.0);
        net.connect(0, 4).unwrap(); // 4 of 8 segments
        assert!((net.segment_utilization() - 0.5).abs() < 1e-12);
    }
}

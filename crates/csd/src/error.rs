//! Errors of the CSD network model.

use crate::channel::{Position, RouteId};
use std::fmt;

/// Errors raised by CSD allocation and the handshake protocol.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CsdError {
    /// A position was outside the array.
    BadPosition(Position),
    /// Source and sink coincide; no channel is needed or allocatable.
    ZeroSpan(Position),
    /// Every channel had at least one occupied segment in the requested
    /// span: the request survived on no channel, so no grant was raised.
    /// This is the routability failure §2.6.2 warns about.
    NoChannelAvailable {
        /// Span start (inclusive).
        lo: Position,
        /// Span end (exclusive, in segments).
        hi: Position,
    },
    /// The route ID was not live.
    UnknownRoute(RouteId),
    /// A fan-out request listed no sinks.
    EmptyFanOut,
    /// A fault-injection site named a channel/segment outside the network.
    BadSegment {
        /// Channel index.
        channel: usize,
        /// Segment index within the channel.
        segment: usize,
    },
}

impl fmt::Display for CsdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsdError::BadPosition(p) => write!(f, "position {p} outside the array"),
            CsdError::ZeroSpan(p) => write!(f, "source and sink are both at position {p}"),
            CsdError::NoChannelAvailable { lo, hi } => {
                write!(f, "no free channel over segment span [{lo}, {hi})")
            }
            CsdError::UnknownRoute(r) => write!(f, "route {r} is not live"),
            CsdError::EmptyFanOut => write!(f, "fan-out request with no sinks"),
            CsdError::BadSegment { channel, segment } => {
                write!(f, "segment {segment} of channel {channel} does not exist")
            }
        }
    }
}

impl std::error::Error for CsdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(CsdError::NoChannelAvailable { lo: 1, hi: 4 }
            .to_string()
            .contains("[1, 4)"));
    }
}

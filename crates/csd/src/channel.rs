//! Channels, positions, and per-hop segment bookkeeping.
//!
//! A channel runs the full length of the linear object array and is cut
//! into `N - 1` single-hop segments ("each channel is completely segmented
//! with a single hop", §2.6.2). Segment `i` of a channel lies between array
//! positions `i` and `i + 1`. A communication from position `a` to position
//! `b` consumes every segment in `[min(a,b), max(a,b))` of one channel; two
//! communications may share a channel exactly when their spans are disjoint.

use std::fmt;

/// Index of a channel of the CSD network.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ChannelId(pub u16);

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// A position on the linear object array (0 = top of the stack).
pub type Position = usize;

/// Identifier of an established communication (one grant's worth of
/// segments on one channel).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RouteId(pub u32);

impl fmt::Display for RouteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "route{}", self.0)
    }
}

/// Occupancy state of the `N - 1` segments of one channel.
///
/// The backing vectors are *lazy*: they materialise (zero-filled) only up
/// to the highest segment ever claimed or failed. A scaled processor's
/// CSD provisions `O(positions)` channels of `O(positions)` segments each
/// at gather time, and most channels never carry a route — eagerly
/// zeroing the full `channels × segments` slab put the dominant memset on
/// the gather path. Unmaterialised segments read as free and healthy,
/// exactly as eagerly-zeroed ones would.
#[derive(Clone, Debug)]
pub struct ChannelSegments {
    /// Number of segments (array length minus one) — the structural size;
    /// the vectors below may be shorter.
    segments: usize,
    /// `owner[i]` is the route holding segment `i` (between positions `i`
    /// and `i + 1`), or `None` when the segment is free (default: chained,
    /// carrying nothing).
    owner: Vec<Option<RouteId>>,
    /// `failed[i]` marks segment `i` as physically broken: it can carry
    /// no communication and is never granted. Failure is a property of
    /// the *wire*, so — unlike ownership — it does not move on a stack
    /// shift.
    failed: Vec<bool>,
}

impl ChannelSegments {
    /// Builds the segment array for an `n_positions`-long array.
    pub fn new(n_positions: usize) -> ChannelSegments {
        ChannelSegments {
            segments: n_positions.saturating_sub(1),
            owner: Vec::new(),
            failed: Vec::new(),
        }
    }

    /// Number of segments (array length minus one).
    pub fn len(&self) -> usize {
        self.segments
    }

    /// Whether the channel has no segments at all (degenerate 0/1-object array).
    pub fn is_empty(&self) -> bool {
        self.segments == 0
    }

    /// Whether every segment in `[lo, hi)` is free *and healthy*.
    /// Unmaterialised segments are both.
    pub fn span_free(&self, lo: Position, hi: Position) -> bool {
        let oh = hi.min(self.owner.len());
        let fh = hi.min(self.failed.len());
        (lo >= oh || self.owner[lo..oh].iter().all(|s| s.is_none()))
            && (lo >= fh || !self.failed[lo..fh].iter().any(|&f| f))
    }

    /// Claims `[lo, hi)` for `route`. Caller must have checked
    /// [`span_free`](Self::span_free); double-claims panic in debug builds.
    pub fn claim(&mut self, lo: Position, hi: Position, route: RouteId) {
        debug_assert!(hi <= self.segments, "claim beyond the channel");
        if hi > self.owner.len() {
            self.owner.resize(hi, None);
        }
        for (i, s) in self.owner[lo..hi].iter_mut().enumerate() {
            debug_assert!(s.is_none(), "claiming an occupied segment");
            debug_assert!(
                self.failed.get(lo + i).copied() != Some(true),
                "claiming a failed segment"
            );
            *s = Some(route);
        }
    }

    /// Marks segment `i` as failed and returns the route that was riding
    /// it, if any (the caller must re-chain or tear that route down).
    /// Out-of-range indices are ignored.
    pub fn fail_segment(&mut self, i: usize) -> Option<RouteId> {
        if i >= self.segments {
            return None;
        }
        if i >= self.failed.len() {
            self.failed.resize(i + 1, false);
        }
        self.failed[i] = true;
        self.owner.get(i).copied().flatten()
    }

    /// Repairs segment `i` (a transient fault healing).
    pub fn heal_segment(&mut self, i: usize) {
        if let Some(f) = self.failed.get_mut(i) {
            *f = false;
        }
    }

    /// Whether segment `i` is marked failed.
    pub fn is_failed(&self, i: usize) -> bool {
        self.failed.get(i).copied().unwrap_or(false)
    }

    /// Number of segments currently marked failed.
    pub fn failed_count(&self) -> usize {
        self.failed.iter().filter(|&&f| f).count()
    }

    /// Releases every segment owned by `route`. Returns how many segments
    /// were freed.
    pub fn release(&mut self, route: RouteId) -> usize {
        let mut freed = 0;
        for s in &mut self.owner {
            if *s == Some(route) {
                *s = None;
                freed += 1;
            }
        }
        freed
    }

    /// Whether any segment is currently owned — i.e. whether the channel
    /// counts as "used" in the Figure 3 metric.
    pub fn in_use(&self) -> bool {
        self.owner.iter().any(|s| s.is_some())
    }

    /// Number of occupied segments.
    pub fn occupied(&self) -> usize {
        self.owner.iter().filter(|s| s.is_some()).count()
    }

    /// The owner of segment `i`, if any.
    pub fn owner_of(&self, i: usize) -> Option<RouteId> {
        self.owner.get(i).copied().flatten()
    }

    /// Shifts ownership one position toward the bottom of the stack,
    /// mirroring a stack shift of the object array: segment `i` takes the
    /// previous owner of segment `i - 1`; segment 0 becomes free; the
    /// owner of the last segment is returned (routes pushed off the bottom
    /// must be torn down by the caller). Failure marks stay put — they
    /// belong to the physical wire, not to what it carries — so a shifted
    /// route can land on a failed segment; callers detect that with
    /// [`is_failed`](Self::is_failed) and re-chain or tear down.
    pub fn shift_down(&mut self) -> Option<RouteId> {
        if self.segments == 0 {
            return None;
        }
        // Only the materialised prefix can own anything; the bottom
        // segment fell off only if it was materialised.
        let fell_off = if self.owner.len() == self.segments {
            self.owner.pop().flatten()
        } else {
            None
        };
        if !self.owner.is_empty() {
            self.owner.insert(0, None);
        }
        fell_off
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_and_claims() {
        let mut c = ChannelSegments::new(8);
        assert_eq!(c.len(), 7);
        assert!(c.span_free(0, 7));
        c.claim(2, 5, RouteId(1));
        assert!(!c.span_free(2, 3));
        assert!(c.span_free(0, 2));
        assert!(c.span_free(5, 7));
        assert_eq!(c.occupied(), 3);
        assert!(c.in_use());
    }

    #[test]
    fn disjoint_spans_share_a_channel() {
        let mut c = ChannelSegments::new(8);
        c.claim(0, 2, RouteId(1));
        assert!(c.span_free(2, 7));
        c.claim(5, 7, RouteId(2));
        assert_eq!(c.occupied(), 4);
        assert_eq!(c.owner_of(0), Some(RouteId(1)));
        assert_eq!(c.owner_of(6), Some(RouteId(2)));
    }

    #[test]
    fn release_frees_only_that_route() {
        let mut c = ChannelSegments::new(8);
        c.claim(0, 2, RouteId(1));
        c.claim(5, 7, RouteId(2));
        assert_eq!(c.release(RouteId(1)), 2);
        assert!(c.span_free(0, 2));
        assert!(!c.span_free(5, 7));
        assert_eq!(c.release(RouteId(1)), 0);
    }

    #[test]
    fn shift_down_moves_ownership_toward_bottom() {
        let mut c = ChannelSegments::new(4); // segments 0,1,2
        c.claim(0, 1, RouteId(7));
        assert_eq!(c.shift_down(), None);
        assert_eq!(c.owner_of(0), None);
        assert_eq!(c.owner_of(1), Some(RouteId(7)));
        // Two more shifts push the route off the bottom.
        assert_eq!(c.shift_down(), None);
        assert_eq!(c.shift_down(), Some(RouteId(7)));
    }

    #[test]
    fn degenerate_array_sizes() {
        let mut c0 = ChannelSegments::new(0);
        assert!(c0.is_empty());
        assert_eq!(c0.shift_down(), None);
        let c1 = ChannelSegments::new(1);
        assert_eq!(c1.len(), 0);
    }
}

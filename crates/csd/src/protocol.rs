//! Cycle-level simulation of the Figure 2 handshake.
//!
//! [`network::DynamicCsd`](crate::network::DynamicCsd) resolves a request
//! atomically; this module plays the same request through the three-step
//! hardware sequence the paper draws — request broadcast, priority encode +
//! grant, acknowledge — and records an event per cycle. Tests (and the
//! curious) can watch exactly what the logic of Figure 2 does, including
//! which channels the broadcast *reached* before the encoder picked one.

use crate::channel::{ChannelId, Position, RouteId};
use crate::error::CsdError;
use crate::network::DynamicCsd;

/// One observable step of the handshake.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum HandshakeEvent {
    /// Cycle 0: the source drove its request onto every channel's request
    /// network; it survived (reached the sink through chained, unoccupied
    /// segments) on the listed channels.
    RequestBroadcast {
        /// Source position.
        source: Position,
        /// Sink position.
        sink: Position,
        /// Channels on which the request reached the sink.
        survivors: Vec<ChannelId>,
    },
    /// Cycle 1: the sink's priority encoder selected a channel; the grant
    /// was latched into the memory cell (unchaining the request network and
    /// gating channel data into the sink).
    Granted {
        /// The selected channel.
        channel: ChannelId,
        /// The route created by the grant.
        route: RouteId,
    },
    /// Cycle 1 (failure): no request survived; the encoder stayed silent.
    NoSurvivor,
    /// Cycle 2: the grant signal travelled back to the source as the
    /// acknowledgement; the source may start streaming data.
    Acknowledged {
        /// The acknowledged route.
        route: RouteId,
    },
}

/// Result of one full handshake.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HandshakeOutcome {
    /// The per-cycle event trace (2 events on failure, 3 on success).
    pub events: Vec<HandshakeEvent>,
    /// The established route, if the handshake succeeded.
    pub route: Result<RouteId, CsdError>,
    /// Cycles consumed (2 on failure, 3 on success).
    pub cycles: u32,
}

/// Step-by-step protocol driver over a [`DynamicCsd`].
#[derive(Debug)]
pub struct ProtocolSim<'a> {
    net: &'a mut DynamicCsd,
}

impl<'a> ProtocolSim<'a> {
    /// Wraps a network.
    pub fn new(net: &'a mut DynamicCsd) -> ProtocolSim<'a> {
        ProtocolSim { net }
    }

    /// Runs the three-cycle handshake for `source → sink`.
    pub fn handshake(&mut self, source: Position, sink: Position) -> HandshakeOutcome {
        let mut events = Vec::with_capacity(3);
        // Cycle 0: broadcast. Which channels does the request survive on?
        let survivors = self.survivors(source, sink);
        events.push(HandshakeEvent::RequestBroadcast {
            source,
            sink,
            survivors: survivors.clone(),
        });
        // Cycle 1: priority encode + grant.
        if survivors.is_empty() {
            events.push(HandshakeEvent::NoSurvivor);
            // Reproduce the allocation error the atomic path would report.
            let err = self
                .net
                .connect(source, sink)
                .expect_err("no survivor implies the atomic allocation must fail too");
            return HandshakeOutcome {
                events,
                route: Err(err),
                cycles: 2,
            };
        }
        let route = self
            .net
            .connect(source, sink)
            .expect("a surviving channel implies the atomic allocation succeeds");
        let channel = self.net.route(route).unwrap().channel;
        debug_assert_eq!(
            Some(&channel),
            survivors.first(),
            "the grant must match the priority encoder's first survivor"
        );
        events.push(HandshakeEvent::Granted { channel, route });
        // Cycle 2: ack back to the source.
        events.push(HandshakeEvent::Acknowledged { route });
        HandshakeOutcome {
            events,
            route: Ok(route),
            cycles: 3,
        }
    }

    /// The three-cycle handshake for a broadcast: the request must
    /// survive over the span covering the source and *all* sinks, and the
    /// grant gates the channel into every sink's memory cell.
    pub fn handshake_fanout(&mut self, source: Position, sinks: &[Position]) -> HandshakeOutcome {
        let mut events = Vec::with_capacity(3);
        let survivors = self.survivors_fanout(source, sinks);
        events.push(HandshakeEvent::RequestBroadcast {
            source,
            sink: sinks.first().copied().unwrap_or(source),
            survivors: survivors.clone(),
        });
        if survivors.is_empty() {
            events.push(HandshakeEvent::NoSurvivor);
            let err = self
                .net
                .connect_fanout(source, sinks)
                .expect_err("no survivor implies the atomic allocation must fail too");
            return HandshakeOutcome {
                events,
                route: Err(err),
                cycles: 2,
            };
        }
        let route = self
            .net
            .connect_fanout(source, sinks)
            .expect("a surviving channel implies the atomic allocation succeeds");
        let channel = self.net.route(route).unwrap().channel;
        events.push(HandshakeEvent::Granted { channel, route });
        events.push(HandshakeEvent::Acknowledged { route });
        HandshakeOutcome {
            events,
            route: Ok(route),
            cycles: 3,
        }
    }

    /// Channels surviving a fan-out request right now.
    pub fn survivors_fanout(&self, source: Position, sinks: &[Position]) -> Vec<ChannelId> {
        if sinks.is_empty() || source >= self.net.positions() {
            return Vec::new();
        }
        let lo = sinks.iter().copied().chain([source]).min().unwrap();
        let hi = sinks.iter().copied().chain([source]).max().unwrap();
        if lo == hi || sinks.iter().any(|&s| s >= self.net.positions()) {
            return Vec::new();
        }
        (0..self.net.channel_count())
            .filter(|&c| self.channel_span_free(c, lo, hi))
            .map(|c| ChannelId(c as u16))
            .collect()
    }

    /// Channels on which a request from `source` to `sink` would survive
    /// right now (free span), in priority-encoder order.
    pub fn survivors(&self, source: Position, sink: Position) -> Vec<ChannelId> {
        if source == sink || source >= self.net.positions() || sink >= self.net.positions() {
            return Vec::new();
        }
        let (lo, hi) = (source.min(sink), source.max(sink));
        // Re-derive availability through a probe: a channel survives iff a
        // hypothetical claim would succeed on it. We ask the network's
        // segment state indirectly via used spans on each channel.
        (0..self.net.channel_count())
            .filter(|&c| self.channel_span_free(c, lo, hi))
            .map(|c| ChannelId(c as u16))
            .collect()
    }

    fn channel_span_free(&self, channel: usize, lo: Position, hi: Position) -> bool {
        // A span is free iff no live route on this channel overlaps it.
        !self.net.routes().any(|r| {
            r.channel.0 as usize == channel && {
                let (rlo, rhi) = r.span();
                rlo < hi && lo < rhi
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn successful_handshake_traces_three_cycles() {
        let mut net = DynamicCsd::new(8, 2);
        let out = ProtocolSim::new(&mut net).handshake(1, 5);
        assert_eq!(out.cycles, 3);
        assert_eq!(out.events.len(), 3);
        assert!(matches!(
            out.events[0],
            HandshakeEvent::RequestBroadcast {
                source: 1,
                sink: 5,
                ..
            }
        ));
        assert!(matches!(out.events[1], HandshakeEvent::Granted { .. }));
        assert!(matches!(out.events[2], HandshakeEvent::Acknowledged { .. }));
        assert!(out.route.is_ok());
    }

    #[test]
    fn broadcast_reports_all_survivors_but_grants_first() {
        let mut net = DynamicCsd::new(8, 3);
        let out = ProtocolSim::new(&mut net).handshake(0, 4);
        match &out.events[0] {
            HandshakeEvent::RequestBroadcast { survivors, .. } => {
                assert_eq!(survivors, &vec![ChannelId(0), ChannelId(1), ChannelId(2)]);
            }
            e => panic!("unexpected {e:?}"),
        }
        match &out.events[1] {
            HandshakeEvent::Granted { channel, .. } => assert_eq!(*channel, ChannelId(0)),
            e => panic!("unexpected {e:?}"),
        }
    }

    #[test]
    fn occupied_channels_do_not_survive() {
        let mut net = DynamicCsd::new(8, 2);
        net.connect(0, 4).unwrap();
        let mut sim = ProtocolSim::new(&mut net);
        assert_eq!(sim.survivors(1, 3), vec![ChannelId(1)]);
        let out = sim.handshake(1, 3);
        match &out.events[1] {
            HandshakeEvent::Granted { channel, .. } => assert_eq!(*channel, ChannelId(1)),
            e => panic!("unexpected {e:?}"),
        }
    }

    #[test]
    fn failure_traces_two_cycles() {
        let mut net = DynamicCsd::new(4, 1);
        net.connect(0, 3).unwrap();
        let out = ProtocolSim::new(&mut net).handshake(1, 2);
        assert_eq!(out.cycles, 2);
        assert_eq!(out.events[1], HandshakeEvent::NoSurvivor);
        assert!(matches!(
            out.route,
            Err(CsdError::NoChannelAvailable { .. })
        ));
    }

    #[test]
    fn fanout_handshake_spans_all_sinks() {
        let mut net = DynamicCsd::new(8, 2);
        let out = ProtocolSim::new(&mut net).handshake_fanout(3, &[0, 6]);
        assert_eq!(out.cycles, 3);
        let route = out.route.unwrap();
        assert_eq!(net.route(route).unwrap().span(), (0, 6));
        // The whole span is consumed on the granted channel, so an
        // overlapping broadcast takes the next one.
        let out2 = ProtocolSim::new(&mut net).handshake_fanout(2, &[5]);
        match &out2.events[0] {
            HandshakeEvent::RequestBroadcast { survivors, .. } => {
                assert_eq!(survivors, &vec![ChannelId(1)]);
            }
            e => panic!("unexpected {e:?}"),
        }
    }

    #[test]
    fn fanout_handshake_fails_cleanly() {
        let mut net = DynamicCsd::new(8, 1);
        net.connect(0, 7).unwrap();
        let out = ProtocolSim::new(&mut net).handshake_fanout(1, &[3, 6]);
        assert_eq!(out.cycles, 2);
        assert!(out.route.is_err());
        // Degenerate broadcasts report no survivors.
        let out = ProtocolSim::new(&mut net).handshake_fanout(2, &[]);
        assert!(out.route.is_err());
    }

    #[test]
    fn protocol_and_atomic_allocation_agree() {
        // Whatever the protocol grants, the network's invariants hold.
        let mut net = DynamicCsd::new(16, 4);
        let pairs = [(0usize, 5usize), (3, 9), (10, 15), (1, 2), (6, 8)];
        for (s, k) in pairs {
            let _ = ProtocolSim::new(&mut net).handshake(s, k);
        }
        net.check_invariants().unwrap();
    }
}

//! Errors of the adaptive-processor layer.

use std::fmt;
use vlsi_csd::CsdError;
use vlsi_object::{ObjectError, ObjectId};

/// Errors raised while configuring or executing on an adaptive processor.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ApError {
    /// The object model rejected an operation.
    Object(ObjectError),
    /// The CSD network rejected a chaining request.
    Csd(CsdError),
    /// The datapath's working set exceeds the array capacity `C`, so it
    /// cannot stream (§2.5: "the reconfigured datapath has to be smaller
    /// than the capacity C, since the streaming does not allow swapping
    /// out part of the datapath").
    WorkingSetExceedsCapacity {
        /// Objects the datapath needs resident.
        working_set: usize,
        /// Compute-object capacity of the array.
        capacity: usize,
    },
    /// The working set exceeds the WSRF's acquirement entries.
    WorkingSetExceedsWsrf {
        /// Objects the datapath needs acquired.
        working_set: usize,
        /// WSRF entry count.
        wsrf_entries: usize,
    },
    /// A source object was referenced before any element defined it.
    UndefinedSource(ObjectId),
    /// Execution hit the cycle budget without draining the datapath —
    /// either deadlock (a steer that never fires) or starvation.
    ExecutionTimeout {
        /// Cycles simulated before giving up.
        cycles: u64,
    },
    /// The datapath has no configured elements.
    EmptyDatapath,
}

impl fmt::Display for ApError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApError::Object(e) => write!(f, "object model: {e}"),
            ApError::Csd(e) => write!(f, "CSD network: {e}"),
            ApError::WorkingSetExceedsCapacity {
                working_set,
                capacity,
            } => write!(
                f,
                "working set of {working_set} objects exceeds array capacity {capacity}"
            ),
            ApError::WorkingSetExceedsWsrf {
                working_set,
                wsrf_entries,
            } => write!(
                f,
                "working set of {working_set} objects exceeds WSRF capacity {wsrf_entries}"
            ),
            ApError::UndefinedSource(id) => {
                write!(f, "source object {id} referenced before definition")
            }
            ApError::ExecutionTimeout { cycles } => {
                write!(f, "datapath did not drain within {cycles} cycles")
            }
            ApError::EmptyDatapath => write!(f, "empty datapath"),
        }
    }
}

impl std::error::Error for ApError {}

impl From<ObjectError> for ApError {
    fn from(e: ObjectError) -> ApError {
        ApError::Object(e)
    }
}

impl From<CsdError> for ApError {
    fn from(e: CsdError) -> ApError {
        ApError::Csd(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let e: ApError = ObjectError::UnknownObject(ObjectId(1)).into();
        assert!(matches!(e, ApError::Object(_)));
        let e: ApError = CsdError::EmptyFanOut.into();
        assert!(matches!(e, ApError::Csd(_)));
    }

    #[test]
    fn display() {
        let e = ApError::WorkingSetExceedsCapacity {
            working_set: 20,
            capacity: 16,
        };
        assert!(e.to_string().contains("20"));
        assert!(e.to_string().contains("16"));
    }
}

//! Counters reported by the adaptive-processor layers.

/// Aggregated statistics of one adaptive processor.
///
/// Every field is a monotonically increasing counter; deltas between two
/// snapshots describe an interval. The split between *configuration* and
/// *execution* mirrors the paper's separation of the management pipeline
/// (§2.2) from datapath operation (§2.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ApMetrics {
    // --- configuration (management pipeline) ---
    /// Pipeline cycles spent configuring (all five stages).
    pub config_cycles: u64,
    /// Object-cache hits during the request stage.
    pub object_hits: u64,
    /// Object-cache misses (loads from the library).
    pub object_misses: u64,
    /// Stack shifts performed (one per object entered at the top).
    pub stack_shifts: u64,
    /// Objects swapped out (write-backs into the library).
    pub swap_outs: u64,
    /// Chaining grants obtained on the CSD network.
    pub chains: u64,
    /// Chaining requests that failed (routability).
    pub chain_failures: u64,
    // --- execution (datapath) ---
    /// Datapath cycles simulated.
    pub exec_cycles: u64,
    /// Operation firings.
    pub firings: u64,
    /// Words loaded from memory blocks.
    pub loads: u64,
    /// Words stored to memory blocks.
    pub stores: u64,
    /// Release tokens fired (object frees, §2.3).
    pub release_tokens: u64,
}

impl ApMetrics {
    /// Object-cache hit rate over the configuration so far (0 when no
    /// requests were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.object_hits + self.object_misses;
        if total == 0 {
            0.0
        } else {
            self.object_hits as f64 / total as f64
        }
    }

    /// Operations per execution cycle (the effective ILP of the datapath).
    pub fn ops_per_cycle(&self) -> f64 {
        if self.exec_cycles == 0 {
            0.0
        } else {
            self.firings as f64 / self.exec_cycles as f64
        }
    }

    /// Field-wise sum, for aggregating scaled (fused) processors.
    pub fn merge(&self, other: &ApMetrics) -> ApMetrics {
        ApMetrics {
            config_cycles: self.config_cycles + other.config_cycles,
            object_hits: self.object_hits + other.object_hits,
            object_misses: self.object_misses + other.object_misses,
            stack_shifts: self.stack_shifts + other.stack_shifts,
            swap_outs: self.swap_outs + other.swap_outs,
            chains: self.chains + other.chains,
            chain_failures: self.chain_failures + other.chain_failures,
            exec_cycles: self.exec_cycles + other.exec_cycles,
            firings: self.firings + other.firings,
            loads: self.loads + other.loads,
            stores: self.stores + other.stores,
            release_tokens: self.release_tokens + other.release_tokens,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate() {
        let mut m = ApMetrics::default();
        assert_eq!(m.hit_rate(), 0.0);
        m.object_hits = 3;
        m.object_misses = 1;
        assert!((m.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ops_per_cycle() {
        let m = ApMetrics {
            exec_cycles: 10,
            firings: 25,
            ..ApMetrics::default()
        };
        assert!((m.ops_per_cycle() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_fields() {
        let a = ApMetrics {
            config_cycles: 1,
            object_hits: 2,
            release_tokens: 5,
            ..ApMetrics::default()
        };
        let b = ApMetrics {
            config_cycles: 10,
            object_hits: 20,
            release_tokens: 50,
            ..ApMetrics::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.config_cycles, 11);
        assert_eq!(m.object_hits, 22);
        assert_eq!(m.release_tokens, 55);
    }
}

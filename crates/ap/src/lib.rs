//! # vlsi-ap — the adaptive processor
//!
//! The adaptive processor (AP) is the unit the VLSI processor fuses and
//! splits. It owns an array of physical objects arranged as a **stack**
//! (§2.4), a **working-set register file** (WSRF) that tracks acquired
//! objects, a five-stage **management pipeline** (§2.2) that turns the
//! global configuration stream into a chained datapath, and the dynamic
//! CSD network (from `vlsi-csd`) over which objects communicate.
//!
//! The division of labour:
//!
//! * [`stack`] — the object stack: deterministic top-of-stack placement,
//!   stack shifts, and LRU replacement by construction (Mattson's stack
//!   algorithm, §2.4);
//! * [`wsrf`] — the working-set register file: central hit detection and
//!   the acquirement bookkeeping of §2.3 / Figure 1;
//! * [`pipeline`] — the five pipeline stages (pointer update, request
//!   fetch, request evaluation, request, acquirement) with object
//!   cache-miss handling through the configuration buffers;
//! * [`datapath`] — execution of a configured datapath: dataflow firing,
//!   steering, memory load/store streams, and release tokens (§2.3);
//! * [`processor`] — [`AdaptiveProcessor`], gluing the above to the object
//!   library and memory blocks, including virtual hardware (swap-in/out,
//!   §2.5);
//! * [`soa`] — struct-of-arrays batch execution: a datapath flattened
//!   into a [`SoaLane`] of parallel slabs so a region executor can
//!   advance many APs in one cache-friendly sweep per tick, bit-identical
//!   to the per-AP path;
//! * [`metrics`] — counters every layer reports into.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod advisor;
pub mod datapath;
pub mod error;
pub mod metrics;
pub mod pipeline;
pub mod processor;
pub mod schedule;
pub mod soa;
pub mod stack;
pub mod wsrf;

pub use advisor::{advise, advise_scalar, ResourceAdvice};
pub use datapath::{Datapath, ExecutionReport};
pub use error::ApError;
pub use metrics::ApMetrics;
pub use pipeline::{ConfigureOutcome, Pipeline, PipelineStage, TraceEvent};
pub use processor::{AdaptiveProcessor, ApConfig};
pub use schedule::ReplacementScheduler;
pub use soa::SoaLane;
pub use stack::{ObjectStack, ReferenceOutcome};
pub use wsrf::{Acquirement, WorkingSetRegisterFile};

//! The object stack: placement, stack shift, and LRU replacement (§2.4).
//!
//! "An array of physical objects composes a stack structure. The stack
//! structure creates a deterministic and locality based placement; this
//! placement is always on the top of the stack. Because a stack shift sorts
//! the objects in the array, a replacement, based on an LRU algorithm, is
//! easily implemented, and objects close to the bottom of the stack are
//! candidates for the replacement."
//!
//! The representation exploits the architecture directly: depth `i` of the
//! stack *is* physical slot `i` of the array, because logical objects — not
//! physical elements — are what shifts. A hit at depth `d` reports the
//! **stack distance** `d` (Mattson et al. \[11\]); the hit object is pulled to
//! the top and the objects above it sink one slot, which is exactly what
//! makes the structure an LRU stack and gives the inclusion property the
//! paper's CACHE model relies on: a trace's hits at capacity `C` are a
//! subset of its hits at any larger capacity.

use crate::metrics::ApMetrics;
use vlsi_object::{BoundObject, LogicalObject, ObjectId};

/// Outcome of referencing an object in the stack.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReferenceOutcome {
    /// The object was resident; `distance` is its stack depth before the
    /// reference (0 = already on top).
    Hit {
        /// Stack distance of the reference.
        distance: usize,
    },
    /// The object was not resident: an object cache miss. The caller must
    /// load it from the library and [`ObjectStack::insert_top`] it.
    Miss,
}

/// The stack of bound objects occupying the compute array.
#[derive(Clone, Debug)]
pub struct ObjectStack {
    /// `entries[0]` is the top of the stack (most recently placed/used).
    entries: Vec<BoundObject>,
    /// Array capacity `C` — the number of compute physical objects.
    capacity: usize,
    shifts: u64,
    rotations: u64,
}

impl ObjectStack {
    /// An empty stack over an array of `capacity` compute objects.
    pub fn new(capacity: usize) -> ObjectStack {
        ObjectStack {
            entries: Vec::with_capacity(capacity),
            capacity,
            shifts: 0,
            rotations: 0,
        }
    }

    /// The array capacity `C`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the stack holds no objects.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether a further insertion would evict.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// References `id`: a hit pulls it to the top (LRU refresh) and
    /// reports its previous depth; a miss leaves the stack untouched.
    pub fn reference(&mut self, id: ObjectId) -> ReferenceOutcome {
        match self.position_of(id) {
            Some(d) => {
                if d > 0 {
                    let obj = self.entries.remove(d);
                    self.entries.insert(0, obj);
                    self.rotations += 1;
                }
                ReferenceOutcome::Hit { distance: d }
            }
            None => ReferenceOutcome::Miss,
        }
    }

    /// Looks up the depth of `id` without refreshing recency.
    pub fn position_of(&self, id: ObjectId) -> Option<usize> {
        self.entries.iter().position(|b| b.id() == id)
    }

    /// Enters a loaded object at the top through a stack shift ("the
    /// processor forces a stack shift from the top of the stack to the
    /// bottom of the stack to enter the loaded logical object(s)", §2.3).
    ///
    /// Returns the evicted bottom object when the stack was full — the LRU
    /// replacement victim, which the caller must write back to the library
    /// (§2.5).
    pub fn insert_top(&mut self, obj: BoundObject) -> Option<BoundObject> {
        debug_assert!(
            self.position_of(obj.id()).is_none(),
            "inserting an object that is already resident"
        );
        self.shifts += 1;
        let evicted = if self.is_full() {
            self.entries.pop()
        } else {
            None
        };
        self.entries.insert(0, obj);
        evicted
    }

    /// Removes `id` from the stack (object release: the slots below it pop
    /// up by one, i.e. a reverse shift).
    pub fn remove(&mut self, id: ObjectId) -> Option<BoundObject> {
        let d = self.position_of(id)?;
        Some(self.entries.remove(d))
    }

    /// Borrow the bound object with `id`.
    pub fn get(&self, id: ObjectId) -> Option<&BoundObject> {
        self.entries.iter().find(|b| b.id() == id)
    }

    /// Mutably borrow the bound object with `id`.
    pub fn get_mut(&mut self, id: ObjectId) -> Option<&mut BoundObject> {
        self.entries.iter_mut().find(|b| b.id() == id)
    }

    /// The object at depth `d` (0 = top).
    pub fn at_depth(&self, d: usize) -> Option<&BoundObject> {
        self.entries.get(d)
    }

    /// Iterates top-to-bottom.
    pub fn iter(&self) -> impl Iterator<Item = &BoundObject> {
        self.entries.iter()
    }

    /// Resident object IDs, top-to-bottom.
    pub fn resident_ids(&self) -> Vec<ObjectId> {
        self.entries.iter().map(|b| b.id()).collect()
    }

    /// The LRU replacement candidate (bottom of the stack), if any.
    pub fn replacement_candidate(&self) -> Option<ObjectId> {
        self.entries.last().map(|b| b.id())
    }

    /// Drains the whole stack bottom-up, unbinding each object — used when
    /// a processor is released and its state written back.
    pub fn drain_write_back(&mut self) -> Vec<LogicalObject> {
        let mut out: Vec<LogicalObject> = Vec::with_capacity(self.entries.len());
        while let Some(b) = self.entries.pop() {
            out.push(b.unbind());
        }
        out
    }

    /// Folds this stack's counters into `m`.
    pub fn report(&self, m: &mut ApMetrics) {
        m.stack_shifts = self.shifts;
    }

    /// Full stack shifts performed (insertions at the top).
    pub fn shift_count(&self) -> u64 {
        self.shifts
    }

    /// Hit rotations performed (LRU refreshes).
    pub fn rotation_count(&self) -> u64 {
        self.rotations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_object::{LocalConfig, Operation, Word};

    fn obj(id: u32) -> BoundObject {
        BoundObject::bind(LogicalObject::compute(
            ObjectId(id),
            LocalConfig::op(Operation::IAdd),
        ))
    }

    #[test]
    fn placement_is_always_top_of_stack() {
        let mut s = ObjectStack::new(4);
        s.insert_top(obj(1));
        s.insert_top(obj(2));
        s.insert_top(obj(3));
        assert_eq!(
            s.resident_ids(),
            vec![ObjectId(3), ObjectId(2), ObjectId(1)]
        );
    }

    #[test]
    fn hit_reports_stack_distance_and_refreshes() {
        let mut s = ObjectStack::new(4);
        for i in 1..=3 {
            s.insert_top(obj(i));
        }
        // 1 is at depth 2.
        assert_eq!(
            s.reference(ObjectId(1)),
            ReferenceOutcome::Hit { distance: 2 }
        );
        // After the reference it is on top.
        assert_eq!(
            s.reference(ObjectId(1)),
            ReferenceOutcome::Hit { distance: 0 }
        );
        assert_eq!(s.resident_ids()[0], ObjectId(1));
    }

    #[test]
    fn miss_leaves_stack_untouched() {
        let mut s = ObjectStack::new(4);
        s.insert_top(obj(1));
        let before = s.resident_ids();
        assert_eq!(s.reference(ObjectId(9)), ReferenceOutcome::Miss);
        assert_eq!(s.resident_ids(), before);
    }

    #[test]
    fn full_stack_evicts_lru_bottom() {
        let mut s = ObjectStack::new(2);
        assert!(s.insert_top(obj(1)).is_none());
        assert!(s.insert_top(obj(2)).is_none());
        assert_eq!(s.replacement_candidate(), Some(ObjectId(1)));
        let evicted = s.insert_top(obj(3)).expect("must evict");
        assert_eq!(evicted.id(), ObjectId(1));
        assert_eq!(s.resident_ids(), vec![ObjectId(3), ObjectId(2)]);
    }

    #[test]
    fn lru_order_follows_references() {
        let mut s = ObjectStack::new(3);
        for i in 1..=3 {
            s.insert_top(obj(i));
        }
        // Touch 1 (deepest): order becomes 1,3,2 and 2 is now the victim.
        s.reference(ObjectId(1));
        let evicted = s.insert_top(obj(4)).unwrap();
        assert_eq!(evicted.id(), ObjectId(2));
    }

    #[test]
    fn remove_pops_object_out() {
        let mut s = ObjectStack::new(3);
        for i in 1..=3 {
            s.insert_top(obj(i));
        }
        let r = s.remove(ObjectId(2)).unwrap();
        assert_eq!(r.id(), ObjectId(2));
        assert_eq!(s.len(), 2);
        assert!(s.remove(ObjectId(2)).is_none());
    }

    #[test]
    fn drain_write_back_unbinds_everything() {
        let mut s = ObjectStack::new(3);
        s.insert_top(obj(1));
        let mut b = obj(2);
        b.regs[0] = Word(42);
        s.insert_top(b);
        let drained = s.drain_write_back();
        assert_eq!(drained.len(), 2);
        assert!(s.is_empty());
        // Live state written back into the logical object.
        let two = drained.iter().find(|l| l.id == ObjectId(2)).unwrap();
        assert_eq!(two.init[0], Word(42));
    }

    #[test]
    fn counters() {
        let mut s = ObjectStack::new(2);
        s.insert_top(obj(1));
        s.insert_top(obj(2));
        s.reference(ObjectId(1));
        assert_eq!(s.shift_count(), 2);
        assert_eq!(s.rotation_count(), 1);
        // Distance-0 hits do not rotate.
        s.reference(ObjectId(1));
        assert_eq!(s.rotation_count(), 1);
    }
}

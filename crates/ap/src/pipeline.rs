//! The five-stage management pipeline (§2.2, Figure 1).
//!
//! The pipeline does not execute data operations — it *manages resources*:
//! it walks the global configuration data stream and turns each element
//! into resident, acquired, chained objects.
//!
//! | # | Stage | What it does here |
//! |---|-------|-------------------|
//! | 1 | **Pointer update** | advances the stream pointer (independent of the rest) |
//! | 2 | **Request fetch**  | fetches the stream element |
//! | 3 | **Request evaluation** | evaluates the request (memory-access requests are classified here) |
//! | 4 | **Request** | searches for the requested objects; a miss inserts the library-load sequence |
//! | 5 | **Acquirement** | acquires the objects into the WSRF and routes their chaining over the CSD network |
//!
//! Miss handling follows §2.3: missed logical objects are loaded from the
//! library into the **configuration buffers** (Table 3 provides three,
//! [`CFB_COUNT`]), then a stack shift enters them at the top of the stack,
//! then the request is replayed ("After logical objects have been entered,
//! the objects are requested again and will be chained").
//!
//! Chaining happens as a final pass over the stream once the working set is
//! resident and positions are stable; each chain is the three-cycle
//! Figure 2 handshake. The paper's streaming rule (§2.5) makes this
//! faithful: a streaming datapath must fit the array, so its final
//! placement is exactly what the chaining pass sees.

use crate::error::ApError;
use crate::stack::{ObjectStack, ReferenceOutcome};
use crate::wsrf::WorkingSetRegisterFile;
use vlsi_csd::DynamicCsd;
use vlsi_object::{BoundObject, GlobalConfigStream, LogicalObject, ObjectId, ObjectLibrary};

/// Configuration buffers available for concurrent library loads
/// (Table 3: "64b x2 Reg. in CFB x3").
pub const CFB_COUNT: usize = 3;

/// Depth of the pipeline (cycles to fill it before the first element
/// completes).
pub const PIPELINE_DEPTH: u64 = 5;

/// The five stages, in order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PipelineStage {
    /// Stage 1: pointer update.
    PointerUpdate,
    /// Stage 2: request fetch.
    RequestFetch,
    /// Stage 3: request evaluation.
    RequestEvaluation,
    /// Stage 4: request (object search / miss insertion).
    Request,
    /// Stage 5: acquirement (WSRF + routing).
    Acquirement,
}

/// All stages in pipeline order.
pub const STAGES: [PipelineStage; 5] = [
    PipelineStage::PointerUpdate,
    PipelineStage::RequestFetch,
    PipelineStage::RequestEvaluation,
    PipelineStage::Request,
    PipelineStage::Acquirement,
];

/// One observable event of the configuration procedure — Figure 1 as
/// data. Collected by [`Pipeline::configure_traced`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TraceEvent {
    /// Stage 2: a stream element was fetched.
    Fetched {
        /// Element index in the stream.
        index: usize,
        /// The element's sink object.
        sink: ObjectId,
    },
    /// Stage 4: the request hit — the object acknowledged from the array.
    Hit {
        /// The requested object.
        id: ObjectId,
        /// Its stack distance at the time.
        distance: usize,
    },
    /// Stage 4: the request missed; the library-load sequence is inserted.
    Miss {
        /// The requested object.
        id: ObjectId,
    },
    /// Miss service: objects entered through the configuration buffers
    /// and a stack shift, stalling the pipeline.
    Loaded {
        /// Objects entered at the top of the stack.
        ids: Vec<ObjectId>,
        /// Stall cycles charged.
        stall: u64,
    },
    /// Miss service: an LRU victim was written back to the library.
    Evicted {
        /// The victim.
        id: ObjectId,
    },
    /// Stage 5: a chain was granted on the CSD network.
    Chained {
        /// Producing object.
        source: ObjectId,
        /// Consuming object.
        sink: ObjectId,
        /// Hop span of the granted channel.
        hops: usize,
    },
}

/// Result of configuring a stream through the pipeline.
#[derive(Clone, Debug, Default)]
pub struct ConfigureOutcome {
    /// Total pipeline cycles, including fill, miss stalls, and chaining
    /// handshakes.
    pub cycles: u64,
    /// Object-cache hits observed at the request stage.
    pub hits: u64,
    /// Object-cache misses (library loads).
    pub misses: u64,
    /// Logical objects evicted (LRU victims) and written back.
    pub evictions: u64,
    /// CSD routes established by the acquirement stage.
    pub routes: u64,
    /// Memory objects that were referenced (they live outside the stack,
    /// §2.6.2, and never miss).
    pub memory_refs: u64,
    /// Total hop span of the established chains — with [`routes`](Self::routes),
    /// gives the mean physical chain length the §4 wire-delay analysis
    /// keys on.
    pub chain_hops: u64,
    /// The CSD routes this configuration established, so the caller can
    /// tear down exactly this datapath's chains later (several datapaths
    /// may be resident at once, §1).
    pub route_ids: Vec<vlsi_csd::RouteId>,
}

/// The management pipeline of one adaptive processor.
///
/// The pipeline borrows the processor's structural state for the duration
/// of one `configure` call; it owns nothing but its constants.
#[derive(Clone, Copy, Debug)]
pub struct Pipeline {
    /// Configuration buffers available for concurrent miss loads.
    pub cfb_count: usize,
    /// Cycles to load one logical object from the library.
    pub load_latency: u32,
    /// Whether the §2.5 scheduling table overlaps victim write-backs with
    /// miss loads (disable for the no-table baseline).
    pub overlapped_replacement: bool,
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline {
            cfb_count: CFB_COUNT,
            load_latency: ObjectLibrary::LOAD_LATENCY,
            overlapped_replacement: true,
        }
    }
}

impl Pipeline {
    /// A pipeline with the paper's constants.
    pub fn new() -> Pipeline {
        Pipeline::default()
    }

    /// Runs the stream through the pipeline, making every referenced
    /// compute object resident and acquired, then chains every element over
    /// the CSD network.
    ///
    /// `memory_ids` lists the IDs that bind to memory objects; they are
    /// acquired but not stacked ("An object including a memory unit is
    /// treated as out of the stack").
    ///
    /// On success the stack holds the whole compute working set. Fails if
    /// the compute working set exceeds the stack capacity (the streaming
    /// rule, §2.5) or the WSRF, or if chaining runs out of channels.
    pub fn configure(
        &self,
        stream: &GlobalConfigStream,
        stack: &mut ObjectStack,
        wsrf: &mut WorkingSetRegisterFile,
        library: &mut ObjectLibrary,
        csd: &mut DynamicCsd,
        memory_ids: &[ObjectId],
    ) -> Result<ConfigureOutcome, ApError> {
        self.configure_with(stream, stack, wsrf, library, csd, memory_ids, &mut |_| {})
    }

    /// [`configure`](Self::configure), additionally collecting the
    /// Figure 1 event trace (fetch → hit/miss → load/evict → chain).
    #[allow(clippy::too_many_arguments)]
    pub fn configure_traced(
        &self,
        stream: &GlobalConfigStream,
        stack: &mut ObjectStack,
        wsrf: &mut WorkingSetRegisterFile,
        library: &mut ObjectLibrary,
        csd: &mut DynamicCsd,
        memory_ids: &[ObjectId],
    ) -> Result<(ConfigureOutcome, Vec<TraceEvent>), ApError> {
        let mut events = Vec::new();
        let out = self.configure_with(stream, stack, wsrf, library, csd, memory_ids, &mut |e| {
            events.push(e)
        })?;
        Ok((out, events))
    }

    #[allow(clippy::too_many_arguments)]
    fn configure_with(
        &self,
        stream: &GlobalConfigStream,
        stack: &mut ObjectStack,
        wsrf: &mut WorkingSetRegisterFile,
        library: &mut ObjectLibrary,
        csd: &mut DynamicCsd,
        memory_ids: &[ObjectId],
        emit: &mut dyn FnMut(TraceEvent),
    ) -> Result<ConfigureOutcome, ApError> {
        if stream.is_empty() {
            return Err(ApError::EmptyDatapath);
        }
        let mut out = ConfigureOutcome::default();

        // Streaming rule up front: the compute working set must fit C.
        let compute_ws: Vec<ObjectId> = stream
            .working_set()
            .into_iter()
            .filter(|id| !memory_ids.contains(id))
            .collect();
        if compute_ws.len() > stack.capacity() {
            return Err(ApError::WorkingSetExceedsCapacity {
                working_set: compute_ws.len(),
                capacity: stack.capacity(),
            });
        }

        // Pipeline fill.
        out.cycles = PIPELINE_DEPTH;

        // Stages 1-4 for every element: pointer update / fetch / evaluate
        // overlap at one element per cycle; the request stage adds stalls
        // on misses.
        for (index, element) in stream.elements().iter().enumerate() {
            out.cycles += 1; // one element drains per cycle when hitting
            emit(TraceEvent::Fetched {
                index,
                sink: element.sink,
            });
            let mut missed: Vec<ObjectId> = Vec::new();
            for id in element.referenced() {
                if memory_ids.contains(&id) {
                    // Memory objects are reachable but outside the stack.
                    out.memory_refs += 1;
                    wsrf.acquire(id)?;
                    continue;
                }
                if wsrf.search(id) {
                    if let Some(distance) = stack.position_of(id) {
                        // Central hit detection: already acquired and
                        // resident. Refresh recency in the stack.
                        stack.reference(id);
                        out.hits += 1;
                        emit(TraceEvent::Hit { id, distance });
                        continue;
                    }
                }
                match stack.reference(id) {
                    ReferenceOutcome::Hit { distance } => {
                        out.hits += 1;
                        emit(TraceEvent::Hit { id, distance });
                        wsrf.acquire(id)?;
                    }
                    ReferenceOutcome::Miss => {
                        emit(TraceEvent::Miss { id });
                        if !missed.contains(&id) {
                            missed.push(id);
                        }
                    }
                }
            }
            if !missed.is_empty() {
                let stall =
                    self.handle_misses(&missed, stack, wsrf, library, csd, &mut out, emit)?;
                emit(TraceEvent::Loaded { ids: missed, stall });
                out.cycles += stall;
            }
        }

        // Acquirement/chaining pass: positions are now final. A repeated
        // source→sink pair reuses its existing chain — the grant persists
        // in the memory cell, so re-requesting it costs nothing.
        let mut chained: Vec<(usize, usize)> = Vec::new();
        for element in stream.elements() {
            let Some(sink_pos) = self.position_of(element.sink, stack, memory_ids, csd) else {
                return Err(ApError::UndefinedSource(element.sink));
            };
            for src in element.sources() {
                let Some(src_pos) = self.position_of(src, stack, memory_ids, csd) else {
                    return Err(ApError::UndefinedSource(src));
                };
                if src_pos == sink_pos {
                    // Adjacent placement: chaining uses the local bypass,
                    // no global channel is consumed.
                    continue;
                }
                if chained.contains(&(src_pos, sink_pos)) {
                    continue;
                }
                let route = csd.connect(src_pos, sink_pos)?;
                wsrf.add_route(element.sink, route)?;
                chained.push((src_pos, sink_pos));
                out.route_ids.push(route);
                out.routes += 1;
                out.chain_hops += src_pos.abs_diff(sink_pos) as u64;
                emit(TraceEvent::Chained {
                    source: src,
                    sink: element.sink,
                    hops: src_pos.abs_diff(sink_pos),
                });
                out.cycles += 3; // Figure 2 handshake: request/grant/ack
            }
        }
        Ok(out)
    }

    /// Loads missed objects through the configuration buffers and enters
    /// them with stack shifts. Returns the stall cycles incurred.
    #[allow(clippy::too_many_arguments)]
    fn handle_misses(
        &self,
        missed: &[ObjectId],
        stack: &mut ObjectStack,
        wsrf: &mut WorkingSetRegisterFile,
        library: &mut ObjectLibrary,
        csd: &mut DynamicCsd,
        out: &mut ConfigureOutcome,
        emit: &mut dyn FnMut(TraceEvent),
    ) -> Result<u64, ApError> {
        let mut stall = 0u64;
        let mut evictions = 0usize;
        for &id in missed {
            let logical: LogicalObject = library.load(id)?;
            out.misses += 1;
            // Entering at the top shifts every resident object (and the
            // network's segment ownership) one slot toward the bottom.
            let evicted = stack.insert_top(BoundObject::bind(logical));
            let torn_down = csd.stack_shift();
            debug_assert!(
                torn_down.is_empty(),
                "configuration established routes before placement settled"
            );
            stall += 1; // one cycle per shift
            if let Some(victim) = evicted {
                out.evictions += 1;
                evictions += 1;
                emit(TraceEvent::Evicted { id: victim.id() });
                wsrf.release(victim.id());
                library.write_back(victim.unbind());
            }
            wsrf.acquire(id)?;
        }
        // Transfer time: loads batch through the CFBs; victim write-backs
        // overlap them when the §2.5 scheduling table is present.
        let scheduler = crate::schedule::ReplacementScheduler::configured(
            self.cfb_count,
            self.load_latency,
            self.load_latency,
            self.overlapped_replacement,
        );
        stall += scheduler.miss_penalty(missed.len(), evictions);
        Ok(stall)
    }

    /// Resolves an object to its CSD position. Compute objects sit at
    /// their stack depth; memory objects sit past the end of the stack
    /// region, in ID order of `memory_ids` (they are out of the stack but
    /// "the interconnection network has to be reachable to these objects",
    /// §2.6.2).
    fn position_of(
        &self,
        id: ObjectId,
        stack: &ObjectStack,
        memory_ids: &[ObjectId],
        csd: &DynamicCsd,
    ) -> Option<usize> {
        if let Some(mi) = memory_ids.iter().position(|&m| m == id) {
            let pos = stack.capacity() + mi;
            return (pos < csd.positions()).then_some(pos);
        }
        stack.position_of(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_object::{GlobalConfigElement, LocalConfig, Operation};

    fn setup(
        capacity: usize,
        n_mem: usize,
        channels: usize,
    ) -> (
        ObjectStack,
        WorkingSetRegisterFile,
        ObjectLibrary,
        DynamicCsd,
    ) {
        let stack = ObjectStack::new(capacity);
        let wsrf = WorkingSetRegisterFile::new();
        let mut library = ObjectLibrary::new();
        for i in 0..32 {
            library
                .register(LogicalObject::compute(
                    ObjectId(i),
                    LocalConfig::op(Operation::IAdd),
                ))
                .unwrap();
        }
        for i in 0..n_mem {
            library
                .register(LogicalObject::memory(
                    ObjectId(100 + i as u32),
                    LocalConfig::op(Operation::Load),
                ))
                .unwrap();
        }
        let csd = DynamicCsd::new(capacity + n_mem, channels);
        (stack, wsrf, library, csd)
    }

    fn chain(ids: &[(u32, u32)]) -> GlobalConfigStream {
        ids.iter()
            .map(|&(sink, src)| GlobalConfigElement::unary(ObjectId(sink), ObjectId(src)))
            .collect()
    }

    #[test]
    fn configure_loads_working_set() {
        let (mut stack, mut wsrf, mut library, mut csd) = setup(8, 0, 8);
        let stream = chain(&[(1, 0), (2, 1), (3, 2)]);
        let out = Pipeline::new()
            .configure(&stream, &mut stack, &mut wsrf, &mut library, &mut csd, &[])
            .unwrap();
        assert_eq!(out.misses, 4); // objects 0..=3, all compulsory
        assert_eq!(stack.len(), 4);
        assert_eq!(wsrf.len(), 4);
        assert!(out.routes > 0);
        assert!(out.cycles >= PIPELINE_DEPTH + 3);
        csd.check_invariants().unwrap();
    }

    #[test]
    fn second_configuration_hits() {
        let (mut stack, mut wsrf, mut library, mut csd) = setup(8, 0, 8);
        let stream = chain(&[(1, 0), (2, 1)]);
        let p = Pipeline::new();
        let first = p
            .configure(&stream, &mut stack, &mut wsrf, &mut library, &mut csd, &[])
            .unwrap();
        assert_eq!(first.hits, 1); // object 1 re-referenced as source
                                   // Tear down routes, configure again: everything is resident.
        let routes: Vec<_> = csd.routes().map(|r| r.id).collect();
        for r in routes {
            csd.disconnect(r).unwrap();
        }
        let second = p
            .configure(&stream, &mut stack, &mut wsrf, &mut library, &mut csd, &[])
            .unwrap();
        assert_eq!(second.misses, 0);
        assert!(second.cycles < first.cycles);
    }

    #[test]
    fn working_set_over_capacity_is_rejected() {
        let (mut stack, mut wsrf, mut library, mut csd) = setup(2, 0, 8);
        let stream = chain(&[(1, 0), (2, 1), (3, 2)]);
        let err = Pipeline::new()
            .configure(&stream, &mut stack, &mut wsrf, &mut library, &mut csd, &[])
            .unwrap_err();
        assert!(matches!(err, ApError::WorkingSetExceedsCapacity { .. }));
    }

    #[test]
    fn memory_objects_bypass_the_stack() {
        let (mut stack, mut wsrf, mut library, mut csd) = setup(4, 2, 8);
        // load (mem 100) -> compute 1 -> store (mem 101)
        let stream: GlobalConfigStream = [
            GlobalConfigElement::unary(ObjectId(1), ObjectId(100)),
            GlobalConfigElement::unary(ObjectId(101), ObjectId(1)),
        ]
        .into_iter()
        .collect();
        let out = Pipeline::new()
            .configure(
                &stream,
                &mut stack,
                &mut wsrf,
                &mut library,
                &mut csd,
                &[ObjectId(100), ObjectId(101)],
            )
            .unwrap();
        assert_eq!(out.memory_refs, 2);
        assert_eq!(stack.len(), 1, "only the compute object is stacked");
        assert_eq!(wsrf.len(), 3);
        // Chains reach positions 4 and 5 (the memory region).
        assert_eq!(out.routes, 2);
        csd.check_invariants().unwrap();
    }

    #[test]
    fn miss_stalls_respect_cfb_parallelism() {
        // 6 misses with 3 CFBs -> 2 load batches; with 1 CFB -> 6 batches.
        let stream = chain(&[(1, 0), (3, 2), (5, 4)]);
        let (mut stack, mut wsrf, mut library, mut csd) = setup(8, 0, 8);
        let wide = Pipeline::new()
            .configure(&stream, &mut stack, &mut wsrf, &mut library, &mut csd, &[])
            .unwrap();
        let (mut stack2, mut wsrf2, mut library2, mut csd2) = setup(8, 0, 8);
        let narrow = Pipeline {
            cfb_count: 1,
            ..Pipeline::new()
        }
        .configure(
            &stream,
            &mut stack2,
            &mut wsrf2,
            &mut library2,
            &mut csd2,
            &[],
        )
        .unwrap();
        assert!(narrow.cycles > wide.cycles);
    }

    #[test]
    fn trace_reproduces_figure1_procedure() {
        // Configure a 2-element stream cold, then again warm: the traces
        // must show (miss, load, chain) first and (hit, chain) second.
        let (mut stack, mut wsrf, mut library, mut csd) = setup(8, 0, 8);
        let p = Pipeline::new();
        let stream = chain(&[(1, 0)]);
        let (_, cold) = p
            .configure_traced(&stream, &mut stack, &mut wsrf, &mut library, &mut csd, &[])
            .unwrap();
        assert!(matches!(cold[0], TraceEvent::Fetched { index: 0, .. }));
        let misses = cold
            .iter()
            .filter(|e| matches!(e, TraceEvent::Miss { .. }))
            .count();
        assert_eq!(misses, 2);
        assert!(cold.iter().any(|e| matches!(e, TraceEvent::Loaded { .. })));
        assert!(matches!(
            cold.last(),
            Some(TraceEvent::Chained { hops: 1, .. })
        ));
        // Warm pass: hits, no loads, same chain.
        let routes: Vec<_> = csd.routes().map(|r| r.id).collect();
        for r in routes {
            csd.disconnect(r).unwrap();
        }
        let (_, warm) = p
            .configure_traced(&stream, &mut stack, &mut wsrf, &mut library, &mut csd, &[])
            .unwrap();
        assert!(warm.iter().any(|e| matches!(e, TraceEvent::Hit { .. })));
        assert!(!warm.iter().any(|e| matches!(e, TraceEvent::Miss { .. })));
        assert!(!warm.iter().any(|e| matches!(e, TraceEvent::Loaded { .. })));
    }

    #[test]
    fn trace_shows_evictions() {
        let (mut stack, mut wsrf, mut library, mut csd) = setup(2, 0, 8);
        let p = Pipeline::new();
        p.configure(
            &chain(&[(1, 0)]),
            &mut stack,
            &mut wsrf,
            &mut library,
            &mut csd,
            &[],
        )
        .unwrap();
        let routes: Vec<_> = csd.routes().map(|r| r.id).collect();
        for r in routes {
            csd.disconnect(r).unwrap();
        }
        let (_, trace) = p
            .configure_traced(
                &chain(&[(3, 2)]),
                &mut stack,
                &mut wsrf,
                &mut library,
                &mut csd,
                &[],
            )
            .unwrap();
        let evictions: Vec<_> = trace
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Evicted { id } => Some(*id),
                _ => None,
            })
            .collect();
        // First configure requested sink 1 then source 0, so 0 sits on
        // top and 1 at the bottom: 1 is evicted first.
        assert_eq!(evictions, vec![ObjectId(1), ObjectId(0)]);
    }

    #[test]
    fn scheduling_table_overlaps_writebacks() {
        // Small stack so misses evict: with the §2.5 table, the victim
        // write-backs hide behind the loads; the serial baseline pays
        // them explicitly.
        let run = |overlapped: bool| -> u64 {
            let (mut stack, mut wsrf, mut library, mut csd) = setup(2, 0, 8);
            let p = Pipeline {
                overlapped_replacement: overlapped,
                ..Pipeline::new()
            };
            let mut cycles = 0;
            for pair in [(1u32, 0u32), (3, 2), (5, 4), (7, 6)] {
                // Tear down routes between datapaths.
                let routes: Vec<_> = csd.routes().map(|r| r.id).collect();
                for r in routes {
                    csd.disconnect(r).unwrap();
                }
                cycles += p
                    .configure(
                        &chain(&[pair]),
                        &mut stack,
                        &mut wsrf,
                        &mut library,
                        &mut csd,
                        &[],
                    )
                    .unwrap()
                    .cycles;
            }
            cycles
        };
        let with_table = run(true);
        let without = run(false);
        assert!(
            with_table < without,
            "table {with_table} !< serial {without}"
        );
    }

    #[test]
    fn unknown_object_errors() {
        let (mut stack, mut wsrf, mut library, mut csd) = setup(8, 0, 8);
        let stream = chain(&[(60, 61)]); // not registered
        let err = Pipeline::new()
            .configure(&stream, &mut stack, &mut wsrf, &mut library, &mut csd, &[])
            .unwrap_err();
        assert!(matches!(err, ApError::Object(_)));
    }

    #[test]
    fn eviction_writes_back_and_releases() {
        // Capacity 2, three objects referenced in sequence as separate
        // single-object elements (no streaming violation: working set per
        // stream must fit, so use separate configures).
        let (mut stack, mut wsrf, mut library, mut csd) = setup(2, 0, 8);
        let p = Pipeline::new();
        p.configure(
            &chain(&[(1, 0)]),
            &mut stack,
            &mut wsrf,
            &mut library,
            &mut csd,
            &[],
        )
        .unwrap();
        // Free routes between datapaths.
        let routes: Vec<_> = csd.routes().map(|r| r.id).collect();
        for r in routes {
            csd.disconnect(r).unwrap();
        }
        let out = p
            .configure(
                &chain(&[(3, 2)]),
                &mut stack,
                &mut wsrf,
                &mut library,
                &mut csd,
                &[],
            )
            .unwrap();
        assert_eq!(out.evictions, 2); // 0 and 1 evicted by 3 and 2
                                      // Request order is sink-first (3 then 2), so 2 ends up on top.
        assert_eq!(stack.resident_ids(), vec![ObjectId(2), ObjectId(3)]);
        assert_eq!(library.store_count(), 2);
        assert!(wsrf.get(ObjectId(0)).is_none());
    }
}

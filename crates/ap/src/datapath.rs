//! Execution of a configured datapath.
//!
//! After acquirement the objects "are free from control" (§2.2): data
//! simply flows through the chained operators. This module is the dataflow
//! engine that makes a configured stream *run*:
//!
//! * every object is a node with up to two value ports and one predicate
//!   port, single-token input latches, and a single-token output latch
//!   (backpressure propagates naturally, as it would on gated channels);
//! * operations fire when their inputs are present, take their
//!   [`Operation::latency`](vlsi_object::Operation::latency) cycles, and
//!   broadcast their result to every successor (fan-out over one granted
//!   channel);
//! * **memory objects** produce load streams and absorb store streams. A
//!   `Load` with no address producer streams sequentially from its block
//!   (base pointer in `regs[0]`, block index in `regs[1]`, element count in
//!   `regs[2]`); a `Store` with no address producer writes sequentially the
//!   same way. This is the "load and store streams" traffic the paper's
//!   GOPS figure excludes (§4.1) and the Figure 7(d) mailbox pattern;
//! * **steer** objects guard data-intensive datapaths from control flow:
//!   they forward their value only when the predicate matches, which is
//!   how `if (x>y) z=x+1 else z=y+2` becomes two speculative arms;
//! * when the run drains, **release tokens** propagate from the stream
//!   sources through the datapath (§2.2: "An object is released by
//!   receiving and firing release token(s) from the preceding object(s)"),
//!   yielding the release order the processor uses to free resources.

use crate::error::ApError;
use crate::metrics::ApMetrics;
use std::collections::HashMap;
use vlsi_object::{
    GlobalConfigStream, LocalConfig, MemoryBlock, ObjectId, ObjectKind, Operation, Word,
    PHYS_REGISTERS,
};

/// Static description of one datapath node, assembled from a bound object.
#[derive(Clone, Debug)]
pub struct NodeSpec {
    /// Object identity.
    pub id: ObjectId,
    /// Local configuration (operation + immediate).
    pub cfg: LocalConfig,
    /// Object species.
    pub kind: ObjectKind,
    /// Register contents at execution start. For memory objects:
    /// `regs[0]` = stream pointer, `regs[1]` = memory-block index,
    /// `regs[2]` = stream length (0 = unbounded).
    pub regs: [Word; PHYS_REGISTERS],
}

/// Per-port input latch indices.
pub(crate) const LHS: usize = 0;
pub(crate) const RHS: usize = 1;
pub(crate) const PRED: usize = 2;

#[derive(Clone, Debug)]
pub(crate) struct Node {
    pub(crate) spec: NodeSpec,
    pub(crate) srcs: [Option<usize>; 3],
    pub(crate) succs: Vec<(usize, usize)>, // (node index, port)
    inputs: [Option<Word>; 3],
    in_flight: Option<(u32, Option<Word>)>,
    out: Option<Word>,
    produced: u64,
    exhausted: bool,
}

impl Node {
    fn is_stream_load(&self) -> bool {
        self.spec.cfg.op == Operation::Load && self.srcs[LHS].is_none()
    }

    fn is_stream_store(&self) -> bool {
        self.spec.cfg.op == Operation::Store && self.srcs[LHS].is_none()
    }

    fn stream_limit(&self) -> u64 {
        self.spec.regs[2].as_u64()
    }
}

/// Outcome of one datapath run.
#[derive(Clone, Debug, Default)]
pub struct ExecutionReport {
    /// Cycles simulated.
    pub cycles: u64,
    /// Operation firings.
    pub firings: u64,
    /// Words read from memory blocks.
    pub loads: u64,
    /// Words written to memory blocks.
    pub stores: u64,
    /// Values collected at taps (successor-less compute nodes), per object.
    pub taps: HashMap<ObjectId, Vec<Word>>,
    /// Firings per object — the utilisation profile of the datapath
    /// (the busiest object bounds the stream rate).
    pub node_firings: HashMap<ObjectId, u64>,
    /// Whether the datapath reached quiescence (nothing in flight, nothing
    /// deliverable) rather than the cycle budget.
    pub drained: bool,
    /// Release tokens fired while freeing the datapath.
    pub release_tokens: u64,
    /// Object release order (sources first), as driven by release tokens.
    pub release_order: Vec<ObjectId>,
}

/// A configured, executable datapath.
#[derive(Clone, Debug)]
pub struct Datapath {
    pub(crate) nodes: Vec<Node>,
    index: HashMap<ObjectId, usize>,
}

impl Datapath {
    /// Builds the dataflow graph for `stream`, resolving each referenced
    /// object through `resolve` (typically a closure over the object stack
    /// and the memory objects).
    ///
    /// Port wiring: the first element naming a sink wires its ports;
    /// later elements only fill ports still unconnected.
    pub fn build(
        stream: &GlobalConfigStream,
        mut resolve: impl FnMut(ObjectId) -> Option<NodeSpec>,
    ) -> Result<Datapath, ApError> {
        if stream.is_empty() {
            return Err(ApError::EmptyDatapath);
        }
        let mut dp = Datapath {
            nodes: Vec::new(),
            index: HashMap::new(),
        };
        // First pass: materialise nodes for every referenced object.
        for id in stream.working_set() {
            let spec = resolve(id).ok_or(ApError::UndefinedSource(id))?;
            let idx = dp.nodes.len();
            dp.nodes.push(Node {
                spec,
                srcs: [None; 3],
                succs: Vec::new(),
                inputs: [None; 3],
                in_flight: None,
                out: None,
                produced: 0,
                exhausted: false,
            });
            dp.index.insert(id, idx);
        }
        // Second pass: wire ports.
        for e in stream.elements() {
            let sink = dp.index[&e.sink];
            let ports = [(LHS, e.src_lhs), (RHS, e.src_rhs), (PRED, e.src_pred)];
            for (port, src) in ports {
                let Some(src_id) = src else { continue };
                let src_idx = dp.index[&src_id];
                if dp.nodes[sink].srcs[port].is_none() {
                    dp.nodes[sink].srcs[port] = Some(src_idx);
                    dp.nodes[src_idx].succs.push((sink, port));
                }
            }
        }
        Ok(dp)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the datapath has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// IDs of tap nodes (compute nodes with no successors) whose outputs
    /// the report collects.
    pub fn tap_ids(&self) -> Vec<ObjectId> {
        self.nodes
            .iter()
            .filter(|n| n.succs.is_empty() && !n.spec.cfg.op.is_memory_op())
            .map(|n| n.spec.id)
            .collect()
    }

    /// Runs the datapath until it drains or `max_cycles` elapse.
    ///
    /// `memory` is the AP's array of memory blocks, indexed by each memory
    /// node's `regs[1]`. Tap outputs are capped at `tap_limit` values per
    /// tap; a datapath whose only sinks are taps drains when every tap has
    /// `tap_limit` values (pure streams would otherwise never finish).
    pub fn run(
        &mut self,
        memory: &mut [MemoryBlock],
        tap_limit: u64,
        max_cycles: u64,
    ) -> Result<ExecutionReport, ApError> {
        // A resident datapath can run repeatedly: clear the transient
        // dataflow state (latches, in-flight ops, production counters) but
        // keep the register state — stream pointers advance across runs.
        for n in &mut self.nodes {
            n.inputs = [None; 3];
            n.in_flight = None;
            n.out = None;
            n.produced = 0;
            n.exhausted = false;
        }
        let mut report = ExecutionReport::default();
        for id in self.tap_ids() {
            report.taps.insert(id, Vec::new());
        }
        for cycle in 0..max_cycles {
            let mut activity = false;

            // Phase 1: deliver outputs to successor latches (broadcast with
            // backpressure: the output clears only when all successors have
            // accepted).
            for i in 0..self.nodes.len() {
                let Some(v) = self.nodes[i].out else { continue };
                if self.nodes[i].succs.is_empty() {
                    // A tap: collect.
                    let id = self.nodes[i].spec.id;
                    if let Some(vals) = report.taps.get_mut(&id) {
                        if (vals.len() as u64) < tap_limit {
                            vals.push(v);
                            activity = true;
                        }
                    }
                    self.nodes[i].out = None;
                    self.nodes[i].produced += 1;
                    continue;
                }
                let succs = self.nodes[i].succs.clone();
                let all_free = succs
                    .iter()
                    .all(|&(s, p)| self.nodes[s].inputs[p].is_none());
                if all_free {
                    for (s, p) in succs {
                        self.nodes[s].inputs[p] = Some(v);
                    }
                    self.nodes[i].out = None;
                    self.nodes[i].produced += 1;
                    activity = true;
                }
            }

            // Phase 2: retire in-flight operations whose latency elapsed.
            for n in &mut self.nodes {
                if let Some((remaining, result)) = n.in_flight {
                    if remaining <= 1 {
                        n.in_flight = None;
                        if let Some(v) = result {
                            debug_assert!(n.out.is_none());
                            n.out = Some(v);
                        }
                        activity = true;
                    } else {
                        n.in_flight = Some((remaining - 1, result));
                        activity = true;
                    }
                }
            }

            // Phase 3: fire ready nodes.
            for i in 0..self.nodes.len() {
                if self.try_fire(i, memory, &mut report)? {
                    *report
                        .node_firings
                        .entry(self.nodes[i].spec.id)
                        .or_insert(0) += 1;
                    activity = true;
                }
            }

            report.cycles = cycle + 1;
            if !activity {
                report.drained = true;
                break;
            }
        }
        if !report.drained {
            // The cycle budget elapsed with work still in flight.
            return Err(ApError::ExecutionTimeout {
                cycles: report.cycles,
            });
        }
        self.fire_release_tokens(&mut report);
        Ok(report)
    }

    /// Attempts to fire node `i`. Returns whether it fired.
    fn try_fire(
        &mut self,
        i: usize,
        memory: &mut [MemoryBlock],
        report: &mut ExecutionReport,
    ) -> Result<bool, ApError> {
        let n = &self.nodes[i];
        if n.in_flight.is_some() || n.out.is_some() || n.exhausted {
            return Ok(false);
        }
        let op = n.spec.cfg.op;
        let imm = n.spec.cfg.imm;
        match op {
            Operation::Const => {
                // A constant regenerates whenever downstream consumed it,
                // up to its stream limit (regs[2]; 0 = one-shot).
                let limit = n.spec.regs[2].as_u64().max(1);
                if n.produced >= limit {
                    self.nodes[i].exhausted = true;
                    return Ok(false);
                }
                self.nodes[i].in_flight = Some((op.latency(), Some(imm)));
                report.firings += 1;
                Ok(true)
            }
            Operation::Load => {
                if self.nodes[i].is_stream_load() {
                    let limit = self.nodes[i].stream_limit();
                    if limit != 0
                        && self.nodes[i].produced + u64::from(self.nodes[i].in_flight.is_some())
                            >= limit
                    {
                        self.nodes[i].exhausted = true;
                        return Ok(false);
                    }
                    let block = self.nodes[i].spec.regs[1].as_u64() as usize;
                    let addr = self.nodes[i].spec.regs[0].as_u64();
                    let mem = memory
                        .get_mut(block)
                        .ok_or(ApError::UndefinedSource(self.nodes[i].spec.id))?;
                    let v = mem.load(addr)?;
                    self.nodes[i].spec.regs[0] = Word(addr + 1);
                    self.nodes[i].in_flight = Some((op.latency(), Some(v)));
                    report.loads += 1;
                    report.firings += 1;
                    Ok(true)
                } else {
                    // Addressed load: wait for the address token.
                    let Some(addr_tok) = self.nodes[i].inputs[LHS] else {
                        return Ok(false);
                    };
                    self.nodes[i].inputs[LHS] = None;
                    let block = self.nodes[i].spec.regs[1].as_u64() as usize;
                    let base = self.nodes[i].spec.regs[0].as_u64();
                    let mem = memory
                        .get_mut(block)
                        .ok_or(ApError::UndefinedSource(self.nodes[i].spec.id))?;
                    let v = mem.load(base + addr_tok.as_u64())?;
                    self.nodes[i].in_flight = Some((op.latency(), Some(v)));
                    report.loads += 1;
                    report.firings += 1;
                    Ok(true)
                }
            }
            Operation::Store => {
                let Some(data) = self.nodes[i].inputs[RHS] else {
                    return Ok(false);
                };
                let addr = if self.nodes[i].is_stream_store() {
                    let a = self.nodes[i].spec.regs[0].as_u64();
                    self.nodes[i].spec.regs[0] = Word(a + 1);
                    a
                } else {
                    let Some(addr_tok) = self.nodes[i].inputs[LHS] else {
                        return Ok(false);
                    };
                    self.nodes[i].inputs[LHS] = None;
                    addr_tok.as_u64()
                };
                self.nodes[i].inputs[RHS] = None;
                let block = self.nodes[i].spec.regs[1].as_u64() as usize;
                let mem = memory
                    .get_mut(block)
                    .ok_or(ApError::UndefinedSource(self.nodes[i].spec.id))?;
                mem.store(addr, data)?;
                // Stores produce no token; model latency as instant retire.
                self.nodes[i].produced += 1;
                report.stores += 1;
                report.firings += 1;
                Ok(true)
            }
            Operation::SteerTrue | Operation::SteerFalse => {
                let (Some(v), Some(p)) = (self.nodes[i].inputs[LHS], self.nodes[i].inputs[PRED])
                else {
                    return Ok(false);
                };
                self.nodes[i].inputs[LHS] = None;
                self.nodes[i].inputs[PRED] = None;
                let pass = p.as_bool() == (op == Operation::SteerTrue);
                report.firings += 1;
                if pass {
                    self.nodes[i].in_flight = Some((op.latency(), Some(v)));
                } else {
                    // Token consumed silently; the arm stays dark.
                }
                Ok(true)
            }
            Operation::Merge => {
                let port = if self.nodes[i].inputs[LHS].is_some() {
                    LHS
                } else if self.nodes[i].inputs[RHS].is_some() {
                    RHS
                } else {
                    return Ok(false);
                };
                let v = self.nodes[i].inputs[port].take().unwrap();
                self.nodes[i].in_flight = Some((op.latency(), Some(v)));
                report.firings += 1;
                Ok(true)
            }
            _ => {
                // Plain value operation: all declared ports must hold tokens.
                let arity = op.arity();
                let need_lhs = arity >= 1;
                let need_rhs = arity >= 2;
                if (need_lhs && self.nodes[i].inputs[LHS].is_none())
                    || (need_rhs && self.nodes[i].inputs[RHS].is_none())
                {
                    return Ok(false);
                }
                let lhs = if need_lhs {
                    self.nodes[i].inputs[LHS].take().unwrap()
                } else {
                    Word::ZERO
                };
                let rhs = if need_rhs {
                    self.nodes[i].inputs[RHS].take().unwrap()
                } else {
                    Word::ZERO
                };
                let result = op
                    .eval(lhs, rhs, imm)
                    .expect("context-free operation must evaluate");
                self.nodes[i].in_flight = Some((op.latency(), Some(result)));
                report.firings += 1;
                Ok(true)
            }
        }
    }

    /// Propagates release tokens from the sources through the graph,
    /// recording the release order. Sources (no wired inputs) fire first;
    /// every node releases after receiving a token from each predecessor.
    fn fire_release_tokens(&self, report: &mut ExecutionReport) {
        let n = self.nodes.len();
        let mut pending: Vec<usize> = self
            .nodes
            .iter()
            .map(|node| node.srcs.iter().flatten().count())
            .collect();
        let mut queue: Vec<usize> = (0..n).filter(|&i| pending[i] == 0).collect();
        let mut head = 0;
        while head < queue.len() {
            let i = queue[head];
            head += 1;
            report.release_order.push(self.nodes[i].spec.id);
            report.release_tokens += 1;
            for &(s, _) in &self.nodes[i].succs {
                // One token per edge.
                report.release_tokens += 1;
                pending[s] -= 1;
                if pending[s] == 0 {
                    queue.push(s);
                }
            }
        }
        // Nodes on cycles never receive all tokens; they are released by
        // force at the end (the paper's datapaths are acyclic).
        for (node, &p) in self.nodes.iter().zip(&pending) {
            if p > 0 {
                report.release_order.push(node.spec.id);
            }
        }
    }

    /// Folds a report into the processor metrics.
    pub fn report_metrics(report: &ExecutionReport, m: &mut ApMetrics) {
        m.exec_cycles += report.cycles;
        m.firings += report.firings;
        m.loads += report.loads;
        m.stores += report.stores;
        m.release_tokens += report.release_tokens;
    }

    /// Writes live register state back into specs (memory stream pointers
    /// advance across runs). Exposed so the processor can persist state to
    /// the bound objects.
    pub fn specs(&self) -> impl Iterator<Item = &NodeSpec> {
        self.nodes.iter().map(|n| &n.spec)
    }

    /// Writes register state produced by a batch run back into the node
    /// specs, exactly as [`run`](Self::run) mutates them in place —
    /// stream pointers must advance across runs on either path.
    pub(crate) fn write_back_regs(&mut self, regs: &[[Word; PHYS_REGISTERS]]) {
        debug_assert_eq!(regs.len(), self.nodes.len());
        for (n, r) in self.nodes.iter_mut().zip(regs) {
            n.spec.regs = *r;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_object::GlobalConfigElement;

    fn compute_spec(id: u32, op: Operation, imm: u64) -> NodeSpec {
        NodeSpec {
            id: ObjectId(id),
            cfg: LocalConfig::with_imm(op, Word(imm)),
            kind: ObjectKind::Compute,
            regs: [Word::ZERO; PHYS_REGISTERS],
        }
    }

    fn mem_spec(id: u32, op: Operation, base: u64, block: u64, len: u64) -> NodeSpec {
        let mut regs = [Word::ZERO; PHYS_REGISTERS];
        regs[0] = Word(base);
        regs[1] = Word(block);
        regs[2] = Word(len);
        NodeSpec {
            id: ObjectId(id),
            cfg: LocalConfig::op(op),
            kind: ObjectKind::Memory,
            regs,
        }
    }

    /// const(5) -> addimm(+3) -> tap
    #[test]
    fn constant_through_addimm() {
        let stream: GlobalConfigStream = [GlobalConfigElement::unary(ObjectId(1), ObjectId(0))]
            .into_iter()
            .collect();
        let mut dp = Datapath::build(&stream, |id| match id.0 {
            0 => Some(compute_spec(0, Operation::Const, 5)),
            1 => Some(compute_spec(1, Operation::AddImm, 3)),
            _ => None,
        })
        .unwrap();
        let mut mem: Vec<MemoryBlock> = Vec::new();
        let report = dp.run(&mut mem, 1, 10_000).unwrap();
        assert!(report.drained);
        assert_eq!(report.taps[&ObjectId(1)], vec![Word(8)]);
    }

    /// Streaming: load 8 words, double them, store them back.
    #[test]
    fn load_double_store_stream() {
        let stream: GlobalConfigStream = [
            GlobalConfigElement::unary(ObjectId(1), ObjectId(0)), // mul <- load
            GlobalConfigElement {
                sink: ObjectId(2),
                src_lhs: None,
                src_rhs: Some(ObjectId(1)),
                src_pred: None,
            }, // store data <- mul
        ]
        .into_iter()
        .collect();
        let mut dp = Datapath::build(&stream, |id| match id.0 {
            0 => Some(mem_spec(0, Operation::Load, 0, 0, 8)),
            1 => Some(compute_spec(1, Operation::MulImm, 2)),
            2 => Some(mem_spec(2, Operation::Store, 100, 0, 0)),
            _ => None,
        })
        .unwrap();
        let mut mem = vec![MemoryBlock::new()];
        for i in 0..8 {
            mem[0].store(i, Word(i + 1)).unwrap();
        }
        let report = dp.run(&mut mem, 0, 10_000).unwrap();
        assert!(report.drained);
        assert_eq!(report.loads, 8);
        assert_eq!(report.stores, 8);
        for i in 0..8u64 {
            assert_eq!(mem[0].peek(100 + i).unwrap(), Word((i + 1) * 2));
        }
    }

    /// Figure 7 in miniature: if (x > y) z = x+1 else z = y+2.
    #[test]
    fn conditional_steering() {
        // Objects: 0=const x, 1=const y, 2=cmp(x>y), 3=steerT(x), 4=steerF(y),
        //          5=add1, 6=add2, 7=merge -> tap
        let stream: GlobalConfigStream = [
            GlobalConfigElement::binary(ObjectId(2), ObjectId(0), ObjectId(1)),
            GlobalConfigElement::unary(ObjectId(3), ObjectId(0)).with_pred(ObjectId(2)),
            GlobalConfigElement::unary(ObjectId(4), ObjectId(1)).with_pred(ObjectId(2)),
            GlobalConfigElement::unary(ObjectId(5), ObjectId(3)),
            GlobalConfigElement::unary(ObjectId(6), ObjectId(4)),
            GlobalConfigElement::binary(ObjectId(7), ObjectId(5), ObjectId(6)),
        ]
        .into_iter()
        .collect();
        let build = |x: u64, y: u64| {
            Datapath::build(&stream, move |id| match id.0 {
                0 => Some(compute_spec(0, Operation::Const, x)),
                1 => Some(compute_spec(1, Operation::Const, y)),
                2 => Some(compute_spec(2, Operation::ICmpGt, 0)),
                3 => Some(compute_spec(3, Operation::SteerTrue, 0)),
                4 => Some(compute_spec(4, Operation::SteerFalse, 0)),
                5 => Some(compute_spec(5, Operation::AddImm, 1)),
                6 => Some(compute_spec(6, Operation::AddImm, 2)),
                7 => Some(compute_spec(7, Operation::Merge, 0)),
                _ => None,
            })
            .unwrap()
        };
        let mut mem: Vec<MemoryBlock> = Vec::new();
        // x=9 > y=4: z = x+1 = 10.
        let mut dp = build(9, 4);
        let r = dp.run(&mut mem, 1, 10_000).unwrap();
        assert_eq!(r.taps[&ObjectId(7)], vec![Word(10)]);
        // x=2 < y=5: z = y+2 = 7.
        let mut dp = build(2, 5);
        let r = dp.run(&mut mem, 1, 10_000).unwrap();
        assert_eq!(r.taps[&ObjectId(7)], vec![Word(7)]);
    }

    #[test]
    fn fanout_broadcasts_to_all_successors() {
        // const -> (addimm1, addimm2), both taps.
        let stream: GlobalConfigStream = [
            GlobalConfigElement::unary(ObjectId(1), ObjectId(0)),
            GlobalConfigElement::unary(ObjectId(2), ObjectId(0)),
        ]
        .into_iter()
        .collect();
        let mut dp = Datapath::build(&stream, |id| match id.0 {
            0 => Some(compute_spec(0, Operation::Const, 10)),
            1 => Some(compute_spec(1, Operation::AddImm, 1)),
            2 => Some(compute_spec(2, Operation::AddImm, 2)),
            _ => None,
        })
        .unwrap();
        let mut mem: Vec<MemoryBlock> = Vec::new();
        let r = dp.run(&mut mem, 1, 10_000).unwrap();
        assert_eq!(r.taps[&ObjectId(1)], vec![Word(11)]);
        assert_eq!(r.taps[&ObjectId(2)], vec![Word(12)]);
    }

    #[test]
    fn release_tokens_follow_dependencies() {
        let stream: GlobalConfigStream = [
            GlobalConfigElement::unary(ObjectId(1), ObjectId(0)),
            GlobalConfigElement::unary(ObjectId(2), ObjectId(1)),
        ]
        .into_iter()
        .collect();
        let mut dp = Datapath::build(&stream, |id| {
            Some(compute_spec(
                id.0,
                if id.0 == 0 {
                    Operation::Const
                } else {
                    Operation::Pass
                },
                1,
            ))
        })
        .unwrap();
        let mut mem: Vec<MemoryBlock> = Vec::new();
        let r = dp.run(&mut mem, 1, 10_000).unwrap();
        assert_eq!(r.release_order, vec![ObjectId(0), ObjectId(1), ObjectId(2)]);
        // tokens: 3 node firings + 2 edge deliveries
        assert_eq!(r.release_tokens, 5);
    }

    #[test]
    fn empty_stream_rejected() {
        let stream = GlobalConfigStream::new();
        assert!(matches!(
            Datapath::build(&stream, |_| None),
            Err(ApError::EmptyDatapath)
        ));
    }

    #[test]
    fn unresolved_object_rejected() {
        let stream: GlobalConfigStream = [GlobalConfigElement::unary(ObjectId(1), ObjectId(0))]
            .into_iter()
            .collect();
        assert!(matches!(
            Datapath::build(&stream, |_| None),
            Err(ApError::UndefinedSource(_))
        ));
    }

    #[test]
    fn timeout_on_starved_datapath() {
        // A binary op with only one producer never fires, but the const
        // keeps regenerating; cap taps so the run quiesces... here the
        // add never fires so the tap stays empty and const fills the
        // add's lhs latch once; then everything stalls -> drained, not
        // timeout. Verify the drained-with-no-output case.
        let stream: GlobalConfigStream = [GlobalConfigElement::unary(ObjectId(1), ObjectId(0))]
            .into_iter()
            .collect();
        let mut dp = Datapath::build(&stream, |id| match id.0 {
            0 => Some(compute_spec(0, Operation::Const, 1)),
            1 => Some(compute_spec(1, Operation::IAdd, 0)), // rhs never arrives
            _ => None,
        })
        .unwrap();
        let mut mem: Vec<MemoryBlock> = Vec::new();
        let r = dp.run(&mut mem, 1, 1_000).unwrap();
        assert!(r.drained);
        assert!(r.taps[&ObjectId(1)].is_empty());
    }

    #[test]
    fn node_firings_profile_the_datapath() {
        // load(8) -> mul -> store: every stage fires 8 times.
        let stream: GlobalConfigStream = [
            GlobalConfigElement::unary(ObjectId(1), ObjectId(0)),
            GlobalConfigElement {
                sink: ObjectId(2),
                src_lhs: None,
                src_rhs: Some(ObjectId(1)),
                src_pred: None,
            },
        ]
        .into_iter()
        .collect();
        let mut dp = Datapath::build(&stream, |id| match id.0 {
            0 => Some(mem_spec(0, Operation::Load, 0, 0, 8)),
            1 => Some(compute_spec(1, Operation::MulImm, 2)),
            2 => Some(mem_spec(2, Operation::Store, 100, 0, 0)),
            _ => None,
        })
        .unwrap();
        let mut mem = vec![MemoryBlock::new()];
        let report = dp.run(&mut mem, 0, 10_000).unwrap();
        for id in [0u32, 1, 2] {
            assert_eq!(report.node_firings[&ObjectId(id)], 8, "obj{id}");
        }
        assert_eq!(report.node_firings.values().sum::<u64>(), report.firings);
    }

    #[test]
    fn stream_load_respects_limit_and_pointer() {
        let stream: GlobalConfigStream = [GlobalConfigElement::unary(ObjectId(1), ObjectId(0))]
            .into_iter()
            .collect();
        let mut dp = Datapath::build(&stream, |id| match id.0 {
            0 => Some(mem_spec(0, Operation::Load, 5, 0, 3)),
            1 => Some(compute_spec(1, Operation::Pass, 0)),
            _ => None,
        })
        .unwrap();
        let mut mem = vec![MemoryBlock::new()];
        for i in 0..10 {
            mem[0].store(i, Word(100 + i)).unwrap();
        }
        let r = dp.run(&mut mem, 10, 10_000).unwrap();
        assert_eq!(r.taps[&ObjectId(1)], vec![Word(105), Word(106), Word(107)]);
        // The stream pointer advanced past the consumed words.
        let spec = dp.specs().find(|s| s.id == ObjectId(0)).unwrap();
        assert_eq!(spec.regs[0], Word(8));
    }

    #[test]
    fn addressed_load_uses_address_tokens() {
        // const(7) -> load(base 0) -> tap : reads mem[7].
        let stream: GlobalConfigStream = [
            GlobalConfigElement::unary(ObjectId(1), ObjectId(0)),
            GlobalConfigElement::unary(ObjectId(2), ObjectId(1)),
        ]
        .into_iter()
        .collect();
        let mut dp = Datapath::build(&stream, |id| match id.0 {
            0 => Some(compute_spec(0, Operation::Const, 7)),
            1 => Some(mem_spec(1, Operation::Load, 0, 0, 0)),
            2 => Some(compute_spec(2, Operation::Pass, 0)),
            _ => None,
        })
        .unwrap();
        let mut mem = vec![MemoryBlock::new()];
        mem[0].store(7, Word(0x77)).unwrap();
        let r = dp.run(&mut mem, 1, 10_000).unwrap();
        assert_eq!(r.taps[&ObjectId(2)], vec![Word(0x77)]);
    }
}

//! Struct-of-arrays batch execution of datapaths.
//!
//! [`Datapath::run`] advances one datapath by pointer-chasing through a
//! `Vec` of node structs — fine for a single AP, but a whole region of
//! APs advanced that way is a cache-miss festival: every field of every
//! node of every AP lives in its own cache line neighbourhood. A
//! [`SoaLane`] is the same datapath flattened into parallel arrays
//! (ops, immediates, registers, latches, in-flight slots, output
//! latches, production counters) plus a CSR successor list, so one
//! cycle of one AP touches a handful of dense arrays front to back. A
//! region executor owns many lanes and sweeps each one to completion
//! while its slabs are cache-hot ([`SoaLane::step`]), while irregular
//! work — memory streams, steering, merges — runs through the same
//! per-op match the per-AP path uses.
//!
//! **Determinism contract:** a lane replicates [`Datapath::run`]
//! bit-for-bit — the same phase order (deliver, retire, fire), the same
//! node-index iteration order, the same tap-limit and exhaustion
//! semantics, the same release-token propagation. `execute` via the
//! per-AP path and `execute_batch` via lanes must produce byte-identical
//! reports, telemetry, and memory images; the ci.sh equivalence gate
//! holds both paths to that.

use crate::datapath::{Datapath, ExecutionReport, LHS, PRED, RHS};
use crate::error::ApError;
use std::collections::HashMap;
use vlsi_object::{MemoryBlock, ObjectId, Operation, Word, PHYS_REGISTERS};

/// Sentinel for "nothing in flight" in the latency countdown slab
/// (`Operation::latency` is tiny; real countdowns never reach this).
const IDLE: u32 = u32::MAX;

/// Where a lane is in its run.
#[derive(Clone, Debug)]
enum LaneStatus {
    /// `start` not called yet.
    Pending,
    /// Mid-run: more cycles to simulate.
    Running,
    /// Reached quiescence; report is ready.
    Drained,
    /// Hit a typed error (memory fault or cycle-budget timeout).
    Failed(ApError),
}

/// One datapath flattened into struct-of-arrays form, owning the AP's
/// memory blocks for the duration of the batch.
///
/// Built by [`AdaptiveProcessor::begin_batch`]; advanced by a region
/// executor via [`start`](Self::start) + [`step`](Self::step) (or
/// [`run_to_completion`](Self::run_to_completion)); dissolved back into
/// the AP by [`AdaptiveProcessor::finish_batch`].
///
/// [`AdaptiveProcessor::begin_batch`]: crate::processor::AdaptiveProcessor::begin_batch
/// [`AdaptiveProcessor::finish_batch`]: crate::processor::AdaptiveProcessor::finish_batch
#[derive(Clone, Debug)]
pub struct SoaLane {
    /// Which resident datapath this lane was detached from.
    pub(crate) datapath_index: usize,
    // Static structure, parallel over node index.
    ids: Vec<ObjectId>,
    ops: Vec<Operation>,
    imms: Vec<Word>,
    regs: Vec<[Word; PHYS_REGISTERS]>,
    /// Which input ports are wired (for stream detection and release
    /// pending counts).
    has_src: Vec<[bool; 3]>,
    /// CSR successor offsets, `nodes + 1` entries.
    succ_start: Vec<u32>,
    /// CSR successor payload: `(node index, port)`.
    succ_list: Vec<(u32, u8)>,
    /// Successor-less compute nodes whose outputs the report collects.
    is_tap: Vec<bool>,
    // Transient dataflow state, parallel over node index.
    inputs: Vec<[Option<Word>; 3]>,
    inflight_rem: Vec<u32>,
    inflight_val: Vec<Option<Word>>,
    out: Vec<Option<Word>>,
    produced: Vec<u64>,
    exhausted: Vec<bool>,
    // Report accumulation.
    tap_vals: Vec<Vec<Word>>,
    node_firings: Vec<u64>,
    firings: u64,
    loads: u64,
    stores: u64,
    cycles: u64,
    // Run control.
    tap_limit: u64,
    max_cycles: u64,
    memory: Vec<MemoryBlock>,
    status: LaneStatus,
}

impl SoaLane {
    /// Flattens `dp`'s static structure and current register state into
    /// a lane. Transient dataflow state starts cleared, exactly as
    /// [`Datapath::run`] clears it on entry.
    pub(crate) fn from_datapath(dp: &Datapath, datapath_index: usize) -> SoaLane {
        let n = dp.nodes.len();
        let mut lane = SoaLane {
            datapath_index,
            ids: Vec::with_capacity(n),
            ops: Vec::with_capacity(n),
            imms: Vec::with_capacity(n),
            regs: Vec::with_capacity(n),
            has_src: Vec::with_capacity(n),
            succ_start: Vec::with_capacity(n + 1),
            succ_list: Vec::new(),
            is_tap: Vec::with_capacity(n),
            inputs: vec![[None; 3]; n],
            inflight_rem: vec![IDLE; n],
            inflight_val: vec![None; n],
            out: vec![None; n],
            produced: vec![0; n],
            exhausted: vec![false; n],
            tap_vals: vec![Vec::new(); n],
            node_firings: vec![0; n],
            firings: 0,
            loads: 0,
            stores: 0,
            cycles: 0,
            tap_limit: 0,
            max_cycles: 0,
            memory: Vec::new(),
            status: LaneStatus::Pending,
        };
        for node in &dp.nodes {
            lane.ids.push(node.spec.id);
            lane.ops.push(node.spec.cfg.op);
            lane.imms.push(node.spec.cfg.imm);
            lane.regs.push(node.spec.regs);
            lane.has_src.push([
                node.srcs[LHS].is_some(),
                node.srcs[RHS].is_some(),
                node.srcs[PRED].is_some(),
            ]);
            lane.succ_start.push(lane.succ_list.len() as u32);
            for &(s, p) in &node.succs {
                lane.succ_list.push((s as u32, p as u8));
            }
            lane.is_tap
                .push(node.succs.is_empty() && !node.spec.cfg.op.is_memory_op());
        }
        lane.succ_start.push(lane.succ_list.len() as u32);
        lane
    }

    /// Hands this lane the AP's memory blocks for the batch.
    pub(crate) fn attach_memory(&mut self, memory: Vec<MemoryBlock>) {
        self.memory = memory;
    }

    /// Nodes in the lane.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the lane has no nodes.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Arms the run: `tap_limit` bounds values collected per tap,
    /// `max_cycles` bounds simulation — the same knobs as
    /// [`Datapath::run`]. A zero cycle budget fails immediately, as the
    /// per-AP path does.
    pub fn start(&mut self, tap_limit: u64, max_cycles: u64) {
        self.tap_limit = tap_limit;
        self.max_cycles = max_cycles;
        self.status = if max_cycles == 0 {
            LaneStatus::Failed(ApError::ExecutionTimeout { cycles: 0 })
        } else {
            LaneStatus::Running
        };
    }

    /// Whether the lane still has cycles to simulate.
    pub fn is_running(&self) -> bool {
        matches!(self.status, LaneStatus::Running)
    }

    /// Simulates one cycle: deliver outputs, retire in-flight
    /// operations, fire ready nodes — the exact phase structure of
    /// [`Datapath::run`]. Returns whether the lane is still running.
    pub fn step(&mut self) -> bool {
        if !self.is_running() {
            return false;
        }
        let mut activity = false;

        // Phase 1: deliver outputs to successor latches (broadcast with
        // backpressure: the output clears only when all successors have
        // accepted).
        for i in 0..self.out.len() {
            let Some(v) = self.out[i] else { continue };
            let lo = self.succ_start[i] as usize;
            let hi = self.succ_start[i + 1] as usize;
            if lo == hi {
                // A tap: collect. (Successor-less memory nodes drop the
                // value — only taps have collection vectors, mirroring
                // the per-AP path's tap map.)
                if self.is_tap[i] && (self.tap_vals[i].len() as u64) < self.tap_limit {
                    self.tap_vals[i].push(v);
                    activity = true;
                }
                self.out[i] = None;
                self.produced[i] += 1;
                continue;
            }
            let (succ_list, inputs) = (&self.succ_list, &mut self.inputs);
            let all_free = succ_list[lo..hi]
                .iter()
                .all(|&(s, p)| inputs[s as usize][p as usize].is_none());
            if all_free {
                for &(s, p) in &succ_list[lo..hi] {
                    inputs[s as usize][p as usize] = Some(v);
                }
                self.out[i] = None;
                self.produced[i] += 1;
                activity = true;
            }
        }

        // Phase 2: retire in-flight operations whose latency elapsed.
        for i in 0..self.inflight_rem.len() {
            let rem = self.inflight_rem[i];
            if rem == IDLE {
                continue;
            }
            if rem <= 1 {
                self.inflight_rem[i] = IDLE;
                if let Some(v) = self.inflight_val[i].take() {
                    debug_assert!(self.out[i].is_none());
                    self.out[i] = Some(v);
                }
                activity = true;
            } else {
                self.inflight_rem[i] = rem - 1;
                activity = true;
            }
        }

        // Phase 3: fire ready nodes, in node-index order.
        for i in 0..self.ids.len() {
            match self.try_fire(i) {
                Ok(true) => {
                    self.node_firings[i] += 1;
                    activity = true;
                }
                Ok(false) => {}
                Err(e) => {
                    self.status = LaneStatus::Failed(e);
                    return false;
                }
            }
        }

        self.cycles += 1;
        if !activity {
            self.status = LaneStatus::Drained;
            return false;
        }
        if self.cycles >= self.max_cycles {
            // The cycle budget elapsed with work still in flight.
            self.status = LaneStatus::Failed(ApError::ExecutionTimeout {
                cycles: self.cycles,
            });
            return false;
        }
        true
    }

    /// Runs the lane until it drains or fails — the lane-major
    /// convenience used by tests and the per-stripe sweep tail.
    pub fn run_to_completion(&mut self, tap_limit: u64, max_cycles: u64) {
        self.start(tap_limit, max_cycles);
        while self.step() {}
    }

    fn is_stream(&self, i: usize) -> bool {
        !self.has_src[i][LHS]
    }

    fn set_inflight(&mut self, i: usize, latency: u32, v: Word) {
        self.inflight_rem[i] = latency;
        self.inflight_val[i] = Some(v);
    }

    /// Attempts to fire node `i` — the per-op match of
    /// [`Datapath::run`]'s `try_fire`, verbatim in semantics.
    fn try_fire(&mut self, i: usize) -> Result<bool, ApError> {
        if self.inflight_rem[i] != IDLE || self.out[i].is_some() || self.exhausted[i] {
            return Ok(false);
        }
        let op = self.ops[i];
        let imm = self.imms[i];
        match op {
            Operation::Const => {
                // A constant regenerates whenever downstream consumed
                // it, up to its stream limit (regs[2]; 0 = one-shot).
                let limit = self.regs[i][2].as_u64().max(1);
                if self.produced[i] >= limit {
                    self.exhausted[i] = true;
                    return Ok(false);
                }
                self.set_inflight(i, op.latency(), imm);
                self.firings += 1;
                Ok(true)
            }
            Operation::Load => {
                if self.is_stream(i) {
                    let limit = self.regs[i][2].as_u64();
                    if limit != 0 && self.produced[i] >= limit {
                        self.exhausted[i] = true;
                        return Ok(false);
                    }
                    let block = self.regs[i][1].as_u64() as usize;
                    let addr = self.regs[i][0].as_u64();
                    let mem = self
                        .memory
                        .get_mut(block)
                        .ok_or(ApError::UndefinedSource(self.ids[i]))?;
                    let v = mem.load(addr)?;
                    self.regs[i][0] = Word(addr + 1);
                    self.set_inflight(i, op.latency(), v);
                    self.loads += 1;
                    self.firings += 1;
                    Ok(true)
                } else {
                    // Addressed load: wait for the address token.
                    let Some(addr_tok) = self.inputs[i][LHS] else {
                        return Ok(false);
                    };
                    self.inputs[i][LHS] = None;
                    let block = self.regs[i][1].as_u64() as usize;
                    let base = self.regs[i][0].as_u64();
                    let mem = self
                        .memory
                        .get_mut(block)
                        .ok_or(ApError::UndefinedSource(self.ids[i]))?;
                    let v = mem.load(base + addr_tok.as_u64())?;
                    self.set_inflight(i, op.latency(), v);
                    self.loads += 1;
                    self.firings += 1;
                    Ok(true)
                }
            }
            Operation::Store => {
                let Some(data) = self.inputs[i][RHS] else {
                    return Ok(false);
                };
                let addr = if self.is_stream(i) {
                    let a = self.regs[i][0].as_u64();
                    self.regs[i][0] = Word(a + 1);
                    a
                } else {
                    let Some(addr_tok) = self.inputs[i][LHS] else {
                        return Ok(false);
                    };
                    self.inputs[i][LHS] = None;
                    addr_tok.as_u64()
                };
                self.inputs[i][RHS] = None;
                let block = self.regs[i][1].as_u64() as usize;
                let mem = self
                    .memory
                    .get_mut(block)
                    .ok_or(ApError::UndefinedSource(self.ids[i]))?;
                mem.store(addr, data)?;
                // Stores produce no token; model latency as instant
                // retire.
                self.produced[i] += 1;
                self.stores += 1;
                self.firings += 1;
                Ok(true)
            }
            Operation::SteerTrue | Operation::SteerFalse => {
                let (Some(v), Some(p)) = (self.inputs[i][LHS], self.inputs[i][PRED]) else {
                    return Ok(false);
                };
                self.inputs[i][LHS] = None;
                self.inputs[i][PRED] = None;
                let pass = p.as_bool() == (op == Operation::SteerTrue);
                self.firings += 1;
                if pass {
                    self.set_inflight(i, op.latency(), v);
                } else {
                    // Token consumed silently; the arm stays dark.
                }
                Ok(true)
            }
            Operation::Merge => {
                let port = if self.inputs[i][LHS].is_some() {
                    LHS
                } else if self.inputs[i][RHS].is_some() {
                    RHS
                } else {
                    return Ok(false);
                };
                let v = self.inputs[i][port].take().unwrap();
                self.set_inflight(i, op.latency(), v);
                self.firings += 1;
                Ok(true)
            }
            _ => {
                // Plain value operation: all declared ports must hold
                // tokens.
                let arity = op.arity();
                let need_lhs = arity >= 1;
                let need_rhs = arity >= 2;
                if (need_lhs && self.inputs[i][LHS].is_none())
                    || (need_rhs && self.inputs[i][RHS].is_none())
                {
                    return Ok(false);
                }
                let lhs = if need_lhs {
                    self.inputs[i][LHS].take().unwrap()
                } else {
                    Word::ZERO
                };
                let rhs = if need_rhs {
                    self.inputs[i][RHS].take().unwrap()
                } else {
                    Word::ZERO
                };
                let result = op
                    .eval(lhs, rhs, imm)
                    .expect("context-free operation must evaluate");
                self.set_inflight(i, op.latency(), result);
                self.firings += 1;
                Ok(true)
            }
        }
    }

    /// Propagates release tokens from the sources through the CSR
    /// graph — the same topological walk as the per-AP path, with nodes
    /// on cycles force-released at the end.
    fn fire_release_tokens(&self, report: &mut ExecutionReport) {
        let n = self.ids.len();
        let mut pending: Vec<usize> = self
            .has_src
            .iter()
            .map(|srcs| srcs.iter().filter(|&&s| s).count())
            .collect();
        let mut queue: Vec<usize> = (0..n).filter(|&i| pending[i] == 0).collect();
        let mut head = 0;
        while head < queue.len() {
            let i = queue[head];
            head += 1;
            report.release_order.push(self.ids[i]);
            report.release_tokens += 1;
            let lo = self.succ_start[i] as usize;
            let hi = self.succ_start[i + 1] as usize;
            for &(s, _) in &self.succ_list[lo..hi] {
                // One token per edge.
                report.release_tokens += 1;
                pending[s as usize] -= 1;
                if pending[s as usize] == 0 {
                    queue.push(s as usize);
                }
            }
        }
        for (i, &p) in pending.iter().enumerate() {
            if p > 0 {
                report.release_order.push(self.ids[i]);
            }
        }
    }

    /// Dissolves the lane: returns the AP's memory, the advanced
    /// register state (node order), and the run outcome as an
    /// [`ExecutionReport`] identical to what [`Datapath::run`] would
    /// have produced.
    #[allow(clippy::type_complexity)]
    pub(crate) fn finish(
        mut self,
    ) -> (
        Vec<MemoryBlock>,
        Vec<[Word; PHYS_REGISTERS]>,
        Result<ExecutionReport, ApError>,
    ) {
        let memory = std::mem::take(&mut self.memory);
        let regs = std::mem::take(&mut self.regs);
        let outcome = match &self.status {
            LaneStatus::Pending | LaneStatus::Running => Err(ApError::ExecutionTimeout {
                cycles: self.cycles,
            }),
            LaneStatus::Failed(e) => Err(e.clone()),
            LaneStatus::Drained => {
                let mut report = ExecutionReport {
                    cycles: self.cycles,
                    firings: self.firings,
                    loads: self.loads,
                    stores: self.stores,
                    taps: HashMap::new(),
                    node_firings: HashMap::new(),
                    drained: true,
                    release_tokens: 0,
                    release_order: Vec::new(),
                };
                for i in 0..self.ids.len() {
                    if self.is_tap[i] {
                        report
                            .taps
                            .insert(self.ids[i], std::mem::take(&mut self.tap_vals[i]));
                    }
                    if self.node_firings[i] > 0 {
                        report
                            .node_firings
                            .insert(self.ids[i], self.node_firings[i]);
                    }
                }
                self.fire_release_tokens(&mut report);
                Ok(report)
            }
        };
        (memory, regs, outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datapath::NodeSpec;
    use vlsi_object::{GlobalConfigElement, GlobalConfigStream, LocalConfig, ObjectKind};

    fn compute_spec(id: u32, op: Operation, imm: u64) -> NodeSpec {
        NodeSpec {
            id: ObjectId(id),
            cfg: LocalConfig::with_imm(op, Word(imm)),
            kind: ObjectKind::Compute,
            regs: [Word::ZERO; PHYS_REGISTERS],
        }
    }

    fn mem_spec(id: u32, op: Operation, base: u64, block: u64, len: u64) -> NodeSpec {
        let mut regs = [Word::ZERO; PHYS_REGISTERS];
        regs[0] = Word(base);
        regs[1] = Word(block);
        regs[2] = Word(len);
        NodeSpec {
            id: ObjectId(id),
            cfg: LocalConfig::op(op),
            kind: ObjectKind::Memory,
            regs,
        }
    }

    /// Runs the same datapath through `Datapath::run` and through a
    /// lane; every report field and the memory image must match
    /// exactly.
    fn assert_equivalent(
        stream: &GlobalConfigStream,
        resolve: impl FnMut(ObjectId) -> Option<NodeSpec> + Clone,
        mem_init: &[(u64, u64)],
        tap_limit: u64,
    ) {
        let mut dp_serial = Datapath::build(stream, resolve.clone()).unwrap();
        let mut mem_serial = vec![MemoryBlock::new()];
        for &(a, v) in mem_init {
            mem_serial[0].store(a, Word(v)).unwrap();
        }
        let serial = dp_serial.run(&mut mem_serial, tap_limit, 10_000).unwrap();

        let dp_batch = Datapath::build(stream, resolve).unwrap();
        let mut lane = SoaLane::from_datapath(&dp_batch, 0);
        let mut mem_batch = vec![MemoryBlock::new()];
        for &(a, v) in mem_init {
            mem_batch[0].store(a, Word(v)).unwrap();
        }
        lane.attach_memory(mem_batch);
        lane.run_to_completion(tap_limit, 10_000);
        let (mem_batch, regs, outcome) = lane.finish();
        let batch = outcome.unwrap();

        assert_eq!(serial.cycles, batch.cycles, "cycles");
        assert_eq!(serial.firings, batch.firings, "firings");
        assert_eq!(serial.loads, batch.loads, "loads");
        assert_eq!(serial.stores, batch.stores, "stores");
        assert_eq!(serial.taps, batch.taps, "taps");
        assert_eq!(serial.node_firings, batch.node_firings, "node firings");
        assert_eq!(serial.drained, batch.drained, "drained");
        assert_eq!(serial.release_tokens, batch.release_tokens, "tokens");
        assert_eq!(serial.release_order, batch.release_order, "release order");
        for (i, spec) in dp_serial.specs().enumerate() {
            assert_eq!(spec.regs, regs[i], "regs of node {i}");
        }
        for a in 0..256u64 {
            assert_eq!(
                mem_serial[0].peek(a).ok(),
                mem_batch[0].peek(a).ok(),
                "memory at {a}"
            );
        }
    }

    #[test]
    fn lane_matches_per_ap_on_stream_kernel() {
        // load(8) -> mul -> store: the memory-stream shape.
        let stream: GlobalConfigStream = [
            GlobalConfigElement::unary(ObjectId(1), ObjectId(0)),
            GlobalConfigElement {
                sink: ObjectId(2),
                src_lhs: None,
                src_rhs: Some(ObjectId(1)),
                src_pred: None,
            },
        ]
        .into_iter()
        .collect();
        let resolve = |id: ObjectId| match id.0 {
            0 => Some(mem_spec(0, Operation::Load, 0, 0, 8)),
            1 => Some(compute_spec(1, Operation::MulImm, 3)),
            2 => Some(mem_spec(2, Operation::Store, 100, 0, 0)),
            _ => None,
        };
        let init: Vec<(u64, u64)> = (0..8).map(|i| (i, i + 1)).collect();
        assert_equivalent(&stream, resolve, &init, 0);
    }

    #[test]
    fn lane_matches_per_ap_on_steered_kernel() {
        // The Figure-7 conditional: steering, merge, fan-out, taps.
        let stream: GlobalConfigStream = [
            GlobalConfigElement::binary(ObjectId(2), ObjectId(0), ObjectId(1)),
            GlobalConfigElement::unary(ObjectId(3), ObjectId(0)).with_pred(ObjectId(2)),
            GlobalConfigElement::unary(ObjectId(4), ObjectId(1)).with_pred(ObjectId(2)),
            GlobalConfigElement::unary(ObjectId(5), ObjectId(3)),
            GlobalConfigElement::unary(ObjectId(6), ObjectId(4)),
            GlobalConfigElement::binary(ObjectId(7), ObjectId(5), ObjectId(6)),
        ]
        .into_iter()
        .collect();
        for (x, y) in [(9u64, 4u64), (2, 5)] {
            let resolve = move |id: ObjectId| match id.0 {
                0 => Some(compute_spec(0, Operation::Const, x)),
                1 => Some(compute_spec(1, Operation::Const, y)),
                2 => Some(compute_spec(2, Operation::ICmpGt, 0)),
                3 => Some(compute_spec(3, Operation::SteerTrue, 0)),
                4 => Some(compute_spec(4, Operation::SteerFalse, 0)),
                5 => Some(compute_spec(5, Operation::AddImm, 1)),
                6 => Some(compute_spec(6, Operation::AddImm, 2)),
                7 => Some(compute_spec(7, Operation::Merge, 0)),
                _ => None,
            };
            assert_equivalent(&stream, resolve, &[], 1);
        }
    }

    #[test]
    fn lane_times_out_like_the_per_ap_path() {
        // An unbounded const stream into a tap with an enormous limit
        // never drains inside a tiny budget: both paths must report the
        // same typed timeout.
        let stream: GlobalConfigStream = [GlobalConfigElement::unary(ObjectId(1), ObjectId(0))]
            .into_iter()
            .collect();
        let resolve = |id: ObjectId| match id.0 {
            0 => {
                let mut s = compute_spec(0, Operation::Const, 5);
                s.regs[2] = Word(u64::MAX); // effectively unbounded
                Some(s)
            }
            1 => Some(compute_spec(1, Operation::Pass, 0)),
            _ => None,
        };
        let mut dp = Datapath::build(&stream, resolve).unwrap();
        let mut mem: Vec<MemoryBlock> = Vec::new();
        let serial = dp.run(&mut mem, u64::MAX, 50).unwrap_err();

        let dp2 = Datapath::build(&stream, resolve).unwrap();
        let mut lane = SoaLane::from_datapath(&dp2, 0);
        lane.run_to_completion(u64::MAX, 50);
        let (_, _, outcome) = lane.finish();
        assert_eq!(serial, outcome.unwrap_err());
    }
}

//! The adaptive processor: stack + WSRF + pipeline + CSD + memory blocks.
//!
//! [`AdaptiveProcessor`] is the paper's minimum schedulable unit: an array
//! of compute physical objects (the stack), an array of memory objects
//! (outside the stack, §2.6.2), a WSRF, the management pipeline, and a
//! dynamic CSD network spanning both regions.
//!
//! Two execution regimes, per §2.5:
//!
//! * **streaming** — [`configure`](AdaptiveProcessor::configure) +
//!   [`execute`](AdaptiveProcessor::execute): the whole datapath is made
//!   resident and chained, then data streams through it. Requires the
//!   working set to fit the capacity `C`.
//! * **scalar (virtual hardware)** —
//!   [`execute_scalar`](AdaptiveProcessor::execute_scalar): elements are
//!   processed one at a time with objects swapped in and out on demand, so
//!   a datapath *larger than the array* still runs, at swap cost. This is
//!   the paper's virtual hardware: "An unused object should be swapped out
//!   to a memory block to make room for a newly requested object(s)."

use crate::datapath::{Datapath, ExecutionReport, NodeSpec};
use crate::error::ApError;
use crate::metrics::ApMetrics;
use crate::pipeline::{ConfigureOutcome, Pipeline, TraceEvent, CFB_COUNT, STAGES};
use crate::soa::SoaLane;
use crate::stack::{ObjectStack, ReferenceOutcome};
use crate::wsrf::{WorkingSetRegisterFile, WSRF_ENTRIES};
use std::collections::HashMap;
use std::sync::Arc;
use vlsi_csd::DynamicCsd;
use vlsi_object::{
    BoundObject, GlobalConfigStream, LogicalObject, MemoryBlock, ObjectId, ObjectKind,
    ObjectLibrary, Operation, Word,
};
use vlsi_telemetry::TelemetryHandle;

/// Structural parameters of one adaptive processor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ApConfig {
    /// Compute physical objects — the stack capacity `C` (paper: 16).
    pub compute_objects: usize,
    /// Memory objects, each with a 64 KiB block (paper: 16).
    pub memory_objects: usize,
    /// CSD channels. The paper's Figure 3 finding: `N/2` channels suffice
    /// for random datapaths, which is the default here.
    pub channels: usize,
    /// WSRF entries (Table 3: 40).
    pub wsrf_entries: usize,
    /// Configuration buffers (Table 3: 3).
    pub cfb_count: usize,
}

impl Default for ApConfig {
    fn default() -> ApConfig {
        let compute = 16;
        let memory = 16;
        ApConfig {
            compute_objects: compute,
            memory_objects: memory,
            channels: (compute + memory) / 2,
            wsrf_entries: WSRF_ENTRIES,
            cfb_count: CFB_COUNT,
        }
    }
}

impl ApConfig {
    /// Total CSD positions (compute stack + memory region).
    pub fn positions(&self) -> usize {
        self.compute_objects + self.memory_objects
    }
}

/// One adaptive processor.
///
/// ```
/// use vlsi_ap::{AdaptiveProcessor, ApConfig};
/// use vlsi_object::{
///     GlobalConfigElement, GlobalConfigStream, LocalConfig, LogicalObject, ObjectId,
///     Operation, Word,
/// };
///
/// let mut ap = AdaptiveProcessor::new(ApConfig::default());
/// // Install two logical objects: a constant and an incrementer.
/// ap.install([
///     LogicalObject::compute(ObjectId(0), LocalConfig::with_imm(Operation::Const, Word(41))),
///     LogicalObject::compute(ObjectId(1), LocalConfig::with_imm(Operation::AddImm, Word(1))),
/// ])
/// .unwrap();
/// // The global configuration stream chains 0 -> 1.
/// let stream: GlobalConfigStream =
///     [GlobalConfigElement::unary(ObjectId(1), ObjectId(0))].into_iter().collect();
/// let outcome = ap.configure(stream).unwrap();
/// assert_eq!(outcome.misses, 2); // both compulsory
/// let report = ap.execute(1, 100_000).unwrap();
/// assert_eq!(report.taps[&ObjectId(1)], vec![Word(42)]);
/// ```
#[derive(Clone, Debug)]
pub struct AdaptiveProcessor {
    cfg: ApConfig,
    stack: ObjectStack,
    wsrf: WorkingSetRegisterFile,
    library: ObjectLibrary,
    csd: DynamicCsd,
    memory: Vec<MemoryBlock>,
    /// Memory objects bound in the memory region, in position order.
    memory_binds: Vec<BoundObject>,
    pipeline: Pipeline,
    metrics: ApMetrics,
    /// Resident datapaths, in configuration order ("The AP can configure
    /// multiple application datapaths in a sequential configuration
    /// manner", §1). Each entry keeps its stream, its executable graph,
    /// and the CSD routes chaining it.
    datapaths: Vec<ResidentDatapath>,
    /// Observability sink; the default handle is a no-op.
    telemetry: TelemetryHandle,
}

#[derive(Clone, Debug)]
struct ResidentDatapath {
    /// Shared, not owned: callers that keep a program resident (the
    /// staged executor, the pipelined batch path) hand the same
    /// `Arc` in on every reconfigure instead of deep-copying the
    /// stream's elements each time.
    stream: Arc<GlobalConfigStream>,
    dp: Datapath,
    routes: Vec<vlsi_csd::RouteId>,
}

impl Default for AdaptiveProcessor {
    fn default() -> Self {
        AdaptiveProcessor::new(ApConfig::default())
    }
}

impl AdaptiveProcessor {
    /// Builds a processor with the given structure (telemetry disabled).
    pub fn new(cfg: ApConfig) -> AdaptiveProcessor {
        AdaptiveProcessor::with_telemetry(cfg, TelemetryHandle::disabled())
    }

    /// Builds a processor recording into `telemetry`: per-stage pipeline
    /// occupancy (`ap.stage[i]` lanes, Figure 1 stage order), the
    /// `ap.miss_stall` histogram (stall cycles per miss batch), and
    /// hit/miss/eviction counters. The handle is also threaded into this
    /// processor's CSD network, so `csd.*` instruments land in the same
    /// registry.
    pub fn with_telemetry(cfg: ApConfig, telemetry: TelemetryHandle) -> AdaptiveProcessor {
        AdaptiveProcessor {
            cfg,
            stack: ObjectStack::new(cfg.compute_objects),
            wsrf: WorkingSetRegisterFile::with_capacity(cfg.wsrf_entries),
            library: ObjectLibrary::new(),
            csd: DynamicCsd::with_telemetry(cfg.positions(), cfg.channels, telemetry.clone()),
            memory: (0..cfg.memory_objects)
                .map(|_| MemoryBlock::new())
                .collect(),
            memory_binds: Vec::new(),
            pipeline: Pipeline {
                cfb_count: cfg.cfb_count,
                ..Pipeline::new()
            },
            metrics: ApMetrics::default(),
            datapaths: Vec::new(),
            telemetry,
        }
    }

    /// The structural configuration.
    pub fn config(&self) -> &ApConfig {
        &self.cfg
    }

    /// Registers logical objects into the library. Memory-kind objects are
    /// additionally *bound* into the memory region immediately (they do
    /// not participate in the stack); their block index defaults to their
    /// binding order when `regs[1]` is zero.
    pub fn install(
        &mut self,
        objects: impl IntoIterator<Item = LogicalObject>,
    ) -> Result<(), ApError> {
        for obj in objects {
            if obj.kind == ObjectKind::Memory {
                if self.memory_binds.len() >= self.cfg.memory_objects {
                    return Err(ApError::WorkingSetExceedsCapacity {
                        working_set: self.memory_binds.len() + 1,
                        capacity: self.cfg.memory_objects,
                    });
                }
                let mut bound = BoundObject::bind(obj.clone());
                if bound.regs[1] == Word::ZERO {
                    bound.regs[1] = Word(self.memory_binds.len() as u64);
                }
                self.memory_binds.push(bound);
            }
            self.library.register(obj)?;
        }
        Ok(())
    }

    /// IDs of the bound memory objects, in position order.
    pub fn memory_ids(&self) -> Vec<ObjectId> {
        self.memory_binds.iter().map(|b| b.id()).collect()
    }

    /// Configures a streaming datapath through the management pipeline.
    ///
    /// Any previously configured datapaths are released first (their
    /// chains freed, their objects left cached in the stack). To keep
    /// earlier datapaths resident, use
    /// [`configure_another`](Self::configure_another).
    ///
    /// The stream is accepted as anything convertible into an
    /// `Arc<GlobalConfigStream>`: owned streams work as before, while
    /// callers that configure the same stream repeatedly (the staged
    /// executor's deploy/run paths) can pass a cheap `Arc` clone and
    /// never copy the elements.
    pub fn configure(
        &mut self,
        stream: impl Into<Arc<GlobalConfigStream>>,
    ) -> Result<ConfigureOutcome, ApError> {
        self.release();
        self.configure_another(stream)
    }

    /// Configures an *additional* datapath without releasing the resident
    /// ones (§1's sequential configuration of multiple datapaths).
    ///
    /// The combined compute working set of all resident datapaths must
    /// fit the array, so every one of them stays executable. Because
    /// loading the new datapath's objects stack-shifts the array, the
    /// resident datapaths are re-requested and re-chained afterwards —
    /// exactly the paper's "the objects are requested again and will be
    /// chained" replay, at object-cache-hit cost.
    pub fn configure_another(
        &mut self,
        stream: impl Into<Arc<GlobalConfigStream>>,
    ) -> Result<ConfigureOutcome, ApError> {
        let stream: Arc<GlobalConfigStream> = stream.into();
        let memory_ids = self.memory_ids();
        // Combined compute working set must stay resident.
        let mut combined: Vec<ObjectId> = Vec::new();
        for s in self
            .datapaths
            .iter()
            .map(|r| r.stream.as_ref())
            .chain(std::iter::once(stream.as_ref()))
        {
            for id in s.working_set() {
                if !memory_ids.contains(&id) && !combined.contains(&id) {
                    combined.push(id);
                }
            }
        }
        if combined.len() > self.stack.capacity() {
            return Err(ApError::WorkingSetExceedsCapacity {
                working_set: combined.len(),
                capacity: self.stack.capacity(),
            });
        }
        // Tear down every live chain: the new configuration may shift the
        // stack, and chains are re-requested afterwards.
        for r in self.datapaths.iter_mut() {
            for route in r.routes.drain(..) {
                let _ = self.csd.disconnect(route);
            }
        }
        // Configure the new stream first (it faults its objects in), then
        // replay the resident streams (pure hits) to re-chain them.
        let outcome = self.configure_one(&stream, &memory_ids)?;
        let dp = self.build_datapath(&stream)?;
        self.datapaths.push(ResidentDatapath {
            stream,
            dp,
            routes: outcome.route_ids.clone(),
        });
        for i in 0..self.datapaths.len() - 1 {
            let s = Arc::clone(&self.datapaths[i].stream);
            let re = self.configure_one(&s, &memory_ids)?;
            let dp = self.build_datapath(&s)?;
            self.datapaths[i].routes = re.route_ids.clone();
            self.datapaths[i].dp = dp;
        }
        Ok(outcome)
    }

    fn configure_one(
        &mut self,
        stream: &GlobalConfigStream,
        memory_ids: &[ObjectId],
    ) -> Result<ConfigureOutcome, ApError> {
        let outcome = if self.telemetry.is_enabled() {
            let (outcome, events) = self.pipeline.configure_traced(
                stream,
                &mut self.stack,
                &mut self.wsrf,
                &mut self.library,
                &mut self.csd,
                memory_ids,
            )?;
            self.record_trace(&events);
            outcome
        } else {
            self.pipeline.configure(
                stream,
                &mut self.stack,
                &mut self.wsrf,
                &mut self.library,
                &mut self.csd,
                memory_ids,
            )?
        };
        self.metrics.config_cycles += outcome.cycles;
        self.metrics.object_hits += outcome.hits;
        self.metrics.object_misses += outcome.misses;
        self.metrics.swap_outs += outcome.evictions;
        self.metrics.chains += outcome.routes;
        self.metrics.stack_shifts = self.stack.shift_count();
        Ok(outcome)
    }

    /// Folds a Figure 1 configuration trace into the instrument registry:
    /// each event tallies occupancy of the pipeline stage that produced
    /// it (`ap.stage[i]`, [`STAGES`] order), miss-batch stalls land in
    /// the `ap.miss_stall` histogram.
    fn record_trace(&self, events: &[TraceEvent]) {
        let stage = |i: usize| i.min(STAGES.len() - 1) as u64;
        for e in events {
            match e {
                TraceEvent::Fetched { .. } => {
                    // Stages 1-3 advance in lockstep, one element each.
                    self.telemetry.count_at("ap.stage", stage(0), 1);
                    self.telemetry.count_at("ap.stage", stage(1), 1);
                    self.telemetry.count_at("ap.stage", stage(2), 1);
                }
                TraceEvent::Hit { .. } => {
                    self.telemetry.count_at("ap.stage", stage(3), 1);
                    self.telemetry.count("ap.hits", 1);
                }
                TraceEvent::Miss { .. } => {
                    self.telemetry.count_at("ap.stage", stage(3), 1);
                    self.telemetry.count("ap.misses", 1);
                }
                TraceEvent::Loaded { stall, .. } => {
                    self.telemetry.record("ap.miss_stall", *stall);
                }
                TraceEvent::Evicted { .. } => {
                    self.telemetry.count("ap.evictions", 1);
                }
                TraceEvent::Chained { .. } => {
                    self.telemetry.count_at("ap.stage", stage(4), 1);
                }
            }
        }
    }

    /// Builds the executable graph from the now-resident objects.
    fn build_datapath(&self, stream: &GlobalConfigStream) -> Result<Datapath, ApError> {
        let stack = &self.stack;
        let memory_binds = &self.memory_binds;
        Datapath::build(stream, |id| {
            if let Some(b) = stack.get(id) {
                return Some(NodeSpec {
                    id,
                    cfg: b.logical.cfg,
                    kind: b.logical.kind,
                    regs: b.regs,
                });
            }
            memory_binds
                .iter()
                .find(|b| b.id() == id)
                .map(|b| NodeSpec {
                    id,
                    cfg: b.logical.cfg,
                    kind: b.logical.kind,
                    regs: b.regs,
                })
        })
    }

    /// Number of resident datapaths.
    pub fn datapath_count(&self) -> usize {
        self.datapaths.len()
    }

    /// Runs the most recently configured datapath. `tap_limit` bounds
    /// values collected per tap; `max_cycles` bounds simulation.
    pub fn execute(&mut self, tap_limit: u64, max_cycles: u64) -> Result<ExecutionReport, ApError> {
        if self.datapaths.is_empty() {
            return Err(ApError::EmptyDatapath);
        }
        self.execute_datapath(self.datapaths.len() - 1, tap_limit, max_cycles)
    }

    /// Runs resident datapath `index` (configuration order).
    pub fn execute_datapath(
        &mut self,
        index: usize,
        tap_limit: u64,
        max_cycles: u64,
    ) -> Result<ExecutionReport, ApError> {
        let Some(resident) = self.datapaths.get_mut(index) else {
            return Err(ApError::EmptyDatapath);
        };
        let report = resident.dp.run(&mut self.memory, tap_limit, max_cycles)?;
        // Persist advanced register state (stream pointers) back into the
        // bound objects so a later swap-out writes it to the library.
        let specs: Vec<NodeSpec> = resident.dp.specs().cloned().collect();
        for spec in specs {
            if let Some(b) = self.stack.get_mut(spec.id) {
                b.regs = spec.regs;
            } else if let Some(b) = self.memory_binds.iter_mut().find(|b| b.id() == spec.id) {
                b.regs = spec.regs;
            }
        }
        Datapath::report_metrics(&report, &mut self.metrics);
        Ok(report)
    }

    /// Detaches the most recently configured datapath (plus this AP's
    /// memory blocks) into a [`SoaLane`] for struct-of-arrays batch
    /// execution. The lane must come back through
    /// [`finish_batch`](Self::finish_batch) — until then the AP has no
    /// memory and must not execute.
    pub fn begin_batch(&mut self) -> Result<SoaLane, ApError> {
        if self.datapaths.is_empty() {
            return Err(ApError::EmptyDatapath);
        }
        self.begin_batch_at(self.datapaths.len() - 1)
    }

    /// Detaches resident datapath `index` (configuration order) into a
    /// [`SoaLane`] — see [`begin_batch`](Self::begin_batch).
    pub fn begin_batch_at(&mut self, index: usize) -> Result<SoaLane, ApError> {
        let Some(resident) = self.datapaths.get(index) else {
            return Err(ApError::EmptyDatapath);
        };
        let mut lane = SoaLane::from_datapath(&resident.dp, index);
        lane.attach_memory(std::mem::take(&mut self.memory));
        Ok(lane)
    }

    /// Reattaches a completed [`SoaLane`]: memory comes home, advanced
    /// register state (stream pointers) is written back into the
    /// datapath and persisted to the bound objects, and metrics fold in
    /// — exactly the bookkeeping [`execute_datapath`](Self::execute_datapath)
    /// does after a per-AP run. On a failed lane the register write-back
    /// into the datapath still happens (the per-AP path mutates specs in
    /// place as it runs) but nothing is persisted and no metrics fold,
    /// matching the early-return error path.
    pub fn finish_batch(&mut self, lane: SoaLane) -> Result<ExecutionReport, ApError> {
        let index = lane.datapath_index;
        let (memory, regs, outcome) = lane.finish();
        self.memory = memory;
        let Some(resident) = self.datapaths.get_mut(index) else {
            return Err(ApError::EmptyDatapath);
        };
        resident.dp.write_back_regs(&regs);
        let report = outcome?;
        let specs: Vec<NodeSpec> = resident.dp.specs().cloned().collect();
        for spec in specs {
            if let Some(b) = self.stack.get_mut(spec.id) {
                b.regs = spec.regs;
            } else if let Some(b) = self.memory_binds.iter_mut().find(|b| b.id() == spec.id) {
                b.regs = spec.regs;
            }
        }
        Datapath::report_metrics(&report, &mut self.metrics);
        Ok(report)
    }

    /// Releases all configured datapaths: every chain is torn down and the
    /// WSRF cleared. Objects remain cached in the stack — the object cache
    /// keeps them until LRU replacement evicts them (§2.4).
    pub fn release(&mut self) {
        for acq in self.wsrf.release_all() {
            for r in acq.routes {
                let _ = self.csd.disconnect(r);
            }
        }
        // Routes recorded per datapath may overlap with WSRF records;
        // disconnect is idempotent on unknown routes.
        for r in self.datapaths.drain(..) {
            for route in r.routes {
                let _ = self.csd.disconnect(route);
            }
        }
    }

    /// Releases a single resident datapath by index (firing its release
    /// tokens' effect): its chains are torn down; its objects stay cached.
    /// Later datapaths shift down one index.
    pub fn release_datapath(&mut self, index: usize) -> Result<(), ApError> {
        if index >= self.datapaths.len() {
            return Err(ApError::EmptyDatapath);
        }
        let resident = self.datapaths.remove(index);
        for route in resident.routes {
            let _ = self.csd.disconnect(route);
        }
        Ok(())
    }

    /// Scalar-mode execution: virtual hardware (§2.5).
    ///
    /// Elements are evaluated one at a time; each referenced compute object
    /// is faulted in on demand (library load + stack shift + possible LRU
    /// eviction and write-back). The working set may exceed the array
    /// capacity. Memory objects stream through their blocks as in
    /// streaming mode. Returns the final value produced by each sink.
    pub fn execute_scalar(
        &mut self,
        stream: &GlobalConfigStream,
    ) -> Result<HashMap<ObjectId, Word>, ApError> {
        if stream.is_empty() {
            return Err(ApError::EmptyDatapath);
        }
        self.release();
        let memory_ids = self.memory_ids();
        let mut values: HashMap<ObjectId, Word> = HashMap::new();
        for e in stream.elements() {
            // Fault in the referenced compute objects.
            for id in e.referenced() {
                if memory_ids.contains(&id) {
                    continue;
                }
                match self.stack.reference(id) {
                    ReferenceOutcome::Hit { .. } => {
                        self.metrics.object_hits += 1;
                    }
                    ReferenceOutcome::Miss => {
                        self.metrics.object_misses += 1;
                        self.metrics.config_cycles += u64::from(ObjectLibrary::LOAD_LATENCY);
                        let logical = self.library.load(id)?;
                        if let Some(victim) = self.stack.insert_top(BoundObject::bind(logical)) {
                            self.metrics.swap_outs += 1;
                            self.library.write_back(victim.unbind());
                        }
                    }
                }
                self.metrics.config_cycles += 1;
            }
            // Constant sources are self-firing: they produce their
            // immediate the first time anything consumes them.
            for src in e.sources() {
                if let std::collections::hash_map::Entry::Vacant(e) = values.entry(src) {
                    if let Ok((Operation::Const, imm)) = self.op_of(src, &memory_ids) {
                        e.insert(imm);
                    }
                }
            }
            // Evaluate the element.
            let (op, imm) = self.op_of(e.sink, &memory_ids)?;
            let get = |src: Option<ObjectId>, values: &HashMap<ObjectId, Word>| {
                src.and_then(|id| values.get(&id).copied())
                    .unwrap_or(Word::ZERO)
            };
            let lhs = get(e.src_lhs, &values);
            let rhs = get(e.src_rhs, &values);
            let pred = get(e.src_pred, &values);
            let result = match op {
                Operation::Load => {
                    let b = self
                        .memory_binds
                        .iter_mut()
                        .find(|b| b.id() == e.sink)
                        .ok_or(ApError::UndefinedSource(e.sink))?;
                    let block = b.regs[1].as_u64() as usize;
                    let addr = if e.src_lhs.is_some() {
                        b.regs[0].as_u64() + lhs.as_u64()
                    } else {
                        let a = b.regs[0].as_u64();
                        b.regs[0] = Word(a + 1);
                        a
                    };
                    let mem = self
                        .memory
                        .get_mut(block)
                        .ok_or(ApError::UndefinedSource(e.sink))?;
                    self.metrics.loads += 1;
                    Some(mem.load(addr)?)
                }
                Operation::Store => {
                    let b = self
                        .memory_binds
                        .iter_mut()
                        .find(|b| b.id() == e.sink)
                        .ok_or(ApError::UndefinedSource(e.sink))?;
                    let block = b.regs[1].as_u64() as usize;
                    let addr = if e.src_lhs.is_some() {
                        lhs.as_u64()
                    } else {
                        let a = b.regs[0].as_u64();
                        b.regs[0] = Word(a + 1);
                        a
                    };
                    let mem = self
                        .memory
                        .get_mut(block)
                        .ok_or(ApError::UndefinedSource(e.sink))?;
                    mem.store(addr, rhs)?;
                    self.metrics.stores += 1;
                    None
                }
                Operation::SteerTrue => pred.as_bool().then_some(lhs),
                Operation::SteerFalse => (!pred.as_bool()).then_some(lhs),
                op => op.eval(lhs, rhs, imm),
            };
            self.metrics.firings += 1;
            self.metrics.exec_cycles += u64::from(op.latency());
            if let Some(v) = result {
                values.insert(e.sink, v);
            }
        }
        Ok(values)
    }

    fn op_of(&self, id: ObjectId, memory_ids: &[ObjectId]) -> Result<(Operation, Word), ApError> {
        if memory_ids.contains(&id) {
            let b = self
                .memory_binds
                .iter()
                .find(|b| b.id() == id)
                .ok_or(ApError::UndefinedSource(id))?;
            return Ok((b.logical.cfg.op, b.logical.cfg.imm));
        }
        let b = self.stack.get(id).ok_or(ApError::UndefinedSource(id))?;
        Ok((b.logical.cfg.op, b.logical.cfg.imm))
    }

    /// Read access to memory block `block` (e.g. to inspect store streams).
    pub fn memory(&self, block: usize) -> Option<&MemoryBlock> {
        self.memory.get(block)
    }

    /// Write access to memory block `block` — the path a *preceding*
    /// processor (or host) uses to fill inputs while this processor is
    /// inactive (§3.3, Figure 7(d)).
    pub fn memory_mut(&mut self, block: usize) -> Option<&mut MemoryBlock> {
        self.memory.get_mut(block)
    }

    /// The object stack (for inspection).
    pub fn stack(&self) -> &ObjectStack {
        &self.stack
    }

    /// The WSRF (for inspection).
    pub fn wsrf(&self) -> &WorkingSetRegisterFile {
        &self.wsrf
    }

    /// The library (for inspection).
    pub fn library(&self) -> &ObjectLibrary {
        &self.library
    }

    /// The CSD network (for inspection).
    pub fn csd(&self) -> &DynamicCsd {
        &self.csd
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> ApMetrics {
        let mut m = self.metrics;
        m.stack_shifts = self.stack.shift_count();
        m
    }

    /// Releases everything and writes all cached objects back to the
    /// library — the processor returns to the `release` lifecycle state
    /// with no residual state in the array.
    pub fn flush(&mut self) {
        self.release();
        for logical in self.stack.drain_write_back() {
            self.metrics.swap_outs += 1;
            self.library.write_back(logical);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_object::{GlobalConfigElement, LocalConfig};

    fn ap() -> AdaptiveProcessor {
        AdaptiveProcessor::new(ApConfig::default())
    }

    fn const_obj(id: u32, v: u64) -> LogicalObject {
        LogicalObject::compute(
            ObjectId(id),
            LocalConfig::with_imm(Operation::Const, Word(v)),
        )
    }

    fn unary_obj(id: u32, op: Operation, imm: u64) -> LogicalObject {
        LogicalObject::compute(ObjectId(id), LocalConfig::with_imm(op, Word(imm)))
    }

    #[test]
    fn streaming_configure_execute() {
        let mut p = ap();
        p.install([const_obj(0, 5), unary_obj(1, Operation::AddImm, 3)])
            .unwrap();
        let stream: GlobalConfigStream = [GlobalConfigElement::unary(ObjectId(1), ObjectId(0))]
            .into_iter()
            .collect();
        let out = p.configure(stream).unwrap();
        assert_eq!(out.misses, 2);
        let report = p.execute(1, 100_000).unwrap();
        assert_eq!(report.taps[&ObjectId(1)], vec![Word(8)]);
        assert!(p.metrics().exec_cycles > 0);
    }

    #[test]
    fn memory_stream_roundtrip() {
        let mut p = ap();
        // Memory object 100 loads 4 words from block 0; compute negates;
        // memory object 101 stores into block 1.
        let mut load = LogicalObject::memory(ObjectId(100), LocalConfig::op(Operation::Load));
        load.init = vec![Word(0), Word(0), Word(4)];
        let mut store = LogicalObject::memory(ObjectId(101), LocalConfig::op(Operation::Store));
        store.init = vec![Word(0), Word(1), Word(0)];
        p.install([load, store, unary_obj(1, Operation::MulImm, 10)])
            .unwrap();
        for i in 0..4 {
            p.memory_mut(0).unwrap().store(i, Word(i + 1)).unwrap();
        }
        let stream: GlobalConfigStream = [
            GlobalConfigElement::unary(ObjectId(1), ObjectId(100)),
            GlobalConfigElement {
                sink: ObjectId(101),
                src_lhs: None,
                src_rhs: Some(ObjectId(1)),
                src_pred: None,
            },
        ]
        .into_iter()
        .collect();
        p.configure(stream).unwrap();
        let report = p.execute(0, 100_000).unwrap();
        assert_eq!(report.stores, 4);
        for i in 0..4u64 {
            assert_eq!(p.memory(1).unwrap().peek(i).unwrap(), Word((i + 1) * 10));
        }
    }

    #[test]
    fn release_keeps_objects_cached() {
        let mut p = ap();
        p.install([const_obj(0, 1), unary_obj(1, Operation::AddImm, 1)])
            .unwrap();
        let stream: GlobalConfigStream = [GlobalConfigElement::unary(ObjectId(1), ObjectId(0))]
            .into_iter()
            .collect();
        p.configure(stream.clone()).unwrap();
        p.release();
        assert_eq!(p.csd().used_channels(), 0);
        assert_eq!(p.stack().len(), 2, "objects stay cached after release");
        // Reconfiguring hits.
        let out = p.configure(stream).unwrap();
        assert_eq!(out.misses, 0);
    }

    #[test]
    fn flush_writes_everything_back() {
        let mut p = ap();
        p.install([const_obj(0, 1), unary_obj(1, Operation::AddImm, 1)])
            .unwrap();
        let stream: GlobalConfigStream = [GlobalConfigElement::unary(ObjectId(1), ObjectId(0))]
            .into_iter()
            .collect();
        p.configure(stream).unwrap();
        p.flush();
        assert!(p.stack().is_empty());
        assert_eq!(p.library().store_count(), 2);
    }

    #[test]
    fn scalar_mode_runs_oversized_working_sets() {
        // 24 objects on a 16-slot array: streaming is rejected, scalar works.
        let mut p = ap();
        let mut objs = vec![const_obj(0, 1)];
        for i in 1..24u32 {
            objs.push(unary_obj(i, Operation::AddImm, 1));
        }
        p.install(objs).unwrap();
        let stream: GlobalConfigStream = (1..24u32)
            .map(|i| GlobalConfigElement::unary(ObjectId(i), ObjectId(i - 1)))
            .collect();
        assert!(matches!(
            p.configure(stream.clone()),
            Err(ApError::WorkingSetExceedsCapacity { .. })
        ));
        let values = p.execute_scalar(&stream).unwrap();
        // Chain of 23 increments starting from 1.
        assert_eq!(values[&ObjectId(23)], Word(24));
        let m = p.metrics();
        assert!(
            m.object_misses >= 24,
            "every object faulted in at least once"
        );
    }

    #[test]
    fn scalar_mode_swaps_preserve_hit_rate_structure() {
        // A loop over 4 objects on a 2-slot array thrashes; on a 8-slot
        // array it hits. Compare swap counts.
        let small_cfg = ApConfig {
            compute_objects: 2,
            ..ApConfig::default()
        };
        let make_stream = || -> GlobalConfigStream {
            let mut v = Vec::new();
            for _ in 0..8 {
                for i in 1..4u32 {
                    v.push(GlobalConfigElement::unary(ObjectId(i), ObjectId(i - 1)));
                }
            }
            v.into_iter().collect()
        };
        let mut small = AdaptiveProcessor::new(small_cfg);
        let mut big = ap();
        for p in [&mut small, &mut big] {
            p.install((0..4u32).map(|i| unary_obj(i, Operation::AddImm, 1)))
                .unwrap();
        }
        small.execute_scalar(&make_stream()).unwrap();
        big.execute_scalar(&make_stream()).unwrap();
        assert!(small.metrics().object_misses > big.metrics().object_misses);
        assert!(small.metrics().swap_outs > big.metrics().swap_outs);
        assert!(small.metrics().hit_rate() < big.metrics().hit_rate());
    }

    #[test]
    fn multiple_datapaths_coexist() {
        // §1: "The AP can configure multiple application datapaths in a
        // sequential configuration manner." Two independent chains share
        // the array and the CSD network, and both execute.
        let mut p = ap();
        p.install([
            const_obj(0, 10),
            unary_obj(1, Operation::AddImm, 1),
            const_obj(10, 20),
            unary_obj(11, Operation::MulImm, 3),
        ])
        .unwrap();
        let a: GlobalConfigStream = [GlobalConfigElement::unary(ObjectId(1), ObjectId(0))]
            .into_iter()
            .collect();
        let b: GlobalConfigStream = [GlobalConfigElement::unary(ObjectId(11), ObjectId(10))]
            .into_iter()
            .collect();
        p.configure(a).unwrap();
        let out_b = p.configure_another(b).unwrap();
        assert_eq!(p.datapath_count(), 2);
        assert_eq!(out_b.misses, 2, "only b's objects fault");
        // Both datapaths run, in either order, repeatedly.
        let rb = p.execute_datapath(1, 1, 100_000).unwrap();
        assert_eq!(rb.taps[&ObjectId(11)], vec![Word(60)]);
        let ra = p.execute_datapath(0, 1, 100_000).unwrap();
        assert_eq!(ra.taps[&ObjectId(1)], vec![Word(11)]);
        // Releasing one keeps the other chained and runnable.
        p.release_datapath(0).unwrap();
        assert_eq!(p.datapath_count(), 1);
        let rb2 = p.execute_datapath(0, 1, 100_000).unwrap();
        assert_eq!(rb2.taps[&ObjectId(11)], vec![Word(60)]);
        p.csd().check_invariants().unwrap();
    }

    #[test]
    fn combined_working_set_enforced_across_datapaths() {
        let mut p = AdaptiveProcessor::new(ApConfig {
            compute_objects: 3,
            ..ApConfig::default()
        });
        p.install((0..6u32).map(|i| unary_obj(i, Operation::AddImm, 1)))
            .unwrap();
        let a: GlobalConfigStream = [GlobalConfigElement::unary(ObjectId(1), ObjectId(0))]
            .into_iter()
            .collect();
        let b: GlobalConfigStream = [GlobalConfigElement::unary(ObjectId(3), ObjectId(2))]
            .into_iter()
            .collect();
        p.configure(a).unwrap();
        // 2 + 2 objects on a 3-slot array: rejected, first stays intact.
        assert!(matches!(
            p.configure_another(b),
            Err(ApError::WorkingSetExceedsCapacity { .. })
        ));
        assert_eq!(p.datapath_count(), 1);
    }

    #[test]
    fn execute_without_configure_errors() {
        let mut p = ap();
        assert!(matches!(p.execute(1, 100), Err(ApError::EmptyDatapath)));
    }

    #[test]
    fn install_too_many_memory_objects() {
        let mut p = AdaptiveProcessor::new(ApConfig {
            memory_objects: 1,
            ..ApConfig::default()
        });
        let m0 = LogicalObject::memory(ObjectId(100), LocalConfig::op(Operation::Load));
        let m1 = LogicalObject::memory(ObjectId(101), LocalConfig::op(Operation::Load));
        p.install([m0]).unwrap();
        assert!(p.install([m1]).is_err());
    }
}

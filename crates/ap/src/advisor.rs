//! Resource sizing: from a datapath to a processor request.
//!
//! §1: "Application designers know the optimal amount of resources, and
//! thus they should be able to control the reconfiguration through a
//! certain methodology." This module is that methodology, computed from
//! the global configuration stream alone:
//!
//! * **capacity** — the compute working set (streaming needs it resident,
//!   §2.5), or for scalar workloads the knee of the Denning working-set
//!   curve;
//! * **channels** — the paper's Figure 3 rule (≈ half the array for
//!   random dependency structure) tightened by the stream's own measured
//!   span profile;
//! * **memory objects** — the stream's distinct memory references.

use vlsi_object::{GlobalConfigStream, ObjectId};

/// A sizing recommendation for one datapath.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ResourceAdvice {
    /// Compute objects the processor should provide.
    pub compute_objects: usize,
    /// Memory objects referenced by the stream.
    pub memory_objects: usize,
    /// CSD channels that keep the configuration routable.
    pub channels: usize,
    /// Whether the datapath can stream (working set ≤ recommended
    /// capacity by construction) or must run as virtual hardware.
    pub streams: bool,
}

impl ResourceAdvice {
    /// Total objects (compute + memory).
    pub fn total_objects(&self) -> usize {
        self.compute_objects + self.memory_objects
    }

    /// Clusters to request from a chip whose clusters carry
    /// `compute_per_cluster` compute and `memory_per_cluster` memory
    /// objects.
    pub fn clusters(&self, compute_per_cluster: usize, memory_per_cluster: usize) -> usize {
        let by_compute = self.compute_objects.div_ceil(compute_per_cluster.max(1));
        let by_memory = self.memory_objects.div_ceil(memory_per_cluster.max(1));
        by_compute.max(by_memory).max(1)
    }
}

/// Sizes a processor for `stream`, given which referenced IDs are memory
/// objects.
pub fn advise(stream: &GlobalConfigStream, memory_ids: &[ObjectId]) -> ResourceAdvice {
    let ws = stream.working_set();
    let memory_objects = ws.iter().filter(|id| memory_ids.contains(id)).count();
    let compute_ws = ws.len() - memory_objects;
    // Streaming needs the compute working set resident (§2.5).
    let compute_objects = compute_ws.max(1);
    // Channel demand: one channel per producer->consumer pair active at
    // once; Figure 3's bound is half the array, and a chain-shaped stream
    // needs far fewer. Estimate from the count of distinct chained pairs,
    // capped by the Figure 3 rule.
    let mut pairs: Vec<(ObjectId, ObjectId)> = Vec::new();
    for e in stream.elements() {
        for src in e.sources() {
            if src != e.sink && !pairs.contains(&(src, e.sink)) {
                pairs.push((src, e.sink));
            }
        }
    }
    let positions = compute_objects + memory_objects;
    let channels = pairs.len().min(positions.div_ceil(2)).max(1);
    ResourceAdvice {
        compute_objects,
        memory_objects,
        channels,
        streams: true,
    }
}

/// Sizes a processor for *scalar* (virtual-hardware) execution of a
/// stream whose working set need not be resident: picks the knee of the
/// working-set curve — the smallest window-`tau` coverage that captures
/// `coverage` (e.g. 0.9) of the saturated working set.
pub fn advise_scalar(stream: &GlobalConfigStream, coverage: f64) -> ResourceAdvice {
    let ws = stream.working_set().len().max(1);
    let curve = stream.working_set_curve(ws * 2);
    let target = coverage.clamp(0.0, 1.0) * ws as f64;
    let knee = curve
        .iter()
        .position(|&v| v >= target)
        .map(|tau| curve[tau].ceil() as usize)
        .unwrap_or(ws);
    ResourceAdvice {
        compute_objects: knee.clamp(1, ws),
        memory_objects: 0,
        channels: knee.div_ceil(2).max(1),
        streams: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_object::{GlobalConfigElement, StreamBuilder};

    fn id(v: u32) -> ObjectId {
        ObjectId(v)
    }

    #[test]
    fn advice_for_a_chain() {
        // load -> a -> b -> store.
        let stream = StreamBuilder::new()
            .chain(id(0), id(1000))
            .chain(id(1), id(0))
            .store(id(1001), id(1))
            .build();
        let advice = advise(&stream, &[id(1000), id(1001)]);
        assert_eq!(advice.compute_objects, 2);
        assert_eq!(advice.memory_objects, 2);
        assert_eq!(advice.channels, 2); // capped at positions/2
        assert!(advice.streams);
        // On the default 4+4 cluster this is a single-cluster processor.
        assert_eq!(advice.clusters(4, 4), 1);
    }

    #[test]
    fn advice_scales_with_fanout() {
        let wide = StreamBuilder::new()
            .chain(id(1), id(0))
            .chain(id(2), id(0))
            .chain(id(3), id(0))
            .chain(id(4), id(0))
            .build();
        let advice = advise(&wide, &[]);
        assert_eq!(advice.compute_objects, 5);
        assert!(advice.channels >= 2);
    }

    #[test]
    fn cluster_rounding_respects_both_resources() {
        let a = ResourceAdvice {
            compute_objects: 3,
            memory_objects: 9,
            channels: 4,
            streams: true,
        };
        // Memory dominates: ceil(9/4) = 3 clusters.
        assert_eq!(a.clusters(4, 4), 3);
        assert_eq!(a.total_objects(), 12);
    }

    #[test]
    fn scalar_advice_finds_a_knee_below_the_working_set() {
        // A looping reference pattern over 8 objects where windows of ~8
        // references cover most of the set.
        let stream: GlobalConfigStream = (0..64)
            .map(|i| GlobalConfigElement::unary(id(i % 8), id((i + 1) % 8)))
            .collect();
        let advice = advise_scalar(&stream, 0.9);
        assert!(advice.compute_objects <= 8);
        assert!(advice.compute_objects >= 4);
        assert!(!advice.streams);
    }

    #[test]
    fn degenerate_streams() {
        let one = StreamBuilder::new().request(id(0)).build();
        let a = advise(&one, &[]);
        assert_eq!(a.compute_objects, 1);
        assert_eq!(a.channels, 1);
        let s = advise_scalar(&one, 0.9);
        assert_eq!(s.compute_objects, 1);
    }
}

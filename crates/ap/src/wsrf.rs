//! The working-set register file (WSRF).
//!
//! §2.2: routing "is performed during this \[acquirement\] pipeline stage
//! using an acquirement signal from special registers called a working-set
//! register file (WSRF) for maintain the acquired elements". §2.6.1 adds
//! that "cache hit detection can be centrally processed on the WSRF instead
//! of searching in the array … Searching in WSRFs can be performed in
//! parallel."
//!
//! The WSRF therefore does two jobs in this model:
//!
//! 1. **central hit detection** — a tag lookup answering "is this object
//!    acquired, and where?" without touching the array;
//! 2. **acquirement bookkeeping** — remembering, per acquired object, the
//!    CSD routes that feed it, so the acquirement signal can tell the sink
//!    "which communication port to use for the chaining" (§2.3).
//!
//! Table 3 sizes the real register file at forty 64-bit entries
//! ([`WSRF_ENTRIES`]); the model enforces that capacity.

use crate::error::ApError;
use vlsi_csd::RouteId;
use vlsi_object::ObjectId;

/// Entries in one WSRF (Table 3: "64b x40 Reg. in WSRF").
pub const WSRF_ENTRIES: usize = 40;

/// One acquirement record: an object admitted to the working set, plus the
/// routes chaining its input ports.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Acquirement {
    /// The acquired object.
    pub id: ObjectId,
    /// Routes feeding this object's ports (lhs, rhs, pred as granted).
    pub routes: Vec<RouteId>,
}

/// The working-set register file of one adaptive processor.
#[derive(Clone, Debug, Default)]
pub struct WorkingSetRegisterFile {
    entries: Vec<Acquirement>,
    capacity: usize,
    searches: u64,
    hits: u64,
}

impl WorkingSetRegisterFile {
    /// A WSRF with the paper's forty entries.
    pub fn new() -> WorkingSetRegisterFile {
        WorkingSetRegisterFile::with_capacity(WSRF_ENTRIES)
    }

    /// A WSRF with a custom entry count (for capacity ablations).
    pub fn with_capacity(capacity: usize) -> WorkingSetRegisterFile {
        WorkingSetRegisterFile {
            entries: Vec::new(),
            capacity,
            searches: 0,
            hits: 0,
        }
    }

    /// Entry capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Acquired-entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is acquired.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Central hit detection: is `id` acquired?
    pub fn search(&mut self, id: ObjectId) -> bool {
        self.searches += 1;
        let hit = self.entries.iter().any(|a| a.id == id);
        if hit {
            self.hits += 1;
        }
        hit
    }

    /// Acquires `id` with no routes yet. Errors when the file is full —
    /// the working set no longer fits the acquirement hardware.
    pub fn acquire(&mut self, id: ObjectId) -> Result<(), ApError> {
        if self.entries.iter().any(|a| a.id == id) {
            return Ok(()); // already acquired: idempotent
        }
        if self.entries.len() >= self.capacity {
            return Err(ApError::WorkingSetExceedsWsrf {
                working_set: self.entries.len() + 1,
                wsrf_entries: self.capacity,
            });
        }
        self.entries.push(Acquirement {
            id,
            routes: Vec::new(),
        });
        Ok(())
    }

    /// Records a granted route feeding `id` (the acquirement signal's
    /// channel/port information).
    pub fn add_route(&mut self, id: ObjectId, route: RouteId) -> Result<(), ApError> {
        match self.entries.iter_mut().find(|a| a.id == id) {
            Some(a) => {
                a.routes.push(route);
                Ok(())
            }
            None => Err(ApError::UndefinedSource(id)),
        }
    }

    /// Releases `id`, returning its routes so the caller can tear them
    /// down on the CSD network (the release-token path).
    pub fn release(&mut self, id: ObjectId) -> Option<Acquirement> {
        let pos = self.entries.iter().position(|a| a.id == id)?;
        Some(self.entries.remove(pos))
    }

    /// The record for `id`.
    pub fn get(&self, id: ObjectId) -> Option<&Acquirement> {
        self.entries.iter().find(|a| a.id == id)
    }

    /// Iterates over acquirements in acquisition order.
    pub fn iter(&self) -> impl Iterator<Item = &Acquirement> {
        self.entries.iter()
    }

    /// Releases everything, returning all records (processor release).
    pub fn release_all(&mut self) -> Vec<Acquirement> {
        std::mem::take(&mut self.entries)
    }

    /// `(searches, hits)` counters of central hit detection.
    pub fn search_stats(&self) -> (u64, u64) {
        (self.searches, self.hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_and_search() {
        let mut w = WorkingSetRegisterFile::new();
        assert!(!w.search(ObjectId(1)));
        w.acquire(ObjectId(1)).unwrap();
        assert!(w.search(ObjectId(1)));
        assert_eq!(w.search_stats(), (2, 1));
    }

    #[test]
    fn acquire_is_idempotent() {
        let mut w = WorkingSetRegisterFile::new();
        w.acquire(ObjectId(1)).unwrap();
        w.acquire(ObjectId(1)).unwrap();
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn capacity_enforced() {
        let mut w = WorkingSetRegisterFile::with_capacity(2);
        w.acquire(ObjectId(1)).unwrap();
        w.acquire(ObjectId(2)).unwrap();
        let err = w.acquire(ObjectId(3)).unwrap_err();
        assert!(matches!(err, ApError::WorkingSetExceedsWsrf { .. }));
    }

    #[test]
    fn default_capacity_is_table3() {
        let w = WorkingSetRegisterFile::new();
        assert_eq!(w.capacity(), 40);
    }

    #[test]
    fn routes_tracked_per_object() {
        let mut w = WorkingSetRegisterFile::new();
        w.acquire(ObjectId(1)).unwrap();
        w.add_route(ObjectId(1), RouteId(7)).unwrap();
        w.add_route(ObjectId(1), RouteId(8)).unwrap();
        assert_eq!(
            w.get(ObjectId(1)).unwrap().routes,
            vec![RouteId(7), RouteId(8)]
        );
        assert!(w.add_route(ObjectId(9), RouteId(1)).is_err());
    }

    #[test]
    fn release_returns_routes() {
        let mut w = WorkingSetRegisterFile::new();
        w.acquire(ObjectId(1)).unwrap();
        w.add_route(ObjectId(1), RouteId(3)).unwrap();
        let a = w.release(ObjectId(1)).unwrap();
        assert_eq!(a.routes, vec![RouteId(3)]);
        assert!(w.release(ObjectId(1)).is_none());
        assert!(w.is_empty());
    }

    #[test]
    fn release_all() {
        let mut w = WorkingSetRegisterFile::new();
        for i in 0..5 {
            w.acquire(ObjectId(i)).unwrap();
        }
        assert_eq!(w.release_all().len(), 5);
        assert!(w.is_empty());
    }
}

//! The replacement scheduling table (§2.5).
//!
//! "When it is an object cache-miss, cache missed object(s) is loaded,
//! and replaceable object(s) is stored if necessary. The replacement is
//! scheduled using a special interconnection network composing a
//! scheduling table."
//!
//! The table's effect on timing: it lets the *store* of an evicted
//! logical object (the write-back) proceed concurrently with the *load*
//! of the missing one, instead of serialising the two memory-block
//! transfers. [`ReplacementScheduler::miss_penalty`] models both regimes
//! so the benefit is measurable (the `ablation_stack` bench reports it),
//! and the table itself records every scheduled transfer for inspection.

use vlsi_object::ObjectId;

/// Direction of a scheduled transfer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Transfer {
    /// Library → configuration buffer (miss service).
    SwapIn(ObjectId),
    /// Object space → library (write-back of an LRU victim).
    SwapOut(ObjectId),
}

/// The replacement scheduler of one adaptive processor.
#[derive(Clone, Debug)]
pub struct ReplacementScheduler {
    /// Configuration buffers usable in parallel for swap-ins.
    pub cfb_count: usize,
    /// Cycles per swap-in (library load).
    pub load_latency: u32,
    /// Cycles per swap-out (library write-back).
    pub writeback_latency: u32,
    /// Whether the scheduling table overlaps swap-outs with swap-ins
    /// (`false` models the paper's architecture *without* the table:
    /// transfers serialise).
    pub overlapped: bool,
    table: Vec<Transfer>,
}

impl Default for ReplacementScheduler {
    fn default() -> Self {
        ReplacementScheduler {
            cfb_count: crate::pipeline::CFB_COUNT,
            load_latency: vlsi_object::ObjectLibrary::LOAD_LATENCY,
            writeback_latency: vlsi_object::ObjectLibrary::LOAD_LATENCY,
            overlapped: true,
            table: Vec::new(),
        }
    }
}

impl ReplacementScheduler {
    /// A scheduler with the paper's constants and the table enabled.
    pub fn new() -> ReplacementScheduler {
        ReplacementScheduler::default()
    }

    /// A scheduler without the table (serial transfers) — the baseline
    /// the §2.5 mechanism improves on.
    pub fn serial() -> ReplacementScheduler {
        ReplacementScheduler {
            overlapped: false,
            ..ReplacementScheduler::default()
        }
    }

    /// A scheduler with explicit parameters.
    pub fn configured(
        cfb_count: usize,
        load_latency: u32,
        writeback_latency: u32,
        overlapped: bool,
    ) -> ReplacementScheduler {
        ReplacementScheduler {
            cfb_count,
            load_latency,
            writeback_latency,
            overlapped,
            table: Vec::new(),
        }
    }

    /// Records the transfers of one miss event and returns its stall
    /// cycles. `loads` objects must be fetched; `writebacks` victims must
    /// be stored.
    pub fn schedule(&mut self, loads: &[ObjectId], writebacks: &[ObjectId]) -> u64 {
        for &o in loads {
            self.table.push(Transfer::SwapIn(o));
        }
        for &o in writebacks {
            self.table.push(Transfer::SwapOut(o));
        }
        self.miss_penalty(loads.len(), writebacks.len())
    }

    /// Stall cycles for `loads` swap-ins and `writebacks` swap-outs.
    ///
    /// Swap-ins move through the configuration buffers `cfb_count` at a
    /// time. With the scheduling table, swap-outs overlap them (the two
    /// use the special interconnection network concurrently); without it
    /// they serialise.
    pub fn miss_penalty(&self, loads: usize, writebacks: usize) -> u64 {
        let in_time = loads.div_ceil(self.cfb_count) as u64 * u64::from(self.load_latency);
        let out_time =
            writebacks.div_ceil(self.cfb_count) as u64 * u64::from(self.writeback_latency);
        if self.overlapped {
            in_time.max(out_time)
        } else {
            in_time + out_time
        }
    }

    /// Every transfer scheduled so far, in order.
    pub fn table(&self) -> &[Transfer] {
        &self.table
    }

    /// `(swap_ins, swap_outs)` counts.
    pub fn counts(&self) -> (usize, usize) {
        let ins = self
            .table
            .iter()
            .filter(|t| matches!(t, Transfer::SwapIn(_)))
            .count();
        (ins, self.table.len() - ins)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_takes_the_max() {
        let s = ReplacementScheduler::new();
        // 3 loads (one CFB batch) + 3 write-backs: overlapped = 8 cycles.
        assert_eq!(s.miss_penalty(3, 3), 8);
        // Serial baseline pays both.
        assert_eq!(ReplacementScheduler::serial().miss_penalty(3, 3), 16);
    }

    #[test]
    fn loads_batch_through_cfbs() {
        let s = ReplacementScheduler::new();
        assert_eq!(s.miss_penalty(1, 0), 8);
        assert_eq!(s.miss_penalty(3, 0), 8);
        assert_eq!(s.miss_penalty(4, 0), 16);
        assert_eq!(s.miss_penalty(0, 0), 0);
    }

    #[test]
    fn table_records_transfers() {
        let mut s = ReplacementScheduler::new();
        let stall = s.schedule(&[ObjectId(1), ObjectId(2)], &[ObjectId(9)]);
        assert_eq!(stall, 8);
        assert_eq!(s.table().len(), 3);
        assert_eq!(s.counts(), (2, 1));
        assert_eq!(s.table()[2], Transfer::SwapOut(ObjectId(9)));
    }

    #[test]
    fn the_table_always_helps_or_ties() {
        let with = ReplacementScheduler::new();
        let without = ReplacementScheduler::serial();
        for loads in 0..6 {
            for wbs in 0..6 {
                assert!(with.miss_penalty(loads, wbs) <= without.miss_penalty(loads, wbs));
            }
        }
    }
}

//! Edge cases of the dataflow execution engine.

use vlsi_ap::datapath::{Datapath, NodeSpec};
use vlsi_ap::ApError;
use vlsi_object::{
    GlobalConfigElement, GlobalConfigStream, LocalConfig, MemoryBlock, ObjectId, ObjectKind,
    Operation, Word, PHYS_REGISTERS,
};

fn compute(id: u32, op: Operation, imm: u64) -> NodeSpec {
    NodeSpec {
        id: ObjectId(id),
        cfg: LocalConfig::with_imm(op, Word(imm)),
        kind: ObjectKind::Compute,
        regs: [Word::ZERO; PHYS_REGISTERS],
    }
}

fn mem(id: u32, op: Operation, base: u64, block: u64, len: u64) -> NodeSpec {
    let mut regs = [Word::ZERO; PHYS_REGISTERS];
    regs[0] = Word(base);
    regs[1] = Word(block);
    regs[2] = Word(len);
    NodeSpec {
        id: ObjectId(id),
        cfg: LocalConfig::op(op),
        kind: ObjectKind::Memory,
        regs,
    }
}

#[test]
fn backpressure_does_not_lose_or_duplicate_tokens() {
    // Fast producer (latency-1 pass chain) into a slow consumer (fdiv,
    // 16 cycles): every loaded word must arrive exactly once.
    let stream: GlobalConfigStream = [
        GlobalConfigElement::unary(ObjectId(1), ObjectId(0)),
        GlobalConfigElement::unary(ObjectId(2), ObjectId(1)),
        GlobalConfigElement {
            sink: ObjectId(3),
            src_lhs: None,
            src_rhs: Some(ObjectId(2)),
            src_pred: None,
        },
    ]
    .into_iter()
    .collect();
    let mut dp = Datapath::build(&stream, |id| match id.0 {
        0 => Some(mem(0, Operation::Load, 0, 0, 20)),
        1 => Some(compute(1, Operation::Pass, 0)),
        2 => Some(compute(2, Operation::MulImm, 3)), // 3-cycle stage
        3 => Some(mem(3, Operation::Store, 0, 1, 0)),
        _ => None,
    })
    .unwrap();
    let mut memory = vec![MemoryBlock::new(), MemoryBlock::new()];
    for i in 0..20 {
        memory[0].store(i, Word(i + 1)).unwrap();
    }
    let report = dp.run(&mut memory, 0, 100_000).unwrap();
    assert!(report.drained);
    assert_eq!(report.loads, 20);
    assert_eq!(report.stores, 20);
    for i in 0..20u64 {
        assert_eq!(memory[1].peek(i).unwrap(), Word((i + 1) * 3));
    }
}

#[test]
fn steer_that_never_passes_produces_nothing() {
    // Predicate always false on a SteerTrue: the value tokens are
    // consumed silently; the tap stays empty; the run still drains.
    let stream: GlobalConfigStream =
        [GlobalConfigElement::unary(ObjectId(2), ObjectId(0)).with_pred(ObjectId(1))]
            .into_iter()
            .collect();
    let mut dp = Datapath::build(&stream, |id| match id.0 {
        0 => Some(compute(0, Operation::Const, 5)),
        1 => Some(compute(1, Operation::Const, 0)), // false predicate
        2 => Some(compute(2, Operation::SteerTrue, 0)),
        _ => None,
    })
    .unwrap();
    let mut memory = Vec::new();
    let report = dp.run(&mut memory, 4, 100_000).unwrap();
    assert!(report.drained);
    assert!(report.taps[&ObjectId(2)].is_empty());
    assert!(report.firings >= 3, "consts and the steer all fired");
}

#[test]
fn merge_prefers_lhs_but_drains_both() {
    let stream: GlobalConfigStream = [GlobalConfigElement::binary(
        ObjectId(2),
        ObjectId(0),
        ObjectId(1),
    )]
    .into_iter()
    .collect();
    let mut dp = Datapath::build(&stream, |id| match id.0 {
        0 => Some(compute(0, Operation::Const, 100)),
        1 => Some(compute(1, Operation::Const, 200)),
        2 => Some(compute(2, Operation::Merge, 0)),
        _ => None,
    })
    .unwrap();
    let mut memory = Vec::new();
    let report = dp.run(&mut memory, 4, 100_000).unwrap();
    assert!(report.drained);
    let vals = &report.taps[&ObjectId(2)];
    assert_eq!(vals.len(), 2, "both constants pass the merge");
    assert!(vals.contains(&Word(100)) && vals.contains(&Word(200)));
}

#[test]
fn out_of_range_memory_block_errors() {
    // A memory node pointing at block 7 when only 1 exists.
    let stream: GlobalConfigStream = [GlobalConfigElement::unary(ObjectId(1), ObjectId(0))]
        .into_iter()
        .collect();
    let mut dp = Datapath::build(&stream, |id| match id.0 {
        0 => Some(mem(0, Operation::Load, 0, 7, 4)),
        1 => Some(compute(1, Operation::Pass, 0)),
        _ => None,
    })
    .unwrap();
    let mut memory = vec![MemoryBlock::new()];
    assert!(dp.run(&mut memory, 4, 100_000).is_err());
}

#[test]
fn load_past_the_block_end_errors() {
    let stream: GlobalConfigStream = [GlobalConfigElement::unary(ObjectId(1), ObjectId(0))]
        .into_iter()
        .collect();
    // Base at the last word, but a 4-element stream: the second load
    // walks off the 8192-word block.
    let mut dp = Datapath::build(&stream, |id| match id.0 {
        0 => Some(mem(0, Operation::Load, 8191, 0, 4)),
        1 => Some(compute(1, Operation::Pass, 0)),
        _ => None,
    })
    .unwrap();
    let mut memory = vec![MemoryBlock::new()];
    match dp.run(&mut memory, 10, 100_000) {
        Err(ApError::Object(_)) => {}
        other => panic!("expected an address error, got {other:?}"),
    }
}

#[test]
fn zero_cycle_budget_times_out() {
    let stream: GlobalConfigStream = [GlobalConfigElement::unary(ObjectId(1), ObjectId(0))]
        .into_iter()
        .collect();
    let mut dp = Datapath::build(&stream, |id| {
        Some(compute(
            id.0,
            if id.0 == 0 {
                Operation::Const
            } else {
                Operation::Pass
            },
            1,
        ))
    })
    .unwrap();
    let mut memory = Vec::new();
    assert!(matches!(
        dp.run(&mut memory, 1, 0),
        Err(ApError::ExecutionTimeout { cycles: 0 })
    ));
}

#[test]
fn deep_chains_scale_linearly_not_quadratically() {
    // A 100-stage chain over one token: cycles should be O(stages), far
    // below a quadratic blowup.
    let stages = 100u32;
    let stream: GlobalConfigStream = (1..=stages)
        .map(|i| GlobalConfigElement::unary(ObjectId(i), ObjectId(i - 1)))
        .collect();
    let mut dp = Datapath::build(&stream, |id| {
        Some(compute(
            id.0,
            if id.0 == 0 {
                Operation::Const
            } else {
                Operation::AddImm
            },
            1,
        ))
    })
    .unwrap();
    let mut memory = Vec::new();
    let report = dp.run(&mut memory, 1, 100_000).unwrap();
    assert_eq!(
        report.taps[&ObjectId(stages)],
        vec![Word(1 + u64::from(stages))]
    );
    assert!(
        report.cycles < u64::from(stages) * 6,
        "cycles {} for {stages} stages",
        report.cycles
    );
}

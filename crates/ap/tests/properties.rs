//! Cross-layer property tests for the adaptive processor.

use proptest::prelude::*;
use vlsi_ap::{AdaptiveProcessor, ApConfig, ObjectStack, ReferenceOutcome};
use vlsi_object::{
    BoundObject, GlobalConfigElement, GlobalConfigStream, LocalConfig, LogicalObject, ObjectId,
    Operation, Word,
};

fn bound(id: u32) -> BoundObject {
    BoundObject::bind(LogicalObject::compute(
        ObjectId(id),
        LocalConfig::op(Operation::Pass),
    ))
}

proptest! {
    /// The hardware stack reports exactly the Mattson stack distances that
    /// the analytic model (`GlobalConfigStream::dependency_distances`)
    /// predicts for the same reference trace.
    #[test]
    fn stack_matches_mattson_distances(trace in prop::collection::vec(0u32..10, 1..100)) {
        // Analytic: build a degenerate stream with one reference per element.
        // referenced() yields sink then source; use self-loops to make each
        // element contribute its sink reference first, then drop the
        // duplicate by using nullary elements instead.
        let stream: GlobalConfigStream = trace
            .iter()
            .map(|&id| GlobalConfigElement::nullary(ObjectId(id)))
            .collect();
        let analytic = stream.dependency_distances();

        // Hardware: unbounded stack (capacity >= distinct IDs).
        let mut stack = ObjectStack::new(16);
        for (i, &id) in trace.iter().enumerate() {
            match stack.reference(ObjectId(id)) {
                ReferenceOutcome::Hit { distance } => {
                    prop_assert_eq!(analytic[i], (ObjectId(id), Some(distance)));
                }
                ReferenceOutcome::Miss => {
                    prop_assert_eq!(analytic[i], (ObjectId(id), None));
                    stack.insert_top(bound(id));
                }
            }
        }
    }

    /// Inclusion property at the processor level: a bigger array never
    /// misses more in scalar (virtual-hardware) mode.
    #[test]
    fn scalar_misses_monotone_in_capacity(
        chain in prop::collection::vec((0u32..12, 0u32..12), 1..60)
    ) {
        let stream: GlobalConfigStream = chain
            .iter()
            .map(|&(a, b)| GlobalConfigElement::unary(ObjectId(a), ObjectId(b)))
            .collect();
        let mut misses = Vec::new();
        for capacity in [2usize, 4, 8, 16] {
            let mut p = AdaptiveProcessor::new(ApConfig {
                compute_objects: capacity,
                ..ApConfig::default()
            });
            p.install((0..12u32).map(|i| {
                LogicalObject::compute(ObjectId(i), LocalConfig::op(Operation::Pass))
            }))
            .unwrap();
            p.execute_scalar(&stream).unwrap();
            misses.push(p.metrics().object_misses);
        }
        for w in misses.windows(2) {
            prop_assert!(w[1] <= w[0], "misses must not grow with capacity: {misses:?}");
        }
    }

    /// Streaming execution and scalar execution compute the same value for
    /// a random linear chain of unary operations.
    #[test]
    fn streaming_equals_scalar_on_chains(
        seed_value in 0u64..1000,
        ops in prop::collection::vec((0usize..4, 1u64..10), 1..10)
    ) {
        let unary = [Operation::AddImm, Operation::MulImm, Operation::INot, Operation::Pass];
        // Build objects: 0 = const, i = unary op i.
        let mut objects = vec![LogicalObject::compute(
            ObjectId(0),
            LocalConfig::with_imm(Operation::Const, Word(seed_value)),
        )];
        for (i, &(op_idx, imm)) in ops.iter().enumerate() {
            objects.push(LogicalObject::compute(
                ObjectId(i as u32 + 1),
                LocalConfig::with_imm(unary[op_idx], Word(imm)),
            ));
        }
        let stream: GlobalConfigStream = (1..=ops.len() as u32)
            .map(|i| GlobalConfigElement::unary(ObjectId(i), ObjectId(i - 1)))
            .collect();
        let last = ObjectId(ops.len() as u32);

        // Streaming run.
        let mut p1 = AdaptiveProcessor::new(ApConfig::default());
        p1.install(objects.clone()).unwrap();
        p1.configure(stream.clone()).unwrap();
        let report = p1.execute(1, 1_000_000).unwrap();
        let streamed = report.taps[&last][0];

        // Scalar run.
        let mut p2 = AdaptiveProcessor::new(ApConfig::default());
        p2.install(objects).unwrap();
        let values = p2.execute_scalar(&stream).unwrap();
        prop_assert_eq!(streamed, values[&last]);
    }

    /// Configure → release → configure is stable: the second configuration
    /// never misses (objects stay cached) and establishes the same routes.
    #[test]
    fn reconfiguration_hits_cache(n in 2usize..10) {
        let mut p = AdaptiveProcessor::new(ApConfig::default());
        p.install((0..n as u32).map(|i| {
            LogicalObject::compute(
                ObjectId(i),
                LocalConfig::with_imm(
                    if i == 0 { Operation::Const } else { Operation::AddImm },
                    Word(1),
                ),
            )
        }))
        .unwrap();
        let stream: GlobalConfigStream = (1..n as u32)
            .map(|i| GlobalConfigElement::unary(ObjectId(i), ObjectId(i - 1)))
            .collect();
        let first = p.configure(stream.clone()).unwrap();
        prop_assert_eq!(first.misses as usize, n);
        let second = p.configure(stream).unwrap();
        prop_assert_eq!(second.misses, 0);
        prop_assert_eq!(second.routes, first.routes);
    }
}

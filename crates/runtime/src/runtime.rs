//! The runtime engine: a deterministic, simulated-time multi-tenant
//! scheduler on top of [`VlsiChip`].
//!
//! One [`Runtime`] owns one chip. Tenants [`submit`] jobs; every call to
//! [`tick`] advances one unit of simulated time and performs, in a fixed
//! order: sleep-timer expiry (warm-pool reclaim), scheduled fault
//! reports (stuck switches, dead NoC links) and defect recovery, job
//! completion, queued-deadline expiry, and admission. Because the order
//! is fixed and every container is iterated deterministically, the same
//! submissions on the same seed produce the exact same [`RuntimeEvent`]
//! log.
//!
//! [`submit`]: Runtime::submit
//! [`tick`]: Runtime::tick

use std::collections::{BTreeMap, VecDeque};

use vlsi_core::{BlockExecutor, CoreError, ProcState, ProcessorId, VlsiChip};
use vlsi_faults::{Fault, FaultKind, FaultPlan};
use vlsi_object::Word;
use vlsi_telemetry::TelemetryHandle;
use vlsi_topology::Coord;
use vlsi_workloads::StreamKernel;

use crate::error::RuntimeError;
use crate::events::{EventKind, RuntimeEvent};
use crate::job::{JobId, JobOutput, JobRecord, JobSpec, JobState, JobStats, Workload};
use crate::policy::{QueuedJob, SchedPolicy};

/// Tunables of the runtime. [`Default`] gives the values used by the
/// integration tests and Ablation I.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Backoff after a failed gather: attempt `n` waits
    /// `backoff_base << (n - 1)` ticks (capped).
    pub backoff_base: u64,
    /// Upper bound on the backoff delay, in ticks.
    pub backoff_cap: u64,
    /// When a gather fails and [`VlsiChip::fragmentation`] exceeds this
    /// while enough total free clusters exist, the runtime compacts and
    /// retries once before backing off.
    pub compact_threshold: f64,
    /// Warm pool: a completed single-processor job's region is parked
    /// asleep for this many ticks instead of released; a matching later
    /// admission reuses it without re-gathering (no configuration worms).
    /// `None` disables the pool.
    pub pool_ttl: Option<u64>,
    /// Simulated chip cycles per runtime tick (a job holding its clusters
    /// for `c` cycles holds them for `max(1, c / cycles_per_tick)` ticks).
    pub cycles_per_tick: u64,
    /// Cycle budget handed to [`VlsiChip::execute`] per kernel run.
    pub max_exec_cycles: u64,
    /// Upper bound on the retained event log. The log is a ring buffer:
    /// once full, the *oldest* event is dropped per push and the
    /// `runtime.events_dropped` telemetry counter (and
    /// [`Runtime::dropped_events`]) ticks up. Long soak runs thus hold
    /// memory constant without losing the recent history tests inspect.
    pub event_log_cap: usize,
}

impl Default for RuntimeConfig {
    fn default() -> RuntimeConfig {
        RuntimeConfig {
            backoff_base: 2,
            backoff_cap: 64,
            compact_threshold: 0.35,
            pool_ttl: Some(32),
            cycles_per_tick: 64,
            max_exec_cycles: 1_000_000,
            event_log_cap: 1 << 16,
        }
    }
}

/// Chip-level counters, accumulated across the whole run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Jobs submitted.
    pub submitted: u64,
    /// Jobs completed successfully.
    pub completed: u64,
    /// Jobs that failed gracefully.
    pub failed: u64,
    /// Gather attempts that found no region.
    pub failed_gathers: u64,
    /// Fragmentation-triggered compactions.
    pub compactions: u64,
    /// Lower-layer fault reports consumed (each paired with a defect).
    pub faults_reported: u64,
    /// Defect-triggered relocations that kept a job alive.
    pub relocations: u64,
    /// Defect recoveries that had to re-queue the job instead.
    pub requeues: u64,
    /// Admissions served from the warm pool.
    pub pool_hits: u64,
    /// Processors parked in the warm pool.
    pub pooled: u64,
    /// Pool parks reclaimed by timer expiry (or defects).
    pub pool_reclaims: u64,
    /// Jobs withdrawn by a cluster scheduler to run on another chip
    /// (work stealing or chip-failure evacuation).
    pub migrated_out: u64,
    /// Cluster-ticks spent held by processors (busy area).
    pub busy_cluster_ticks: u64,
    /// Cluster-ticks available (usable area × ticks).
    pub total_cluster_ticks: u64,
}

/// The digest [`Runtime::run_until_idle`] returns — what the ablation
/// bench tabulates per policy.
#[derive(Clone, Debug)]
pub struct RuntimeSummary {
    /// Name of the scheduling policy that produced this run.
    pub policy: &'static str,
    /// Ticks simulated until the queue drained.
    pub ticks: u64,
    /// Jobs completed successfully.
    pub completed: u64,
    /// Jobs that failed gracefully.
    pub failed: u64,
    /// Tick of the last job completion or failure.
    pub makespan: u64,
    /// Mean queue wait (submission → admission) over admitted jobs.
    pub mean_wait: f64,
    /// Mean turnaround (submission → completion) over finished jobs.
    pub mean_turnaround: f64,
    /// Busy cluster-ticks over available cluster-ticks.
    pub utilization: f64,
    /// The final chip-level counters.
    pub stats: RuntimeStats,
}

/// A region parked in the warm pool.
#[derive(Clone, Copy, Debug)]
struct PoolEntry {
    proc: ProcessorId,
    clusters: usize,
}

/// The multi-tenant scheduler. See the [module docs](self).
pub struct Runtime {
    chip: VlsiChip,
    policy: Box<dyn SchedPolicy>,
    config: RuntimeConfig,
    now: u64,
    next_job: u64,
    jobs: BTreeMap<JobId, JobRecord>,
    queue: Vec<JobId>,
    running: Vec<JobId>,
    pool: Vec<PoolEntry>,
    fault_plan: FaultPlan,
    events: VecDeque<RuntimeEvent>,
    dropped_events: u64,
    stats: RuntimeStats,
    /// Shared with the chip: [`Runtime::new`] adopts the chip's handle,
    /// so building the chip with [`VlsiChip::with_telemetry`] instruments
    /// the scheduler too (`runtime.*` instruments, per-job spans on the
    /// `runtime` track stamped in ticks).
    telemetry: TelemetryHandle,
}

impl Runtime {
    /// A runtime owning `chip`, scheduling with `policy`. The runtime
    /// records into the chip's telemetry handle — pass a chip built with
    /// [`VlsiChip::with_telemetry`] to observe the scheduler.
    pub fn new(chip: VlsiChip, policy: Box<dyn SchedPolicy>, config: RuntimeConfig) -> Runtime {
        let telemetry = chip.telemetry().clone();
        Runtime {
            chip,
            policy,
            config,
            now: 0,
            next_job: 0,
            jobs: BTreeMap::new(),
            queue: Vec::new(),
            running: Vec::new(),
            pool: Vec::new(),
            fault_plan: FaultPlan::none(),
            events: VecDeque::new(),
            dropped_events: 0,
            stats: RuntimeStats::default(),
            telemetry,
        }
    }

    // --- submission ----------------------------------------------------------

    /// Submits a job. Returns its ID; a request that can never fit (or is
    /// empty) is failed immediately and gracefully — check
    /// [`JobRecord::failure`].
    pub fn submit(&mut self, spec: JobSpec) -> JobId {
        let id = JobId(self.next_job);
        self.next_job += 1;
        self.stats.submitted += 1;
        self.telemetry.count("runtime.submissions", 1);
        self.telemetry.span_begin("runtime", "job", id.0, self.now);
        self.push_event(EventKind::Submitted {
            job: id,
            clusters: spec.clusters,
            priority: spec.priority,
        });
        let clusters = spec.clusters;
        let record = JobRecord {
            id,
            spec,
            state: JobState::Queued,
            procs: Vec::new(),
            output: None,
            failure: None,
            stats: JobStats {
                submitted_at: self.now,
                ..JobStats::default()
            },
            next_attempt_at: self.now,
            finish_at: 0,
        };
        self.jobs.insert(id, record);
        let capacity = self.chip.usable_clusters();
        if clusters == 0 {
            self.fail_job(
                id,
                RuntimeError::Workload {
                    job: id,
                    detail: "job requests zero clusters".into(),
                },
            );
        } else if clusters > capacity {
            self.fail_job(
                id,
                RuntimeError::TooLarge {
                    job: id,
                    requested: clusters,
                    capacity,
                },
            );
        } else {
            self.queue.push(id);
        }
        id
    }

    /// Schedules a cluster to become defective at the start of `tick`
    /// (fault injection; past ticks apply on the next tick).
    ///
    /// Modeled as a permanent stuck-switch fault in the attached
    /// [`FaultPlan`]: when it lands, the runtime hears about it as a
    /// lower-layer fault *report* rather than flipping an oracle flag.
    pub fn inject_defect_at(&mut self, tick: u64, coord: Coord) {
        let tick = tick.max(self.now + 1);
        self.fault_plan
            .push(Fault::permanent(FaultKind::SwitchStuck { at: coord }, tick));
    }

    /// Attaches (merges) a fault plan whose times are runtime ticks.
    /// Switch-stuck and permanent NoC faults land during [`tick`] as
    /// lower-layer reports and drive defect recovery; faults scheduled
    /// for the past apply on the next tick.
    ///
    /// [`tick`]: Runtime::tick
    pub fn attach_fault_plan(&mut self, plan: FaultPlan) {
        let shift = self.now + 1;
        for f in plan.faults() {
            let mut f = *f;
            f.start = f.start.max(shift);
            self.fault_plan.push(f);
        }
    }

    /// The merged fault plan driving scheduled fault reports.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// An S-topology switch was detected stuck *now* (an unscheduled,
    /// externally detected fault): mark the cluster defective and
    /// recover its tenant immediately.
    pub fn report_switch_fault(&mut self, coord: Coord) -> Result<(), RuntimeError> {
        self.apply_reported_fault(coord, "s-topology")
    }

    /// A NoC link or router serving `coord` was detected dead *now*:
    /// mark the cluster defective and recover its tenant immediately.
    pub fn report_noc_fault(&mut self, coord: Coord) -> Result<(), RuntimeError> {
        self.apply_reported_fault(coord, "noc")
    }

    // --- the clock -----------------------------------------------------------

    /// Advances simulated time by one tick. See the [module docs](self)
    /// for the fixed intra-tick order.
    pub fn tick(&mut self) -> Result<(), RuntimeError> {
        self.now += 1;
        let now = self.now;

        // 1. Sleep timers: pooled regions whose TTL expired wake and are
        //    reclaimed — idle capacity returns to the free pool.
        for proc in self.chip.tick_timers(1) {
            if let Some(pos) = self.pool.iter().position(|e| e.proc == proc) {
                self.pool.remove(pos);
                self.chip.deactivate(proc)?;
                self.chip.release_processor(proc)?;
                self.stats.pool_reclaims += 1;
                self.push_event(EventKind::PoolReclaimed { proc });
            }
        }

        // 2. Scheduled faults land as lower-layer reports, and their
        //    victims are recovered: stuck switches first, then dead NoC
        //    links/routers, each in plan order.
        let stuck: Vec<Coord> = self.fault_plan.switches_sticking_at(now).collect();
        for c in stuck {
            self.apply_reported_fault(c, "s-topology")?;
        }
        let noc_dead: Vec<Coord> = self.fault_plan.noc_failures_at(now).collect();
        for c in noc_dead {
            self.apply_reported_fault(c, "noc")?;
        }

        // 3. Completions, in (finish tick, job id) order.
        let mut due: Vec<(u64, JobId)> = self
            .running
            .iter()
            .map(|id| (self.jobs[id].finish_at, *id))
            .filter(|(f, _)| *f <= now)
            .collect();
        due.sort_unstable();
        for (_, job_id) in due {
            self.complete_job(job_id)?;
        }

        // 4. Queued jobs whose deadline can no longer be met fail now
        //    rather than occupying the queue forever.
        let expired: Vec<(JobId, u64)> = self
            .queue
            .iter()
            .filter_map(|id| {
                let d = self.jobs[id].spec.deadline?;
                (now >= d).then_some((*id, d))
            })
            .collect();
        for (id, deadline) in expired {
            self.fail_job(
                id,
                RuntimeError::DeadlineMissed {
                    job: id,
                    deadline,
                    finished: now,
                },
            );
        }

        // 5. Admission: ask the policy until it passes or the queue dries
        //    up. Each try either admits, backs off, or fails the job, so
        //    this loop terminates.
        loop {
            if self.queue.is_empty() {
                break;
            }
            let free = self.chip.free_clusters();
            let view: Vec<QueuedJob> = self
                .queue
                .iter()
                .map(|id| {
                    let r = &self.jobs[id];
                    QueuedJob {
                        id: *id,
                        clusters: r.spec.clusters,
                        priority: r.spec.priority,
                        submitted_at: r.stats.submitted_at,
                        next_attempt_at: r.next_attempt_at,
                        deadline: r.spec.deadline,
                    }
                })
                .collect();
            let Some(i) = self.policy.pick(&view, free, now) else {
                break;
            };
            self.try_admit(view[i].id)?;
        }

        // 6. Area accounting.
        let usable = self.chip.usable_clusters();
        let free = self.chip.free_clusters();
        self.stats.busy_cluster_ticks += (usable - free) as u64;
        self.stats.total_cluster_ticks += usable as u64;
        Ok(())
    }

    /// Ticks until no job is queued or running, then returns the run's
    /// summary. More than `max_ticks` ticks means the system is stuck:
    /// [`RuntimeError::Hung`].
    pub fn run_until_idle(&mut self, max_ticks: u64) -> Result<RuntimeSummary, RuntimeError> {
        let mut ticks = 0;
        while self.outstanding() > 0 {
            if ticks >= max_ticks {
                return Err(RuntimeError::Hung {
                    ticks,
                    outstanding: self.outstanding(),
                });
            }
            self.tick()?;
            ticks += 1;
        }
        Ok(self.summary())
    }

    /// Releases every warm-pooled region immediately (end of a tenancy).
    pub fn drain_pool(&mut self) -> Result<(), RuntimeError> {
        for e in std::mem::take(&mut self.pool) {
            self.chip.wake(e.proc)?;
            self.chip.deactivate(e.proc)?;
            self.chip.release_processor(e.proc)?;
            self.stats.pool_reclaims += 1;
            self.push_event(EventKind::PoolReclaimed { proc: e.proc });
        }
        Ok(())
    }

    // --- defects -------------------------------------------------------------

    /// The single funnel every fault report goes through: log the
    /// report, mark the cluster defective (stuck switches also wedge the
    /// S-topology fabric), then recover whoever owned it. Off-grid and
    /// already-defective coordinates are ignored — a fault plan built
    /// for a larger mesh must not corrupt the area accounting.
    fn apply_reported_fault(&mut self, c: Coord, layer: &'static str) -> Result<(), RuntimeError> {
        if !self.chip.grid().contains(c) || self.chip.is_defective(c) {
            return Ok(());
        }
        self.push_event(EventKind::FaultReported { coord: c, layer });
        self.stats.faults_reported += 1;
        self.telemetry.count("runtime.faults_reported", 1);
        self.telemetry
            .instant("runtime", "fault", self.stats.faults_reported, self.now);
        let victim = self.chip.processor_at(c);
        if layer == "s-topology" {
            self.chip.mark_switch_stuck(c);
        } else {
            self.chip.mark_defective(c);
        }
        self.push_event(EventKind::DefectInjected { coord: c, victim });
        let Some(pid) = victim else { return Ok(()) };

        // A parked pool region: just reclaim it.
        if let Some(pos) = self.pool.iter().position(|e| e.proc == pid) {
            self.pool.remove(pos);
            self.chip.wake(pid)?;
            self.chip.deactivate(pid)?;
            self.chip.release_processor(pid)?;
            self.stats.pool_reclaims += 1;
            self.push_event(EventKind::PoolReclaimed { proc: pid });
            return Ok(());
        }

        let Some(job_id) = self
            .running
            .iter()
            .copied()
            .find(|j| self.jobs[j].procs.contains(&pid))
        else {
            return Ok(());
        };
        self.recover_job(job_id, pid)
    }

    /// A defect hit processor `pid` of running job `job_id`: relocate it
    /// (state moves intact); a mid-run stream is restarted on the new
    /// region; if no placement exists, the job re-queues for a fresh
    /// gather.
    fn recover_job(&mut self, job_id: JobId, pid: ProcessorId) -> Result<(), RuntimeError> {
        let workload = self.jobs[&job_id].spec.workload.clone();
        match workload {
            Workload::Stream { kernel, input, .. } => {
                self.chip.deactivate(pid)?;
                match self.chip.relocate(pid) {
                    Ok(outcome) => {
                        // The datapath was mid-stream; restart it from
                        // scratch on the relocated region.
                        self.chip.recycle_processor(pid)?;
                        match self.run_stream_on(pid, &kernel, &input) {
                            Ok((cfg, exec)) => {
                                let dur = self.to_ticks(outcome.config_latency + cfg + exec);
                                let rec = self.jobs.get_mut(&job_id).expect("running job");
                                rec.finish_at = self.now + dur;
                                rec.stats.relocations += 1;
                                self.stats.relocations += 1;
                                self.push_event(EventKind::DefectRecovered {
                                    job: job_id,
                                    proc: pid,
                                    reran: true,
                                });
                            }
                            Err(e) => {
                                self.fail_job(
                                    job_id,
                                    RuntimeError::Workload {
                                        job: job_id,
                                        detail: format!("restart after defect: {e}"),
                                    },
                                );
                            }
                        }
                        Ok(())
                    }
                    Err(_) => self.requeue_job(job_id),
                }
            }
            Workload::Idle { .. } => {
                self.chip.deactivate(pid)?;
                match self.chip.relocate(pid) {
                    Ok(_) => {
                        self.chip.activate(pid)?;
                        let rec = self.jobs.get_mut(&job_id).expect("running job");
                        rec.stats.relocations += 1;
                        self.stats.relocations += 1;
                        self.push_event(EventKind::DefectRecovered {
                            job: job_id,
                            proc: pid,
                            reran: false,
                        });
                        Ok(())
                    }
                    Err(_) => self.requeue_job(job_id),
                }
            }
            Workload::Blocks { .. } | Workload::Staged { .. } => {
                // Block/stage processors idle Inactive between runs, and
                // the outputs are already computed — a quiet relocation
                // keeps the tenancy intact.
                match self.chip.relocate(pid) {
                    Ok(_) => {
                        let rec = self.jobs.get_mut(&job_id).expect("running job");
                        rec.stats.relocations += 1;
                        self.stats.relocations += 1;
                        self.push_event(EventKind::DefectRecovered {
                            job: job_id,
                            proc: pid,
                            reran: false,
                        });
                        Ok(())
                    }
                    Err(_) => self.requeue_job(job_id),
                }
            }
        }
    }

    /// Recovery could not relocate in place: release everything the job
    /// holds and send it back to the queue for a fresh gather.
    fn requeue_job(&mut self, job_id: JobId) -> Result<(), RuntimeError> {
        let procs = {
            let rec = self.jobs.get_mut(&job_id).expect("running job");
            std::mem::take(&mut rec.procs)
        };
        for p in procs {
            if self.chip.state(p) == Ok(ProcState::Active) {
                self.chip.deactivate(p)?;
            }
            self.chip.release_processor(p)?;
        }
        self.running.retain(|j| *j != job_id);
        self.queue.push(job_id);
        let now = self.now;
        let rec = self.jobs.get_mut(&job_id).expect("running job");
        rec.state = JobState::Queued;
        rec.next_attempt_at = now + 1;
        rec.output = None;
        let attempt = rec.stats.attempts;
        self.stats.requeues += 1;
        self.push_event(EventKind::Requeued {
            job: job_id,
            attempt,
        });
        Ok(())
    }

    // --- completion ----------------------------------------------------------

    fn complete_job(&mut self, job_id: JobId) -> Result<(), RuntimeError> {
        let workload = self.jobs[&job_id].spec.workload.clone();
        let output = match workload {
            Workload::Stream {
                kernel, expected, ..
            } => {
                let pid = self.jobs[&job_id].procs[0];
                self.chip.deactivate(pid)?;
                let words = self
                    .chip
                    .read_mailbox(pid, 1, 0, kernel.output_len as usize)?;
                let got: Vec<u64> = words.iter().map(|w| w.as_u64()).collect();
                if let Some(exp) = expected {
                    if got != exp {
                        self.fail_job(
                            job_id,
                            RuntimeError::Workload {
                                job: job_id,
                                detail: format!(
                                    "{}: output mismatch (got {got:?}, expected {exp:?})",
                                    kernel.name
                                ),
                            },
                        );
                        return Ok(());
                    }
                }
                JobOutput::Stream(got)
            }
            Workload::Blocks { .. } | Workload::Staged { .. } => {
                self.jobs[&job_id].output.clone().unwrap_or(JobOutput::None)
            }
            Workload::Idle { .. } => {
                let pid = self.jobs[&job_id].procs[0];
                self.chip.deactivate(pid)?;
                JobOutput::None
            }
        };

        let now = self.now;
        if let Some(d) = self.jobs[&job_id].spec.deadline {
            if now > d {
                self.fail_job(
                    job_id,
                    RuntimeError::DeadlineMissed {
                        job: job_id,
                        deadline: d,
                        finished: now,
                    },
                );
                return Ok(());
            }
        }

        // Park or release the held regions.
        let procs = {
            let rec = self.jobs.get_mut(&job_id).expect("running job");
            std::mem::take(&mut rec.procs)
        };
        let single = procs.len() == 1;
        for p in procs {
            match (single, self.config.pool_ttl) {
                (true, Some(ttl)) => {
                    let clusters = self.chip.processor(p)?.region.len();
                    self.chip.activate(p)?;
                    self.chip.sleep(p, Some(ttl))?;
                    self.pool.push(PoolEntry { proc: p, clusters });
                    self.stats.pooled += 1;
                    self.push_event(EventKind::Pooled {
                        proc: p,
                        clusters,
                        ttl,
                    });
                }
                _ => self.chip.release_processor(p)?,
            }
        }

        self.running.retain(|j| *j != job_id);
        let rec = self.jobs.get_mut(&job_id).expect("running job");
        rec.state = JobState::Completed;
        rec.output = Some(output);
        rec.stats.finished_at = Some(now);
        rec.stats.turnaround = now - rec.stats.submitted_at;
        let (wait, turnaround) = (rec.stats.wait, rec.stats.turnaround);
        self.stats.completed += 1;
        self.telemetry.record("runtime.wait", wait);
        self.telemetry.record("runtime.run", turnaround - wait);
        self.telemetry.record("runtime.turnaround", turnaround);
        self.telemetry.span_end("runtime", "job", job_id.0, now);
        self.push_event(EventKind::Completed {
            job: job_id,
            wait,
            turnaround,
        });
        Ok(())
    }

    /// Marks a job failed, releasing anything it still holds. Failures
    /// are graceful: the error lands on the record, never unwinds.
    fn fail_job(&mut self, job_id: JobId, err: RuntimeError) {
        let procs = {
            let rec = self.jobs.get_mut(&job_id).expect("known job");
            std::mem::take(&mut rec.procs)
        };
        for p in procs {
            match self.chip.state(p) {
                Ok(ProcState::Active) => {
                    let _ = self.chip.deactivate(p);
                }
                Ok(ProcState::Sleep) => {
                    let _ = self.chip.wake(p);
                    let _ = self.chip.deactivate(p);
                }
                _ => {}
            }
            let _ = self.chip.release_processor(p);
        }
        self.queue.retain(|j| *j != job_id);
        self.running.retain(|j| *j != job_id);
        let now = self.now;
        let reason = err.reason();
        let rec = self.jobs.get_mut(&job_id).expect("known job");
        rec.state = JobState::Failed;
        rec.stats.finished_at = Some(now);
        rec.stats.turnaround = now - rec.stats.submitted_at;
        rec.failure = Some(err);
        self.stats.failed += 1;
        self.telemetry.count("runtime.failures", 1);
        self.telemetry.span_end("runtime", "job", job_id.0, now);
        self.push_event(EventKind::Failed {
            job: job_id,
            reason,
        });
    }

    // --- migration -----------------------------------------------------------

    /// Withdraws a *queued* job for a cluster scheduler to run elsewhere
    /// (work stealing). Returns the spec to resubmit on the target chip,
    /// or `None` if the job is unknown or not currently queued. The
    /// local record stays behind in [`JobState::Migrated`] — it is not a
    /// completion and not a failure, so per-chip totals never double
    /// count a stolen job.
    pub fn withdraw(&mut self, id: JobId) -> Option<JobSpec> {
        let rec = self.jobs.get(&id)?;
        if rec.state != JobState::Queued {
            return None;
        }
        self.queue.retain(|j| *j != id);
        let now = self.now;
        let rec = self.jobs.get_mut(&id).expect("queued job");
        rec.state = JobState::Migrated;
        let spec = rec.spec.clone();
        self.stats.migrated_out += 1;
        self.telemetry.count("runtime.migrated_out", 1);
        self.telemetry.span_end("runtime", "job", id.0, now);
        self.push_event(EventKind::MigratedOut {
            job: id,
            reason: "steal",
        });
        Some(spec)
    }

    /// Evacuates every unfinished job (queued *and* running) after the
    /// chip itself has died: pure bookkeeping that never touches chip
    /// state, because there is no chip left to talk to. Running jobs
    /// restart from their spec on whatever chip they land on. Returns
    /// the evacuated jobs in ascending [`JobId`] order.
    pub fn evacuate(&mut self) -> Vec<(JobId, JobSpec)> {
        let mut ids: Vec<JobId> = self
            .queue
            .iter()
            .chain(self.running.iter())
            .copied()
            .collect();
        ids.sort_unstable();
        self.queue.clear();
        self.running.clear();
        self.pool.clear();
        let now = self.now;
        let mut specs = Vec::with_capacity(ids.len());
        for id in ids {
            let rec = self.jobs.get_mut(&id).expect("outstanding job");
            rec.state = JobState::Migrated;
            rec.procs.clear();
            specs.push((id, rec.spec.clone()));
            self.stats.migrated_out += 1;
            self.telemetry.count("runtime.migrated_out", 1);
            self.telemetry.span_end("runtime", "job", id.0, now);
            self.push_event(EventKind::MigratedOut {
                job: id,
                reason: "evacuate",
            });
        }
        specs
    }

    /// The queued jobs, in queue order (admission order is the policy's
    /// business; this is submission/requeue order). Cluster schedulers
    /// scan it to pick migration candidates.
    pub fn queued_ids(&self) -> &[JobId] {
        &self.queue
    }

    // --- admission -----------------------------------------------------------

    fn try_admit(&mut self, job_id: JobId) -> Result<(), RuntimeError> {
        let clusters = self.jobs[&job_id].spec.clusters;
        // Defects since submission may have shrunk the chip below the
        // request for good.
        let capacity = self.chip.usable_clusters();
        if clusters > capacity {
            self.fail_job(
                job_id,
                RuntimeError::TooLarge {
                    job: job_id,
                    requested: clusters,
                    capacity,
                },
            );
            return Ok(());
        }
        let attempts = {
            let rec = self.jobs.get_mut(&job_id).expect("queued job");
            rec.stats.attempts += 1;
            rec.stats.attempts
        };
        let workload = self.jobs[&job_id].spec.workload.clone();
        match workload {
            Workload::Stream { kernel, input, .. } => {
                self.admit_single(job_id, clusters, attempts, Some((kernel, input)), 0)
            }
            Workload::Idle { ticks } => self.admit_single(job_id, clusters, attempts, None, ticks),
            Workload::Blocks {
                program,
                datasets,
                result_var,
            } => self.admit_blocks(job_id, clusters, attempts, program, datasets, result_var),
            Workload::Staged {
                program,
                datasets,
                expected,
            } => self.admit_staged(job_id, clusters, attempts, program, datasets, expected),
        }
    }

    /// Gather failed: compact if fragmentation pressure warrants a retry
    /// (caller retries once when this returns `true`), otherwise the
    /// caller backs off or fails the job.
    fn compact_for(&mut self, clusters: usize) -> bool {
        let frag = self.chip.fragmentation();
        if frag <= self.config.compact_threshold || self.chip.free_clusters() < clusters {
            return false;
        }
        let moved = self.chip.compact();
        let after = self.chip.fragmentation();
        self.stats.compactions += 1;
        self.push_event(EventKind::Compacted {
            moved,
            frag_before_milli: (frag * 1000.0).round() as u32,
            frag_after_milli: (after * 1000.0).round() as u32,
        });
        true
    }

    fn back_off(&mut self, job_id: JobId, attempts: u32) {
        let max_retries = self.jobs[&job_id].spec.max_retries;
        if attempts > max_retries {
            self.fail_job(
                job_id,
                RuntimeError::RetriesExhausted {
                    job: job_id,
                    attempts,
                },
            );
            return;
        }
        let shift = (attempts.saturating_sub(1)).min(16);
        let delay = (self.config.backoff_base << shift)
            .min(self.config.backoff_cap)
            .max(1);
        let retry_at = self.now + delay;
        let rec = self.jobs.get_mut(&job_id).expect("queued job");
        rec.next_attempt_at = retry_at;
        self.stats.failed_gathers += 1;
        self.push_event(EventKind::GatherFailed {
            job: job_id,
            attempt: attempts,
            retry_at,
        });
    }

    fn admit_single(
        &mut self,
        job_id: JobId,
        clusters: usize,
        attempts: u32,
        stream: Option<(StreamKernel, Vec<u64>)>,
        idle_ticks: u64,
    ) -> Result<(), RuntimeError> {
        // Warm pool first: an exact-size parked region skips the gather
        // (and its configuration worms) entirely.
        let mut acquired: Option<(ProcessorId, u64, bool)> = None;
        if let Some(pos) = self.pool.iter().position(|e| e.clusters == clusters) {
            let e = self.pool.remove(pos);
            self.chip.wake(e.proc)?;
            self.chip.deactivate(e.proc)?;
            self.chip.recycle_processor(e.proc)?;
            self.stats.pool_hits += 1;
            self.push_event(EventKind::PoolWoken {
                proc: e.proc,
                job: job_id,
            });
            acquired = Some((e.proc, 0, true));
        }
        if acquired.is_none() {
            acquired = match self.chip.gather_any(clusters) {
                Ok(o) => Some((o.id, o.config_latency, false)),
                Err(_) if self.compact_for(clusters) => self
                    .chip
                    .gather_any(clusters)
                    .ok()
                    .map(|o| (o.id, o.config_latency, false)),
                Err(_) => None,
            };
        }
        let Some((pid, latency, pool_hit)) = acquired else {
            self.back_off(job_id, attempts);
            return Ok(());
        };

        let (cfg_cycles, exec_cycles, duration) = match &stream {
            Some((kernel, input)) => match self.run_stream_on(pid, kernel, input) {
                Ok((cfg, exec)) => {
                    let dur = self.to_ticks(latency + cfg + exec);
                    (latency + cfg, exec, dur)
                }
                Err(e) => {
                    if self.chip.state(pid) == Ok(ProcState::Active) {
                        self.chip.deactivate(pid)?;
                    }
                    self.chip.release_processor(pid)?;
                    self.fail_job(
                        job_id,
                        RuntimeError::Workload {
                            job: job_id,
                            detail: e.to_string(),
                        },
                    );
                    return Ok(());
                }
            },
            None => {
                self.chip.activate(pid)?;
                (latency, 0, idle_ticks.max(1))
            }
        };
        self.mark_admitted(
            job_id,
            vec![pid],
            attempts,
            pool_hit,
            cfg_cycles,
            exec_cycles,
            duration,
        );
        Ok(())
    }

    fn admit_blocks(
        &mut self,
        job_id: JobId,
        clusters: usize,
        attempts: u32,
        program: vlsi_workloads::Program,
        datasets: Vec<std::collections::HashMap<String, i64>>,
        result_var: String,
    ) -> Result<(), RuntimeError> {
        let mut exec = match self.deploy_blocks(&program) {
            Some(e) => Some(e),
            None if self.compact_for(clusters) => self.deploy_blocks(&program),
            None => None,
        };
        let Some(exec) = exec.take() else {
            self.back_off(job_id, attempts);
            return Ok(());
        };
        let procs: Vec<ProcessorId> = (0..exec.processor_count())
            .filter_map(|i| exec.processor_of(i))
            .collect();

        let mut outs = Vec::with_capacity(datasets.len());
        let mut cfg_total = 0u64;
        let mut exec_total = 0u64;
        for ds in &datasets {
            // Run on the chip and check against the program interpreter —
            // the blocks-level analogue of the stream reference check.
            let (env, run) = match exec.run(&mut self.chip, ds) {
                Ok(r) => r,
                Err(e) => {
                    self.release_all(&procs)?;
                    self.fail_job(
                        job_id,
                        RuntimeError::Workload {
                            job: job_id,
                            detail: e.to_string(),
                        },
                    );
                    return Ok(());
                }
            };
            cfg_total += run.config_cycles;
            exec_total += run.exec_cycles;
            let mut reference = ds.clone();
            program.interpret(&mut reference);
            let got = env.get(&result_var).copied();
            let expect = reference.get(&result_var).copied();
            if got.is_none() || got != expect {
                self.release_all(&procs)?;
                self.fail_job(
                    job_id,
                    RuntimeError::Workload {
                        job: job_id,
                        detail: format!(
                            "blocks result `{result_var}` = {got:?}, interpreter says {expect:?}"
                        ),
                    },
                );
                return Ok(());
            }
            outs.push(got.expect("checked above"));
        }

        let latency: u64 = procs
            .iter()
            .map(|p| self.chip.processor(*p).map(|sp| sp.config_latency))
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .sum();
        let duration = self.to_ticks(latency + cfg_total + exec_total);
        {
            let rec = self.jobs.get_mut(&job_id).expect("queued job");
            rec.output = Some(JobOutput::Blocks(outs));
        }
        self.mark_admitted(
            job_id,
            procs,
            attempts,
            false,
            latency + cfg_total,
            exec_total,
            duration,
        );
        Ok(())
    }

    fn admit_staged(
        &mut self,
        job_id: JobId,
        clusters: usize,
        attempts: u32,
        program: vlsi_core::StagedProgram,
        datasets: Vec<std::collections::HashMap<String, i64>>,
        expected: Option<Vec<Vec<i64>>>,
    ) -> Result<(), RuntimeError> {
        let mut exec = match self.deploy_staged(&program) {
            Some(e) => Some(e),
            None if self.compact_for(clusters) => self.deploy_staged(&program),
            None => None,
        };
        let Some(exec) = exec.take() else {
            self.back_off(job_id, attempts);
            return Ok(());
        };
        let procs: Vec<ProcessorId> = exec.processors().to_vec();

        // The whole dataset batch streams through the placed stages as
        // one Fig. 7(d) wavefront: downstream stages work on earlier
        // datasets while new ones enter stage 0, and each stage's
        // datapath is configured once and stays resident. Outputs are
        // bit-identical to the old per-dataset `run` loop.
        let (outs, run) = match exec.run_pipelined(&mut self.chip, &datasets) {
            Ok(r) => r,
            Err(e) => {
                self.release_all(&procs)?;
                self.fail_job(
                    job_id,
                    RuntimeError::Workload {
                        job: job_id,
                        detail: e.to_string(),
                    },
                );
                return Ok(());
            }
        };
        let cfg_total = run.config_cycles;
        let exec_total = run.exec_cycles;
        // The compiler hands down the netlist evaluator's reference
        // outputs — the staged analogue of the stream/blocks checks,
        // verified for every dataset in the batch.
        for (i, out) in outs.iter().enumerate() {
            if let Some(exp) = expected.as_ref().and_then(|e| e.get(i)) {
                if out != exp {
                    self.release_all(&procs)?;
                    self.fail_job(
                        job_id,
                        RuntimeError::Workload {
                            job: job_id,
                            detail: format!(
                                "staged dataset {i}: output {out:?}, reference says {exp:?}"
                            ),
                        },
                    );
                    return Ok(());
                }
            }
        }

        let latency: u64 = procs
            .iter()
            .map(|p| self.chip.processor(*p).map(|sp| sp.config_latency))
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .sum();
        let duration = self.to_ticks(latency + cfg_total + exec_total);
        {
            let rec = self.jobs.get_mut(&job_id).expect("queued job");
            rec.output = Some(JobOutput::Staged(outs));
        }
        self.mark_admitted(
            job_id,
            procs,
            attempts,
            false,
            latency + cfg_total,
            exec_total,
            duration,
        );
        Ok(())
    }

    /// Deploys a staged program, releasing any partially-gathered
    /// processors if the deploy fails midway (the executor rolls back
    /// its own gathers; this exists for symmetry with `deploy_blocks`
    /// and to own the clone).
    fn deploy_staged(
        &mut self,
        program: &vlsi_core::StagedProgram,
    ) -> Option<vlsi_core::StagedExecutor> {
        vlsi_core::StagedExecutor::deploy(&mut self.chip, program.clone()).ok()
    }

    /// Deploys a program's blocks, releasing any partially-gathered
    /// processors if the deploy fails midway.
    fn deploy_blocks(&mut self, program: &vlsi_workloads::Program) -> Option<BlockExecutor> {
        let before: Vec<ProcessorId> = self.chip.processors().map(|p| p.id).collect();
        match BlockExecutor::deploy(&mut self.chip, program.partition()) {
            Ok(exec) => Some(exec),
            Err(_) => {
                let leaked: Vec<ProcessorId> = self
                    .chip
                    .processors()
                    .map(|p| p.id)
                    .filter(|id| !before.contains(id))
                    .collect();
                for id in leaked {
                    let _ = self.chip.release_processor(id);
                }
                None
            }
        }
    }

    fn release_all(&mut self, procs: &[ProcessorId]) -> Result<(), RuntimeError> {
        for p in procs {
            if self.chip.state(*p) == Ok(ProcState::Active) {
                self.chip.deactivate(*p)?;
            }
            self.chip.release_processor(*p)?;
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn mark_admitted(
        &mut self,
        job_id: JobId,
        procs: Vec<ProcessorId>,
        attempts: u32,
        pool_hit: bool,
        config_cycles: u64,
        exec_cycles: u64,
        duration: u64,
    ) {
        let now = self.now;
        self.queue.retain(|j| *j != job_id);
        self.running.push(job_id);
        let rec = self.jobs.get_mut(&job_id).expect("queued job");
        rec.state = JobState::Running;
        rec.procs = procs.clone();
        rec.finish_at = now + duration.max(1);
        rec.stats.pool_hit = rec.stats.pool_hit || pool_hit;
        rec.stats.config_cycles += config_cycles;
        rec.stats.exec_cycles += exec_cycles;
        if rec.stats.admitted_at.is_none() {
            rec.stats.admitted_at = Some(now);
            rec.stats.wait = now - rec.stats.submitted_at;
        }
        self.push_event(EventKind::Admitted {
            job: job_id,
            procs,
            attempt: attempts,
            pool_hit,
        });
    }

    // --- workload driving ----------------------------------------------------

    /// Installs, feeds, and executes a stream kernel on an inactive
    /// processor, leaving it active. Returns (config, execute) cycles.
    fn run_stream_on(
        &mut self,
        pid: ProcessorId,
        kernel: &StreamKernel,
        input: &[u64],
    ) -> Result<(u64, u64), CoreError> {
        self.chip.install(pid, kernel.objects.clone())?;
        let words: Vec<Word> = input.iter().map(|&x| Word(x)).collect();
        self.chip.write_mailbox(pid, 0, 0, &words)?;
        self.chip.activate(pid)?;
        let cfg = self.chip.configure(pid, kernel.stream.clone())?;
        let rep = self.chip.execute(pid, 0, self.config.max_exec_cycles)?;
        Ok((cfg.cycles, rep.cycles))
    }

    fn to_ticks(&self, cycles: u64) -> u64 {
        (cycles / self.config.cycles_per_tick.max(1)).max(1)
    }

    fn push_event(&mut self, kind: EventKind) {
        if self.config.event_log_cap == 0 {
            self.dropped_events += 1;
            self.telemetry.count("runtime.events_dropped", 1);
            return;
        }
        while self.events.len() >= self.config.event_log_cap {
            self.events.pop_front();
            self.dropped_events += 1;
            self.telemetry.count("runtime.events_dropped", 1);
        }
        self.events.push_back(RuntimeEvent {
            tick: self.now,
            kind,
        });
    }

    // --- observation ---------------------------------------------------------

    /// The chip (read-only; all mutation goes through the runtime).
    pub fn chip(&self) -> &VlsiChip {
        &self.chip
    }

    /// The ordered event log — the most recent
    /// [`RuntimeConfig::event_log_cap`] events.
    pub fn events(&self) -> &VecDeque<RuntimeEvent> {
        &self.events
    }

    /// Events evicted from the capped log (see
    /// [`RuntimeConfig::event_log_cap`]).
    pub fn dropped_events(&self) -> u64 {
        self.dropped_events
    }

    /// The telemetry handle this runtime (and its chip) records into.
    pub fn telemetry(&self) -> &TelemetryHandle {
        &self.telemetry
    }

    /// A job's record.
    pub fn job(&self, id: JobId) -> Result<&JobRecord, RuntimeError> {
        self.jobs.get(&id).ok_or(RuntimeError::UnknownJob(id))
    }

    /// All job records, in submission order.
    pub fn jobs(&self) -> impl Iterator<Item = &JobRecord> {
        self.jobs.values()
    }

    /// The current tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Jobs still queued or running.
    pub fn outstanding(&self) -> usize {
        self.queue.len() + self.running.len()
    }

    /// Regions currently parked in the warm pool.
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// The scheduling policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The chip-level counters so far.
    pub fn stats(&self) -> &RuntimeStats {
        &self.stats
    }

    /// Digest of the run so far (what the ablation bench tabulates).
    pub fn summary(&self) -> RuntimeSummary {
        let finished = self.jobs.values().filter(|r| r.stats.finished_at.is_some());
        let makespan = finished
            .clone()
            .filter_map(|r| r.stats.finished_at)
            .max()
            .unwrap_or(0);
        let admitted: Vec<u64> = self
            .jobs
            .values()
            .filter(|r| r.stats.admitted_at.is_some())
            .map(|r| r.stats.wait)
            .collect();
        let turnarounds: Vec<u64> = finished.map(|r| r.stats.turnaround).collect();
        let mean = |xs: &[u64]| {
            if xs.is_empty() {
                0.0
            } else {
                xs.iter().sum::<u64>() as f64 / xs.len() as f64
            }
        };
        RuntimeSummary {
            policy: self.policy.name(),
            ticks: self.now,
            completed: self.stats.completed,
            failed: self.stats.failed,
            makespan,
            mean_wait: mean(&admitted),
            mean_turnaround: mean(&turnarounds),
            utilization: if self.stats.total_cluster_ticks == 0 {
                0.0
            } else {
                self.stats.busy_cluster_ticks as f64 / self.stats.total_cluster_ticks as f64
            },
            stats: self.stats.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Fifo;
    use vlsi_topology::Cluster;

    fn rt(pool_ttl: Option<u64>) -> Runtime {
        let chip = VlsiChip::new(8, 8, Cluster::default());
        let config = RuntimeConfig {
            pool_ttl,
            ..RuntimeConfig::default()
        };
        Runtime::new(chip, Box::new(Fifo), config)
    }

    fn idle(clusters: usize, ticks: u64) -> JobSpec {
        JobSpec::new("idle", clusters, Workload::Idle { ticks })
    }

    #[test]
    fn event_log_cap_drops_oldest_and_counts() {
        let chip = VlsiChip::with_telemetry(8, 8, Cluster::default(), TelemetryHandle::active());
        let config = RuntimeConfig {
            pool_ttl: None,
            event_log_cap: 8,
            ..RuntimeConfig::default()
        };
        let mut rt = Runtime::new(chip, Box::new(Fifo), config);
        for _ in 0..6 {
            rt.submit(idle(4, 2));
        }
        rt.run_until_idle(1_000).unwrap();
        assert!(rt.events().len() <= 8, "log bounded by the cap");
        assert!(rt.dropped_events() > 0, "older events were evicted");
        // The ring keeps the *newest* events: the final completion is
        // still present even though early submissions are gone.
        assert!(rt
            .events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::Completed { .. })));
        let total = rt.events().len() as u64 + rt.dropped_events();
        assert!(total > 8, "more events were produced than retained");
        if rt.telemetry().is_enabled() {
            // built without compile-out
            let snap = rt.telemetry().snapshot();
            assert_eq!(snap.counter("runtime.events_dropped"), rt.dropped_events());
            assert_eq!(snap.counter("runtime.submissions"), 6);
        }
    }

    #[test]
    fn zero_event_log_cap_retains_nothing() {
        let chip = VlsiChip::new(8, 8, Cluster::default());
        let config = RuntimeConfig {
            pool_ttl: None,
            event_log_cap: 0,
            ..RuntimeConfig::default()
        };
        let mut rt = Runtime::new(chip, Box::new(Fifo), config);
        rt.submit(idle(4, 2));
        rt.run_until_idle(1_000).unwrap();
        assert!(rt.events().is_empty());
        assert!(rt.dropped_events() > 0);
        assert_eq!(rt.stats().completed, 1, "scheduling is unaffected");
    }

    #[test]
    fn too_large_fails_gracefully_at_submit() {
        let mut rt = rt(None);
        let id = rt.submit(idle(65, 1));
        let rec = rt.job(id).unwrap();
        assert_eq!(rec.state, JobState::Failed);
        assert!(matches!(
            rec.failure,
            Some(RuntimeError::TooLarge { requested: 65, .. })
        ));
        assert_eq!(rt.outstanding(), 0);
    }

    #[test]
    fn warm_pool_reuses_an_exact_size_region() {
        let mut rt = rt(Some(64));
        let a = rt.submit(idle(4, 2));
        rt.run_until_idle(1_000).unwrap();
        assert_eq!(rt.pool_len(), 1, "completed region parks in the pool");
        let b = rt.submit(idle(4, 2));
        rt.run_until_idle(1_000).unwrap();
        assert!(rt.job(b).unwrap().stats.pool_hit);
        assert!(!rt.job(a).unwrap().stats.pool_hit);
        assert_eq!(rt.stats().pool_hits, 1);
        assert!(rt
            .events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::PoolWoken { job, .. } if job == b)));
    }

    #[test]
    fn pool_timer_expiry_reclaims_the_region() {
        let mut rt = rt(Some(5));
        rt.submit(idle(4, 1));
        rt.run_until_idle(1_000).unwrap();
        assert_eq!(rt.pool_len(), 1);
        for _ in 0..6 {
            rt.tick().unwrap();
        }
        assert_eq!(rt.pool_len(), 0);
        assert_eq!(rt.chip().free_clusters(), 64);
        assert!(rt
            .events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::PoolReclaimed { .. })));
        assert_eq!(rt.stats().pool_reclaims, 1);
    }

    #[test]
    fn queued_job_missing_its_deadline_fails_gracefully() {
        let mut rt = rt(None);
        let hog = rt.submit(idle(64, 50));
        let late = rt.submit(idle(64, 1).with_deadline(5));
        let summary = rt.run_until_idle(10_000).unwrap();
        assert_eq!(rt.job(hog).unwrap().state, JobState::Completed);
        let rec = rt.job(late).unwrap();
        assert_eq!(rec.state, JobState::Failed);
        assert!(matches!(
            rec.failure,
            Some(RuntimeError::DeadlineMissed { deadline: 5, .. })
        ));
        assert_eq!(summary.completed, 1);
        assert_eq!(summary.failed, 1);
    }

    // A defective cluster in the middle of the die makes a 60-cluster
    // *contiguous* gather impossible even though 63 clusters are free —
    // the policy's fit check passes, the gather fails, and the backoff
    // path runs.
    fn impossible_gather(max_retries: u32) -> (Runtime, JobId) {
        let mut rt = rt(None);
        rt.inject_defect_at(1, Coord::new(3, 3));
        rt.tick().unwrap();
        let starved = rt.submit(idle(60, 1).with_max_retries(max_retries));
        (rt, starved)
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let (mut rt, starved) = impossible_gather(6);
        rt.run_until_idle(10_000).unwrap();
        let retries: Vec<u64> = rt
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::GatherFailed { job, retry_at, .. } if job == starved => {
                    Some(retry_at - e.tick)
                }
                _ => None,
            })
            .collect();
        assert!(retries.len() >= 3, "expected several retries: {retries:?}");
        for w in retries.windows(2) {
            assert!(w[1] >= w[0], "backoff never shrinks: {retries:?}");
        }
        assert!(retries.iter().all(|&d| d <= 64), "capped: {retries:?}");
        assert_eq!(retries[0], 2);
        assert_eq!(retries[1], 4);
    }

    #[test]
    fn retries_exhausted_fails_gracefully() {
        let (mut rt, starved) = impossible_gather(2);
        rt.run_until_idle(10_000).unwrap();
        let rec = rt.job(starved).unwrap();
        assert_eq!(rec.state, JobState::Failed);
        assert!(matches!(
            rec.failure,
            Some(RuntimeError::RetriesExhausted { attempts: 3, .. })
        ));
        assert_eq!(rt.chip().free_clusters(), 63, "nothing leaked");
    }

    // The acceptance chain for the fault-injection tentpole: a scheduled
    // switch fault is *reported* by the topology layer, the runtime turns
    // the report into a defect, and the victim tenant is relocated — all
    // three links visible, in order, in one event log.
    #[test]
    fn switch_fault_report_relocates_the_victim_end_to_end() {
        let mut rt = rt(None);
        let job = rt.submit(idle(4, 30));
        rt.tick().unwrap(); // admitted; the first gather starts at the origin
        let hit = Coord::new(0, 0);
        assert!(rt.chip().processor_at(hit).is_some(), "tenant owns (0,0)");

        let mut plan = FaultPlan::none();
        plan.push(Fault::permanent(FaultKind::SwitchStuck { at: hit }, 3));
        rt.attach_fault_plan(plan);
        rt.run_until_idle(1_000).unwrap();

        assert!(
            rt.chip().is_switch_stuck(hit),
            "fabric knows the switch died"
        );
        assert!(rt.chip().is_defective(hit), "the cluster is defective");
        assert_eq!(rt.job(job).unwrap().state, JobState::Completed);
        assert_eq!(rt.stats().faults_reported, 1);

        let pos = |pred: fn(&EventKind) -> bool| {
            rt.events()
                .iter()
                .position(|e| pred(&e.kind))
                .expect("event present")
        };
        let reported = pos(|k| {
            matches!(
                k,
                EventKind::FaultReported {
                    layer: "s-topology",
                    ..
                }
            )
        });
        let defected = pos(|k| {
            matches!(
                k,
                EventKind::DefectInjected {
                    victim: Some(_),
                    ..
                }
            )
        });
        let recovered = pos(|k| {
            matches!(
                k,
                EventKind::DefectRecovered { .. } | EventKind::Requeued { .. }
            )
        });
        assert!(reported < defected, "report precedes the defect");
        assert!(defected < recovered, "defect precedes the recovery");
        // The tenant moved off the dead cluster and finished elsewhere.
        assert_eq!(rt.chip().processor_at(hit), None);
    }

    #[test]
    fn noc_fault_reports_mark_clusters_defective() {
        let mut rt = rt(None);
        let mut plan = FaultPlan::none();
        plan.push(Fault::permanent(
            FaultKind::LinkDown {
                at: Coord::new(2, 2),
                dir: vlsi_topology::Dir::East,
            },
            2,
        ));
        rt.attach_fault_plan(plan);
        for _ in 0..3 {
            rt.tick().unwrap();
        }
        assert!(rt.chip().is_defective(Coord::new(2, 2)));
        assert!(!rt.chip().is_switch_stuck(Coord::new(2, 2)));
        assert!(rt
            .events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::FaultReported { layer: "noc", .. })));
    }

    #[test]
    fn off_grid_and_duplicate_fault_reports_are_ignored() {
        let mut rt = rt(None);
        let mut plan = FaultPlan::none();
        plan.push(Fault::permanent(
            FaultKind::SwitchStuck {
                at: Coord::new(40, 40),
            },
            2,
        ));
        plan.push(Fault::permanent(
            FaultKind::SwitchStuck {
                at: Coord::new(1, 1),
            },
            2,
        ));
        plan.push(Fault::permanent(
            FaultKind::SwitchStuck {
                at: Coord::new(1, 1),
            },
            3,
        ));
        rt.attach_fault_plan(plan);
        for _ in 0..4 {
            rt.tick().unwrap();
        }
        assert_eq!(rt.stats().faults_reported, 1, "one real, distinct fault");
        assert_eq!(rt.chip().defective_count(), 1);
        assert_eq!(rt.chip().usable_clusters(), 63, "area accounting intact");
    }

    #[test]
    fn fault_plan_runs_replay_bit_identically() {
        let run = || {
            let mut rt = rt(Some(16));
            let plan = vlsi_faults::FaultPlanBuilder::new(901)
                .grid(8, 8)
                .horizon(64)
                .switch_stuck_rate(0.02)
                .build();
            rt.attach_fault_plan(plan);
            for i in 0..6 {
                rt.submit(idle(4, 8 + i));
            }
            rt.run_until_idle(10_000).unwrap();
            rt.events().iter().cloned().collect::<Vec<_>>()
        };
        assert_eq!(run(), run(), "same plan seed, same event log");
    }
}

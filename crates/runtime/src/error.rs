//! Typed failures of the runtime layer.

use crate::job::JobId;
use std::fmt;
use vlsi_core::CoreError;

/// Errors raised by the runtime (and recorded on failed jobs).
#[derive(Clone, PartialEq, Debug)]
pub enum RuntimeError {
    /// The request can never fit: it exceeds the chip's usable clusters.
    TooLarge {
        /// The job.
        job: JobId,
        /// Clusters requested.
        requested: usize,
        /// Usable clusters on the chip (total minus defects).
        capacity: usize,
    },
    /// Admission kept failing; the retry budget ran out.
    RetriesExhausted {
        /// The job.
        job: JobId,
        /// Gather attempts made.
        attempts: u32,
    },
    /// The job finished after its deadline (or the deadline passed while
    /// it was still queued).
    DeadlineMissed {
        /// The job.
        job: JobId,
        /// The deadline it carried.
        deadline: u64,
        /// The tick it actually finished (or was abandoned).
        finished: u64,
    },
    /// The workload executed but produced wrong output (reference
    /// mismatch) or could not run.
    Workload {
        /// The job.
        job: JobId,
        /// What went wrong.
        detail: String,
    },
    /// No such job.
    UnknownJob(JobId),
    /// The simulation ran past its tick budget without draining.
    Hung {
        /// Ticks simulated before giving up.
        ticks: u64,
        /// Jobs still queued or running.
        outstanding: usize,
    },
    /// A chip-layer operation failed unrecoverably.
    Core(CoreError),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::TooLarge {
                job,
                requested,
                capacity,
            } => write!(
                f,
                "{job}: requests {requested} clusters but the chip has only {capacity} usable"
            ),
            RuntimeError::RetriesExhausted { job, attempts } => {
                write!(f, "{job}: admission failed after {attempts} attempts")
            }
            RuntimeError::DeadlineMissed {
                job,
                deadline,
                finished,
            } => write!(f, "{job}: deadline {deadline} missed (finished {finished})"),
            RuntimeError::Workload { job, detail } => write!(f, "{job}: workload error: {detail}"),
            RuntimeError::UnknownJob(job) => write!(f, "unknown job {job}"),
            RuntimeError::Hung { ticks, outstanding } => write!(
                f,
                "runtime did not drain within {ticks} ticks ({outstanding} jobs outstanding)"
            ),
            RuntimeError::Core(e) => write!(f, "chip error: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<CoreError> for RuntimeError {
    fn from(e: CoreError) -> RuntimeError {
        RuntimeError::Core(e)
    }
}

impl RuntimeError {
    /// The short label used in [`EventKind::Failed`].
    ///
    /// [`EventKind::Failed`]: crate::EventKind::Failed
    pub fn reason(&self) -> &'static str {
        match self {
            RuntimeError::TooLarge { .. } => "too-large",
            RuntimeError::RetriesExhausted { .. } => "retries",
            RuntimeError::DeadlineMissed { .. } => "deadline",
            RuntimeError::Workload { .. } => "workload",
            RuntimeError::UnknownJob(_) => "unknown",
            RuntimeError::Hung { .. } => "hung",
            RuntimeError::Core(_) => "core",
        }
    }
}

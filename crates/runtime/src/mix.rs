//! Deterministic multi-tenant job mixes.
//!
//! [`mixed_jobs`] turns [`vlsi_workloads::jobmix`] cases into a batch of
//! [`JobSpec`]s with varied sizes, priorities, deadlines, and tenants —
//! the contended workload the integration tests replay under every
//! policy and the Ablation I bench sweeps.

use vlsi_prng::Prng;
use vlsi_workloads::jobmix;

use crate::job::{JobSpec, Workload};

/// Builds `n` jobs from `seed`: ~60% verified streaming kernels, ~20%
/// basic-block programs, ~20% idle capacity reservations. Priorities are
/// uniform in `0..8`; roughly one job in six carries a deadline. The same
/// `(seed, n)` always produces the same batch.
pub fn mixed_jobs(seed: u64, n: usize) -> Vec<JobSpec> {
    let mut rng = Prng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let spec = match rng.gen_range(0..10u8) {
                0..=5 => {
                    let case = jobmix::stream_case(&mut rng);
                    let clusters = *rng.choose(&[4usize, 6, 8]).expect("non-empty");
                    JobSpec::for_stream(
                        format!("stream-{i}"),
                        clusters,
                        case.kernel,
                        case.input,
                        case.expected,
                    )
                }
                6..=7 => {
                    let case = jobmix::block_case(&mut rng);
                    JobSpec::for_blocks(
                        format!("blocks-{i}"),
                        case.program,
                        case.datasets,
                        case.result_var,
                    )
                }
                _ => {
                    let clusters = rng.gen_range(2..=12usize);
                    let ticks = rng.gen_range(2..=20u64);
                    JobSpec::new(format!("idle-{i}"), clusters, Workload::Idle { ticks })
                }
            };
            let spec = spec.with_priority(rng.gen_range(0..8u8));
            if rng.gen_bool(1.0 / 6.0) {
                spec.with_deadline(rng.gen_range(150..600u64))
            } else {
                spec
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_batch() {
        let a = mixed_jobs(42, 60);
        let b = mixed_jobs(42, 60);
        assert_eq!(a.len(), 60);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.clusters, y.clusters);
            assert_eq!(x.priority, y.priority);
            assert_eq!(x.deadline, y.deadline);
            assert_eq!(x.workload.label(), y.workload.label());
        }
    }

    #[test]
    fn the_mix_contains_every_tenant_shape() {
        let batch = mixed_jobs(42, 60);
        for label in ["stream", "blocks", "idle"] {
            assert!(
                batch.iter().any(|s| s.workload.label() == label),
                "missing {label}"
            );
        }
        assert!(batch.iter().any(|s| s.deadline.is_some()));
        assert!(
            batch
                .iter()
                .map(|s| s.priority)
                .collect::<std::collections::BTreeSet<_>>()
                .len()
                > 3
        );
    }
}

//! # vlsi-runtime — a multi-tenant job scheduler for the VLSI processor
//!
//! The paper's chip lets an application "request the resources" it needs
//! and hand them back when done (§1); this crate adds the layer that
//! arbitrates those requests when *several* tenants want the die at once.
//! A [`Runtime`] owns one [`VlsiChip`](vlsi_core::VlsiChip) and runs a
//! deterministic, simulated-time loop:
//!
//! * **Jobs** ([`JobSpec`]) request a cluster count and carry a workload —
//!   a streaming kernel, a partitioned basic-block program, or a pure
//!   capacity reservation — plus a priority, an optional deadline, and a
//!   retry budget.
//! * **Admission** checks the request against the chip's free clusters,
//!   gathers via `gather_any`, retries with exponential backoff, and
//!   compacts the die when fragmentation is what stands in the way.
//! * **Policies** ([`SchedPolicy`]) decide ordering only: [`Fifo`],
//!   [`Priority`], and [`SmallestFitBackfill`] ship; the ablation bench
//!   compares them on the same job mix.
//! * **Power**: completed regions park in a warm pool — asleep with a
//!   wake timer — and matching admissions reuse them without paying the
//!   configuration worms again.
//! * **Robustness**: clusters marked defective mid-run are survived by
//!   relocating the victim processor (restarting its stream if it was
//!   mid-flight) or re-queueing the job for a fresh gather; deadline
//!   misses and retry exhaustion fail gracefully with a typed
//!   [`RuntimeError`] on the job record.
//!
//! Every decision lands in an ordered [`RuntimeEvent`] log; identical
//! submissions produce identical logs, which is what the integration
//! tests assert.
//!
//! ```
//! use vlsi_core::VlsiChip;
//! use vlsi_runtime::{Fifo, JobSpec, JobState, Runtime, RuntimeConfig};
//! use vlsi_topology::Cluster;
//! use vlsi_workloads::StreamKernel;
//!
//! let chip = VlsiChip::new(8, 8, Cluster::default());
//! let mut rt = Runtime::new(chip, Box::new(Fifo), RuntimeConfig::default());
//! let xs: Vec<u64> = (1..=16).collect();
//! let job = rt.submit(JobSpec::for_stream(
//!     "axpy",
//!     4,
//!     StreamKernel::axpy(3, 5, 16),
//!     xs.clone(),
//!     StreamKernel::axpy_reference(3, 5, &xs),
//! ));
//! let summary = rt.run_until_idle(10_000).unwrap();
//! assert_eq!(summary.completed, 1);
//! assert_eq!(rt.job(job).unwrap().state, JobState::Completed);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod events;
mod fleet;
mod job;
pub mod mix;
mod policy;
mod runtime;

pub use error::RuntimeError;
pub use events::{EventKind, RuntimeEvent};
pub use fleet::{Fleet, FleetError};
pub use job::{JobId, JobOutput, JobRecord, JobSpec, JobState, JobStats, Workload};
pub use policy::{Fifo, Priority, QueuedJob, SchedPolicy, SmallestFitBackfill};
pub use runtime::{Runtime, RuntimeConfig, RuntimeStats, RuntimeSummary};

//! Job descriptors: what a tenant submits to the runtime.

use std::collections::HashMap;
use std::fmt;
use vlsi_core::{ProcessorId, StagedProgram};
use vlsi_workloads::{Program, StreamKernel};

/// Identifier of a submitted job, in submission order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// The work a job performs once its clusters are gathered.
#[derive(Clone, Debug)]
pub enum Workload {
    /// A streaming kernel: `input` is written to the processor's load
    /// mailbox (block 0); results are read back from the store mailbox
    /// (block 1) at completion and checked against `expected` when given.
    Stream {
        /// The kernel to install and execute.
        kernel: StreamKernel,
        /// Input elements for block 0.
        input: Vec<u64>,
        /// Reference output; a mismatch fails the job.
        expected: Option<Vec<u64>>,
    },
    /// A basic-block program (Figure 7): partitioned, each block deployed
    /// on its own 4-cluster processor, datasets pushed through the block
    /// pipeline.
    Blocks {
        /// The program to partition and deploy.
        program: Program,
        /// Input environments, one per dataset.
        datasets: Vec<HashMap<String, i64>>,
        /// The variable to read out of each final environment.
        result_var: String,
    },
    /// A compiler-emitted staged dataflow program (vlsi-compile): stages
    /// deployed one processor each, executed in index order, live values
    /// passed by mailbox writes. The compiler provides the reference
    /// outputs (one vector per dataset, in program-output order); a
    /// mismatch fails the job.
    Staged {
        /// The compiled program.
        program: StagedProgram,
        /// Input environments, one per dataset.
        datasets: Vec<HashMap<String, i64>>,
        /// Reference outputs from the netlist evaluator, if checking.
        expected: Option<Vec<Vec<i64>>>,
    },
    /// Pure occupancy: hold the gathered clusters for `ticks` simulated
    /// ticks without executing (a reserved-capacity tenant).
    Idle {
        /// Hold duration in ticks.
        ticks: u64,
    },
}

impl Workload {
    /// A short label for traces.
    pub fn label(&self) -> &'static str {
        match self {
            Workload::Stream { .. } => "stream",
            Workload::Blocks { .. } => "blocks",
            Workload::Staged { .. } => "staged",
            Workload::Idle { .. } => "idle",
        }
    }
}

/// A job submission.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Human-readable name (for traces and reports).
    pub name: String,
    /// Clusters requested. For [`Workload::Blocks`] this must be at least
    /// `4 × non-empty blocks` (the per-block processors the deploy
    /// gathers); [`JobSpec::for_blocks`] computes it.
    pub clusters: usize,
    /// The work itself.
    pub workload: Workload,
    /// Scheduling priority: higher runs first under the priority policy.
    pub priority: u8,
    /// Absolute deadline in runtime ticks; a job finishing after it fails
    /// gracefully with [`RuntimeError::DeadlineMissed`].
    ///
    /// [`RuntimeError::DeadlineMissed`]: crate::RuntimeError::DeadlineMissed
    pub deadline: Option<u64>,
    /// Admission attempts before the job fails with
    /// [`RuntimeError::RetriesExhausted`].
    ///
    /// [`RuntimeError::RetriesExhausted`]: crate::RuntimeError::RetriesExhausted
    pub max_retries: u32,
}

impl JobSpec {
    /// A named job with defaults: priority 0, no deadline, 8 retries.
    pub fn new(name: impl Into<String>, clusters: usize, workload: Workload) -> JobSpec {
        JobSpec {
            name: name.into(),
            clusters,
            workload,
            priority: 0,
            deadline: None,
            max_retries: 8,
        }
    }

    /// A streaming job whose output is verified against the kernel's
    /// reference result.
    pub fn for_stream(
        name: impl Into<String>,
        clusters: usize,
        kernel: StreamKernel,
        input: Vec<u64>,
        expected: Vec<u64>,
    ) -> JobSpec {
        JobSpec::new(
            name,
            clusters,
            Workload::Stream {
                kernel,
                input,
                expected: Some(expected),
            },
        )
    }

    /// A basic-block program job; the cluster request is derived from the
    /// partition (4 clusters per non-empty block).
    pub fn for_blocks(
        name: impl Into<String>,
        program: Program,
        datasets: Vec<HashMap<String, i64>>,
        result_var: impl Into<String>,
    ) -> JobSpec {
        let blocks = program.partition();
        let needed = blocks
            .iter()
            .filter(|b| !b.assigns.is_empty() || b.cond.is_some())
            .count()
            * 4;
        JobSpec::new(
            name,
            needed.max(4),
            Workload::Blocks {
                program,
                datasets,
                result_var: result_var.into(),
            },
        )
    }

    /// A compiled staged-program job; the cluster request is the sum of
    /// the stage regions the placement pass shaped.
    pub fn for_staged(
        name: impl Into<String>,
        program: StagedProgram,
        datasets: Vec<HashMap<String, i64>>,
        expected: Option<Vec<Vec<i64>>>,
    ) -> JobSpec {
        let clusters = program.clusters().max(1);
        JobSpec::new(
            name,
            clusters,
            Workload::Staged {
                program,
                datasets,
                expected,
            },
        )
    }

    /// Sets the priority (builder style).
    pub fn with_priority(mut self, priority: u8) -> JobSpec {
        self.priority = priority;
        self
    }

    /// Sets the deadline in absolute ticks (builder style).
    pub fn with_deadline(mut self, deadline: u64) -> JobSpec {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the retry budget (builder style).
    pub fn with_max_retries(mut self, retries: u32) -> JobSpec {
        self.max_retries = retries;
        self
    }
}

/// What a completed job produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobOutput {
    /// Words read back from a stream job's store mailbox.
    Stream(Vec<u64>),
    /// Per-dataset values of the result variable of a blocks job.
    Blocks(Vec<i64>),
    /// Per-dataset program-output vectors of a staged (compiled) job.
    Staged(Vec<Vec<i64>>),
    /// Idle jobs produce nothing.
    None,
}

/// Lifecycle of a job inside the runtime.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JobState {
    /// Waiting for admission.
    Queued,
    /// Holding gathered clusters until its finish tick.
    Running,
    /// Finished successfully.
    Completed,
    /// Failed gracefully (deadline, retries, workload error).
    Failed,
    /// Withdrawn by a cluster scheduler and moved to another chip. The
    /// record stays behind for the trace; the job finishes (and is
    /// counted) wherever it lands.
    Migrated,
}

/// Per-job accounting, filled in as the job moves through the runtime.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JobStats {
    /// Tick the job was submitted.
    pub submitted_at: u64,
    /// Tick the job was admitted (clusters gathered), if it ever was.
    pub admitted_at: Option<u64>,
    /// Tick the job completed or failed.
    pub finished_at: Option<u64>,
    /// Gather attempts (1 = admitted first try).
    pub attempts: u32,
    /// Defect-triggered relocations/re-gathers survived.
    pub relocations: u32,
    /// Whether admission reused a warm pooled processor.
    pub pool_hit: bool,
    /// Simulated cycles of configuration (worms + datapath config).
    pub config_cycles: u64,
    /// Simulated cycles of execution.
    pub exec_cycles: u64,
    /// Queue wait: `admitted_at - submitted_at`.
    pub wait: u64,
    /// Turnaround: `finished_at - submitted_at`.
    pub turnaround: u64,
}

/// The runtime's record of one job.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// The job's ID.
    pub id: JobId,
    /// The submission, as given.
    pub spec: JobSpec,
    /// Current lifecycle state.
    pub state: JobState,
    /// Processors currently held (one for stream/idle; one per block for
    /// blocks jobs). Empty unless running.
    pub procs: Vec<ProcessorId>,
    /// Output, once completed.
    pub output: Option<JobOutput>,
    /// Why the job failed, if it did.
    pub failure: Option<crate::error::RuntimeError>,
    /// Accounting.
    pub stats: JobStats,
    /// Earliest tick the next admission attempt may run (backoff).
    pub(crate) next_attempt_at: u64,
    /// Tick the current hold ends (while running).
    pub(crate) finish_at: u64,
}

//! Multi-chip fleets: independent runtimes driven by one worker pool.
//!
//! A [`Fleet`] owns `M` [`Runtime`]s — each a full chip with its own
//! scheduler, clock, and event log — and drives them on a
//! [`Pool`](vlsi_par::Pool) with a *static* chip→task assignment: chip
//! `i` is always task `i`, so a fleet run is deterministic at every
//! thread count. Chips never share state; cross-chip aggregation
//! (event logs, telemetry) happens only after the parallel section, in
//! chip-index order.
//!
//! A chip's own NoC may additionally be sharded over the *same* pool
//! ([`VlsiChip::set_noc_parallel`](vlsi_core::VlsiChip::set_noc_parallel)):
//! a nested region degrades to inline serial execution on the worker it
//! is already on, so the combination is deadlock-free and still
//! bit-identical to serial.

use crate::error::RuntimeError;
use crate::events::RuntimeEvent;
use crate::runtime::{Runtime, RuntimeSummary};
use std::sync::{Arc, Mutex};
use vlsi_par::Pool;
use vlsi_telemetry::TelemetryHandle;

/// A [`RuntimeError`] tagged with the chip it happened on. When several
/// chips fail in one parallel step, the lowest chip index is reported —
/// a deterministic choice at every thread count.
#[derive(Clone, PartialEq, Debug)]
pub struct FleetError {
    /// Index of the failing chip within the fleet.
    pub chip: usize,
    /// The underlying runtime error.
    pub error: RuntimeError,
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "chip {}: {}", self.chip, self.error)
    }
}

impl std::error::Error for FleetError {}

/// `M` independent chips ticked on one deterministic pool. See the
/// [module docs](self).
pub struct Fleet {
    chips: Vec<Runtime>,
    pool: Arc<Pool>,
}

impl Fleet {
    /// An empty fleet executing on `pool`.
    pub fn new(pool: Arc<Pool>) -> Fleet {
        Fleet {
            chips: Vec::new(),
            pool,
        }
    }

    /// An empty fleet that runs inline on the caller.
    pub fn serial() -> Fleet {
        Fleet::new(Pool::serial())
    }

    /// Adds a chip; returns its fleet index (stable for the fleet's
    /// lifetime — it is also the chip's task index on the pool).
    pub fn push(&mut self, chip: Runtime) -> usize {
        self.chips.push(chip);
        self.chips.len() - 1
    }

    /// Number of chips.
    pub fn len(&self) -> usize {
        self.chips.len()
    }

    /// Whether the fleet has no chips.
    pub fn is_empty(&self) -> bool {
        self.chips.is_empty()
    }

    /// Executors fleet steps can use (1 = serial).
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The chip at `index`.
    pub fn chip(&self, index: usize) -> &Runtime {
        &self.chips[index]
    }

    /// The chip at `index`, mutably (submit jobs, attach fault plans).
    pub fn chip_mut(&mut self, index: usize) -> &mut Runtime {
        &mut self.chips[index]
    }

    /// The chips, in fleet-index order.
    pub fn chips(&self) -> impl Iterator<Item = &Runtime> {
        self.chips.iter()
    }

    /// Runs `f` once per chip on the pool (chip `i` = task `i`) and
    /// collects the results in chip-index order. The scaffolding every
    /// fleet step shares: the per-chip `Mutex` is uncontended by
    /// construction and only exists to hand each worker a `&mut` through
    /// the shared closure.
    fn each_chip<R: Send>(&mut self, f: impl Fn(&mut Runtime) -> R + Sync) -> Vec<R> {
        let views: Vec<Mutex<&mut Runtime>> = self.chips.iter_mut().map(Mutex::new).collect();
        self.pool.map(views.len(), |i| {
            f(&mut views[i].lock().unwrap_or_else(|e| e.into_inner()))
        })
    }

    /// Advances every chip one tick (in parallel, deterministically).
    pub fn tick(&mut self) -> Result<(), FleetError> {
        let results = self.each_chip(Runtime::tick);
        first_error(results.into_iter().map(|r| r.map(|_| ())))
    }

    /// Advances only the chips whose `alive` flag is set (indices past
    /// the end of `alive` count as alive). A cluster scheduler uses this
    /// once a chip has failed: the dead chip's clock freezes while the
    /// survivors keep the same chip-`i`-is-task-`i` assignment, so the
    /// run stays bit-identical at every thread count.
    pub fn tick_masked(&mut self, alive: &[bool]) -> Result<(), FleetError> {
        let views: Vec<Mutex<&mut Runtime>> = self.chips.iter_mut().map(Mutex::new).collect();
        let results = self.pool.map(views.len(), |i| {
            if *alive.get(i).unwrap_or(&true) {
                views[i].lock().unwrap_or_else(|e| e.into_inner()).tick()
            } else {
                Ok(())
            }
        });
        first_error(results.into_iter())
    }

    /// Runs every chip until its queue drains (or `max_ticks`), in
    /// parallel, and returns the per-chip summaries in chip-index order.
    /// Chips are independent, so per-chip results are bit-identical to
    /// running each chip alone, at every thread count.
    pub fn run_until_idle(&mut self, max_ticks: u64) -> Result<Vec<RuntimeSummary>, FleetError> {
        let results = self.each_chip(|chip| chip.run_until_idle(max_ticks));
        let mut summaries = Vec::with_capacity(results.len());
        for (chip, r) in results.into_iter().enumerate() {
            match r {
                Ok(s) => summaries.push(s),
                Err(error) => return Err(FleetError { chip, error }),
            }
        }
        Ok(summaries)
    }

    /// Every chip's event log, merged in chip-index order (each chip's
    /// events keep their own order). The deterministic fleet-wide trace:
    /// identical submissions produce an identical merged log at every
    /// thread count.
    pub fn merged_events(&self) -> Vec<(usize, RuntimeEvent)> {
        let mut out = Vec::new();
        for (i, chip) in self.chips.iter().enumerate() {
            out.extend(chip.events().iter().map(|e| (i, e.clone())));
        }
        out
    }

    /// A fresh telemetry registry holding every chip's instruments,
    /// merged in chip-index order (counters add, histograms merge,
    /// traces append). Chips built without telemetry contribute nothing.
    pub fn merged_telemetry(&self) -> TelemetryHandle {
        let merged = TelemetryHandle::active();
        for chip in &self.chips {
            merged.merge_from(chip.telemetry());
        }
        merged
    }
}

/// The lowest-index error, if any — deterministic regardless of which
/// worker hit its error first.
fn first_error(results: impl Iterator<Item = Result<(), RuntimeError>>) -> Result<(), FleetError> {
    for (chip, r) in results.enumerate() {
        if let Err(error) = r {
            return Err(FleetError { chip, error });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobSpec, Workload};
    use crate::policy::Fifo;
    use crate::runtime::RuntimeConfig;
    use vlsi_core::VlsiChip;
    use vlsi_telemetry::TelemetryHandle;
    use vlsi_topology::Cluster;
    use vlsi_workloads::StreamKernel;

    fn loaded_runtime(chips_wide: u16, jobs: u64) -> Runtime {
        let chip = VlsiChip::with_telemetry(
            chips_wide,
            chips_wide,
            Cluster::default(),
            TelemetryHandle::active(),
        );
        let mut rt = Runtime::new(chip, Box::new(Fifo), RuntimeConfig::default());
        for j in 0..jobs {
            let xs: Vec<u64> = (1..=8).collect();
            rt.submit(JobSpec::for_stream(
                "axpy",
                2 + (j as usize % 3),
                StreamKernel::axpy(3, j + 1, 8),
                xs.clone(),
                StreamKernel::axpy_reference(3, j + 1, &xs),
            ));
            rt.submit(JobSpec::new(
                "idle",
                1 + (j as usize % 2),
                Workload::Idle { ticks: 4 + j },
            ));
        }
        rt
    }

    fn fleet_digest(threads: usize) -> (Vec<u64>, String, String) {
        let mut fleet = Fleet::new(Pool::new(threads));
        for c in 0..4 {
            fleet.push(loaded_runtime(8, 3 + c));
        }
        let summaries = fleet.run_until_idle(100_000).expect("fleet drains");
        let completed = summaries.iter().map(|s| s.completed).collect();
        let events = format!("{:?}", fleet.merged_events());
        let telemetry = fleet.merged_telemetry().snapshot().to_json();
        (completed, events, telemetry)
    }

    #[test]
    fn fleet_matches_standalone_chips() {
        // Chip 2 of the fleet must behave exactly like the same runtime
        // run alone.
        let mut alone = loaded_runtime(8, 5);
        let alone_summary = alone.run_until_idle(100_000).expect("drains");
        let mut fleet = Fleet::serial();
        for c in 0..4 {
            fleet.push(loaded_runtime(8, 3 + c));
        }
        let summaries = fleet.run_until_idle(100_000).expect("fleet drains");
        assert_eq!(summaries.len(), 4);
        assert_eq!(summaries[2].completed, alone_summary.completed);
        assert_eq!(
            format!("{:?}", fleet.chip(2).events()),
            format!("{:?}", alone.events()),
        );
    }

    #[test]
    fn fleet_runs_are_bit_identical_across_thread_counts() {
        let serial = fleet_digest(1);
        for threads in [2, 3, 8] {
            assert_eq!(fleet_digest(threads), serial, "{threads} threads");
        }
    }

    /// A fleet where the chips at `hung` can never drain: each gets an
    /// idle job far longer than the `max_ticks` the tests run with.
    fn fleet_with_hung_chips(threads: usize, hung: &[usize]) -> Fleet {
        let mut fleet = Fleet::new(Pool::new(threads));
        for c in 0..4 {
            let mut rt = loaded_runtime(8, 2);
            if hung.contains(&c) {
                rt.submit(JobSpec::new("stuck", 1, Workload::Idle { ticks: 1 << 40 }));
            }
            fleet.push(rt);
        }
        fleet
    }

    #[test]
    fn multiple_failing_chips_report_the_lowest_index() {
        // Chips 1 and 3 both hang; every thread count must blame chip 1
        // with the same typed error.
        let serial_err = fleet_with_hung_chips(1, &[1, 3])
            .run_until_idle(200)
            .expect_err("hung chips surface");
        assert_eq!(serial_err.chip, 1, "lowest failing index wins");
        assert!(
            matches!(serial_err.error, RuntimeError::Hung { .. }),
            "typed: {:?}",
            serial_err.error
        );
        for threads in [2, 8] {
            let err = fleet_with_hung_chips(threads, &[1, 3])
                .run_until_idle(200)
                .expect_err("hung chips surface");
            assert_eq!(err, serial_err, "{threads} threads");
        }
    }

    #[test]
    fn survivors_merge_deterministically_after_a_chip_fails() {
        // After the fleet-level error, the surviving chips' events and
        // telemetry must still merge bit-identically at every thread
        // count — a failure on one chip cannot perturb the others.
        let digest = |threads: usize| {
            let mut fleet = fleet_with_hung_chips(threads, &[2]);
            fleet.run_until_idle(200).expect_err("chip 2 hangs");
            (
                format!("{:?}", fleet.merged_events()),
                fleet.merged_telemetry().snapshot().to_json(),
            )
        };
        let serial = digest(1);
        assert!(serial.0.len() > 2, "survivors produced events");
        for threads in [2, 8] {
            assert_eq!(digest(threads), serial, "{threads} threads");
        }
    }

    #[test]
    fn first_error_picks_the_lowest_chip_regardless_of_order() {
        // The merge rule itself: with chips 1 and 3 both failing, the
        // fleet error is always chip 1's, whatever order workers finish.
        let hung = |ticks| RuntimeError::Hung {
            ticks,
            outstanding: 1,
        };
        let results = vec![Ok(()), Err(hung(10)), Ok(()), Err(hung(99))];
        let err = first_error(results.into_iter()).expect_err("two chips failed");
        assert_eq!(err.chip, 1);
        assert_eq!(err.error, hung(10), "chip 1's own error, not chip 3's");
        assert!(first_error(vec![Ok(()), Ok(())].into_iter()).is_ok());
    }

    #[test]
    fn merged_events_interleave_in_chip_order() {
        let mut fleet = Fleet::serial();
        fleet.push(loaded_runtime(8, 1));
        fleet.push(loaded_runtime(8, 1));
        fleet.run_until_idle(100_000).expect("fleet drains");
        let merged = fleet.merged_events();
        assert!(!merged.is_empty());
        let switch = merged
            .iter()
            .position(|(c, _)| *c == 1)
            .expect("chip 1 events");
        assert!(merged[..switch].iter().all(|(c, _)| *c == 0));
        assert!(merged[switch..].iter().all(|(c, _)| *c == 1));
        assert_eq!(
            merged.len(),
            fleet.chip(0).events().len() + fleet.chip(1).events().len()
        );
    }
}

//! The structured trace log: every decision the runtime takes, in order.
//!
//! Tests and benches assert on this log — determinism means *the whole
//! event sequence* is identical for identical seeds, not just the final
//! metrics.

use crate::job::JobId;
use vlsi_core::ProcessorId;
use vlsi_topology::Coord;

/// One timestamped runtime event.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RuntimeEvent {
    /// The runtime tick the event happened on.
    pub tick: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The event vocabulary.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// A job entered the submission queue.
    Submitted {
        /// The job.
        job: JobId,
        /// Clusters it requests.
        clusters: usize,
        /// Its priority.
        priority: u8,
    },
    /// Admission gathered clusters for a job and started it.
    Admitted {
        /// The job.
        job: JobId,
        /// The processors gathered (one per region).
        procs: Vec<ProcessorId>,
        /// Which gather attempt succeeded (1 = first try).
        attempt: u32,
        /// Whether a warm pooled processor was reused instead of
        /// gathering fresh.
        pool_hit: bool,
    },
    /// A gather attempt failed (fragmentation or pressure); the job backs
    /// off exponentially.
    GatherFailed {
        /// The job.
        job: JobId,
        /// The failed attempt number.
        attempt: u32,
        /// Tick of the next attempt.
        retry_at: u64,
    },
    /// Fragmentation pressure triggered a chip-wide compaction.
    Compacted {
        /// Processors that moved.
        moved: usize,
        /// Fragmentation before.
        frag_before_milli: u32,
        /// Fragmentation after (both in 1/1000ths, to keep events `Eq`).
        frag_after_milli: u32,
    },
    /// A job finished and released (or pooled) its clusters.
    Completed {
        /// The job.
        job: JobId,
        /// Queue wait in ticks.
        wait: u64,
        /// Submission-to-completion in ticks.
        turnaround: u64,
    },
    /// A job failed gracefully; see the paired [`JobRecord::failure`].
    ///
    /// [`JobRecord::failure`]: crate::JobRecord::failure
    Failed {
        /// The job.
        job: JobId,
        /// Short reason label (`"deadline"`, `"retries"`, `"workload"`).
        reason: &'static str,
    },
    /// A lower layer reported a hardware fault mapping to a cluster —
    /// a stuck S-topology switch or a dead NoC link/router. The runtime
    /// responds by marking the cluster defective (the paired
    /// [`DefectInjected`] event follows immediately), so the full chain
    /// *report → defect → recovery* is visible in the log.
    ///
    /// [`DefectInjected`]: EventKind::DefectInjected
    FaultReported {
        /// The cluster the fault maps to.
        coord: Coord,
        /// The reporting layer (`"s-topology"` or `"noc"`).
        layer: &'static str,
    },
    /// A cluster was marked defective (fault injection).
    DefectInjected {
        /// The cluster.
        coord: Coord,
        /// The processor whose region it hit, if any.
        victim: Option<ProcessorId>,
    },
    /// A defect hit a live processor and the runtime relocated it (state
    /// preserved) — the job continues.
    DefectRecovered {
        /// The affected job.
        job: JobId,
        /// The relocated processor.
        proc: ProcessorId,
        /// Whether the workload had to be re-executed (it was mid-run).
        reran: bool,
    },
    /// A defect recovery could not relocate in place; the job went back
    /// to the queue for a fresh gather.
    Requeued {
        /// The affected job.
        job: JobId,
        /// Its attempt counter after the requeue.
        attempt: u32,
    },
    /// A completed job's processor was parked in the warm pool, asleep
    /// with a wake timer instead of released.
    Pooled {
        /// The parked processor.
        proc: ProcessorId,
        /// Its cluster count.
        clusters: usize,
        /// Ticks until the pool reclaims it.
        ttl: u64,
    },
    /// An admission woke a pooled processor instead of gathering.
    PoolWoken {
        /// The reused processor.
        proc: ProcessorId,
        /// The job that took it.
        job: JobId,
    },
    /// A pooled processor's timer expired; its clusters returned to the
    /// free pool.
    PoolReclaimed {
        /// The released processor.
        proc: ProcessorId,
    },
    /// A cluster scheduler withdrew the job from this chip to run it
    /// elsewhere (work stealing, or evacuation after a chip failure).
    MigratedOut {
        /// The withdrawn job.
        job: JobId,
        /// Why it left (`"steal"` or `"evacuate"`).
        reason: &'static str,
    },
}

impl RuntimeEvent {
    /// The job this event concerns, if any.
    pub fn job(&self) -> Option<JobId> {
        match &self.kind {
            EventKind::Submitted { job, .. }
            | EventKind::Admitted { job, .. }
            | EventKind::GatherFailed { job, .. }
            | EventKind::Completed { job, .. }
            | EventKind::Failed { job, .. }
            | EventKind::DefectRecovered { job, .. }
            | EventKind::Requeued { job, .. }
            | EventKind::PoolWoken { job, .. }
            | EventKind::MigratedOut { job, .. } => Some(*job),
            EventKind::Compacted { .. }
            | EventKind::FaultReported { .. }
            | EventKind::DefectInjected { .. }
            | EventKind::Pooled { .. }
            | EventKind::PoolReclaimed { .. } => None,
        }
    }
}

//! Pluggable scheduling policies.
//!
//! A policy only *orders* admission: it picks which queued job the
//! runtime should try to gather next. The runtime owns everything else —
//! backoff, compaction, retries — so policies stay tiny and the ablation
//! bench compares pure ordering effects.

use crate::job::JobId;

/// What a policy sees about one queued job.
#[derive(Clone, Copy, Debug)]
pub struct QueuedJob {
    /// The job.
    pub id: JobId,
    /// Clusters it requests.
    pub clusters: usize,
    /// Its priority (higher = more urgent).
    pub priority: u8,
    /// Tick it was submitted.
    pub submitted_at: u64,
    /// Earliest tick its next admission attempt may run (backoff).
    pub next_attempt_at: u64,
    /// Its deadline, if any.
    pub deadline: Option<u64>,
}

impl QueuedJob {
    /// Whether the job's backoff window has passed.
    pub fn ready(&self, now: u64) -> bool {
        self.next_attempt_at <= now
    }
}

/// A scheduling policy: picks the next queued job to try admitting.
///
/// `Send` is a supertrait so a boxed policy — and therefore a whole
/// [`Runtime`](crate::Runtime) — can move to a worker thread; the
/// [`Fleet`](crate::Fleet) ticks its chips on a pool. The shipped
/// policies are all stateless unit structs, so this costs nothing.
pub trait SchedPolicy: Send {
    /// The policy's name (for traces, tables, and benches).
    fn name(&self) -> &'static str;

    /// The index into `queue` (submission order) of the job to try next,
    /// or `None` to admit nothing this tick. `free` is the chip's current
    /// free-cluster count; `now` the current tick. Jobs whose backoff has
    /// not expired (`!q.ready(now)`) must not be picked.
    fn pick(&self, queue: &[QueuedJob], free: usize, now: u64) -> Option<usize>;
}

/// First-in first-out, with head-of-line blocking: the oldest job admits
/// first, and nothing overtakes it — if the head does not fit, everyone
/// waits. The baseline (and fairness-preserving) policy.
#[derive(Clone, Copy, Default, Debug)]
pub struct Fifo;

impl SchedPolicy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn pick(&self, queue: &[QueuedJob], free: usize, now: u64) -> Option<usize> {
        let (i, head) = queue
            .iter()
            .enumerate()
            .min_by_key(|(_, q)| (q.submitted_at, q.id))?;
        (head.ready(now) && head.clusters <= free).then_some(i)
    }
}

/// Strict priority: the highest-priority ready job admits first (FIFO
/// within a priority level). Does not bypass a blocked high-priority job
/// — capacity is held for it.
#[derive(Clone, Copy, Default, Debug)]
pub struct Priority;

impl SchedPolicy for Priority {
    fn name(&self) -> &'static str {
        "priority"
    }

    fn pick(&self, queue: &[QueuedJob], free: usize, now: u64) -> Option<usize> {
        let (i, best) = queue
            .iter()
            .enumerate()
            .filter(|(_, q)| q.ready(now))
            .min_by_key(|(_, q)| (std::cmp::Reverse(q.priority), q.submitted_at, q.id))?;
        (best.clusters <= free).then_some(i)
    }
}

/// Smallest-fit backfill: among ready jobs that fit the free space right
/// now, admit the smallest request (earliest submission breaks ties).
/// Maximises packing and throughput; can starve large jobs under
/// sustained small-job load — exactly the trade-off Ablation I measures.
#[derive(Clone, Copy, Default, Debug)]
pub struct SmallestFitBackfill;

impl SchedPolicy for SmallestFitBackfill {
    fn name(&self) -> &'static str {
        "backfill"
    }

    fn pick(&self, queue: &[QueuedJob], free: usize, now: u64) -> Option<usize> {
        queue
            .iter()
            .enumerate()
            .filter(|(_, q)| q.ready(now) && q.clusters <= free)
            .min_by_key(|(_, q)| (q.clusters, q.submitted_at, q.id))
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(id: u64, clusters: usize, priority: u8, submitted: u64) -> QueuedJob {
        QueuedJob {
            id: JobId(id),
            clusters,
            priority,
            submitted_at: submitted,
            next_attempt_at: 0,
            deadline: None,
        }
    }

    #[test]
    fn fifo_blocks_behind_head() {
        let queue = [q(0, 10, 0, 0), q(1, 2, 5, 1)];
        let p = Fifo;
        assert_eq!(p.pick(&queue, 16, 5), Some(0));
        // Head does not fit: nothing admits, even though job 1 would.
        assert_eq!(p.pick(&queue, 4, 5), None);
    }

    #[test]
    fn priority_orders_by_priority_then_age() {
        let queue = [q(0, 4, 1, 0), q(1, 4, 7, 1), q(2, 4, 7, 2)];
        let p = Priority;
        assert_eq!(p.pick(&queue, 16, 5), Some(1), "highest prio, oldest");
        // The high-priority job not fitting blocks the rest.
        let queue = [q(0, 2, 1, 0), q(1, 12, 7, 1)];
        assert_eq!(p.pick(&queue, 4, 5), None);
    }

    #[test]
    fn backfill_picks_smallest_fitting() {
        let queue = [q(0, 10, 0, 0), q(1, 3, 0, 1), q(2, 2, 0, 2)];
        let p = SmallestFitBackfill;
        assert_eq!(p.pick(&queue, 4, 5), Some(2));
        assert_eq!(
            p.pick(&queue, 16, 5),
            Some(2),
            "smallest wins even when all fit"
        );
        assert_eq!(p.pick(&queue, 1, 5), None);
    }

    #[test]
    fn backoff_respected_by_all() {
        let mut job = q(0, 2, 9, 0);
        job.next_attempt_at = 100;
        let queue = [job];
        assert_eq!(Fifo.pick(&queue, 16, 50), None);
        assert_eq!(Priority.pick(&queue, 16, 50), None);
        assert_eq!(SmallestFitBackfill.pick(&queue, 16, 50), None);
        assert_eq!(Fifo.pick(&queue, 16, 100), Some(0));
    }
}

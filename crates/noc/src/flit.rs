//! Flits, worms, and packets.
//!
//! Wormhole routing splits a packet into **flits**: a head flit that
//! carries the destination and claims the path, body flits that carry the
//! payload through the claimed path, and a tail flit that releases it.
//! A single-flit packet is a head flit flagged as also-tail.

use std::fmt;
use vlsi_topology::Coord;

/// Identity of one worm (packet) in flight.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct WormId(pub u64);

impl fmt::Display for WormId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worm{}", self.0)
    }
}

/// One flow-control unit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Flit {
    /// Claims the path toward `dest`. `is_tail` marks a single-flit worm.
    Head {
        /// The worm this flit belongs to.
        worm: WormId,
        /// Destination router.
        dest: Coord,
        /// Whether this head is also the tail (single-flit packet).
        is_tail: bool,
    },
    /// Payload flit following its worm's claimed path.
    Body {
        /// The worm this flit belongs to.
        worm: WormId,
        /// Payload word (e.g. one switch-programming store).
        data: u64,
    },
    /// Last payload flit; releases the claimed path behind it.
    Tail {
        /// The worm this flit belongs to.
        worm: WormId,
        /// Payload word.
        data: u64,
    },
}

impl Flit {
    /// The worm the flit belongs to.
    pub fn worm(&self) -> WormId {
        match *self {
            Flit::Head { worm, .. } | Flit::Body { worm, .. } | Flit::Tail { worm, .. } => worm,
        }
    }

    /// Whether this flit releases the path (tail, or head-only worm).
    pub fn is_tail(&self) -> bool {
        matches!(*self, Flit::Tail { .. } | Flit::Head { is_tail: true, .. })
    }
}

/// A packet: destination plus payload words, before flit-ification.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Packet {
    /// The worm identity (assigned at injection).
    pub worm: WormId,
    /// Destination router.
    pub dest: Coord,
    /// Payload words.
    pub payload: Vec<u64>,
}

impl Packet {
    /// Builds the flit sequence of this packet.
    pub fn flits(&self) -> Vec<Flit> {
        if self.payload.is_empty() {
            return vec![Flit::Head {
                worm: self.worm,
                dest: self.dest,
                is_tail: true,
            }];
        }
        let mut flits = Vec::with_capacity(self.payload.len() + 1);
        flits.push(Flit::Head {
            worm: self.worm,
            dest: self.dest,
            is_tail: false,
        });
        for (i, &d) in self.payload.iter().enumerate() {
            if i + 1 == self.payload.len() {
                flits.push(Flit::Tail {
                    worm: self.worm,
                    data: d,
                });
            } else {
                flits.push(Flit::Body {
                    worm: self.worm,
                    data: d,
                });
            }
        }
        flits
    }

    /// Number of flits this packet occupies on a link.
    pub fn flit_count(&self) -> usize {
        self.payload.len().max(1) + usize::from(!self.payload.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_payload_is_single_head_tail() {
        let p = Packet {
            worm: WormId(1),
            dest: Coord::new(1, 1),
            payload: vec![],
        };
        let flits = p.flits();
        assert_eq!(flits.len(), 1);
        assert!(flits[0].is_tail());
        assert_eq!(p.flit_count(), 1);
    }

    #[test]
    fn payload_flitification() {
        let p = Packet {
            worm: WormId(2),
            dest: Coord::new(0, 0),
            payload: vec![10, 20, 30],
        };
        let flits = p.flits();
        assert_eq!(flits.len(), 4);
        assert!(matches!(flits[0], Flit::Head { is_tail: false, .. }));
        assert!(matches!(flits[1], Flit::Body { data: 10, .. }));
        assert!(matches!(flits[2], Flit::Body { data: 20, .. }));
        assert!(matches!(flits[3], Flit::Tail { data: 30, .. }));
        assert_eq!(p.flit_count(), 4);
        assert!(flits.iter().all(|f| f.worm() == WormId(2)));
    }
}

//! The mesh network: routers wired into the cluster grid.
//!
//! [`NocNetwork`] simulates the whole router fabric cycle by cycle. Each
//! cycle has two phases: **link traversal** (output registers cross to the
//! neighbouring router's input queue, or deliver locally) and **switch
//! allocation** (each router moves at most one flit per input port into an
//! output register, with wormhole holds). Packets are reassembled at the
//! destination's local port.
//!
//! Per-worm injection and delivery timestamps are recorded: configuration
//! latency — how long a scaling worm takes to program its target switch —
//! is the quantity the Ablation C bench sweeps against region size.
//!
//! ## Fault tolerance
//!
//! Attaching a [`FaultPlan`] ([`NocNetwork::attach_fault_plan`]) arms the
//! end-to-end reliability layer, modelled on the DNP's error-notification
//! and retransmission path:
//!
//! * every packet carries a sender-side FNV-1a checksum, re-verified at
//!   reassembly — a `LinkCorrupt` flip is always detected;
//! * every worm has a delivery deadline; a missed deadline (flits wedged
//!   behind a down link or stalled router) **purges** the worm's flits
//!   from the fabric and retransmits from the source with capped
//!   exponential backoff;
//! * heads route adaptively around *permanently* dead links and routers
//!   (transient outages are cheaper to wait out in place); because the
//!   detour breaks XY's deadlock freedom, each worm gets a hop budget —
//!   the livelock bound — and a budget trip is handled like a timeout;
//! * a worm that exhausts its retransmission budget is reported as
//!   [`NocError::Undeliverable`] via [`NocNetwork::take_failed`], never
//!   dropped silently.
//!
//! Without a plan attached none of this machinery runs and the network
//! behaves bit-identically to the fault-free simulator.

use crate::error::NocError;
use crate::flit::{Flit, Packet, WormId};
use crate::router::{Port, Router};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{Arc, Mutex};
use vlsi_faults::{payload_checksum, FaultPlan};
use vlsi_par::Pool;
use vlsi_telemetry::TelemetryHandle;
use vlsi_topology::{Coord, Dir};

/// Delivery attempts per worm before it is declared undeliverable
/// (initial send plus retransmissions).
pub const MAX_DELIVERY_ATTEMPTS: u32 = 6;
/// First retransmission backoff, in cycles; doubles per attempt.
pub const RETRY_BACKOFF_BASE: u64 = 8;
/// Retransmission backoff cap, in cycles.
pub const RETRY_BACKOFF_CAP: u64 = 512;

/// Aggregate statistics of one network run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NetworkStats {
    /// Cycles simulated so far.
    pub cycles: u64,
    /// Worms fully delivered.
    pub worms_delivered: u64,
    /// Flits delivered at local ports.
    pub flits_delivered: u64,
    /// Router-to-router link crossings.
    pub link_crossings: u64,
    /// Payload words corrupted on a faulty link.
    pub corrupted_crossings: u64,
    /// Reassemblies rejected by the end-to-end checksum.
    pub checksum_failures: u64,
    /// Worms purged after missing a delivery deadline or tripping the
    /// livelock bound.
    pub worm_timeouts: u64,
    /// Worms that exhausted their retransmission budget.
    pub undeliverable: u64,
}

#[derive(Clone, Debug)]
struct Reassembly {
    payload: Vec<u64>,
    injected_at: u64,
}

/// Sender-side state of one in-flight worm (fault-tolerant mode only).
#[derive(Clone, Debug)]
struct PendingWorm {
    src: Coord,
    dest: Coord,
    payload: Vec<u64>,
    checksum: u64,
    /// Attempts started so far (1 after the initial send).
    attempts: u32,
    /// First injection cycle — latency is measured end to end, across
    /// retransmissions.
    injected_at: u64,
    /// Cycle by which the current attempt must deliver.
    deadline: u64,
    /// Link crossings of this worm's head in the current attempt.
    hops: u64,
    /// `Some(cycle)`: purged and waiting out the backoff until `cycle`.
    retry_at: Option<u64>,
}

/// A phase-1 link crossing whose target router lives in another shard.
/// Collected during the parallel sweep and committed serially in
/// ascending source-router order — acceptance depends only on
/// cycle-start queue state (each input queue has exactly one upstream
/// register per cycle), so the deferred commit decides exactly what an
/// inline one would.
#[derive(Clone, Copy, Debug)]
struct BoundaryCrossing {
    /// Absolute source router index.
    src: u32,
    /// Output port the flit leaves `src` through.
    out_port: Port,
    /// Absolute target router index.
    dst: u32,
    /// Input port the flit enters `dst` through.
    in_port: Port,
    /// The flit as it arrives (corruption, if any, already applied).
    flit: Flit,
}

/// Per-shard tick state: the shard's active/woken router lists plus
/// everything phase 1 defers to the serial commit sections (deliveries,
/// boundary crossings, head hops) and shard-local tallies the owner
/// absorbs in shard order. Reused every cycle, so the steady parallel
/// path allocates nothing once the vectors have grown.
#[derive(Debug, Default)]
struct ShardScratch {
    /// Loaded routers of this shard at cycle start (absolute indices,
    /// ascending).
    active: Vec<u32>,
    /// Routers phase 1 woke (absolute indices; sorted before phase 3).
    woken: Vec<u32>,
    /// Local-port deliveries, deferred to the serial delivery commit.
    deliveries: Vec<(Coord, Flit)>,
    /// Cross-shard crossings, deferred to the serial boundary commit.
    proposals: Vec<BoundaryCrossing>,
    /// Worms whose head crossed a link inside this shard this cycle.
    hop_heads: Vec<WormId>,
    /// Shard-local `stats.link_crossings` delta.
    link_crossings: u64,
    /// Shard-local `stats.corrupted_crossings` delta.
    corrupted_crossings: u64,
    /// Flits discarded by the off-mesh debug path.
    lost: usize,
    /// Source-queue flits drained into local ports (a `queued` delta).
    queued_drained: usize,
    /// Fork of the network's telemetry handle; absorbed (drained) into
    /// the main registry in shard order at the end of the tick.
    telemetry: TelemetryHandle,
}

/// The immutable per-cycle context the shard phases read.
struct TickEnv<'a> {
    width: u16,
    height: u16,
    now: u64,
    ft: bool,
    plan: &'a FaultPlan,
}

impl TickEnv<'_> {
    fn idx(&self, c: Coord) -> Option<usize> {
        (c.x < self.width && c.y < self.height && c.layer == 0)
            .then(|| c.y as usize * self.width as usize + c.x as usize)
    }
}

/// One shard's disjoint view of the mesh: the routers, loads, and
/// source queues of a contiguous row stripe, plus its scratch.
struct ShardView<'a> {
    /// Absolute index of the first router in this shard.
    base: usize,
    routers: &'a mut [Router],
    load: &'a mut [u32],
    injection: &'a mut [VecDeque<Flit>],
    scratch: &'a mut ShardScratch,
}

/// The router mesh.
///
/// ```
/// use vlsi_noc::NocNetwork;
/// use vlsi_topology::Coord;
///
/// let mut net = NocNetwork::new(4, 4);
/// let worm = net.inject(Coord::new(0, 0), Coord::new(3, 2), vec![1, 2, 3]).unwrap();
/// net.run_until_drained(10_000).unwrap();
/// let (packet, latency) = net.take_delivered().pop().unwrap();
/// assert_eq!(packet.worm, worm);
/// assert_eq!(packet.payload, vec![1, 2, 3]);
/// assert!(latency >= 5); // at least the Manhattan distance
/// ```
#[derive(Debug)]
pub struct NocNetwork {
    width: u16,
    height: u16,
    routers: Vec<Router>,
    /// Source queues feeding each router's local input port.
    injection: Vec<VecDeque<Flit>>,
    assembling: HashMap<WormId, Reassembly>,
    delivered: Vec<(Packet, u64)>,
    latencies: HashMap<WormId, u64>,
    next_worm: u64,
    stats: NetworkStats,
    /// Fault schedule; empty and inert until a plan is attached.
    plan: FaultPlan,
    /// Whether the fault-tolerance layer is armed.
    ft: bool,
    /// Sender-side tracking of undelivered worms, in worm order so
    /// timeout/retry processing is deterministic.
    pending: BTreeMap<WormId, PendingWorm>,
    /// Worms that exhausted their retransmission budget.
    failed: Vec<(WormId, NocError)>,
    /// Flits resident anywhere in the fabric (source queues, input
    /// queues, output registers), maintained incrementally so the
    /// steady-state tick and [`Self::is_idle`] never rescan the mesh.
    resident: usize,
    /// Flits waiting in the source queues — the `noc.queue_depth`
    /// sample, maintained incrementally instead of summed per cycle.
    queued: usize,
    /// Per-router flit load (that router's source queue, input queues,
    /// and output registers). A zero-load router is a no-op in every
    /// per-router phase, so [`Self::tick`] skips it — on a large mesh
    /// with a handful of worms in flight, almost all of them.
    load: Vec<u32>,
    /// Scratch for phase 0's due-retry collection (reused every tick so
    /// the steady path allocates nothing).
    due_scratch: Vec<WormId>,
    /// Scratch for phase 4's expired-worm collection.
    expired_scratch: Vec<WormId>,
    /// Execution pool for the sharded tick. The default is the inline
    /// serial pool; [`Self::set_parallel`] attaches a threaded one.
    pool: Arc<Pool>,
    /// Resident-flit threshold below which the tick stays single-shard
    /// (fan-out overhead beats the win on a near-empty mesh). The shard
    /// schedule is bit-identical at every shard count, so this gate can
    /// never change results.
    par_min_resident: usize,
    /// Per-shard tick scratch, grown lazily to the shard count in use.
    shard_scratch: Vec<ShardScratch>,
    /// Observability sink; the default handle is a no-op.
    telemetry: TelemetryHandle,
}

impl Clone for NocNetwork {
    fn clone(&self) -> NocNetwork {
        NocNetwork {
            width: self.width,
            height: self.height,
            routers: self.routers.clone(),
            injection: self.injection.clone(),
            assembling: self.assembling.clone(),
            delivered: self.delivered.clone(),
            latencies: self.latencies.clone(),
            next_worm: self.next_worm,
            stats: self.stats.clone(),
            plan: self.plan.clone(),
            ft: self.ft,
            pending: self.pending.clone(),
            failed: self.failed.clone(),
            resident: self.resident,
            queued: self.queued,
            load: self.load.clone(),
            due_scratch: Vec::new(),
            expired_scratch: Vec::new(),
            pool: Arc::clone(&self.pool),
            par_min_resident: self.par_min_resident,
            // Fresh scratch, not a clone: shard telemetry forks are
            // drained by absorption, so sharing them between clones
            // would cross-talk; scratch content is transient anyway.
            shard_scratch: Vec::new(),
            telemetry: self.telemetry.clone(),
        }
    }
}

impl NocNetwork {
    /// A `width × height` mesh with one router per cluster (telemetry
    /// disabled).
    pub fn new(width: u16, height: u16) -> NocNetwork {
        NocNetwork::with_telemetry(width, height, TelemetryHandle::disabled())
    }

    /// A `width × height` mesh recording into `telemetry`:
    /// `noc.*` counters (link crossings, retransmissions, misroutes,
    /// per-link utilization lanes), the `noc.queue_depth` and
    /// `noc.latency` histograms, and per-worm trace spans on the `noc`
    /// track, all stamped with the network's own cycle counter.
    pub fn with_telemetry(width: u16, height: u16, telemetry: TelemetryHandle) -> NocNetwork {
        let routers = (0..height)
            .flat_map(|y| (0..width).map(move |x| Router::new(Coord::new(x, y))))
            .collect::<Vec<_>>();
        let n = routers.len();
        NocNetwork {
            width,
            height,
            routers,
            injection: vec![VecDeque::new(); n],
            assembling: HashMap::new(),
            delivered: Vec::new(),
            latencies: HashMap::new(),
            next_worm: 0,
            stats: NetworkStats::default(),
            plan: FaultPlan::none(),
            ft: false,
            pending: BTreeMap::new(),
            failed: Vec::new(),
            resident: 0,
            queued: 0,
            load: vec![0; n],
            due_scratch: Vec::new(),
            expired_scratch: Vec::new(),
            pool: Pool::serial(),
            par_min_resident: 0,
            shard_scratch: Vec::new(),
            telemetry,
        }
    }

    /// Attaches a worker pool: ticks shard the mesh into contiguous row
    /// stripes (one per pool executor, capped at the mesh height) and run
    /// the router-local phases in parallel. The shard schedule commits
    /// cross-shard effects serially in fixed order, so a run at any
    /// thread count is **bit-identical** to the serial run — same flit
    /// order, same stats, same telemetry export.
    ///
    /// `min_resident` gates the fan-out: cycles with fewer resident
    /// flits stay single-shard (pure overhead control; never observable
    /// in results). Pass `0` to shard every loaded cycle.
    pub fn set_parallel(&mut self, pool: Arc<Pool>, min_resident: usize) {
        self.pool = pool;
        self.par_min_resident = min_resident;
    }

    /// Executors the sharded tick can use (1 = serial).
    pub fn parallel_threads(&self) -> usize {
        self.pool.threads()
    }

    /// Shards the next loaded tick would fan out over.
    fn shard_count(&self) -> usize {
        let t = self.pool.threads();
        if t <= 1 || self.resident < self.par_min_resident {
            1
        } else {
            t.min(usize::from(self.height)).max(1)
        }
    }

    /// The telemetry handle this network records into.
    pub fn telemetry(&self) -> &TelemetryHandle {
        &self.telemetry
    }

    fn idx(&self, c: Coord) -> Option<usize> {
        (c.x < self.width && c.y < self.height && c.layer == 0)
            .then(|| c.y as usize * self.width as usize + c.x as usize)
    }

    /// Mesh width.
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Mesh height.
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Arms the fault-tolerance layer with a fault schedule (times are
    /// interpreted as network cycles). Attach before injecting: worms
    /// already in flight keep their fault-free bookkeeping. Attaching
    /// even an empty plan enables checksums, timeouts, and
    /// retransmission.
    pub fn attach_fault_plan(&mut self, plan: FaultPlan) {
        self.plan = plan;
        self.ft = true;
    }

    /// The attached fault schedule, if the tolerance layer is armed.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.ft.then_some(&self.plan)
    }

    /// Worms declared undeliverable so far (clears the list). Each entry
    /// is a typed [`NocError::Undeliverable`] — the graceful-degradation
    /// signal callers react to.
    pub fn take_failed(&mut self) -> Vec<(WormId, NocError)> {
        std::mem::take(&mut self.failed)
    }

    /// Worms injected but neither delivered nor declared undeliverable.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Per-attempt delivery budget: generous slack over the contention-
    /// free latency so congestion alone rarely trips it.
    fn delivery_budget(&self, src: Coord, dest: Coord, flits: usize) -> u64 {
        let dist = u64::from(src.x.abs_diff(dest.x)) + u64::from(src.y.abs_diff(dest.y));
        16 * (dist + flits as u64) + 256
    }

    /// Livelock bound: adaptive detours may wander, but never farther
    /// than a few mesh perimeters.
    fn hop_budget(&self) -> u64 {
        4 * (u64::from(self.width) + u64::from(self.height)) + 64
    }

    /// Injects a packet at `src` toward `dest`. The flits wait in the
    /// source queue and enter the router as its local port frees.
    pub fn inject(
        &mut self,
        src: Coord,
        dest: Coord,
        payload: Vec<u64>,
    ) -> Result<WormId, NocError> {
        let si = self.idx(src).ok_or(NocError::OutOfGrid(src))?;
        self.idx(dest).ok_or(NocError::OutOfGrid(dest))?;
        let worm = WormId(self.next_worm);
        self.next_worm += 1;
        let packet = Packet {
            worm,
            dest,
            payload,
        };
        self.assembling.insert(
            worm,
            Reassembly {
                payload: Vec::new(),
                injected_at: self.stats.cycles,
            },
        );
        if self.ft {
            let deadline = self.stats.cycles + self.delivery_budget(src, dest, packet.flit_count());
            self.pending.insert(
                worm,
                PendingWorm {
                    src,
                    dest,
                    payload: packet.payload.clone(),
                    checksum: payload_checksum(&packet.payload),
                    attempts: 1,
                    injected_at: self.stats.cycles,
                    deadline,
                    hops: 0,
                    retry_at: None,
                },
            );
        }
        for f in packet.flits() {
            self.injection[si].push_back(f);
            self.resident += 1;
            self.queued += 1;
            self.load[si] += 1;
        }
        self.telemetry
            .span_begin("noc", "worm", worm.0, self.stats.cycles);
        Ok(worm)
    }

    /// Advances the network one cycle.
    ///
    /// The steady path is allocation-free: the due/expired collections of
    /// phases 0/4 reuse persistent scratch buffers, the queue-depth
    /// sample reads an incrementally-maintained counter instead of
    /// summing every source queue, and the per-router phases are skipped
    /// outright when no flit is resident anywhere (only the cycle
    /// counter and the fault-timeout machinery can matter then).
    pub fn tick(&mut self) {
        self.stats.cycles += 1;
        let now = self.stats.cycles;
        if self.telemetry.is_enabled() {
            // Aggregate occupancy of the source queues this cycle — the
            // backpressure signal congestion experiments sweep.
            self.telemetry.record("noc.queue_depth", self.queued as u64);
        }
        // Phase 0 (fault-tolerant mode): retransmit purged worms whose
        // backoff has elapsed, in worm order.
        if self.ft && !self.pending.is_empty() {
            let mut due = std::mem::take(&mut self.due_scratch);
            due.clear();
            due.extend(
                self.pending
                    .iter()
                    .filter(|(_, p)| p.retry_at.is_some_and(|at| at <= now))
                    .map(|(&w, _)| w),
            );
            for &worm in &due {
                self.retransmit(worm);
            }
            self.due_scratch = due;
        }
        if self.resident > 0 {
            self.move_flits(now);
        }
        // Phase 4 (fault-tolerant mode): enforce deadlines and the
        // livelock bound.
        if self.ft && !self.pending.is_empty() {
            let hop_budget = self.hop_budget();
            let mut expired = std::mem::take(&mut self.expired_scratch);
            expired.clear();
            expired.extend(
                self.pending
                    .iter()
                    .filter(|(_, p)| {
                        p.retry_at.is_none() && (p.deadline <= now || p.hops > hop_budget)
                    })
                    .map(|(&w, _)| w),
            );
            for &worm in &expired {
                self.stats.worm_timeouts += 1;
                self.purge_and_backoff(worm);
            }
            self.expired_scratch = expired;
        }
    }

    /// Phases 1–3 of [`Self::tick`]: link traversal, injection, and
    /// allocation, over row-stripe shards. Only called while at least one
    /// flit is resident.
    ///
    /// One schedule serves every shard count (1 = serial), which is what
    /// makes parallel runs bit-identical to serial ones:
    ///
    /// 1. **Phase 1** (parallel): each shard walks its loaded routers in
    ///    ascending order. Own-shard crossings commit immediately;
    ///    cross-shard crossings and local deliveries are deferred. Every
    ///    accept decision depends only on cycle-start queue state (pops
    ///    happen in phase 3, and each input queue has exactly one
    ///    upstream register), so deferral never changes what is accepted.
    /// 2. **Boundary commit** (serial): deferred crossings land in
    ///    ascending source-router order.
    /// 3. **Stat/hop absorption** (serial, shard order): commutative
    ///    tallies fold into the global stats.
    /// 4. **Delivery commit** (serial): local-port flits reach
    ///    [`Self::deliver`] in ascending router order — reassembly,
    ///    checksum verdicts, and any resulting purge touch cross-shard
    ///    state, so they stay on the owner thread.
    /// 5. **Phases 2+3** (parallel): source-queue drain and switch
    ///    allocation, fused per router — both read and write only that
    ///    router's own queues and registers.
    /// 6. **Queued/telemetry absorption** (serial, shard order).
    fn move_flits(&mut self, now: u64) {
        let shards = self.shard_count();
        if self.shard_scratch.len() < shards {
            self.shard_scratch
                .resize_with(shards, ShardScratch::default);
        }
        if self.telemetry.is_enabled() {
            if shards == 1 {
                // One shard runs the exact serial schedule, so record
                // straight into the main registry (the end-of-tick absorb
                // no-ops on a shared registry) — the telemetry-enabled
                // serial tick costs exactly what it did before sharding.
                self.shard_scratch[0].telemetry = self.telemetry.clone();
            } else {
                for sc in &mut self.shard_scratch[..shards] {
                    sc.telemetry = self.telemetry.fork();
                }
            }
        }
        let pool = Arc::clone(&self.pool);
        let (w, h) = (usize::from(self.width), usize::from(self.height));

        // 1. Phase 1: route-compute plus own-shard commit.
        run_sharded(
            &pool,
            shards,
            w,
            h,
            &mut self.routers,
            &mut self.load,
            &mut self.injection,
            &mut self.shard_scratch[..shards],
            &TickEnv {
                width: self.width,
                height: self.height,
                now,
                ft: self.ft,
                plan: &self.plan,
            },
            shard_phase1,
        );

        // 2. Boundary commit, globally ascending source order: shards
        // cover ascending router ranges and each shard's proposals are
        // already ascending, so shard-order concatenation preserves the
        // serial visit order.
        for s in 0..shards {
            if self.shard_scratch[s].proposals.is_empty() {
                continue;
            }
            let mut proposals = std::mem::take(&mut self.shard_scratch[s].proposals);
            for p in &proposals {
                let (src, dst) = (p.src as usize, p.dst as usize);
                if self.routers[dst].accept(p.in_port, p.flit).is_err() {
                    // Backpressure: the source register keeps the original
                    // (uncorrupted) flit, exactly like an inline attempt.
                    continue;
                }
                self.routers[src].outputs[p.out_port.index()].reg = None;
                if p.flit.is_tail() {
                    self.routers[src].outputs[p.out_port.index()].held_by = None;
                }
                self.load[src] -= 1;
                if self.load[dst] == 0 {
                    // The woken router allocates in phase 3 on its own
                    // shard's merged list.
                    let owner = owner_shard(dst / w, h, shards);
                    self.shard_scratch[owner].woken.push(dst as u32);
                }
                self.load[dst] += 1;
                self.stats.link_crossings += 1;
                self.telemetry.count("noc.link_crossings", 1);
                self.telemetry.count_at(
                    "noc.link_util",
                    u64::from(p.src) * 5 + p.out_port.index() as u64,
                    1,
                );
                if self.ft && matches!(p.flit, Flit::Head { .. }) {
                    if let Some(pd) = self.pending.get_mut(&p.flit.worm()) {
                        pd.hops += 1;
                    }
                }
            }
            proposals.clear();
            self.shard_scratch[s].proposals = proposals;
        }

        // 3. Stat and head-hop absorption, shard order (commutative
        // sums, so the totals equal a serial run's).
        for s in 0..shards {
            let sc = &mut self.shard_scratch[s];
            let crossings = std::mem::take(&mut sc.link_crossings);
            let corrupted = std::mem::take(&mut sc.corrupted_crossings);
            let lost = std::mem::take(&mut sc.lost);
            self.stats.link_crossings += crossings;
            self.stats.corrupted_crossings += corrupted;
            self.resident = self.resident.saturating_sub(lost);
        }
        if self.ft {
            for s in 0..shards {
                let heads = std::mem::take(&mut self.shard_scratch[s].hop_heads);
                for worm in &heads {
                    if let Some(p) = self.pending.get_mut(worm) {
                        p.hops += 1;
                    }
                }
                let mut heads = heads;
                heads.clear();
                self.shard_scratch[s].hop_heads = heads;
            }
        }

        // 4. Delivery commit in globally ascending router order. At every
        // shard count the fabric state here is "all phase-1 crossings
        // applied", so a checksum-failure purge sees the same mesh
        // regardless of sharding.
        for s in 0..shards {
            if self.shard_scratch[s].deliveries.is_empty() {
                continue;
            }
            let mut deliveries = std::mem::take(&mut self.shard_scratch[s].deliveries);
            for &(coord, flit) in &deliveries {
                self.deliver(coord, flit);
            }
            deliveries.clear();
            self.shard_scratch[s].deliveries = deliveries;
        }

        // 5. Phases 2+3: source-queue drain and allocation, router-local.
        run_sharded(
            &pool,
            shards,
            w,
            h,
            &mut self.routers,
            &mut self.load,
            &mut self.injection,
            &mut self.shard_scratch[..shards],
            &TickEnv {
                width: self.width,
                height: self.height,
                now,
                ft: self.ft,
                plan: &self.plan,
            },
            shard_phase23,
        );

        // 6. Queued and telemetry absorption, shard order.
        for s in 0..shards {
            self.queued -= std::mem::take(&mut self.shard_scratch[s].queued_drained);
        }
        if self.telemetry.is_enabled() {
            for s in 0..shards {
                self.telemetry.absorb(&self.shard_scratch[s].telemetry);
            }
        }
    }

    /// Removes every trace of `worm` from the fabric (source queues,
    /// input queues, bindings, output holds, partial reassembly), then
    /// either schedules a retransmission after an exponential backoff or
    /// declares the worm undeliverable.
    fn purge_and_backoff(&mut self, worm: WormId) {
        for ri in 0..self.routers.len() {
            for in_port in Port::ALL {
                // A binding belongs to `worm` iff its output is held by it.
                if let Some(out) = self.routers[ri].bindings[in_port.index()] {
                    if self.routers[ri].outputs[out.index()].held_by == Some(worm) {
                        self.routers[ri].bindings[in_port.index()] = None;
                    }
                }
                let q = &mut self.routers[ri].inputs[in_port.index()];
                let before = q.len();
                q.retain(|f| f.worm() != worm);
                let removed = before - q.len();
                self.resident -= removed;
                self.load[ri] -= removed as u32;
            }
            for out in Port::ALL {
                let o = &mut self.routers[ri].outputs[out.index()];
                if o.reg.is_some_and(|f| f.worm() == worm) {
                    o.reg = None;
                    self.resident -= 1;
                    self.load[ri] -= 1;
                }
                if o.held_by == Some(worm) {
                    o.held_by = None;
                }
            }
            let before = self.injection[ri].len();
            self.injection[ri].retain(|f| f.worm() != worm);
            let removed = before - self.injection[ri].len();
            self.resident -= removed;
            self.queued -= removed;
            self.load[ri] -= removed as u32;
        }
        if let Some(r) = self.assembling.get_mut(&worm) {
            r.payload.clear();
        }
        let now = self.stats.cycles;
        let Some(p) = self.pending.get_mut(&worm) else {
            return;
        };
        if p.attempts >= MAX_DELIVERY_ATTEMPTS {
            self.pending.remove(&worm);
            self.assembling.remove(&worm);
            self.stats.undeliverable += 1;
            self.failed.push((
                worm,
                NocError::Undeliverable {
                    worm,
                    attempts: MAX_DELIVERY_ATTEMPTS,
                },
            ));
            return;
        }
        let backoff = (RETRY_BACKOFF_BASE << p.attempts.min(16)).min(RETRY_BACKOFF_CAP);
        p.retry_at = Some(now + backoff);
    }

    /// Re-injects a purged worm's flits at its source.
    fn retransmit(&mut self, worm: WormId) {
        let Some(p) = self.pending.get_mut(&worm) else {
            return;
        };
        p.attempts += 1;
        p.hops = 0;
        p.retry_at = None;
        let (src, dest, payload, injected_at) = (p.src, p.dest, p.payload.clone(), p.injected_at);
        let budget = self.delivery_budget(src, dest, payload.len().max(1) + 1);
        if let Some(p) = self.pending.get_mut(&worm) {
            p.deadline = self.stats.cycles + budget;
        }
        self.assembling.insert(
            worm,
            Reassembly {
                payload: Vec::new(),
                injected_at,
            },
        );
        self.telemetry.count("noc.retransmissions", 1);
        self.telemetry
            .instant("noc", "retransmit", worm.0, self.stats.cycles);
        let si = self.idx(src).expect("pending worm has an on-grid source");
        for f in (Packet {
            worm,
            dest,
            payload,
        })
        .flits()
        {
            self.injection[si].push_back(f);
            self.resident += 1;
            self.queued += 1;
            self.load[si] += 1;
        }
    }

    fn deliver(&mut self, _at: Coord, flit: Flit) {
        self.stats.flits_delivered += 1;
        self.resident = self.resident.saturating_sub(1);
        let worm = flit.worm();
        let done = flit.is_tail();
        if let Some(r) = self.assembling.get_mut(&worm) {
            match flit {
                Flit::Body { data, .. } | Flit::Tail { data, .. } => r.payload.push(data),
                Flit::Head { .. } => {}
            }
            if !done {
                return;
            }
            let Some(r) = self.assembling.remove(&worm) else {
                return;
            };
            if self.ft {
                if let Some(p) = self.pending.get(&worm) {
                    if payload_checksum(&r.payload) != p.checksum {
                        // Corrupted in transit: reject the reassembly and
                        // retransmit end to end.
                        self.stats.checksum_failures += 1;
                        self.assembling.insert(
                            worm,
                            Reassembly {
                                payload: Vec::new(),
                                injected_at: r.injected_at,
                            },
                        );
                        self.purge_and_backoff(worm);
                        return;
                    }
                }
                self.pending.remove(&worm);
            }
            let latency = self.stats.cycles - r.injected_at;
            self.telemetry.record("noc.latency", latency);
            self.telemetry
                .span_end("noc", "worm", worm.0, self.stats.cycles);
            self.latencies.insert(worm, latency);
            self.delivered.push((
                Packet {
                    worm,
                    dest: _at,
                    payload: r.payload,
                },
                latency,
            ));
            self.stats.worms_delivered += 1;
        }
    }

    /// Whether any flit is in flight anywhere (in fault-tolerant mode,
    /// also: no worm awaiting retransmission or a verdict).
    pub fn is_idle(&self) -> bool {
        debug_assert_eq!(
            self.resident == 0,
            self.injection.iter().all(|q| q.is_empty()) && self.routers.iter().all(|r| r.is_idle()),
            "resident counter must mirror the mesh scan"
        );
        self.resident == 0 && self.pending.is_empty()
    }

    /// Ticks until idle, up to `max_cycles`. In fault-tolerant mode a
    /// drained network means every worm was delivered-and-verified or
    /// reported undeliverable — inspect [`take_failed`](Self::take_failed).
    pub fn run_until_drained(&mut self, max_cycles: u64) -> Result<(), NocError> {
        for _ in 0..max_cycles {
            if self.is_idle() {
                return Ok(());
            }
            self.tick();
        }
        if self.is_idle() {
            Ok(())
        } else {
            Err(NocError::Timeout {
                cycles: self.stats.cycles,
            })
        }
    }

    /// Takes all packets delivered so far (with their latency in cycles).
    pub fn take_delivered(&mut self) -> Vec<(Packet, u64)> {
        std::mem::take(&mut self.delivered)
    }

    /// The delivery latency of a worm, if it has arrived.
    pub fn worm_latency(&self, worm: WormId) -> Option<u64> {
        self.latencies.get(&worm).copied()
    }

    /// Current statistics.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }
}

/// Which row stripe owns `row` under the `(s + 1) * height / shards`
/// boundary rule [`run_sharded`] splits with.
fn owner_shard(row: usize, height: usize, shards: usize) -> usize {
    (0..shards)
        .find(|&s| row < (s + 1) * height / shards)
        .unwrap_or(shards - 1)
}

/// Splits the mesh into `shards` contiguous row stripes and runs `f` once
/// per stripe on the pool. With one shard everything runs inline on the
/// caller — no `Mutex`, no `Vec`, no fan-out — so the serial tick keeps
/// its allocation-free steady path and the parallel tick is *the same
/// code* at a different shard count.
#[allow(clippy::too_many_arguments)]
fn run_sharded(
    pool: &Pool,
    shards: usize,
    width: usize,
    height: usize,
    mut routers: &mut [Router],
    mut load: &mut [u32],
    mut injection: &mut [VecDeque<Flit>],
    mut scratch: &mut [ShardScratch],
    env: &TickEnv<'_>,
    f: fn(&mut ShardView<'_>, &TickEnv<'_>),
) {
    if shards == 1 {
        f(
            &mut ShardView {
                base: 0,
                routers,
                load,
                injection,
                scratch: &mut scratch[0],
            },
            env,
        );
        return;
    }
    // The Mutex is lock-uncontended by construction (exactly one task per
    // shard); it exists to hand each worker a `&mut` view through the
    // shared closure.
    let mut work: Vec<Mutex<ShardView<'_>>> = Vec::with_capacity(shards);
    let mut base = 0usize;
    for s in 0..shards {
        let end = (s + 1) * height / shards * width;
        let take = end - base;
        let (r, rest) = routers.split_at_mut(take);
        routers = rest;
        let (l, rest) = load.split_at_mut(take);
        load = rest;
        let (i, rest) = injection.split_at_mut(take);
        injection = rest;
        let (sc, rest) = scratch.split_at_mut(1);
        scratch = rest;
        work.push(Mutex::new(ShardView {
            base,
            routers: r,
            load: l,
            injection: i,
            scratch: &mut sc[0],
        }));
        base = end;
    }
    pool.run(shards, &|s| {
        let mut view = work[s].lock().unwrap_or_else(|e| e.into_inner());
        f(&mut view, env);
    });
}

/// Phase 1 over one shard: link traversal of the shard's loaded routers,
/// in ascending index order. Own-shard crossings commit in place;
/// deliveries and cross-shard crossings are deferred to the serial commit
/// sections. See [`NocNetwork::move_flits`] for the full schedule.
fn shard_phase1(v: &mut ShardView<'_>, env: &TickEnv<'_>) {
    let base = v.base;
    let end = base + v.routers.len();
    let ShardScratch {
        active,
        woken,
        deliveries,
        proposals,
        hop_heads,
        link_crossings,
        corrupted_crossings,
        lost,
        queued_drained: _,
        telemetry,
    } = &mut *v.scratch;
    active.clear();
    woken.clear();
    active.extend(
        (0..v.routers.len())
            .filter(|&i| v.load[i] > 0)
            .map(|i| (base + i) as u32),
    );
    for &ri32 in active.iter() {
        let ri = ri32 as usize;
        let li = ri - base;
        let coord = v.routers[li].coord;
        for port in Port::ALL {
            let Some(mut flit) = v.routers[li].outputs[port.index()].reg else {
                continue;
            };
            match port {
                Port::Local => {
                    // Local sinks always accept; the delivery itself
                    // (reassembly, checksum verdict, possible purge) runs
                    // in the serial delivery commit.
                    v.routers[li].outputs[port.index()].reg = None;
                    if flit.is_tail() {
                        v.routers[li].outputs[port.index()].held_by = None;
                    }
                    v.load[li] -= 1;
                    deliveries.push((coord, flit));
                }
                _ => {
                    let Some(d) = port.dir() else { continue };
                    if env.ft && env.plan.link_blocked(env.now, coord, d) {
                        // Link down: the flit waits in the register.
                        continue;
                    }
                    let Some(nc) = coord.step(d) else {
                        // Edge of the mesh: XY routing never does this.
                        debug_assert!(false, "flit routed off the mesh");
                        v.routers[li].outputs[port.index()].reg = None;
                        *lost += 1;
                        v.load[li] = v.load[li].saturating_sub(1);
                        continue;
                    };
                    let Some(ni) = env.idx(nc) else {
                        debug_assert!(false, "flit routed off the mesh");
                        v.routers[li].outputs[port.index()].reg = None;
                        *lost += 1;
                        v.load[li] = v.load[li].saturating_sub(1);
                        continue;
                    };
                    let Some(in_port) = Port::from_dir(d.opposite()) else {
                        continue;
                    };
                    if env.ft {
                        if let Some(mask) = env.plan.corruption(env.now, coord, d) {
                            // Faulty link: payload words flip in transit.
                            // Counted at crossing-attempt time (even if the
                            // neighbour then refuses the flit), matching
                            // the serial accounting.
                            match &mut flit {
                                Flit::Body { data, .. } | Flit::Tail { data, .. } => {
                                    *data ^= mask;
                                    *corrupted_crossings += 1;
                                }
                                Flit::Head { .. } => {}
                            }
                        }
                    }
                    if (base..end).contains(&ni) {
                        // Own-shard crossing: commit immediately.
                        let nli = ni - base;
                        if v.routers[nli].accept(in_port, flit).is_ok() {
                            v.routers[li].outputs[port.index()].reg = None;
                            if flit.is_tail() {
                                v.routers[li].outputs[port.index()].held_by = None;
                            }
                            v.load[li] -= 1;
                            if v.load[nli] == 0 {
                                woken.push(ni as u32);
                            }
                            v.load[nli] += 1;
                            *link_crossings += 1;
                            telemetry.count("noc.link_crossings", 1);
                            // One utilization lane per directed link,
                            // keyed router-major: router*5 + output port.
                            telemetry.count_at(
                                "noc.link_util",
                                ri as u64 * 5 + port.index() as u64,
                                1,
                            );
                            if env.ft && matches!(flit, Flit::Head { .. }) {
                                hop_heads.push(flit.worm());
                            }
                        }
                    } else {
                        // Cross-shard: the neighbour belongs to another
                        // stripe. Defer to the serial boundary commit.
                        proposals.push(BoundaryCrossing {
                            src: ri as u32,
                            out_port: port,
                            dst: ni as u32,
                            in_port,
                            flit,
                        });
                    }
                }
            }
        }
    }
}

/// Phases 2+3 over one shard, fused per router: drain the router's source
/// queue into its local input port, then allocate the switch (one flit
/// per input port). Both touch only that router's own queues and
/// registers, so the per-router fusion is observably identical to the
/// all-phase-2-then-all-phase-3 serial order. The visit list is the
/// cycle-start snapshot merged (ascending) with the routers phase 1 woke
/// — a woken router had zero load, so it is never also in the snapshot.
fn shard_phase23(v: &mut ShardView<'_>, env: &TickEnv<'_>) {
    let base = v.base;
    let ShardScratch {
        active,
        woken,
        queued_drained,
        telemetry,
        ..
    } = &mut *v.scratch;
    woken.sort_unstable();
    let mut wi = 0;
    let mut ai = 0;
    loop {
        let ri = match (active.get(ai), woken.get(wi)) {
            (Some(&a), Some(&w)) if a < w => {
                ai += 1;
                a as usize
            }
            (Some(_), Some(&w)) => {
                wi += 1;
                w as usize
            }
            (Some(&a), None) => {
                ai += 1;
                a as usize
            }
            (None, Some(&w)) => {
                wi += 1;
                w as usize
            }
            (None, None) => break,
        };
        let li = ri - base;
        if v.load[li] == 0 {
            continue;
        }
        // Phase 2: feed this router's source queue into its local input
        // port. Safe to skip via the load check above — a zero-load
        // router's source queue is empty (load counts queued flits), and
        // safe to run for woken routers — they had zero load at cycle
        // start, so their queues were empty then and nothing refills them
        // mid-tick.
        while let Some(&f) = v.injection[li].front() {
            if v.routers[li].accept(Port::Local, f).is_err() {
                break; // backpressure: the flit stays in the source queue
            }
            v.injection[li].pop_front();
            *queued_drained += 1;
        }
        let coord = v.routers[li].coord;
        if env.ft && env.plan.router_stalled(env.now, coord) {
            continue; // stalled router: queues do not drain this cycle
        }
        for port in Port::ALL {
            if env.ft {
                allocate_adaptive(&mut v.routers[li], port, env, telemetry);
            } else {
                let _ = v.routers[li].allocate(port);
            }
        }
    }
}

/// Allocation with adaptive head steering: heads detour around
/// permanently dead links/routers; body and tail flits follow their
/// binding unchanged.
fn allocate_adaptive(
    r: &mut Router,
    in_port: Port,
    env: &TickEnv<'_>,
    telemetry: &TelemetryHandle,
) {
    let Some(&flit) = r.inputs[in_port.index()].front() else {
        return;
    };
    let coord = r.coord;
    let out = match flit {
        Flit::Head { dest, .. } => {
            let xy = r.route(dest);
            let Some(chosen) = adaptive_route(env, coord, dest) else {
                return; // nowhere to go: wait for the timeout to purge
            };
            if chosen != xy {
                telemetry.count("noc.misroutes", 1);
            }
            chosen
        }
        Flit::Body { .. } | Flit::Tail { .. } => {
            let Some(bound) = r.bindings[in_port.index()] else {
                return;
            };
            bound
        }
    };
    let _ = r.allocate_toward(in_port, out);
}

/// The output port a head for `dest` should take from `at`, avoiding
/// permanently dead links and routers. Preference order is fixed —
/// productive X, productive Y, then the remaining planar directions —
/// so routing stays deterministic.
fn adaptive_route(env: &TickEnv<'_>, at: Coord, dest: Coord) -> Option<Port> {
    if dest.x == at.x && dest.y == at.y {
        return Some(Port::Local);
    }
    let now = env.now;
    let px = if dest.x > at.x {
        Some(Dir::East)
    } else if dest.x < at.x {
        Some(Dir::West)
    } else {
        None
    };
    let py = if dest.y > at.y {
        Some(Dir::South)
    } else if dest.y < at.y {
        Some(Dir::North)
    } else {
        None
    };
    // Preference list on the stack — this runs per head flit per
    // cycle, so it must not allocate.
    let mut prefs = [Dir::East; 4];
    let mut n = 0usize;
    if let Some(d) = px {
        prefs[n] = d;
        n += 1;
    }
    if let Some(d) = py {
        prefs[n] = d;
        n += 1;
    }
    // Perpendicular detours before backtracking: a sideways hop opens
    // a fresh productive path, a backward hop just undoes one and
    // invites ping-pong with the previous router.
    for d in [Dir::East, Dir::West, Dir::South, Dir::North] {
        if prefs[..n].contains(&d)
            || Some(d) == px.map(Dir::opposite)
            || Some(d) == py.map(Dir::opposite)
        {
            continue;
        }
        prefs[n] = d;
        n += 1;
    }
    for d in [Dir::East, Dir::West, Dir::South, Dir::North] {
        if !prefs[..n].contains(&d) {
            prefs[n] = d;
            n += 1;
        }
    }
    for d in prefs.into_iter().take(n) {
        let Some(nc) = at.step(d) else { continue };
        if env.idx(nc).is_none() {
            continue;
        }
        if env.plan.link_dead(now, at, d) || env.plan.router_dead(now, nc) {
            continue;
        }
        return Port::from_dir(d);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_faults::{Fault, FaultKind};

    #[test]
    fn single_packet_delivery() {
        let mut net = NocNetwork::new(4, 4);
        let worm = net
            .inject(Coord::new(0, 0), Coord::new(3, 2), vec![1, 2, 3])
            .unwrap();
        net.run_until_drained(1_000).unwrap();
        let delivered = net.take_delivered();
        assert_eq!(delivered.len(), 1);
        let (p, latency) = &delivered[0];
        assert_eq!(p.worm, worm);
        assert_eq!(p.dest, Coord::new(3, 2));
        assert_eq!(p.payload, vec![1, 2, 3]);
        // 5 hops Manhattan + per-hop pipeline: latency strictly > distance.
        assert!(*latency >= 5, "latency {latency}");
    }

    #[test]
    fn self_delivery_works() {
        let mut net = NocNetwork::new(2, 2);
        net.inject(Coord::new(1, 1), Coord::new(1, 1), vec![42])
            .unwrap();
        net.run_until_drained(100).unwrap();
        let d = net.take_delivered();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].0.payload, vec![42]);
    }

    #[test]
    fn payload_order_preserved() {
        let mut net = NocNetwork::new(8, 1);
        let payload: Vec<u64> = (0..32).collect();
        net.inject(Coord::new(0, 0), Coord::new(7, 0), payload.clone())
            .unwrap();
        net.run_until_drained(10_000).unwrap();
        assert_eq!(net.take_delivered()[0].0.payload, payload);
    }

    #[test]
    fn many_packets_all_arrive() {
        let mut net = NocNetwork::new(4, 4);
        let mut expected = HashMap::new();
        for y in 0..4u16 {
            for x in 0..4u16 {
                let worm = net
                    .inject(
                        Coord::new(x, y),
                        Coord::new(3 - x, 3 - y),
                        vec![u64::from(x) * 10 + u64::from(y)],
                    )
                    .unwrap();
                expected.insert(
                    worm,
                    (Coord::new(3 - x, 3 - y), u64::from(x) * 10 + u64::from(y)),
                );
            }
        }
        net.run_until_drained(100_000).unwrap();
        let delivered = net.take_delivered();
        assert_eq!(delivered.len(), 16);
        for (p, _) in delivered {
            let (dest, data) = expected[&p.worm];
            assert_eq!(p.dest, dest);
            assert_eq!(p.payload, vec![data]);
        }
    }

    #[test]
    fn contention_serialises_but_delivers() {
        // Two long worms fighting for the same column.
        let mut net = NocNetwork::new(3, 3);
        let a = net
            .inject(Coord::new(0, 0), Coord::new(2, 2), (0..16).collect())
            .unwrap();
        let b = net
            .inject(Coord::new(0, 1), Coord::new(2, 2), (100..116).collect())
            .unwrap();
        net.run_until_drained(100_000).unwrap();
        assert_eq!(net.stats().worms_delivered, 2);
        assert!(net.worm_latency(a).is_some());
        assert!(net.worm_latency(b).is_some());
    }

    #[test]
    fn farther_destinations_take_longer() {
        let mut lat = Vec::new();
        for d in [1u16, 3, 6] {
            let mut net = NocNetwork::new(8, 1);
            let w = net
                .inject(Coord::new(0, 0), Coord::new(d, 0), vec![1])
                .unwrap();
            net.run_until_drained(10_000).unwrap();
            lat.push(net.worm_latency(w).unwrap());
        }
        assert!(lat[0] < lat[1] && lat[1] < lat[2], "{lat:?}");
    }

    #[test]
    fn out_of_grid_rejected() {
        let mut net = NocNetwork::new(2, 2);
        assert!(net
            .inject(Coord::new(5, 0), Coord::new(0, 0), vec![])
            .is_err());
        assert!(net
            .inject(Coord::new(0, 0), Coord::new(0, 5), vec![])
            .is_err());
    }

    #[test]
    fn stats_accumulate() {
        let mut net = NocNetwork::new(4, 1);
        net.inject(Coord::new(0, 0), Coord::new(3, 0), vec![7, 8])
            .unwrap();
        net.run_until_drained(1_000).unwrap();
        let s = net.stats();
        assert_eq!(s.worms_delivered, 1);
        assert_eq!(s.flits_delivered, 3);
        // 3 flits x 3 links.
        assert_eq!(s.link_crossings, 9);
    }

    // ------------------------------------------------------------------
    // Fault-tolerant mode.

    #[test]
    fn empty_plan_changes_nothing_observable() {
        let run = |ft: bool| {
            let mut net = NocNetwork::new(4, 4);
            if ft {
                net.attach_fault_plan(FaultPlan::none());
            }
            net.inject(Coord::new(0, 0), Coord::new(3, 3), vec![1, 2, 3])
                .unwrap();
            net.run_until_drained(10_000).unwrap();
            (net.take_delivered(), net.stats().link_crossings)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn corruption_is_detected_and_retransmitted() {
        let mut net = NocNetwork::with_telemetry(4, 1, TelemetryHandle::active());
        // Corrupt the first crossing of the 0→1 link only: the first
        // attempt fails its checksum, the retry sails through.
        net.attach_fault_plan(FaultPlan::from_faults([Fault::transient(
            FaultKind::LinkCorrupt {
                at: Coord::new(0, 0),
                dir: Dir::East,
                mask: 0xDEAD_BEEF,
            },
            0,
            8,
        )]));
        net.inject(Coord::new(0, 0), Coord::new(3, 0), vec![7, 8])
            .unwrap();
        net.run_until_drained(100_000).unwrap();
        let d = net.take_delivered();
        assert_eq!(d.len(), 1, "retransmission must repair the worm");
        assert_eq!(d[0].0.payload, vec![7, 8], "payload verified end to end");
        assert!(net.stats().checksum_failures >= 1);
        assert!(net.telemetry().snapshot().counter("noc.retransmissions") >= 1);
        assert!(net.take_failed().is_empty());
    }

    #[test]
    fn transient_link_outage_heals_by_waiting_or_retry() {
        let mut net = NocNetwork::new(4, 1);
        net.attach_fault_plan(FaultPlan::from_faults([Fault::transient(
            FaultKind::LinkDown {
                at: Coord::new(1, 0),
                dir: Dir::East,
            },
            0,
            40,
        )]));
        net.inject(Coord::new(0, 0), Coord::new(3, 0), vec![1, 2])
            .unwrap();
        net.run_until_drained(100_000).unwrap();
        assert_eq!(net.take_delivered().len(), 1);
        assert!(net.take_failed().is_empty());
    }

    #[test]
    fn adaptive_routing_detours_around_a_dead_link() {
        let mut net = NocNetwork::with_telemetry(3, 2, TelemetryHandle::active());
        // The only XY path 0,0 → 2,0 uses East links on row 0; kill the
        // middle one permanently. The worm must detour through row 1.
        net.attach_fault_plan(FaultPlan::from_faults([Fault::permanent(
            FaultKind::LinkDown {
                at: Coord::new(1, 0),
                dir: Dir::East,
            },
            0,
        )]));
        net.inject(Coord::new(0, 0), Coord::new(2, 0), vec![5])
            .unwrap();
        net.run_until_drained(100_000).unwrap();
        let d = net.take_delivered();
        assert_eq!(d.len(), 1, "detour must deliver");
        assert_eq!(d[0].0.payload, vec![5]);
        let snap = net.telemetry().snapshot();
        assert!(
            snap.counter("noc.misroutes") >= 1,
            "the detour is a misroute"
        );
        assert!(net.take_failed().is_empty());
    }

    #[test]
    fn unreachable_destination_fails_typed_not_hung() {
        let mut net = NocNetwork::new(2, 1);
        // Sever the only link into 1,0 permanently.
        net.attach_fault_plan(FaultPlan::from_faults([Fault::permanent(
            FaultKind::LinkDown {
                at: Coord::new(0, 0),
                dir: Dir::East,
            },
            0,
        )]));
        let worm = net
            .inject(Coord::new(0, 0), Coord::new(1, 0), vec![1])
            .unwrap();
        net.run_until_drained(100_000).unwrap();
        assert!(net.take_delivered().is_empty());
        let failed = net.take_failed();
        assert_eq!(failed.len(), 1);
        assert_eq!(
            failed[0].1,
            NocError::Undeliverable {
                worm,
                attempts: MAX_DELIVERY_ATTEMPTS
            }
        );
        assert!(net.is_idle(), "failed worm leaves no residue");
    }

    #[test]
    fn permanently_stalled_router_times_out_typed() {
        let mut net = NocNetwork::new(3, 1);
        // 1,0 never allocates, and on a 1-row mesh there is no detour.
        net.attach_fault_plan(FaultPlan::from_faults([Fault::permanent(
            FaultKind::RouterStall {
                at: Coord::new(1, 0),
            },
            0,
        )]));
        net.inject(Coord::new(0, 0), Coord::new(2, 0), vec![9])
            .unwrap();
        net.run_until_drained(200_000).unwrap();
        assert!(net.take_delivered().is_empty());
        assert_eq!(net.take_failed().len(), 1);
        assert!(net.is_idle());
    }

    #[test]
    fn faulty_runs_replay_bit_identically() {
        let run = || {
            let mut net = NocNetwork::with_telemetry(4, 4, TelemetryHandle::active());
            net.attach_fault_plan(
                vlsi_faults::FaultPlanBuilder::new(77)
                    .grid(4, 4)
                    .horizon(2_000)
                    .link_down_rate(0.1)
                    .link_corrupt_rate(0.1)
                    .router_stall_rate(0.05)
                    .build(),
            );
            for y in 0..4u16 {
                for x in 0..4u16 {
                    net.inject(Coord::new(x, y), Coord::new(3 - x, 3 - y), vec![7])
                        .unwrap();
                }
            }
            net.run_until_drained(500_000).unwrap();
            let delivered: Vec<(WormId, u64)> = net
                .take_delivered()
                .into_iter()
                .map(|(p, l)| (p.worm, l))
                .collect();
            let snapshot = net.telemetry().snapshot().to_json();
            let trace = net.telemetry().trace_chrome_json();
            (
                delivered,
                net.take_failed(),
                net.stats().clone(),
                snapshot,
                trace,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sharded_tick_is_bit_identical_to_serial() {
        use vlsi_par::Pool;
        // A faulty storm crossing every row stripe, replayed at several
        // shard counts: deliveries, failures, stats, and the full
        // telemetry export must match the serial run byte for byte.
        let run = |threads: usize| {
            let mut net = NocNetwork::with_telemetry(8, 8, TelemetryHandle::active());
            if threads > 1 {
                net.set_parallel(Pool::new(threads), 0);
            }
            net.attach_fault_plan(
                vlsi_faults::FaultPlanBuilder::new(91)
                    .grid(8, 8)
                    .horizon(4_000)
                    .link_down_rate(0.05)
                    .link_corrupt_rate(0.05)
                    .router_stall_rate(0.02)
                    .build(),
            );
            for y in 0..8u16 {
                for x in 0..8u16 {
                    net.inject(
                        Coord::new(x, y),
                        Coord::new(7 - x, 7 - y),
                        vec![u64::from(y) * 8 + u64::from(x), 13, 99],
                    )
                    .unwrap();
                }
            }
            net.run_until_drained(500_000).unwrap();
            let delivered: Vec<(WormId, u64)> = net
                .take_delivered()
                .into_iter()
                .map(|(p, l)| (p.worm, l))
                .collect();
            let snapshot = net.telemetry().snapshot().to_json();
            let trace = net.telemetry().trace_chrome_json();
            (
                delivered,
                net.take_failed(),
                net.stats().clone(),
                snapshot,
                trace,
            )
        };
        let serial = run(1);
        for threads in [2, 3, 8] {
            let parallel = run(threads);
            assert_eq!(parallel.0, serial.0, "{threads}-thread deliveries");
            assert_eq!(parallel.2, serial.2, "{threads}-thread stats");
            assert_eq!(parallel.3, serial.3, "{threads}-thread telemetry");
            assert_eq!(parallel, serial, "{threads}-thread full state");
        }
    }
}

//! The mesh network: routers wired into the cluster grid.
//!
//! [`NocNetwork`] simulates the whole router fabric cycle by cycle. Each
//! cycle has two phases: **link traversal** (output registers cross to the
//! neighbouring router's input queue, or deliver locally) and **switch
//! allocation** (each router moves at most one flit per input port into an
//! output register, with wormhole holds). Packets are reassembled at the
//! destination's local port.
//!
//! Per-worm injection and delivery timestamps are recorded: configuration
//! latency — how long a scaling worm takes to program its target switch —
//! is the quantity the Ablation C bench sweeps against region size.

use crate::error::NocError;
use crate::flit::{Flit, Packet, WormId};
use crate::router::{Port, Router};
use std::collections::{HashMap, VecDeque};
use vlsi_topology::Coord;

/// Aggregate statistics of one network run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NetworkStats {
    /// Cycles simulated so far.
    pub cycles: u64,
    /// Worms fully delivered.
    pub worms_delivered: u64,
    /// Flits delivered at local ports.
    pub flits_delivered: u64,
    /// Router-to-router link crossings.
    pub link_crossings: u64,
}

#[derive(Clone, Debug)]
struct Reassembly {
    payload: Vec<u64>,
    injected_at: u64,
}

/// The router mesh.
///
/// ```
/// use vlsi_noc::NocNetwork;
/// use vlsi_topology::Coord;
///
/// let mut net = NocNetwork::new(4, 4);
/// let worm = net.inject(Coord::new(0, 0), Coord::new(3, 2), vec![1, 2, 3]).unwrap();
/// net.run_until_drained(10_000).unwrap();
/// let (packet, latency) = net.take_delivered().pop().unwrap();
/// assert_eq!(packet.worm, worm);
/// assert_eq!(packet.payload, vec![1, 2, 3]);
/// assert!(latency >= 5); // at least the Manhattan distance
/// ```
#[derive(Clone, Debug)]
pub struct NocNetwork {
    width: u16,
    height: u16,
    routers: Vec<Router>,
    /// Source queues feeding each router's local input port.
    injection: Vec<VecDeque<Flit>>,
    assembling: HashMap<WormId, Reassembly>,
    delivered: Vec<(Packet, u64)>,
    latencies: HashMap<WormId, u64>,
    next_worm: u64,
    stats: NetworkStats,
}

impl NocNetwork {
    /// A `width × height` mesh with one router per cluster.
    pub fn new(width: u16, height: u16) -> NocNetwork {
        let routers = (0..height)
            .flat_map(|y| (0..width).map(move |x| Router::new(Coord::new(x, y))))
            .collect::<Vec<_>>();
        let n = routers.len();
        NocNetwork {
            width,
            height,
            routers,
            injection: vec![VecDeque::new(); n],
            assembling: HashMap::new(),
            delivered: Vec::new(),
            latencies: HashMap::new(),
            next_worm: 0,
            stats: NetworkStats::default(),
        }
    }

    fn idx(&self, c: Coord) -> Option<usize> {
        (c.x < self.width && c.y < self.height && c.layer == 0)
            .then(|| c.y as usize * self.width as usize + c.x as usize)
    }

    /// Mesh width.
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Mesh height.
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Injects a packet at `src` toward `dest`. The flits wait in the
    /// source queue and enter the router as its local port frees.
    pub fn inject(
        &mut self,
        src: Coord,
        dest: Coord,
        payload: Vec<u64>,
    ) -> Result<WormId, NocError> {
        let si = self.idx(src).ok_or(NocError::OutOfGrid(src))?;
        self.idx(dest).ok_or(NocError::OutOfGrid(dest))?;
        let worm = WormId(self.next_worm);
        self.next_worm += 1;
        let packet = Packet {
            worm,
            dest,
            payload,
        };
        self.assembling.insert(
            worm,
            Reassembly {
                payload: Vec::new(),
                injected_at: self.stats.cycles,
            },
        );
        for f in packet.flits() {
            self.injection[si].push_back(f);
        }
        Ok(worm)
    }

    /// Advances the network one cycle.
    pub fn tick(&mut self) {
        self.stats.cycles += 1;
        // Phase 1: link traversal (fixed router order; each output register
        // moves at most one flit).
        for ri in 0..self.routers.len() {
            let coord = self.routers[ri].coord;
            for port in Port::ALL {
                let Some(flit) = self.routers[ri].outputs[port.index()].reg else {
                    continue;
                };
                match port {
                    Port::Local => {
                        // Deliver: local sinks always accept.
                        self.routers[ri].outputs[port.index()].reg = None;
                        if flit.is_tail() {
                            self.routers[ri].outputs[port.index()].held_by = None;
                        }
                        self.deliver(coord, flit);
                    }
                    _ => {
                        let d = port.dir().expect("non-local port has a direction");
                        let Some(nc) = coord.step(d) else {
                            // Edge of the mesh: XY routing never does this.
                            debug_assert!(false, "flit routed off the mesh");
                            self.routers[ri].outputs[port.index()].reg = None;
                            continue;
                        };
                        let Some(ni) = self.idx(nc) else {
                            debug_assert!(false, "flit routed off the mesh");
                            self.routers[ri].outputs[port.index()].reg = None;
                            continue;
                        };
                        let in_port = Port::from_dir(d.opposite()).expect("planar dir");
                        if self.routers[ni].can_accept(in_port) {
                            self.routers[ni].accept(in_port, flit);
                            self.routers[ri].outputs[port.index()].reg = None;
                            if flit.is_tail() {
                                self.routers[ri].outputs[port.index()].held_by = None;
                            }
                            self.stats.link_crossings += 1;
                        }
                    }
                }
            }
        }
        // Phase 2: feed injection queues into local input ports.
        for ri in 0..self.routers.len() {
            while !self.injection[ri].is_empty() && self.routers[ri].can_accept(Port::Local) {
                let f = self.injection[ri].pop_front().unwrap();
                self.routers[ri].accept(Port::Local, f);
            }
        }
        // Phase 3: allocation (one flit per input port).
        for ri in 0..self.routers.len() {
            for port in Port::ALL {
                let _ = self.routers[ri].allocate(port);
            }
        }
    }

    fn deliver(&mut self, _at: Coord, flit: Flit) {
        self.stats.flits_delivered += 1;
        let worm = flit.worm();
        let done = flit.is_tail();
        if let Some(r) = self.assembling.get_mut(&worm) {
            match flit {
                Flit::Body { data, .. } | Flit::Tail { data, .. } => r.payload.push(data),
                Flit::Head { .. } => {}
            }
            if done {
                let r = self.assembling.remove(&worm).expect("present");
                let latency = self.stats.cycles - r.injected_at;
                self.latencies.insert(worm, latency);
                self.delivered.push((
                    Packet {
                        worm,
                        dest: _at,
                        payload: r.payload,
                    },
                    latency,
                ));
                self.stats.worms_delivered += 1;
            }
        }
    }

    /// Whether any flit is in flight anywhere.
    pub fn is_idle(&self) -> bool {
        self.injection.iter().all(|q| q.is_empty()) && self.routers.iter().all(|r| r.is_idle())
    }

    /// Ticks until idle, up to `max_cycles`.
    pub fn run_until_drained(&mut self, max_cycles: u64) -> Result<(), NocError> {
        for _ in 0..max_cycles {
            if self.is_idle() {
                return Ok(());
            }
            self.tick();
        }
        if self.is_idle() {
            Ok(())
        } else {
            Err(NocError::Timeout {
                cycles: self.stats.cycles,
            })
        }
    }

    /// Takes all packets delivered so far (with their latency in cycles).
    pub fn take_delivered(&mut self) -> Vec<(Packet, u64)> {
        std::mem::take(&mut self.delivered)
    }

    /// The delivery latency of a worm, if it has arrived.
    pub fn worm_latency(&self, worm: WormId) -> Option<u64> {
        self.latencies.get(&worm).copied()
    }

    /// Current statistics.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_packet_delivery() {
        let mut net = NocNetwork::new(4, 4);
        let worm = net
            .inject(Coord::new(0, 0), Coord::new(3, 2), vec![1, 2, 3])
            .unwrap();
        net.run_until_drained(1_000).unwrap();
        let delivered = net.take_delivered();
        assert_eq!(delivered.len(), 1);
        let (p, latency) = &delivered[0];
        assert_eq!(p.worm, worm);
        assert_eq!(p.dest, Coord::new(3, 2));
        assert_eq!(p.payload, vec![1, 2, 3]);
        // 5 hops Manhattan + per-hop pipeline: latency strictly > distance.
        assert!(*latency >= 5, "latency {latency}");
    }

    #[test]
    fn self_delivery_works() {
        let mut net = NocNetwork::new(2, 2);
        net.inject(Coord::new(1, 1), Coord::new(1, 1), vec![42])
            .unwrap();
        net.run_until_drained(100).unwrap();
        let d = net.take_delivered();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].0.payload, vec![42]);
    }

    #[test]
    fn payload_order_preserved() {
        let mut net = NocNetwork::new(8, 1);
        let payload: Vec<u64> = (0..32).collect();
        net.inject(Coord::new(0, 0), Coord::new(7, 0), payload.clone())
            .unwrap();
        net.run_until_drained(10_000).unwrap();
        assert_eq!(net.take_delivered()[0].0.payload, payload);
    }

    #[test]
    fn many_packets_all_arrive() {
        let mut net = NocNetwork::new(4, 4);
        let mut expected = HashMap::new();
        for y in 0..4u16 {
            for x in 0..4u16 {
                let worm = net
                    .inject(
                        Coord::new(x, y),
                        Coord::new(3 - x, 3 - y),
                        vec![u64::from(x) * 10 + u64::from(y)],
                    )
                    .unwrap();
                expected.insert(
                    worm,
                    (Coord::new(3 - x, 3 - y), u64::from(x) * 10 + u64::from(y)),
                );
            }
        }
        net.run_until_drained(100_000).unwrap();
        let delivered = net.take_delivered();
        assert_eq!(delivered.len(), 16);
        for (p, _) in delivered {
            let (dest, data) = expected[&p.worm];
            assert_eq!(p.dest, dest);
            assert_eq!(p.payload, vec![data]);
        }
    }

    #[test]
    fn contention_serialises_but_delivers() {
        // Two long worms fighting for the same column.
        let mut net = NocNetwork::new(3, 3);
        let a = net
            .inject(Coord::new(0, 0), Coord::new(2, 2), (0..16).collect())
            .unwrap();
        let b = net
            .inject(Coord::new(0, 1), Coord::new(2, 2), (100..116).collect())
            .unwrap();
        net.run_until_drained(100_000).unwrap();
        assert_eq!(net.stats().worms_delivered, 2);
        assert!(net.worm_latency(a).is_some());
        assert!(net.worm_latency(b).is_some());
    }

    #[test]
    fn farther_destinations_take_longer() {
        let mut lat = Vec::new();
        for d in [1u16, 3, 6] {
            let mut net = NocNetwork::new(8, 1);
            let w = net
                .inject(Coord::new(0, 0), Coord::new(d, 0), vec![1])
                .unwrap();
            net.run_until_drained(10_000).unwrap();
            lat.push(net.worm_latency(w).unwrap());
        }
        assert!(lat[0] < lat[1] && lat[1] < lat[2], "{lat:?}");
    }

    #[test]
    fn out_of_grid_rejected() {
        let mut net = NocNetwork::new(2, 2);
        assert!(net
            .inject(Coord::new(5, 0), Coord::new(0, 0), vec![])
            .is_err());
        assert!(net
            .inject(Coord::new(0, 0), Coord::new(0, 5), vec![])
            .is_err());
    }

    #[test]
    fn stats_accumulate() {
        let mut net = NocNetwork::new(4, 1);
        net.inject(Coord::new(0, 0), Coord::new(3, 0), vec![7, 8])
            .unwrap();
        net.run_until_drained(1_000).unwrap();
        let s = net.stats();
        assert_eq!(s.worms_delivered, 1);
        assert_eq!(s.flits_delivered, 3);
        // 3 flits x 3 links.
        assert_eq!(s.link_crossings, 9);
    }
}

//! The mesh network: routers wired into the cluster grid.
//!
//! [`NocNetwork`] simulates the whole router fabric cycle by cycle. Each
//! cycle has two phases: **link traversal** (output registers cross to the
//! neighbouring router's input queue, or deliver locally) and **switch
//! allocation** (each router moves at most one flit per input port into an
//! output register, with wormhole holds). Packets are reassembled at the
//! destination's local port.
//!
//! Per-worm injection and delivery timestamps are recorded: configuration
//! latency — how long a scaling worm takes to program its target switch —
//! is the quantity the Ablation C bench sweeps against region size.
//!
//! ## Fault tolerance
//!
//! Attaching a [`FaultPlan`] ([`NocNetwork::attach_fault_plan`]) arms the
//! end-to-end reliability layer, modelled on the DNP's error-notification
//! and retransmission path:
//!
//! * every packet carries a sender-side FNV-1a checksum, re-verified at
//!   reassembly — a `LinkCorrupt` flip is always detected;
//! * every worm has a delivery deadline; a missed deadline (flits wedged
//!   behind a down link or stalled router) **purges** the worm's flits
//!   from the fabric and retransmits from the source with capped
//!   exponential backoff;
//! * heads route adaptively around *permanently* dead links and routers
//!   (transient outages are cheaper to wait out in place); because the
//!   detour breaks XY's deadlock freedom, each worm gets a hop budget —
//!   the livelock bound — and a budget trip is handled like a timeout;
//! * a worm that exhausts its retransmission budget is reported as
//!   [`NocError::Undeliverable`] via [`NocNetwork::take_failed`], never
//!   dropped silently.
//!
//! Without a plan attached none of this machinery runs and the network
//! behaves bit-identically to the fault-free simulator.

use crate::error::NocError;
use crate::flit::{Flit, Packet, WormId};
use crate::router::{Port, Router};
use std::collections::{BTreeMap, HashMap, VecDeque};
use vlsi_faults::{payload_checksum, FaultPlan};
use vlsi_telemetry::TelemetryHandle;
use vlsi_topology::{Coord, Dir};

/// Delivery attempts per worm before it is declared undeliverable
/// (initial send plus retransmissions).
pub const MAX_DELIVERY_ATTEMPTS: u32 = 6;
/// First retransmission backoff, in cycles; doubles per attempt.
pub const RETRY_BACKOFF_BASE: u64 = 8;
/// Retransmission backoff cap, in cycles.
pub const RETRY_BACKOFF_CAP: u64 = 512;

/// Aggregate statistics of one network run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NetworkStats {
    /// Cycles simulated so far.
    pub cycles: u64,
    /// Worms fully delivered.
    pub worms_delivered: u64,
    /// Flits delivered at local ports.
    pub flits_delivered: u64,
    /// Router-to-router link crossings.
    pub link_crossings: u64,
    /// Payload words corrupted on a faulty link.
    pub corrupted_crossings: u64,
    /// Reassemblies rejected by the end-to-end checksum.
    pub checksum_failures: u64,
    /// Worms purged after missing a delivery deadline or tripping the
    /// livelock bound.
    pub worm_timeouts: u64,
    /// Worms that exhausted their retransmission budget.
    pub undeliverable: u64,
}

#[derive(Clone, Debug)]
struct Reassembly {
    payload: Vec<u64>,
    injected_at: u64,
}

/// Sender-side state of one in-flight worm (fault-tolerant mode only).
#[derive(Clone, Debug)]
struct PendingWorm {
    src: Coord,
    dest: Coord,
    payload: Vec<u64>,
    checksum: u64,
    /// Attempts started so far (1 after the initial send).
    attempts: u32,
    /// First injection cycle — latency is measured end to end, across
    /// retransmissions.
    injected_at: u64,
    /// Cycle by which the current attempt must deliver.
    deadline: u64,
    /// Link crossings of this worm's head in the current attempt.
    hops: u64,
    /// `Some(cycle)`: purged and waiting out the backoff until `cycle`.
    retry_at: Option<u64>,
}

/// The router mesh.
///
/// ```
/// use vlsi_noc::NocNetwork;
/// use vlsi_topology::Coord;
///
/// let mut net = NocNetwork::new(4, 4);
/// let worm = net.inject(Coord::new(0, 0), Coord::new(3, 2), vec![1, 2, 3]).unwrap();
/// net.run_until_drained(10_000).unwrap();
/// let (packet, latency) = net.take_delivered().pop().unwrap();
/// assert_eq!(packet.worm, worm);
/// assert_eq!(packet.payload, vec![1, 2, 3]);
/// assert!(latency >= 5); // at least the Manhattan distance
/// ```
#[derive(Clone, Debug)]
pub struct NocNetwork {
    width: u16,
    height: u16,
    routers: Vec<Router>,
    /// Source queues feeding each router's local input port.
    injection: Vec<VecDeque<Flit>>,
    assembling: HashMap<WormId, Reassembly>,
    delivered: Vec<(Packet, u64)>,
    latencies: HashMap<WormId, u64>,
    next_worm: u64,
    stats: NetworkStats,
    /// Fault schedule; empty and inert until a plan is attached.
    plan: FaultPlan,
    /// Whether the fault-tolerance layer is armed.
    ft: bool,
    /// Sender-side tracking of undelivered worms, in worm order so
    /// timeout/retry processing is deterministic.
    pending: BTreeMap<WormId, PendingWorm>,
    /// Worms that exhausted their retransmission budget.
    failed: Vec<(WormId, NocError)>,
    /// Flits resident anywhere in the fabric (source queues, input
    /// queues, output registers), maintained incrementally so the
    /// steady-state tick and [`Self::is_idle`] never rescan the mesh.
    resident: usize,
    /// Flits waiting in the source queues — the `noc.queue_depth`
    /// sample, maintained incrementally instead of summed per cycle.
    queued: usize,
    /// Per-router flit load (that router's source queue, input queues,
    /// and output registers). A zero-load router is a no-op in every
    /// per-router phase, so [`Self::tick`] skips it — on a large mesh
    /// with a handful of worms in flight, almost all of them.
    load: Vec<u32>,
    /// Scratch for the per-cycle loaded-router list (reused every tick so
    /// the steady path allocates nothing).
    active_scratch: Vec<u32>,
    /// Scratch for routers phase 1 wakes for phase 3.
    woken_scratch: Vec<u32>,
    /// Scratch for phase 0's due-retry collection (reused every tick so
    /// the steady path allocates nothing).
    due_scratch: Vec<WormId>,
    /// Scratch for phase 4's expired-worm collection.
    expired_scratch: Vec<WormId>,
    /// Observability sink; the default handle is a no-op.
    telemetry: TelemetryHandle,
}

impl NocNetwork {
    /// A `width × height` mesh with one router per cluster (telemetry
    /// disabled).
    pub fn new(width: u16, height: u16) -> NocNetwork {
        NocNetwork::with_telemetry(width, height, TelemetryHandle::disabled())
    }

    /// A `width × height` mesh recording into `telemetry`:
    /// `noc.*` counters (link crossings, retransmissions, misroutes,
    /// per-link utilization lanes), the `noc.queue_depth` and
    /// `noc.latency` histograms, and per-worm trace spans on the `noc`
    /// track, all stamped with the network's own cycle counter.
    pub fn with_telemetry(width: u16, height: u16, telemetry: TelemetryHandle) -> NocNetwork {
        let routers = (0..height)
            .flat_map(|y| (0..width).map(move |x| Router::new(Coord::new(x, y))))
            .collect::<Vec<_>>();
        let n = routers.len();
        NocNetwork {
            width,
            height,
            routers,
            injection: vec![VecDeque::new(); n],
            assembling: HashMap::new(),
            delivered: Vec::new(),
            latencies: HashMap::new(),
            next_worm: 0,
            stats: NetworkStats::default(),
            plan: FaultPlan::none(),
            ft: false,
            pending: BTreeMap::new(),
            failed: Vec::new(),
            resident: 0,
            queued: 0,
            load: vec![0; n],
            active_scratch: Vec::new(),
            woken_scratch: Vec::new(),
            due_scratch: Vec::new(),
            expired_scratch: Vec::new(),
            telemetry,
        }
    }

    /// The telemetry handle this network records into.
    pub fn telemetry(&self) -> &TelemetryHandle {
        &self.telemetry
    }

    fn idx(&self, c: Coord) -> Option<usize> {
        (c.x < self.width && c.y < self.height && c.layer == 0)
            .then(|| c.y as usize * self.width as usize + c.x as usize)
    }

    /// Mesh width.
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Mesh height.
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Arms the fault-tolerance layer with a fault schedule (times are
    /// interpreted as network cycles). Attach before injecting: worms
    /// already in flight keep their fault-free bookkeeping. Attaching
    /// even an empty plan enables checksums, timeouts, and
    /// retransmission.
    pub fn attach_fault_plan(&mut self, plan: FaultPlan) {
        self.plan = plan;
        self.ft = true;
    }

    /// The attached fault schedule, if the tolerance layer is armed.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.ft.then_some(&self.plan)
    }

    /// Worms declared undeliverable so far (clears the list). Each entry
    /// is a typed [`NocError::Undeliverable`] — the graceful-degradation
    /// signal callers react to.
    pub fn take_failed(&mut self) -> Vec<(WormId, NocError)> {
        std::mem::take(&mut self.failed)
    }

    /// Worms injected but neither delivered nor declared undeliverable.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Per-attempt delivery budget: generous slack over the contention-
    /// free latency so congestion alone rarely trips it.
    fn delivery_budget(&self, src: Coord, dest: Coord, flits: usize) -> u64 {
        let dist = u64::from(src.x.abs_diff(dest.x)) + u64::from(src.y.abs_diff(dest.y));
        16 * (dist + flits as u64) + 256
    }

    /// Livelock bound: adaptive detours may wander, but never farther
    /// than a few mesh perimeters.
    fn hop_budget(&self) -> u64 {
        4 * (u64::from(self.width) + u64::from(self.height)) + 64
    }

    /// Injects a packet at `src` toward `dest`. The flits wait in the
    /// source queue and enter the router as its local port frees.
    pub fn inject(
        &mut self,
        src: Coord,
        dest: Coord,
        payload: Vec<u64>,
    ) -> Result<WormId, NocError> {
        let si = self.idx(src).ok_or(NocError::OutOfGrid(src))?;
        self.idx(dest).ok_or(NocError::OutOfGrid(dest))?;
        let worm = WormId(self.next_worm);
        self.next_worm += 1;
        let packet = Packet {
            worm,
            dest,
            payload,
        };
        self.assembling.insert(
            worm,
            Reassembly {
                payload: Vec::new(),
                injected_at: self.stats.cycles,
            },
        );
        if self.ft {
            let deadline = self.stats.cycles + self.delivery_budget(src, dest, packet.flit_count());
            self.pending.insert(
                worm,
                PendingWorm {
                    src,
                    dest,
                    payload: packet.payload.clone(),
                    checksum: payload_checksum(&packet.payload),
                    attempts: 1,
                    injected_at: self.stats.cycles,
                    deadline,
                    hops: 0,
                    retry_at: None,
                },
            );
        }
        for f in packet.flits() {
            self.injection[si].push_back(f);
            self.resident += 1;
            self.queued += 1;
            self.load[si] += 1;
        }
        self.telemetry
            .span_begin("noc", "worm", worm.0, self.stats.cycles);
        Ok(worm)
    }

    /// Advances the network one cycle.
    ///
    /// The steady path is allocation-free: the due/expired collections of
    /// phases 0/4 reuse persistent scratch buffers, the queue-depth
    /// sample reads an incrementally-maintained counter instead of
    /// summing every source queue, and the per-router phases are skipped
    /// outright when no flit is resident anywhere (only the cycle
    /// counter and the fault-timeout machinery can matter then).
    pub fn tick(&mut self) {
        self.stats.cycles += 1;
        let now = self.stats.cycles;
        if self.telemetry.is_enabled() {
            // Aggregate occupancy of the source queues this cycle — the
            // backpressure signal congestion experiments sweep.
            self.telemetry.record("noc.queue_depth", self.queued as u64);
        }
        // Phase 0 (fault-tolerant mode): retransmit purged worms whose
        // backoff has elapsed, in worm order.
        if self.ft && !self.pending.is_empty() {
            let mut due = std::mem::take(&mut self.due_scratch);
            due.clear();
            due.extend(
                self.pending
                    .iter()
                    .filter(|(_, p)| p.retry_at.is_some_and(|at| at <= now))
                    .map(|(&w, _)| w),
            );
            for &worm in &due {
                self.retransmit(worm);
            }
            self.due_scratch = due;
        }
        if self.resident > 0 {
            self.move_flits(now);
        }
        // Phase 4 (fault-tolerant mode): enforce deadlines and the
        // livelock bound.
        if self.ft && !self.pending.is_empty() {
            let hop_budget = self.hop_budget();
            let mut expired = std::mem::take(&mut self.expired_scratch);
            expired.clear();
            expired.extend(
                self.pending
                    .iter()
                    .filter(|(_, p)| {
                        p.retry_at.is_none() && (p.deadline <= now || p.hops > hop_budget)
                    })
                    .map(|(&w, _)| w),
            );
            for &worm in &expired {
                self.stats.worm_timeouts += 1;
                self.purge_and_backoff(worm);
            }
            self.expired_scratch = expired;
        }
    }

    /// Phases 1–3 of [`Self::tick`]: link traversal, injection, and
    /// allocation. Only called while at least one flit is resident.
    ///
    /// Each phase visits only the *loaded* routers, in ascending index
    /// order — observably identical to scanning the whole mesh, because a
    /// zero-load router is a no-op in every phase. The list is built once
    /// per cycle: phase 1 moves flits out of output registers only (which
    /// fill in phase 3), and phase 2 drains source queues only (which
    /// fill outside the tick), so the cycle-start snapshot covers both.
    /// Phase 1 can *wake* a previously-empty neighbour by moving a flit
    /// into its input queue; those routers are collected and merged (in
    /// order) for phase 3, which is where input queues are read.
    fn move_flits(&mut self, now: u64) {
        let mut active = std::mem::take(&mut self.active_scratch);
        active.clear();
        active.extend((0..self.routers.len() as u32).filter(|&ri| self.load[ri as usize] > 0));
        let mut woken = std::mem::take(&mut self.woken_scratch);
        woken.clear();
        // Phase 1: link traversal (fixed router order; each output register
        // moves at most one flit).
        for &ri32 in &active {
            let ri = ri32 as usize;
            let coord = self.routers[ri].coord;
            for port in Port::ALL {
                let Some(mut flit) = self.routers[ri].outputs[port.index()].reg else {
                    continue;
                };
                match port {
                    Port::Local => {
                        // Deliver: local sinks always accept.
                        self.routers[ri].outputs[port.index()].reg = None;
                        if flit.is_tail() {
                            self.routers[ri].outputs[port.index()].held_by = None;
                        }
                        self.load[ri] -= 1;
                        self.deliver(coord, flit);
                    }
                    _ => {
                        let Some(d) = port.dir() else { continue };
                        if self.ft && self.plan.link_blocked(now, coord, d) {
                            // Link down: the flit waits in the register.
                            continue;
                        }
                        let Some(nc) = coord.step(d) else {
                            // Edge of the mesh: XY routing never does this.
                            debug_assert!(false, "flit routed off the mesh");
                            self.routers[ri].outputs[port.index()].reg = None;
                            self.resident = self.resident.saturating_sub(1);
                            self.load[ri] = self.load[ri].saturating_sub(1);
                            continue;
                        };
                        let Some(ni) = self.idx(nc) else {
                            debug_assert!(false, "flit routed off the mesh");
                            self.routers[ri].outputs[port.index()].reg = None;
                            self.resident = self.resident.saturating_sub(1);
                            self.load[ri] = self.load[ri].saturating_sub(1);
                            continue;
                        };
                        let Some(in_port) = Port::from_dir(d.opposite()) else {
                            continue;
                        };
                        if self.ft {
                            if let Some(mask) = self.plan.corruption(now, coord, d) {
                                // Faulty link: payload words flip in transit.
                                match &mut flit {
                                    Flit::Body { data, .. } | Flit::Tail { data, .. } => {
                                        *data ^= mask;
                                        self.stats.corrupted_crossings += 1;
                                    }
                                    Flit::Head { .. } => {}
                                }
                            }
                        }
                        if self.routers[ni].accept(in_port, flit).is_ok() {
                            self.routers[ri].outputs[port.index()].reg = None;
                            if flit.is_tail() {
                                self.routers[ri].outputs[port.index()].held_by = None;
                            }
                            self.load[ri] -= 1;
                            if self.load[ni] == 0 {
                                woken.push(ni as u32);
                            }
                            self.load[ni] += 1;
                            self.stats.link_crossings += 1;
                            self.telemetry.count("noc.link_crossings", 1);
                            // One utilization lane per directed link,
                            // keyed router-major: router*5 + output port.
                            self.telemetry.count_at(
                                "noc.link_util",
                                ri as u64 * 5 + port.index() as u64,
                                1,
                            );
                            if self.ft && matches!(flit, Flit::Head { .. }) {
                                if let Some(p) = self.pending.get_mut(&flit.worm()) {
                                    p.hops += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
        // Phase 2: feed injection queues into local input ports.
        for &ri32 in &active {
            let ri = ri32 as usize;
            while let Some(&f) = self.injection[ri].front() {
                if self.routers[ri].accept(Port::Local, f).is_err() {
                    break; // backpressure: the flit stays in the source queue
                }
                self.injection[ri].pop_front();
                self.queued -= 1;
            }
        }
        // Phase 3: allocation (one flit per input port), over the
        // cycle-start snapshot merged with the routers phase 1 woke —
        // still ascending, still each router at most once (a woken router
        // had zero load and so is never also in the snapshot).
        woken.sort_unstable();
        let mut wi = 0;
        let mut ai = 0;
        loop {
            let ri = match (active.get(ai), woken.get(wi)) {
                (Some(&a), Some(&w)) if a < w => {
                    ai += 1;
                    a as usize
                }
                (Some(_), Some(&w)) => {
                    wi += 1;
                    w as usize
                }
                (Some(&a), None) => {
                    ai += 1;
                    a as usize
                }
                (None, Some(&w)) => {
                    wi += 1;
                    w as usize
                }
                (None, None) => break,
            };
            if self.load[ri] == 0 {
                continue;
            }
            let coord = self.routers[ri].coord;
            if self.ft && self.plan.router_stalled(now, coord) {
                continue; // stalled router: queues do not drain this cycle
            }
            for port in Port::ALL {
                if self.ft {
                    self.allocate_adaptive(ri, port);
                } else {
                    let _ = self.routers[ri].allocate(port);
                }
            }
        }
        self.active_scratch = active;
        self.woken_scratch = woken;
    }

    /// Allocation with adaptive head steering: heads detour around
    /// permanently dead links/routers; body and tail flits follow their
    /// binding unchanged.
    fn allocate_adaptive(&mut self, ri: usize, in_port: Port) {
        let Some(&flit) = self.routers[ri].inputs[in_port.index()].front() else {
            return;
        };
        let coord = self.routers[ri].coord;
        let out = match flit {
            Flit::Head { dest, .. } => {
                let xy = self.routers[ri].route(dest);
                let Some(chosen) = self.adaptive_route(coord, dest) else {
                    return; // nowhere to go: wait for the timeout to purge
                };
                if chosen != xy {
                    self.telemetry.count("noc.misroutes", 1);
                }
                chosen
            }
            Flit::Body { .. } | Flit::Tail { .. } => {
                let Some(bound) = self.routers[ri].bindings[in_port.index()] else {
                    return;
                };
                bound
            }
        };
        let _ = self.routers[ri].allocate_toward(in_port, out);
    }

    /// The output port a head for `dest` should take from `at`, avoiding
    /// permanently dead links and routers. Preference order is fixed —
    /// productive X, productive Y, then the remaining planar directions —
    /// so routing stays deterministic.
    fn adaptive_route(&self, at: Coord, dest: Coord) -> Option<Port> {
        if dest.x == at.x && dest.y == at.y {
            return Some(Port::Local);
        }
        let now = self.stats.cycles;
        let px = if dest.x > at.x {
            Some(Dir::East)
        } else if dest.x < at.x {
            Some(Dir::West)
        } else {
            None
        };
        let py = if dest.y > at.y {
            Some(Dir::South)
        } else if dest.y < at.y {
            Some(Dir::North)
        } else {
            None
        };
        // Preference list on the stack — this runs per head flit per
        // cycle, so it must not allocate.
        let mut prefs = [Dir::East; 4];
        let mut n = 0usize;
        if let Some(d) = px {
            prefs[n] = d;
            n += 1;
        }
        if let Some(d) = py {
            prefs[n] = d;
            n += 1;
        }
        // Perpendicular detours before backtracking: a sideways hop opens
        // a fresh productive path, a backward hop just undoes one and
        // invites ping-pong with the previous router.
        for d in [Dir::East, Dir::West, Dir::South, Dir::North] {
            if prefs[..n].contains(&d)
                || Some(d) == px.map(Dir::opposite)
                || Some(d) == py.map(Dir::opposite)
            {
                continue;
            }
            prefs[n] = d;
            n += 1;
        }
        for d in [Dir::East, Dir::West, Dir::South, Dir::North] {
            if !prefs[..n].contains(&d) {
                prefs[n] = d;
                n += 1;
            }
        }
        for d in prefs.into_iter().take(n) {
            let Some(nc) = at.step(d) else { continue };
            if self.idx(nc).is_none() {
                continue;
            }
            if self.plan.link_dead(now, at, d) || self.plan.router_dead(now, nc) {
                continue;
            }
            return Port::from_dir(d);
        }
        None
    }

    /// Removes every trace of `worm` from the fabric (source queues,
    /// input queues, bindings, output holds, partial reassembly), then
    /// either schedules a retransmission after an exponential backoff or
    /// declares the worm undeliverable.
    fn purge_and_backoff(&mut self, worm: WormId) {
        for ri in 0..self.routers.len() {
            for in_port in Port::ALL {
                // A binding belongs to `worm` iff its output is held by it.
                if let Some(out) = self.routers[ri].bindings[in_port.index()] {
                    if self.routers[ri].outputs[out.index()].held_by == Some(worm) {
                        self.routers[ri].bindings[in_port.index()] = None;
                    }
                }
                let q = &mut self.routers[ri].inputs[in_port.index()];
                let before = q.len();
                q.retain(|f| f.worm() != worm);
                let removed = before - q.len();
                self.resident -= removed;
                self.load[ri] -= removed as u32;
            }
            for out in Port::ALL {
                let o = &mut self.routers[ri].outputs[out.index()];
                if o.reg.is_some_and(|f| f.worm() == worm) {
                    o.reg = None;
                    self.resident -= 1;
                    self.load[ri] -= 1;
                }
                if o.held_by == Some(worm) {
                    o.held_by = None;
                }
            }
            let before = self.injection[ri].len();
            self.injection[ri].retain(|f| f.worm() != worm);
            let removed = before - self.injection[ri].len();
            self.resident -= removed;
            self.queued -= removed;
            self.load[ri] -= removed as u32;
        }
        if let Some(r) = self.assembling.get_mut(&worm) {
            r.payload.clear();
        }
        let now = self.stats.cycles;
        let Some(p) = self.pending.get_mut(&worm) else {
            return;
        };
        if p.attempts >= MAX_DELIVERY_ATTEMPTS {
            self.pending.remove(&worm);
            self.assembling.remove(&worm);
            self.stats.undeliverable += 1;
            self.failed.push((
                worm,
                NocError::Undeliverable {
                    worm,
                    attempts: MAX_DELIVERY_ATTEMPTS,
                },
            ));
            return;
        }
        let backoff = (RETRY_BACKOFF_BASE << p.attempts.min(16)).min(RETRY_BACKOFF_CAP);
        p.retry_at = Some(now + backoff);
    }

    /// Re-injects a purged worm's flits at its source.
    fn retransmit(&mut self, worm: WormId) {
        let Some(p) = self.pending.get_mut(&worm) else {
            return;
        };
        p.attempts += 1;
        p.hops = 0;
        p.retry_at = None;
        let (src, dest, payload, injected_at) = (p.src, p.dest, p.payload.clone(), p.injected_at);
        let budget = self.delivery_budget(src, dest, payload.len().max(1) + 1);
        if let Some(p) = self.pending.get_mut(&worm) {
            p.deadline = self.stats.cycles + budget;
        }
        self.assembling.insert(
            worm,
            Reassembly {
                payload: Vec::new(),
                injected_at,
            },
        );
        self.telemetry.count("noc.retransmissions", 1);
        self.telemetry
            .instant("noc", "retransmit", worm.0, self.stats.cycles);
        let si = self.idx(src).expect("pending worm has an on-grid source");
        for f in (Packet {
            worm,
            dest,
            payload,
        })
        .flits()
        {
            self.injection[si].push_back(f);
            self.resident += 1;
            self.queued += 1;
            self.load[si] += 1;
        }
    }

    fn deliver(&mut self, _at: Coord, flit: Flit) {
        self.stats.flits_delivered += 1;
        self.resident = self.resident.saturating_sub(1);
        let worm = flit.worm();
        let done = flit.is_tail();
        if let Some(r) = self.assembling.get_mut(&worm) {
            match flit {
                Flit::Body { data, .. } | Flit::Tail { data, .. } => r.payload.push(data),
                Flit::Head { .. } => {}
            }
            if !done {
                return;
            }
            let Some(r) = self.assembling.remove(&worm) else {
                return;
            };
            if self.ft {
                if let Some(p) = self.pending.get(&worm) {
                    if payload_checksum(&r.payload) != p.checksum {
                        // Corrupted in transit: reject the reassembly and
                        // retransmit end to end.
                        self.stats.checksum_failures += 1;
                        self.assembling.insert(
                            worm,
                            Reassembly {
                                payload: Vec::new(),
                                injected_at: r.injected_at,
                            },
                        );
                        self.purge_and_backoff(worm);
                        return;
                    }
                }
                self.pending.remove(&worm);
            }
            let latency = self.stats.cycles - r.injected_at;
            self.telemetry.record("noc.latency", latency);
            self.telemetry
                .span_end("noc", "worm", worm.0, self.stats.cycles);
            self.latencies.insert(worm, latency);
            self.delivered.push((
                Packet {
                    worm,
                    dest: _at,
                    payload: r.payload,
                },
                latency,
            ));
            self.stats.worms_delivered += 1;
        }
    }

    /// Whether any flit is in flight anywhere (in fault-tolerant mode,
    /// also: no worm awaiting retransmission or a verdict).
    pub fn is_idle(&self) -> bool {
        debug_assert_eq!(
            self.resident == 0,
            self.injection.iter().all(|q| q.is_empty()) && self.routers.iter().all(|r| r.is_idle()),
            "resident counter must mirror the mesh scan"
        );
        self.resident == 0 && self.pending.is_empty()
    }

    /// Ticks until idle, up to `max_cycles`. In fault-tolerant mode a
    /// drained network means every worm was delivered-and-verified or
    /// reported undeliverable — inspect [`take_failed`](Self::take_failed).
    pub fn run_until_drained(&mut self, max_cycles: u64) -> Result<(), NocError> {
        for _ in 0..max_cycles {
            if self.is_idle() {
                return Ok(());
            }
            self.tick();
        }
        if self.is_idle() {
            Ok(())
        } else {
            Err(NocError::Timeout {
                cycles: self.stats.cycles,
            })
        }
    }

    /// Takes all packets delivered so far (with their latency in cycles).
    pub fn take_delivered(&mut self) -> Vec<(Packet, u64)> {
        std::mem::take(&mut self.delivered)
    }

    /// The delivery latency of a worm, if it has arrived.
    pub fn worm_latency(&self, worm: WormId) -> Option<u64> {
        self.latencies.get(&worm).copied()
    }

    /// Current statistics.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_faults::{Fault, FaultKind};

    #[test]
    fn single_packet_delivery() {
        let mut net = NocNetwork::new(4, 4);
        let worm = net
            .inject(Coord::new(0, 0), Coord::new(3, 2), vec![1, 2, 3])
            .unwrap();
        net.run_until_drained(1_000).unwrap();
        let delivered = net.take_delivered();
        assert_eq!(delivered.len(), 1);
        let (p, latency) = &delivered[0];
        assert_eq!(p.worm, worm);
        assert_eq!(p.dest, Coord::new(3, 2));
        assert_eq!(p.payload, vec![1, 2, 3]);
        // 5 hops Manhattan + per-hop pipeline: latency strictly > distance.
        assert!(*latency >= 5, "latency {latency}");
    }

    #[test]
    fn self_delivery_works() {
        let mut net = NocNetwork::new(2, 2);
        net.inject(Coord::new(1, 1), Coord::new(1, 1), vec![42])
            .unwrap();
        net.run_until_drained(100).unwrap();
        let d = net.take_delivered();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].0.payload, vec![42]);
    }

    #[test]
    fn payload_order_preserved() {
        let mut net = NocNetwork::new(8, 1);
        let payload: Vec<u64> = (0..32).collect();
        net.inject(Coord::new(0, 0), Coord::new(7, 0), payload.clone())
            .unwrap();
        net.run_until_drained(10_000).unwrap();
        assert_eq!(net.take_delivered()[0].0.payload, payload);
    }

    #[test]
    fn many_packets_all_arrive() {
        let mut net = NocNetwork::new(4, 4);
        let mut expected = HashMap::new();
        for y in 0..4u16 {
            for x in 0..4u16 {
                let worm = net
                    .inject(
                        Coord::new(x, y),
                        Coord::new(3 - x, 3 - y),
                        vec![u64::from(x) * 10 + u64::from(y)],
                    )
                    .unwrap();
                expected.insert(
                    worm,
                    (Coord::new(3 - x, 3 - y), u64::from(x) * 10 + u64::from(y)),
                );
            }
        }
        net.run_until_drained(100_000).unwrap();
        let delivered = net.take_delivered();
        assert_eq!(delivered.len(), 16);
        for (p, _) in delivered {
            let (dest, data) = expected[&p.worm];
            assert_eq!(p.dest, dest);
            assert_eq!(p.payload, vec![data]);
        }
    }

    #[test]
    fn contention_serialises_but_delivers() {
        // Two long worms fighting for the same column.
        let mut net = NocNetwork::new(3, 3);
        let a = net
            .inject(Coord::new(0, 0), Coord::new(2, 2), (0..16).collect())
            .unwrap();
        let b = net
            .inject(Coord::new(0, 1), Coord::new(2, 2), (100..116).collect())
            .unwrap();
        net.run_until_drained(100_000).unwrap();
        assert_eq!(net.stats().worms_delivered, 2);
        assert!(net.worm_latency(a).is_some());
        assert!(net.worm_latency(b).is_some());
    }

    #[test]
    fn farther_destinations_take_longer() {
        let mut lat = Vec::new();
        for d in [1u16, 3, 6] {
            let mut net = NocNetwork::new(8, 1);
            let w = net
                .inject(Coord::new(0, 0), Coord::new(d, 0), vec![1])
                .unwrap();
            net.run_until_drained(10_000).unwrap();
            lat.push(net.worm_latency(w).unwrap());
        }
        assert!(lat[0] < lat[1] && lat[1] < lat[2], "{lat:?}");
    }

    #[test]
    fn out_of_grid_rejected() {
        let mut net = NocNetwork::new(2, 2);
        assert!(net
            .inject(Coord::new(5, 0), Coord::new(0, 0), vec![])
            .is_err());
        assert!(net
            .inject(Coord::new(0, 0), Coord::new(0, 5), vec![])
            .is_err());
    }

    #[test]
    fn stats_accumulate() {
        let mut net = NocNetwork::new(4, 1);
        net.inject(Coord::new(0, 0), Coord::new(3, 0), vec![7, 8])
            .unwrap();
        net.run_until_drained(1_000).unwrap();
        let s = net.stats();
        assert_eq!(s.worms_delivered, 1);
        assert_eq!(s.flits_delivered, 3);
        // 3 flits x 3 links.
        assert_eq!(s.link_crossings, 9);
    }

    // ------------------------------------------------------------------
    // Fault-tolerant mode.

    #[test]
    fn empty_plan_changes_nothing_observable() {
        let run = |ft: bool| {
            let mut net = NocNetwork::new(4, 4);
            if ft {
                net.attach_fault_plan(FaultPlan::none());
            }
            net.inject(Coord::new(0, 0), Coord::new(3, 3), vec![1, 2, 3])
                .unwrap();
            net.run_until_drained(10_000).unwrap();
            (net.take_delivered(), net.stats().link_crossings)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn corruption_is_detected_and_retransmitted() {
        let mut net = NocNetwork::with_telemetry(4, 1, TelemetryHandle::active());
        // Corrupt the first crossing of the 0→1 link only: the first
        // attempt fails its checksum, the retry sails through.
        net.attach_fault_plan(FaultPlan::from_faults([Fault::transient(
            FaultKind::LinkCorrupt {
                at: Coord::new(0, 0),
                dir: Dir::East,
                mask: 0xDEAD_BEEF,
            },
            0,
            8,
        )]));
        net.inject(Coord::new(0, 0), Coord::new(3, 0), vec![7, 8])
            .unwrap();
        net.run_until_drained(100_000).unwrap();
        let d = net.take_delivered();
        assert_eq!(d.len(), 1, "retransmission must repair the worm");
        assert_eq!(d[0].0.payload, vec![7, 8], "payload verified end to end");
        assert!(net.stats().checksum_failures >= 1);
        assert!(net.telemetry().snapshot().counter("noc.retransmissions") >= 1);
        assert!(net.take_failed().is_empty());
    }

    #[test]
    fn transient_link_outage_heals_by_waiting_or_retry() {
        let mut net = NocNetwork::new(4, 1);
        net.attach_fault_plan(FaultPlan::from_faults([Fault::transient(
            FaultKind::LinkDown {
                at: Coord::new(1, 0),
                dir: Dir::East,
            },
            0,
            40,
        )]));
        net.inject(Coord::new(0, 0), Coord::new(3, 0), vec![1, 2])
            .unwrap();
        net.run_until_drained(100_000).unwrap();
        assert_eq!(net.take_delivered().len(), 1);
        assert!(net.take_failed().is_empty());
    }

    #[test]
    fn adaptive_routing_detours_around_a_dead_link() {
        let mut net = NocNetwork::with_telemetry(3, 2, TelemetryHandle::active());
        // The only XY path 0,0 → 2,0 uses East links on row 0; kill the
        // middle one permanently. The worm must detour through row 1.
        net.attach_fault_plan(FaultPlan::from_faults([Fault::permanent(
            FaultKind::LinkDown {
                at: Coord::new(1, 0),
                dir: Dir::East,
            },
            0,
        )]));
        net.inject(Coord::new(0, 0), Coord::new(2, 0), vec![5])
            .unwrap();
        net.run_until_drained(100_000).unwrap();
        let d = net.take_delivered();
        assert_eq!(d.len(), 1, "detour must deliver");
        assert_eq!(d[0].0.payload, vec![5]);
        let snap = net.telemetry().snapshot();
        assert!(
            snap.counter("noc.misroutes") >= 1,
            "the detour is a misroute"
        );
        assert!(net.take_failed().is_empty());
    }

    #[test]
    fn unreachable_destination_fails_typed_not_hung() {
        let mut net = NocNetwork::new(2, 1);
        // Sever the only link into 1,0 permanently.
        net.attach_fault_plan(FaultPlan::from_faults([Fault::permanent(
            FaultKind::LinkDown {
                at: Coord::new(0, 0),
                dir: Dir::East,
            },
            0,
        )]));
        let worm = net
            .inject(Coord::new(0, 0), Coord::new(1, 0), vec![1])
            .unwrap();
        net.run_until_drained(100_000).unwrap();
        assert!(net.take_delivered().is_empty());
        let failed = net.take_failed();
        assert_eq!(failed.len(), 1);
        assert_eq!(
            failed[0].1,
            NocError::Undeliverable {
                worm,
                attempts: MAX_DELIVERY_ATTEMPTS
            }
        );
        assert!(net.is_idle(), "failed worm leaves no residue");
    }

    #[test]
    fn permanently_stalled_router_times_out_typed() {
        let mut net = NocNetwork::new(3, 1);
        // 1,0 never allocates, and on a 1-row mesh there is no detour.
        net.attach_fault_plan(FaultPlan::from_faults([Fault::permanent(
            FaultKind::RouterStall {
                at: Coord::new(1, 0),
            },
            0,
        )]));
        net.inject(Coord::new(0, 0), Coord::new(2, 0), vec![9])
            .unwrap();
        net.run_until_drained(200_000).unwrap();
        assert!(net.take_delivered().is_empty());
        assert_eq!(net.take_failed().len(), 1);
        assert!(net.is_idle());
    }

    #[test]
    fn faulty_runs_replay_bit_identically() {
        let run = || {
            let mut net = NocNetwork::with_telemetry(4, 4, TelemetryHandle::active());
            net.attach_fault_plan(
                vlsi_faults::FaultPlanBuilder::new(77)
                    .grid(4, 4)
                    .horizon(2_000)
                    .link_down_rate(0.1)
                    .link_corrupt_rate(0.1)
                    .router_stall_rate(0.05)
                    .build(),
            );
            for y in 0..4u16 {
                for x in 0..4u16 {
                    net.inject(Coord::new(x, y), Coord::new(3 - x, 3 - y), vec![7])
                        .unwrap();
                }
            }
            net.run_until_drained(500_000).unwrap();
            let delivered: Vec<(WormId, u64)> = net
                .take_delivered()
                .into_iter()
                .map(|(p, l)| (p.worm, l))
                .collect();
            let snapshot = net.telemetry().snapshot().to_json();
            let trace = net.telemetry().trace_chrome_json();
            (
                delivered,
                net.take_failed(),
                net.stats().clone(),
                snapshot,
                trace,
            )
        };
        assert_eq!(run(), run());
    }
}

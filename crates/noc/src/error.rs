//! Errors of the NoC layer.

use crate::flit::WormId;
use std::fmt;
use vlsi_topology::Coord;

/// Errors raised by the router network.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NocError {
    /// A coordinate was outside the router grid.
    OutOfGrid(Coord),
    /// Injection failed because the local input queue is full.
    InjectionStall(Coord),
    /// A packet had no flits.
    EmptyPacket,
    /// An input queue was offered a flit while full (backpressure; the
    /// flit stays with the sender instead of being dropped).
    QueueFull {
        /// The router whose queue refused the flit.
        at: Coord,
    },
    /// The network did not drain within the cycle budget.
    Timeout {
        /// Cycles simulated.
        cycles: u64,
    },
    /// A worm exhausted its retransmission budget: every attempt ended
    /// in a delivery timeout, a livelock-bound trip, or a checksum
    /// failure. The sender must degrade (reroute, relocate, or report).
    Undeliverable {
        /// The worm that could not be delivered.
        worm: WormId,
        /// Delivery attempts made (initial send plus retransmissions).
        attempts: u32,
    },
}

impl fmt::Display for NocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NocError::OutOfGrid(c) => write!(f, "router coordinate {c} outside the grid"),
            NocError::InjectionStall(c) => write!(f, "local queue at {c} full"),
            NocError::EmptyPacket => write!(f, "packet with no flits"),
            NocError::QueueFull { at } => write!(f, "input queue at {at} full (backpressure)"),
            NocError::Timeout { cycles } => {
                write!(f, "network did not drain within {cycles} cycles")
            }
            NocError::Undeliverable { worm, attempts } => {
                write!(f, "{worm} undeliverable after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for NocError {}

//! Errors of the NoC layer.

use std::fmt;
use vlsi_topology::Coord;

/// Errors raised by the router network.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NocError {
    /// A coordinate was outside the router grid.
    OutOfGrid(Coord),
    /// Injection failed because the local input queue is full.
    InjectionStall(Coord),
    /// A packet had no flits.
    EmptyPacket,
    /// The network did not drain within the cycle budget.
    Timeout {
        /// Cycles simulated.
        cycles: u64,
    },
}

impl fmt::Display for NocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NocError::OutOfGrid(c) => write!(f, "router coordinate {c} outside the grid"),
            NocError::InjectionStall(c) => write!(f, "local queue at {c} full"),
            NocError::EmptyPacket => write!(f, "packet with no flits"),
            NocError::Timeout { cycles } => {
                write!(f, "network did not drain within {cycles} cycles")
            }
        }
    }
}

impl std::error::Error for NocError {}

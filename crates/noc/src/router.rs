//! The five-port router of Figure 7(e).
//!
//! Each input port is a bounded queue ("queue"), an allocator binds input
//! ports to output ports per worm ("alloc"), and each output port holds
//! one in-flight flit ("out"). The binding is wormhole flow control: a
//! head flit acquires the output, every following flit of the same worm
//! rides the binding, and the tail flit releases it.

use crate::error::NocError;
use crate::flit::{Flit, WormId};
use std::collections::VecDeque;
use vlsi_topology::{Coord, Dir};

/// Input-queue depth in flits.
pub const INPUT_QUEUE_DEPTH: usize = 4;

/// The five router ports.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Port {
    /// Link toward row - 1.
    North,
    /// Link toward row + 1.
    South,
    /// Link toward column + 1.
    East,
    /// Link toward column - 1.
    West,
    /// The local cluster (injection/delivery).
    Local,
}

impl Port {
    /// All ports.
    pub const ALL: [Port; 5] = [
        Port::North,
        Port::South,
        Port::East,
        Port::West,
        Port::Local,
    ];

    /// Dense index.
    pub fn index(self) -> usize {
        match self {
            Port::North => 0,
            Port::South => 1,
            Port::East => 2,
            Port::West => 3,
            Port::Local => 4,
        }
    }

    /// The link direction a non-local port faces.
    pub fn dir(self) -> Option<Dir> {
        match self {
            Port::North => Some(Dir::North),
            Port::South => Some(Dir::South),
            Port::East => Some(Dir::East),
            Port::West => Some(Dir::West),
            Port::Local => None,
        }
    }

    /// The port facing direction `d`.
    pub fn from_dir(d: Dir) -> Option<Port> {
        match d {
            Dir::North => Some(Port::North),
            Dir::South => Some(Port::South),
            Dir::East => Some(Port::East),
            Dir::West => Some(Port::West),
            Dir::Up | Dir::Down => None,
        }
    }
}

/// Per-output-port state: the registered flit and the worm holding the
/// port.
#[derive(Clone, Debug, Default)]
pub struct OutputPort {
    /// Flit waiting on the output register (moves across the link next
    /// cycle).
    pub reg: Option<Flit>,
    /// Worm currently holding this output (set by head, cleared by tail).
    pub held_by: Option<WormId>,
}

/// One router.
#[derive(Clone, Debug)]
pub struct Router {
    /// This router's coordinate.
    pub coord: Coord,
    /// Input queues, indexed by [`Port::index`].
    pub inputs: [VecDeque<Flit>; 5],
    /// Input→output bindings per input port, established by heads.
    pub bindings: [Option<Port>; 5],
    /// Output ports, indexed by [`Port::index`].
    pub outputs: [OutputPort; 5],
    /// Flits that crossed this router (for hop accounting).
    pub flits_routed: u64,
}

impl Router {
    /// A router at `coord` with empty queues.
    pub fn new(coord: Coord) -> Router {
        Router {
            coord,
            inputs: Default::default(),
            bindings: [None; 5],
            outputs: Default::default(),
            flits_routed: 0,
        }
    }

    /// XY dimension-order routing: the output port a head for `dest`
    /// takes from here.
    pub fn route(&self, dest: Coord) -> Port {
        if dest.x > self.coord.x {
            Port::East
        } else if dest.x < self.coord.x {
            Port::West
        } else if dest.y > self.coord.y {
            Port::South
        } else if dest.y < self.coord.y {
            Port::North
        } else {
            Port::Local
        }
    }

    /// Whether the input queue at `port` can accept a flit.
    pub fn can_accept(&self, port: Port) -> bool {
        self.inputs[port.index()].len() < INPUT_QUEUE_DEPTH
    }

    /// Enqueues a flit at an input port. A full queue refuses the flit
    /// with [`NocError::QueueFull`] — backpressure, never a drop: the
    /// flit stays with the caller (sender register or source queue).
    pub fn accept(&mut self, port: Port, flit: Flit) -> Result<(), NocError> {
        if !self.can_accept(port) {
            return Err(NocError::QueueFull { at: self.coord });
        }
        self.inputs[port.index()].push_back(flit);
        Ok(())
    }

    /// Allocation stage: tries to move the head-of-queue flit of `in_port`
    /// to its output register. Heads take the deterministic XY route;
    /// returns the output port used, if the flit moved.
    pub fn allocate(&mut self, in_port: Port) -> Option<Port> {
        let flit = *self.inputs[in_port.index()].front()?;
        let out_port = match flit {
            Flit::Head { dest, .. } => self.route(dest),
            Flit::Body { .. } | Flit::Tail { .. } => self.bindings[in_port.index()]?,
        };
        self.allocate_toward(in_port, out_port)
    }

    /// Allocation stage with the output port chosen by the caller — the
    /// fault-tolerant network uses this to steer heads *around* dead
    /// links instead of through the XY route. Body/tail flits still
    /// follow their worm's binding; `out_port` must match it.
    pub fn allocate_toward(&mut self, in_port: Port, out_port: Port) -> Option<Port> {
        let flit = *self.inputs[in_port.index()].front()?;
        match flit {
            Flit::Head { .. } => {
                let out = &mut self.outputs[out_port.index()];
                // The head needs the output free of other worms and the
                // register empty.
                if out.held_by.is_some() || out.reg.is_some() {
                    return None;
                }
                out.held_by = Some(flit.worm());
                self.bindings[in_port.index()] = Some(out_port);
            }
            Flit::Body { .. } | Flit::Tail { .. } => {
                // Follow the binding created by this worm's head.
                if self.bindings[in_port.index()] != Some(out_port) {
                    return None;
                }
                let out = &mut self.outputs[out_port.index()];
                if out.held_by != Some(flit.worm()) || out.reg.is_some() {
                    return None;
                }
            }
        }
        let flit = self.inputs[in_port.index()].pop_front()?;
        self.outputs[out_port.index()].reg = Some(flit);
        self.flits_routed += 1;
        if flit.is_tail() {
            // The path releases behind the tail; the output's hold clears
            // when the tail leaves the register (link stage).
            self.bindings[in_port.index()] = None;
        }
        Some(out_port)
    }

    /// Whether the router holds any flit anywhere.
    pub fn is_idle(&self) -> bool {
        self.inputs.iter().all(|q| q.is_empty())
            && self
                .outputs
                .iter()
                .all(|o| o.reg.is_none() && o.held_by.is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn head(worm: u64, dest: Coord) -> Flit {
        Flit::Head {
            worm: WormId(worm),
            dest,
            is_tail: false,
        }
    }

    #[test]
    fn xy_routing_order() {
        let r = Router::new(Coord::new(2, 2));
        assert_eq!(r.route(Coord::new(4, 0)), Port::East);
        assert_eq!(r.route(Coord::new(0, 4)), Port::West); // x first!
        assert_eq!(r.route(Coord::new(2, 4)), Port::South);
        assert_eq!(r.route(Coord::new(2, 0)), Port::North);
        assert_eq!(r.route(Coord::new(2, 2)), Port::Local);
    }

    #[test]
    fn head_acquires_output() {
        let mut r = Router::new(Coord::new(0, 0));
        r.accept(Port::Local, head(1, Coord::new(2, 0))).unwrap();
        assert_eq!(r.allocate(Port::Local), Some(Port::East));
        assert_eq!(r.outputs[Port::East.index()].held_by, Some(WormId(1)));
        assert!(r.outputs[Port::East.index()].reg.is_some());
    }

    #[test]
    fn competing_head_blocked_until_release() {
        let mut r = Router::new(Coord::new(0, 0));
        r.accept(Port::Local, head(1, Coord::new(2, 0))).unwrap();
        r.allocate(Port::Local).unwrap();
        // Another worm wants the same output from the West port.
        r.accept(Port::West, head(2, Coord::new(2, 0))).unwrap();
        assert_eq!(r.allocate(Port::West), None, "output held by worm 1");
    }

    #[test]
    fn body_follows_binding_and_tail_unbinds() {
        let mut r = Router::new(Coord::new(0, 0));
        r.accept(Port::Local, head(1, Coord::new(1, 0))).unwrap();
        r.allocate(Port::Local).unwrap();
        r.outputs[Port::East.index()].reg = None; // link took the head
        r.accept(
            Port::Local,
            Flit::Tail {
                worm: WormId(1),
                data: 9,
            },
        )
        .unwrap();
        assert_eq!(r.allocate(Port::Local), Some(Port::East));
        assert_eq!(r.bindings[Port::Local.index()], None, "tail unbinds input");
    }

    #[test]
    fn queue_depth_enforced() {
        let mut r = Router::new(Coord::new(0, 0));
        for i in 0..INPUT_QUEUE_DEPTH {
            assert!(r.can_accept(Port::North));
            r.accept(
                Port::North,
                Flit::Body {
                    worm: WormId(1),
                    data: i as u64,
                },
            )
            .unwrap();
        }
        assert!(!r.can_accept(Port::North));
    }

    #[test]
    fn full_queue_backpressures_instead_of_dropping() {
        let mut r = Router::new(Coord::new(3, 1));
        for i in 0..INPUT_QUEUE_DEPTH {
            r.accept(
                Port::North,
                Flit::Body {
                    worm: WormId(1),
                    data: i as u64,
                },
            )
            .unwrap();
        }
        // The refused flit is an error, not a silent drop, and the queue
        // keeps exactly what it held before the offer.
        let refused = Flit::Body {
            worm: WormId(2),
            data: 99,
        };
        assert_eq!(
            r.accept(Port::North, refused),
            Err(NocError::QueueFull {
                at: Coord::new(3, 1)
            })
        );
        assert_eq!(r.inputs[Port::North.index()].len(), INPUT_QUEUE_DEPTH);
        assert!(r.inputs[Port::North.index()]
            .iter()
            .all(|f| f.worm() == WormId(1)));
    }

    #[test]
    fn body_without_binding_stalls() {
        let mut r = Router::new(Coord::new(0, 0));
        r.accept(
            Port::North,
            Flit::Body {
                worm: WormId(5),
                data: 1,
            },
        )
        .unwrap();
        assert_eq!(r.allocate(Port::North), None);
    }

    #[test]
    fn allocate_toward_steers_heads_off_the_xy_route() {
        let mut r = Router::new(Coord::new(0, 0));
        r.accept(Port::Local, head(1, Coord::new(2, 0))).unwrap();
        // XY would say East; the network detours the head South.
        assert_eq!(
            r.allocate_toward(Port::Local, Port::South),
            Some(Port::South)
        );
        assert_eq!(r.outputs[Port::South.index()].held_by, Some(WormId(1)));
        assert_eq!(r.bindings[Port::Local.index()], Some(Port::South));
    }

    #[test]
    fn allocate_toward_rejects_mismatched_binding_for_bodies() {
        let mut r = Router::new(Coord::new(0, 0));
        r.accept(Port::Local, head(1, Coord::new(1, 0))).unwrap();
        r.allocate(Port::Local).unwrap();
        r.outputs[Port::East.index()].reg = None;
        r.accept(
            Port::Local,
            Flit::Body {
                worm: WormId(1),
                data: 5,
            },
        )
        .unwrap();
        // Bodies ride the worm's binding; steering them elsewhere fails.
        assert_eq!(r.allocate_toward(Port::Local, Port::South), None);
        assert_eq!(r.allocate_toward(Port::Local, Port::East), Some(Port::East));
    }
}

//! # vlsi-noc — on-chip routers and wormhole routing
//!
//! §3.3–3.4: scaling a processor means *routing*. A supervisor (or
//! preceding processor) sends **configuration worms** through the on-chip
//! router network; as a worm traverses the clusters of the region being
//! gathered, it stores reservation flags and switch-programming data —
//! "wormhole routing is used to store a reservation flag at each
//! programmable switch to avoid a resource (cluster) allocation conflict
//! among the scaling configurations". The same routers carry ordinary
//! inter-processor messages (the Figure 7(d) mailbox writes).
//!
//! The router follows Figure 7(e): five ports (North/East/South/West/
//! Local), each input port a queue feeding an allocator that binds the
//! input to an output for the duration of one worm (head flit acquires,
//! tail flit releases — classic wormhole flow control). Routing is
//! deterministic dimension-order (X then Y), which is deadlock-free on a
//! mesh with sink-always-accepts endpoints.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod flit;
pub mod network;
pub mod router;
pub mod vc;

pub use error::NocError;
pub use flit::{Flit, Packet, WormId};
pub use network::{
    NetworkStats, NocNetwork, MAX_DELIVERY_ATTEMPTS, RETRY_BACKOFF_BASE, RETRY_BACKOFF_CAP,
};
pub use router::{Port, Router, INPUT_QUEUE_DEPTH};
pub use vc::VcNetwork;

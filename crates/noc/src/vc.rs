//! Virtual-channel flow control — the Dally \[18\] extension.
//!
//! The paper cites virtual-channel flow control among its foundations;
//! the base [`NocNetwork`](crate::network::NocNetwork) uses a single
//! channel per link, so one long configuration worm can block an
//! unrelated worm behind it (head-of-line blocking). [`VcNetwork`]
//! multiplexes `V` virtual channels onto every physical link: each worm
//! is assigned a VC at injection (`worm mod V`), buffers and wormhole
//! holds are per-VC, and the physical link arbitrates round-robin among
//! ready VCs, one flit per cycle.
//!
//! With `V = 1` the behaviour (and, in tests, the delivered traffic)
//! matches the base network; with `V ≥ 2` a blocked worm no longer
//! stalls worms on other VCs, which the `ablation_vc` bench quantifies.

use crate::error::NocError;
use crate::flit::{Flit, Packet, WormId};
use crate::router::{Port, INPUT_QUEUE_DEPTH};
use std::collections::{HashMap, VecDeque};
use vlsi_topology::Coord;

#[derive(Clone, Debug, Default)]
struct OutReg {
    reg: Option<Flit>,
    held_by: Option<WormId>,
}

#[derive(Clone, Debug)]
struct VcRouter {
    coord: Coord,
    /// `inputs[port][vc]`.
    inputs: Vec<Vec<VecDeque<Flit>>>,
    /// `bindings[port][vc]` → output port chosen by that worm's head.
    bindings: Vec<Vec<Option<Port>>>,
    /// `outputs[port][vc]`.
    outputs: Vec<Vec<OutReg>>,
}

impl VcRouter {
    fn new(coord: Coord, vcs: usize) -> VcRouter {
        VcRouter {
            coord,
            inputs: vec![vec![VecDeque::new(); vcs]; 5],
            bindings: vec![vec![None; vcs]; 5],
            outputs: vec![vec![OutReg::default(); vcs]; 5],
        }
    }

    fn route(&self, dest: Coord) -> Port {
        if dest.x > self.coord.x {
            Port::East
        } else if dest.x < self.coord.x {
            Port::West
        } else if dest.y > self.coord.y {
            Port::South
        } else if dest.y < self.coord.y {
            Port::North
        } else {
            Port::Local
        }
    }

    fn can_accept(&self, port: Port, vc: usize) -> bool {
        self.inputs[port.index()][vc].len() < INPUT_QUEUE_DEPTH
    }

    /// Moves the head-of-queue flit of `(port, vc)` to its output register
    /// if the per-VC wormhole rules allow.
    fn allocate(&mut self, in_port: Port, vc: usize) -> bool {
        let Some(&flit) = self.inputs[in_port.index()][vc].front() else {
            return false;
        };
        let out_port = match flit {
            Flit::Head { dest, .. } => {
                let p = self.route(dest);
                let out = &mut self.outputs[p.index()][vc];
                if out.held_by.is_some() || out.reg.is_some() {
                    return false;
                }
                out.held_by = Some(flit.worm());
                self.bindings[in_port.index()][vc] = Some(p);
                p
            }
            _ => {
                let Some(p) = self.bindings[in_port.index()][vc] else {
                    return false;
                };
                let out = &mut self.outputs[p.index()][vc];
                if out.held_by != Some(flit.worm()) || out.reg.is_some() {
                    return false;
                }
                p
            }
        };
        let flit = self.inputs[in_port.index()][vc]
            .pop_front()
            .expect("checked");
        self.outputs[out_port.index()][vc].reg = Some(flit);
        if flit.is_tail() {
            self.bindings[in_port.index()][vc] = None;
        }
        true
    }

    fn is_idle(&self) -> bool {
        self.inputs.iter().flatten().all(|q| q.is_empty())
            && self
                .outputs
                .iter()
                .flatten()
                .all(|o| o.reg.is_none() && o.held_by.is_none())
    }
}

/// A mesh with `V` virtual channels per link.
#[derive(Clone, Debug)]
pub struct VcNetwork {
    width: u16,
    height: u16,
    vcs: usize,
    routers: Vec<VcRouter>,
    injection: Vec<VecDeque<Flit>>,
    assembling: HashMap<WormId, (Vec<u64>, u64)>,
    delivered: Vec<(Packet, u64)>,
    latencies: HashMap<WormId, u64>,
    next_worm: u64,
    cycles: u64,
    rr: u64,
    link_crossings: u64,
    flits_delivered: u64,
}

impl VcNetwork {
    /// A `width × height` mesh with `vcs` virtual channels per link.
    pub fn new(width: u16, height: u16, vcs: usize) -> VcNetwork {
        assert!(vcs >= 1);
        let routers: Vec<VcRouter> = (0..height)
            .flat_map(|y| (0..width).map(move |x| Coord::new(x, y)))
            .map(|c| VcRouter::new(c, vcs))
            .collect();
        let n = routers.len();
        VcNetwork {
            width,
            height,
            vcs,
            routers,
            injection: vec![VecDeque::new(); n],
            assembling: HashMap::new(),
            delivered: Vec::new(),
            latencies: HashMap::new(),
            next_worm: 0,
            cycles: 0,
            rr: 0,
            link_crossings: 0,
            flits_delivered: 0,
        }
    }

    fn idx(&self, c: Coord) -> Option<usize> {
        (c.x < self.width && c.y < self.height && c.layer == 0)
            .then(|| c.y as usize * self.width as usize + c.x as usize)
    }

    /// Virtual channels per link.
    pub fn vcs(&self) -> usize {
        self.vcs
    }

    /// Injects a packet; its worm rides VC `worm mod V` end to end.
    pub fn inject(
        &mut self,
        src: Coord,
        dest: Coord,
        payload: Vec<u64>,
    ) -> Result<WormId, NocError> {
        let si = self.idx(src).ok_or(NocError::OutOfGrid(src))?;
        self.idx(dest).ok_or(NocError::OutOfGrid(dest))?;
        let worm = WormId(self.next_worm);
        self.next_worm += 1;
        let packet = Packet {
            worm,
            dest,
            payload,
        };
        self.assembling.insert(worm, (Vec::new(), self.cycles));
        for f in packet.flits() {
            self.injection[si].push_back(f);
        }
        Ok(worm)
    }

    fn vc_of(&self, worm: WormId) -> usize {
        (worm.0 % self.vcs as u64) as usize
    }

    /// Advances one cycle.
    pub fn tick(&mut self) {
        self.cycles += 1;
        self.rr = self.rr.wrapping_add(1);
        // Phase 1: link traversal — one flit per physical port per cycle,
        // round-robin among VCs with a ready register.
        for ri in 0..self.routers.len() {
            let coord = self.routers[ri].coord;
            for port in Port::ALL {
                // Round-robin VC arbitration per link.
                let start = (self.rr as usize) % self.vcs;
                for k in 0..self.vcs {
                    let vc = (start + k) % self.vcs;
                    let Some(flit) = self.routers[ri].outputs[port.index()][vc].reg else {
                        continue;
                    };
                    let moved = match port {
                        Port::Local => {
                            self.routers[ri].outputs[port.index()][vc].reg = None;
                            if flit.is_tail() {
                                self.routers[ri].outputs[port.index()][vc].held_by = None;
                            }
                            self.deliver(coord, flit);
                            true
                        }
                        _ => {
                            let d = port.dir().expect("non-local port");
                            let moved = coord
                                .step(d)
                                .and_then(|nc| self.idx(nc))
                                .map(|ni| {
                                    let in_port = Port::from_dir(d.opposite()).expect("planar");
                                    if self.routers[ni].can_accept(in_port, vc) {
                                        self.routers[ni].inputs[in_port.index()][vc]
                                            .push_back(flit);
                                        true
                                    } else {
                                        false
                                    }
                                })
                                .unwrap_or(false);
                            if moved {
                                self.routers[ri].outputs[port.index()][vc].reg = None;
                                if flit.is_tail() {
                                    self.routers[ri].outputs[port.index()][vc].held_by = None;
                                }
                                self.link_crossings += 1;
                            }
                            moved
                        }
                    };
                    if moved {
                        break; // one flit per physical link per cycle
                    }
                }
            }
        }
        // Phase 2: injection into the local port's per-worm VC.
        for ri in 0..self.routers.len() {
            while let Some(&f) = self.injection[ri].front() {
                let vc = self.vc_of(f.worm());
                if self.routers[ri].can_accept(Port::Local, vc) {
                    self.routers[ri].inputs[Port::Local.index()][vc].push_back(f);
                    self.injection[ri].pop_front();
                } else {
                    break;
                }
            }
        }
        // Phase 3: allocation, one flit per (input port, vc).
        for ri in 0..self.routers.len() {
            for port in Port::ALL {
                for vc in 0..self.vcs {
                    let _ = self.routers[ri].allocate(port, vc);
                }
            }
        }
    }

    fn deliver(&mut self, at: Coord, flit: Flit) {
        self.flits_delivered += 1;
        let worm = flit.worm();
        if let Some((payload, _)) = self.assembling.get_mut(&worm) {
            match flit {
                Flit::Body { data, .. } | Flit::Tail { data, .. } => payload.push(data),
                Flit::Head { .. } => {}
            }
            if flit.is_tail() {
                let (payload, injected) = self.assembling.remove(&worm).expect("present");
                let latency = self.cycles - injected;
                self.latencies.insert(worm, latency);
                self.delivered.push((
                    Packet {
                        worm,
                        dest: at,
                        payload,
                    },
                    latency,
                ));
            }
        }
    }

    /// Whether any flit is in flight.
    pub fn is_idle(&self) -> bool {
        self.injection.iter().all(|q| q.is_empty()) && self.routers.iter().all(|r| r.is_idle())
    }

    /// Ticks until idle, up to `max_cycles`.
    pub fn run_until_drained(&mut self, max_cycles: u64) -> Result<(), NocError> {
        for _ in 0..max_cycles {
            if self.is_idle() {
                return Ok(());
            }
            self.tick();
        }
        if self.is_idle() {
            Ok(())
        } else {
            Err(NocError::Timeout {
                cycles: self.cycles,
            })
        }
    }

    /// Takes delivered packets (with latencies).
    pub fn take_delivered(&mut self) -> Vec<(Packet, u64)> {
        std::mem::take(&mut self.delivered)
    }

    /// Latency of a delivered worm.
    pub fn worm_latency(&self, worm: WormId) -> Option<u64> {
        self.latencies.get(&worm).copied()
    }

    /// Cycles simulated.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Aggregate statistics in the base network's format.
    pub fn stats(&self) -> crate::network::NetworkStats {
        crate::network::NetworkStats {
            cycles: self.cycles,
            worms_delivered: self.latencies.len() as u64,
            flits_delivered: self.flits_delivered,
            link_crossings: self.link_crossings,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_vc_delivers_like_base_network() {
        let mut vc = VcNetwork::new(4, 4, 1);
        let mut base = crate::network::NocNetwork::new(4, 4);
        let pairs = [
            ((0u16, 0u16), (3u16, 3u16), vec![1u64, 2, 3]),
            ((2, 1), (0, 3), vec![9]),
            ((3, 0), (3, 0), vec![]),
        ];
        for ((sx, sy), (dx, dy), payload) in pairs {
            vc.inject(Coord::new(sx, sy), Coord::new(dx, dy), payload.clone())
                .unwrap();
            base.inject(Coord::new(sx, sy), Coord::new(dx, dy), payload)
                .unwrap();
        }
        vc.run_until_drained(100_000).unwrap();
        base.run_until_drained(100_000).unwrap();
        let mut a: Vec<_> = vc
            .take_delivered()
            .into_iter()
            .map(|(p, _)| (p.worm, p.dest, p.payload))
            .collect();
        let mut b: Vec<_> = base
            .take_delivered()
            .into_iter()
            .map(|(p, _)| (p.worm, p.dest, p.payload))
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn all_traffic_delivered_with_multiple_vcs() {
        for vcs in [1usize, 2, 4] {
            let mut net = VcNetwork::new(4, 4, vcs);
            let mut worms = Vec::new();
            for i in 0..12u16 {
                let w = net
                    .inject(
                        Coord::new(i % 4, i / 4),
                        Coord::new(3 - i % 4, 2 - i / 4),
                        (0..8u64).collect(),
                    )
                    .unwrap();
                worms.push(w);
            }
            net.run_until_drained(1_000_000).unwrap();
            let delivered = net.take_delivered();
            assert_eq!(delivered.len(), 12, "vcs={vcs}");
            for w in worms {
                assert!(net.worm_latency(w).is_some());
            }
        }
    }

    /// The HOL-blocking relief that motivates VCs: a short worm stuck
    /// behind a long worm on a shared link finishes sooner with 2 VCs.
    #[test]
    fn virtual_channels_relieve_head_of_line_blocking() {
        let run = |vcs: usize| -> u64 {
            let mut net = VcNetwork::new(8, 2, vcs);
            // Worm 0 (vc 0): long, (0,0) -> (7,0), floods the row-0 links.
            net.inject(Coord::new(0, 0), Coord::new(7, 0), (0..64).collect())
                .unwrap();
            // Let the long worm establish its wormhole holds first.
            for _ in 0..10 {
                net.tick();
            }
            // Worm 1 (vc 1 when vcs=2): short, (1,0) -> (6,0), same links.
            let short = net
                .inject(Coord::new(1, 0), Coord::new(6, 0), vec![42])
                .unwrap();
            net.run_until_drained(1_000_000).unwrap();
            net.worm_latency(short).unwrap()
        };
        let blocked = run(1);
        let relieved = run(2);
        assert!(
            relieved < blocked,
            "short worm latency with 2 VCs ({relieved}) must beat 1 VC ({blocked})"
        );
    }

    #[test]
    fn stats_match_the_base_network_at_one_vc() {
        let drive = |single: bool| {
            if single {
                let mut n = crate::network::NocNetwork::new(4, 2);
                n.inject(Coord::new(0, 0), Coord::new(3, 1), vec![1, 2])
                    .unwrap();
                n.run_until_drained(10_000).unwrap();
                n.stats().clone()
            } else {
                let mut n = VcNetwork::new(4, 2, 1);
                n.inject(Coord::new(0, 0), Coord::new(3, 1), vec![1, 2])
                    .unwrap();
                n.run_until_drained(10_000).unwrap();
                n.stats()
            }
        };
        let base = drive(true);
        let vc = drive(false);
        assert_eq!(vc.worms_delivered, base.worms_delivered);
        assert_eq!(vc.flits_delivered, base.flits_delivered);
        assert_eq!(vc.link_crossings, base.link_crossings);
    }

    #[test]
    fn payload_integrity_under_vc_interleaving() {
        let mut net = VcNetwork::new(8, 1, 2);
        let a = net
            .inject(Coord::new(0, 0), Coord::new(7, 0), (100..140).collect())
            .unwrap();
        let b = net
            .inject(Coord::new(0, 0), Coord::new(7, 0), (200..240).collect())
            .unwrap();
        net.run_until_drained(1_000_000).unwrap();
        for (p, _) in net.take_delivered() {
            let want: Vec<u64> = if p.worm == a {
                (100..140).collect()
            } else {
                assert_eq!(p.worm, b);
                (200..240).collect()
            };
            assert_eq!(p.payload, want);
        }
    }
}

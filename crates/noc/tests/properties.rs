//! Property-based tests for the wormhole NoC.

use proptest::prelude::*;
use std::collections::HashMap;
use vlsi_noc::{NocNetwork, VcNetwork};
use vlsi_topology::Coord;

proptest! {
    /// Every injected packet is delivered exactly once, to the right
    /// destination, with its payload intact and in order — under arbitrary
    /// traffic patterns (XY routing is deadlock-free).
    #[test]
    fn all_traffic_delivered_intact(
        w in 2u16..7,
        h in 2u16..7,
        msgs in prop::collection::vec(
            ((0u16..7, 0u16..7), (0u16..7, 0u16..7), prop::collection::vec(any::<u64>(), 0..12)),
            1..25
        )
    ) {
        let mut net = NocNetwork::new(w, h);
        let mut expected = HashMap::new();
        for ((sx, sy), (dx, dy), payload) in msgs {
            let src = Coord::new(sx % w, sy % h);
            let dest = Coord::new(dx % w, dy % h);
            let worm = net.inject(src, dest, payload.clone()).unwrap();
            expected.insert(worm, (dest, payload));
        }
        net.run_until_drained(1_000_000).unwrap();
        let delivered = net.take_delivered();
        prop_assert_eq!(delivered.len(), expected.len());
        for (p, latency) in delivered {
            let (dest, payload) = expected.remove(&p.worm).expect("duplicate delivery");
            prop_assert_eq!(p.dest, dest);
            prop_assert_eq!(&p.payload, &payload);
            // Latency is at least the Manhattan distance (plus flit count).
            prop_assert!(latency >= u64::from(0u8));
        }
        prop_assert!(expected.is_empty());
        prop_assert!(net.is_idle());
    }

    /// The VC network delivers all traffic intact at any VC count, under
    /// arbitrary patterns — and worms on distinct VCs never corrupt each
    /// other's payloads.
    #[test]
    fn vc_network_delivers_all_traffic(
        vcs in 1usize..5,
        msgs in prop::collection::vec(
            ((0u16..5, 0u16..5), (0u16..5, 0u16..5), prop::collection::vec(any::<u64>(), 0..10)),
            1..20
        )
    ) {
        let mut net = VcNetwork::new(5, 5, vcs);
        let mut expected = HashMap::new();
        for ((sx, sy), (dx, dy), payload) in msgs {
            let src = Coord::new(sx, sy);
            let dest = Coord::new(dx, dy);
            let worm = net.inject(src, dest, payload.clone()).unwrap();
            expected.insert(worm, (dest, payload));
        }
        net.run_until_drained(1_000_000).unwrap();
        let delivered = net.take_delivered();
        prop_assert_eq!(delivered.len(), expected.len());
        for (p, _) in delivered {
            let (dest, payload) = expected.remove(&p.worm).expect("once");
            prop_assert_eq!(p.dest, dest);
            prop_assert_eq!(&p.payload, &payload);
        }
        prop_assert!(net.is_idle());
    }

    /// Latency lower bound: a worm takes at least manhattan-distance
    /// cycles plus its serialisation length.
    #[test]
    fn latency_lower_bound(
        sx in 0u16..6, sy in 0u16..6, dx in 0u16..6, dy in 0u16..6,
        len in 0usize..10
    ) {
        let mut net = NocNetwork::new(6, 6);
        let src = Coord::new(sx, sy);
        let dest = Coord::new(dx, dy);
        let worm = net.inject(src, dest, (0..len as u64).collect()).unwrap();
        net.run_until_drained(100_000).unwrap();
        let latency = net.worm_latency(worm).unwrap();
        let dist = src.manhattan(dest) as u64;
        // Each hop takes >= 2 cycles (allocate + link) and the tail
        // trails the head by the payload length.
        prop_assert!(latency >= dist + len as u64);
    }
}

//! Property-based tests for the wormhole NoC.

use proptest::prelude::*;
use std::collections::HashMap;
use vlsi_faults::{payload_checksum, FaultPlanBuilder};
use vlsi_noc::{NocError, NocNetwork, VcNetwork};
use vlsi_topology::Coord;

proptest! {
    /// Every injected packet is delivered exactly once, to the right
    /// destination, with its payload intact and in order — under arbitrary
    /// traffic patterns (XY routing is deadlock-free).
    #[test]
    fn all_traffic_delivered_intact(
        w in 2u16..7,
        h in 2u16..7,
        msgs in prop::collection::vec(
            ((0u16..7, 0u16..7), (0u16..7, 0u16..7), prop::collection::vec(any::<u64>(), 0..12)),
            1..25
        )
    ) {
        let mut net = NocNetwork::new(w, h);
        let mut expected = HashMap::new();
        for ((sx, sy), (dx, dy), payload) in msgs {
            let src = Coord::new(sx % w, sy % h);
            let dest = Coord::new(dx % w, dy % h);
            let worm = net.inject(src, dest, payload.clone()).unwrap();
            expected.insert(worm, (dest, payload));
        }
        net.run_until_drained(1_000_000).unwrap();
        let delivered = net.take_delivered();
        prop_assert_eq!(delivered.len(), expected.len());
        for (p, latency) in delivered {
            let (dest, payload) = expected.remove(&p.worm).expect("duplicate delivery");
            prop_assert_eq!(p.dest, dest);
            prop_assert_eq!(&p.payload, &payload);
            // Latency is at least the Manhattan distance (plus flit count).
            prop_assert!(latency >= u64::from(0u8));
        }
        prop_assert!(expected.is_empty());
        prop_assert!(net.is_idle());
    }

    /// The VC network delivers all traffic intact at any VC count, under
    /// arbitrary patterns — and worms on distinct VCs never corrupt each
    /// other's payloads.
    #[test]
    fn vc_network_delivers_all_traffic(
        vcs in 1usize..5,
        msgs in prop::collection::vec(
            ((0u16..5, 0u16..5), (0u16..5, 0u16..5), prop::collection::vec(any::<u64>(), 0..10)),
            1..20
        )
    ) {
        let mut net = VcNetwork::new(5, 5, vcs);
        let mut expected = HashMap::new();
        for ((sx, sy), (dx, dy), payload) in msgs {
            let src = Coord::new(sx, sy);
            let dest = Coord::new(dx, dy);
            let worm = net.inject(src, dest, payload.clone()).unwrap();
            expected.insert(worm, (dest, payload));
        }
        net.run_until_drained(1_000_000).unwrap();
        let delivered = net.take_delivered();
        prop_assert_eq!(delivered.len(), expected.len());
        for (p, _) in delivered {
            let (dest, payload) = expected.remove(&p.worm).expect("once");
            prop_assert_eq!(p.dest, dest);
            prop_assert_eq!(&p.payload, &payload);
        }
        prop_assert!(net.is_idle());
    }

    /// Latency lower bound: a worm takes at least manhattan-distance
    /// cycles plus its serialisation length.
    #[test]
    fn latency_lower_bound(
        sx in 0u16..6, sy in 0u16..6, dx in 0u16..6, dy in 0u16..6,
        len in 0usize..10
    ) {
        let mut net = NocNetwork::new(6, 6);
        let src = Coord::new(sx, sy);
        let dest = Coord::new(dx, dy);
        let worm = net.inject(src, dest, (0..len as u64).collect()).unwrap();
        net.run_until_drained(100_000).unwrap();
        let latency = net.worm_latency(worm).unwrap();
        let dist = src.manhattan(dest) as u64;
        // Each hop takes >= 2 cycles (allocate + link) and the tail
        // trails the head by the payload length.
        prop_assert!(latency >= dist + len as u64);
    }

    /// Under an arbitrary seed-driven fault plan the network never hangs
    /// past its drain bound and never lies: every worm is either
    /// delivered to the right place with its exact payload, or surfaces
    /// as a typed [`NocError::Undeliverable`] — nothing vanishes, nothing
    /// arrives corrupted.
    #[test]
    fn random_fault_plans_never_hang_or_corrupt(
        seed in any::<u64>(),
        down_pm in 0u32..80,
        corrupt_pm in 0u32..80,
        stall_pm in 0u32..40,
        msgs in prop::collection::vec(
            ((0u16..5, 0u16..5), (0u16..5, 0u16..5), prop::collection::vec(any::<u64>(), 0..8)),
            1..12
        )
    ) {
        let mut net = NocNetwork::new(5, 5);
        let plan = FaultPlanBuilder::new(seed)
            .grid(5, 5)
            .horizon(384)
            .link_down_rate(f64::from(down_pm) / 1000.0)
            .link_corrupt_rate(f64::from(corrupt_pm) / 1000.0)
            .router_stall_rate(f64::from(stall_pm) / 1000.0)
            .build();
        net.attach_fault_plan(plan);
        let mut expected = HashMap::new();
        for ((sx, sy), (dx, dy), payload) in msgs {
            let src = Coord::new(sx, sy);
            let dest = Coord::new(dx, dy);
            let worm = net.inject(src, dest, payload.clone()).unwrap();
            expected.insert(worm, (dest, payload));
        }
        // The drain budget bounds the hang: 6 capped-backoff delivery
        // attempts per worm fit comfortably inside it.
        net.run_until_drained(2_000_000).unwrap();
        let delivered = net.take_delivered();
        let failed = net.take_failed();
        prop_assert_eq!(delivered.len() + failed.len(), expected.len());
        for (p, _) in delivered {
            let (dest, payload) = expected.remove(&p.worm).expect("delivered once");
            prop_assert_eq!(p.dest, dest);
            prop_assert_eq!(&p.payload, &payload, "silent corruption");
        }
        for (worm, err) in failed {
            prop_assert!(expected.remove(&worm).is_some(), "failed twice");
            prop_assert!(matches!(err, NocError::Undeliverable { .. }));
        }
        prop_assert!(expected.is_empty());
        prop_assert!(net.is_idle());
    }

    /// The end-to-end checksum catches *every* corruption: FNV-1a's
    /// byte step (xor, then multiply by an odd prime) is invertible, so
    /// for equal-length payloads the digest is injective — any nonzero
    /// XOR mask on any word must change it.
    #[test]
    fn checksum_catches_every_same_length_corruption(
        payload in prop::collection::vec(any::<u64>(), 1..32),
        idx in any::<usize>(),
        mask in 1u64..=u64::MAX
    ) {
        let mut corrupted = payload.clone();
        let i = idx % corrupted.len();
        corrupted[i] ^= mask;
        prop_assert_ne!(payload_checksum(&payload), payload_checksum(&corrupted));
    }
}

//! Sorted, integer-only snapshots and their JSON/CSV exporters.

use crate::histogram::Histogram;
use std::fmt::Write;

/// The value of one instrument at snapshot time.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SnapshotValue {
    /// A monotonic counter.
    Counter(u64),
    /// A gauge (last set / accumulated delta).
    Gauge(i64),
    /// A log2-bucketed histogram (boxed: ~550 bytes against the
    /// scalars' 8).
    Histogram(Box<Histogram>),
}

/// A point-in-time view of every instrument in a registry, sorted by
/// name. All values are integers, so rendering is byte-deterministic:
/// same seed ⇒ same counts ⇒ same bytes, which the determinism test and
/// the CI snapshot diff assert.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Snapshot {
    entries: Vec<(String, SnapshotValue)>,
    dropped_spans: u64,
}

impl Snapshot {
    pub(crate) fn new(entries: Vec<(String, SnapshotValue)>, dropped_spans: u64) -> Snapshot {
        Snapshot {
            entries,
            dropped_spans,
        }
    }

    /// `(name, value)` for every instrument, in name order.
    pub fn entries(&self) -> &[(String, SnapshotValue)] {
        &self.entries
    }

    /// Whether the snapshot holds no instruments at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Span events dropped by the trace buffer's capacity bound.
    pub fn dropped_spans(&self) -> u64 {
        self.dropped_spans
    }

    fn get(&self, name: &str) -> Option<&SnapshotValue> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// The counter `name`, or 0 when it was never recorded.
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(SnapshotValue::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// The gauge `name`, or 0 when it was never recorded.
    pub fn gauge(&self, name: &str) -> i64 {
        match self.get(name) {
            Some(SnapshotValue::Gauge(g)) => *g,
            _ => 0,
        }
    }

    /// The histogram `name`, if it was ever recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        match self.get(name) {
            Some(SnapshotValue::Histogram(h)) => Some(h.as_ref()),
            _ => None,
        }
    }

    /// Sums a counter family: the plain counter `name` plus every
    /// indexed lane `name[i]`.
    pub fn counter_family(&self, name: &str) -> u64 {
        let prefix = format!("{name}[");
        self.entries
            .iter()
            .filter(|(n, _)| n == name || n.starts_with(&prefix))
            .map(|(_, v)| match v {
                SnapshotValue::Counter(c) => *c,
                _ => 0,
            })
            .sum()
    }

    /// Renders the snapshot as a JSON object with sorted keys and only
    /// integer values — byte-identical across same-seed runs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        let mut first = true;
        for (name, v) in &self.entries {
            if let SnapshotValue::Counter(c) = v {
                if !first {
                    out.push(',');
                }
                first = false;
                write!(out, "\"{name}\":{c}").expect("write to String");
            }
        }
        out.push_str("},\"gauges\":{");
        let mut first = true;
        for (name, v) in &self.entries {
            if let SnapshotValue::Gauge(g) = v {
                if !first {
                    out.push(',');
                }
                first = false;
                write!(out, "\"{name}\":{g}").expect("write to String");
            }
        }
        out.push_str("},\"histograms\":{");
        let mut first = true;
        for (name, v) in &self.entries {
            if let SnapshotValue::Histogram(h) = v {
                if !first {
                    out.push(',');
                }
                first = false;
                write!(
                    out,
                    "\"{name}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                    h.count(),
                    h.sum(),
                    h.min(),
                    h.max()
                )
                .expect("write to String");
                let mut bfirst = true;
                for (floor, n) in h.nonzero_buckets() {
                    if !bfirst {
                        out.push(',');
                    }
                    bfirst = false;
                    write!(out, "[{floor},{n}]").expect("write to String");
                }
                out.push_str("]}");
            }
        }
        write!(out, "}},\"dropped_spans\":{}}}", self.dropped_spans).expect("write to String");
        out
    }

    /// Renders the snapshot as CSV (`kind,name,...` rows, name order) —
    /// the bench-style flat export.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,count,sum,min,max\n");
        for (name, v) in &self.entries {
            match v {
                SnapshotValue::Counter(c) => {
                    writeln!(out, "counter,{name},{c},,,").expect("write to String")
                }
                SnapshotValue::Gauge(g) => {
                    writeln!(out, "gauge,{name},{g},,,").expect("write to String")
                }
                SnapshotValue::Histogram(h) => writeln!(
                    out,
                    "histogram,{name},{},{},{},{}",
                    h.count(),
                    h.sum(),
                    h.min(),
                    h.max()
                )
                .expect("write to String"),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut h = Histogram::new();
        h.record(5);
        h.record(12);
        Snapshot::new(
            vec![
                ("a.count".to_string(), SnapshotValue::Counter(7)),
                ("b.depth".to_string(), SnapshotValue::Gauge(-2)),
                ("c.lat".to_string(), SnapshotValue::Histogram(Box::new(h))),
            ],
            0,
        )
    }

    #[test]
    fn json_is_integer_only_and_complete() {
        let j = sample().to_json();
        assert_eq!(
            j,
            "{\"counters\":{\"a.count\":7},\"gauges\":{\"b.depth\":-2},\
             \"histograms\":{\"c.lat\":{\"count\":2,\"sum\":17,\"min\":5,\"max\":12,\
             \"buckets\":[[4,1],[8,1]]}},\"dropped_spans\":0}"
        );
    }

    #[test]
    fn csv_has_one_row_per_instrument() {
        let c = sample().to_csv();
        assert_eq!(c.lines().count(), 4);
        assert!(c.contains("counter,a.count,7,,,"));
        assert!(c.contains("histogram,c.lat,2,17,5,12"));
    }

    #[test]
    fn lookups() {
        let s = sample();
        assert_eq!(s.counter("a.count"), 7);
        assert_eq!(s.counter("missing"), 0);
        assert_eq!(s.gauge("b.depth"), -2);
        assert_eq!(s.histogram("c.lat").unwrap().max(), 12);
    }
}

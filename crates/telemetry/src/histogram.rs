//! Log2-bucketed histograms with power-of-two boundaries.

/// Bucket count: bucket 0 holds the value `0`; bucket `k` (1..=64) holds
/// values in `[2^(k-1), 2^k)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples.
///
/// Boundaries sit exactly at powers of two, so bucket membership is a
/// leading-zeros computation — `O(1)`, branch-free, and allocation-free
/// per sample. Count, sum, min, and max are tracked exactly; only the
/// distribution is quantised.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    saturated: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            saturated: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index a value lands in: `0` for the value zero,
    /// otherwise `1 + floor(log2(value))`.
    pub fn bucket_of(value: u64) -> usize {
        match value {
            0 => 0,
            v => 64 - v.leading_zeros() as usize,
        }
    }

    /// The inclusive lower boundary of bucket `i` (a power of two for
    /// every bucket past the zero bucket).
    pub fn bucket_floor(i: usize) -> u64 {
        match i {
            0 => 0,
            k => 1u64 << (k - 1),
        }
    }

    /// The inclusive upper boundary of bucket `i`: the largest value that
    /// still lands in the bucket (`2^i - 1` past the zero bucket).
    pub fn bucket_ceiling(i: usize) -> u64 {
        match i {
            0 => 0,
            64 => u64::MAX,
            k => (1u64 << k) - 1,
        }
    }

    /// Records one sample. Returns `true` when adding the sample
    /// saturated the running sum — the sum pins at `u64::MAX` instead of
    /// wrapping, but from that point on `sum` and `mean` understate the
    /// data, so saturation must be *counted*, not swallowed: a silently
    /// pinned sum is indistinguishable from a legitimately huge one.
    pub fn record(&mut self, value: u64) -> bool {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        let sat = match self.sum.checked_add(value) {
            Some(s) => {
                self.sum = s;
                false
            }
            None => {
                self.sum = u64::MAX;
                self.saturated += 1;
                true
            }
        };
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        sat
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating — see [`saturated`](Self::saturated)).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// How many recorded samples saturated the running sum. Non-zero
    /// means [`sum`](Self::sum) (and therefore [`mean`](Self::mean)) is a
    /// lower bound, not an exact total.
    pub fn saturated(&self) -> u64 {
        self.saturated
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Integer mean (0 when empty) — integer division keeps exports
    /// float-free and byte-stable.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Folds `other` into `self`: buckets, counts, saturation tallies,
    /// and extrema add exactly; the sums add saturating. Returns `true`
    /// when the sum addition itself saturated (a *new* event, beyond the
    /// `other.saturated()` tally carried over), so the caller can count
    /// it the same way [`record`](Self::record) saturations are counted.
    ///
    /// Merging is commutative and associative up to the pinned sum, so
    /// shard-local histograms folded in shard order reproduce the serial
    /// histogram exactly whenever the total sum fits in a `u64`.
    pub fn merge(&mut self, other: &Histogram) -> bool {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.saturated += other.saturated;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        match self.sum.checked_add(other.sum) {
            Some(s) => {
                self.sum = s;
                false
            }
            None => {
                self.sum = u64::MAX;
                self.saturated += 1;
                true
            }
        }
    }

    /// Occupancy of bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// The quantile at `permille` (500 = p50, 990 = p99), reported as
    /// the inclusive upper bound of the bucket the rank-th sample landed
    /// in — a conservative (never under-reporting) estimate quantised to
    /// the log2 boundaries, integer-only and byte-stable like every
    /// other export. Reporting the bucket *floor* here would under-state
    /// tail latency by up to 2× near a bucket's top. Returns 0 when
    /// empty; `permille` is clamped to 1000.
    pub fn percentile(&self, permille: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (self.count * permille.min(1000)).div_ceil(1000).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_ceiling(i);
            }
        }
        Self::bucket_ceiling(HISTOGRAM_BUCKETS - 1)
    }

    /// `(bucket floor, occupancy)` for every non-empty bucket, in
    /// ascending boundary order.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (Self::bucket_floor(i), n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_are_powers_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(7), 3);
        assert_eq!(Histogram::bucket_of(8), 4);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        for k in 1..=63usize {
            let b = 1u64 << (k - 1);
            assert_eq!(Histogram::bucket_of(b), k, "floor of bucket {k}");
            assert_eq!(Histogram::bucket_of(b * 2 - 1), k, "ceiling of bucket {k}");
            assert_eq!(Histogram::bucket_floor(k), b);
            assert_eq!(Histogram::bucket_ceiling(k), b * 2 - 1);
        }
        assert_eq!(Histogram::bucket_ceiling(0), 0);
        assert_eq!(Histogram::bucket_ceiling(64), u64::MAX);
    }

    #[test]
    fn summary_statistics_are_exact() {
        let mut h = Histogram::new();
        for v in [3u64, 5, 8, 0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 16);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 8);
        assert_eq!(h.mean(), 4);
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (2, 1), (4, 1), (8, 1)]);
    }

    #[test]
    fn sum_saturation_is_counted_not_swallowed() {
        let mut h = Histogram::new();
        // First huge sample fits exactly: 0 + MAX = MAX, no overflow.
        assert!(!h.record(u64::MAX));
        assert_eq!(h.saturated(), 0);
        assert_eq!(h.sum(), u64::MAX);
        // Any further non-zero sample saturates.
        assert!(h.record(1));
        assert!(h.record(u64::MAX));
        assert_eq!(h.saturated(), 2);
        assert_eq!(h.sum(), u64::MAX, "sum pins at MAX rather than wrapping");
        // Zero never saturates, even against a pinned sum.
        assert!(!h.record(0));
        assert_eq!(h.saturated(), 2);
        // count/min/max stay exact through saturation.
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn merge_reproduces_single_stream_recording() {
        // Record one stream serially, and the same stream split across
        // two shards then merged: the results must be identical.
        let samples = [3u64, 0, 5, 8, 1, 900, 7, 2];
        let mut serial = Histogram::new();
        for &v in &samples {
            serial.record(v);
        }
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (i, &v) in samples.iter().enumerate() {
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        assert!(!a.merge(&b));
        assert_eq!(a, serial);
    }

    #[test]
    fn merge_saturation_is_new_and_counted() {
        let mut a = Histogram::new();
        a.record(u64::MAX);
        let mut b = Histogram::new();
        b.record(2);
        // Neither side saturated on its own; the merge addition does.
        assert!(a.merge(&b));
        assert_eq!(a.sum(), u64::MAX);
        assert_eq!(a.saturated(), 1);
        assert_eq!(a.count(), 2);
        // Merging an empty histogram is the identity.
        let before = a.clone();
        assert!(!a.merge(&Histogram::new()));
        assert_eq!(a, before);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!((h.count(), h.min(), h.max(), h.mean()), (0, 0, 0, 0));
        assert!(h.nonzero_buckets().is_empty());
        assert_eq!(h.percentile(500), 0);
    }

    #[test]
    fn percentiles_walk_the_bucket_ranks() {
        let mut h = Histogram::new();
        // 90 samples of 1 (bucket 1, ceiling 1), 9 of 100 (bucket 7,
        // ceiling 127), 1 of 5000 (bucket 13, ceiling 8191).
        for _ in 0..90 {
            h.record(1);
        }
        for _ in 0..9 {
            h.record(100);
        }
        h.record(5000);
        assert_eq!(h.percentile(500), 1, "p50 in the bulk");
        assert_eq!(h.percentile(900), 1, "rank 90 is still a 1-sample");
        assert_eq!(h.percentile(990), 127, "p99 lands on the 100s");
        assert_eq!(h.percentile(1000), 8191, "p100 is the max bucket");
        assert_eq!(h.percentile(5000), 8191, "permille clamps");
        // A single sample answers every quantile, and the estimate never
        // drops below the sample itself.
        let mut one = Histogram::new();
        one.record(7);
        assert_eq!(one.percentile(1), 7);
        assert_eq!(one.percentile(999), 7);
    }

    #[test]
    fn percentile_never_under_reports_the_sample() {
        // The inclusive-upper-bound report dominates every recorded
        // value at that rank: a single sample at each bucket top must
        // come back no smaller than itself.
        for v in [1u64, 3, 7, 127, 4095, 5000] {
            let mut h = Histogram::new();
            h.record(v);
            assert!(
                h.percentile(990) >= v,
                "p99 of single sample {v} reported {}",
                h.percentile(990)
            );
        }
    }
}

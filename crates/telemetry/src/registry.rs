//! The instrument registry: typed instruments behind interned keys.

use crate::histogram::Histogram;
use crate::snapshot::{Snapshot, SnapshotValue};
use crate::trace::{SpanEvent, Trace};
use std::collections::HashMap;

/// An instrument address: a static name plus an optional index, so a
/// family like per-link utilization is one key with many lanes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct InstrKey {
    name: &'static str,
    index: Option<u64>,
}

impl InstrKey {
    fn render(&self) -> String {
        match self.index {
            None => self.name.to_string(),
            Some(i) => format!("{}[{}]", self.name, i),
        }
    }
}

#[derive(Clone, Debug)]
enum Instrument {
    Counter(u64),
    Gauge(i64),
    // Boxed: a histogram is ~550 bytes against the scalars' 8, and most
    // instruments are counters.
    Histogram(Box<Histogram>),
}

/// The typed instrument registry of one telemetry domain.
///
/// Keys are `&'static str` (plus an optional integer index), interned on
/// first use: the hot path is one hash lookup and one slot update —
/// `O(1)`, and allocation-free after an instrument's first recording.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    slots: HashMap<InstrKey, usize>,
    instruments: Vec<(InstrKey, Instrument)>,
    trace: Trace,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn slot(&mut self, name: &'static str, index: Option<u64>, make: fn() -> Instrument) -> usize {
        let key = InstrKey { name, index };
        match self.slots.get(&key) {
            Some(&i) => i,
            None => {
                let i = self.instruments.len();
                self.instruments.push((key, make()));
                self.slots.insert(key, i);
                i
            }
        }
    }

    /// Adds `n` to the counter `name`.
    pub fn count(&mut self, name: &'static str, n: u64) {
        self.count_at_opt(name, None, n);
    }

    /// Adds `n` to lane `index` of the counter family `name`.
    pub fn count_at(&mut self, name: &'static str, index: u64, n: u64) {
        self.count_at_opt(name, Some(index), n);
    }

    fn count_at_opt(&mut self, name: &'static str, index: Option<u64>, n: u64) {
        let i = self.slot(name, index, || Instrument::Counter(0));
        if let Instrument::Counter(c) = &mut self.instruments[i].1 {
            *c += n;
        }
    }

    /// Sets the gauge `name` to `value`.
    pub fn gauge_set(&mut self, name: &'static str, value: i64) {
        let i = self.slot(name, None, || Instrument::Gauge(0));
        if let Instrument::Gauge(g) = &mut self.instruments[i].1 {
            *g = value;
        }
    }

    /// Adds `delta` (possibly negative) to the gauge `name`.
    pub fn gauge_add(&mut self, name: &'static str, delta: i64) {
        let i = self.slot(name, None, || Instrument::Gauge(0));
        if let Instrument::Gauge(g) = &mut self.instruments[i].1 {
            *g += delta;
        }
    }

    /// Name of the counter tracking histogram-sum saturations across the
    /// whole registry. It materialises (and shows up in snapshots and the
    /// report table) only once a saturation actually happens, so
    /// saturation-free runs export byte-identical telemetry.
    pub const SATURATED_COUNTER: &'static str = "telemetry.saturated";

    /// Records a sample into the histogram `name`.
    pub fn record(&mut self, name: &'static str, value: u64) {
        let i = self.slot(name, None, || Instrument::Histogram(Box::default()));
        if let Instrument::Histogram(h) = &mut self.instruments[i].1 {
            if h.record(value) {
                self.count(Self::SATURATED_COUNTER, 1);
            }
        }
    }

    /// Appends a span event to the trace buffer.
    pub fn span(&mut self, e: SpanEvent) {
        self.trace.push(e);
    }

    /// The trace buffer.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Replaces the trace buffer's capacity (existing events kept up to
    /// the new bound).
    pub fn set_trace_capacity(&mut self, capacity: usize) {
        let mut t = Trace::with_capacity(capacity);
        for &e in self.trace.events().iter().take(capacity) {
            t.push(e);
        }
        self.trace = t;
    }

    /// A sorted, integer-only view of every instrument. Sorting is by
    /// rendered name (then index numerically within a family), so the
    /// export is byte-deterministic regardless of recording order.
    pub fn snapshot(&self) -> Snapshot {
        let mut entries: Vec<(String, SnapshotValue)> = self
            .instruments
            .iter()
            .map(|(key, ins)| {
                let v = match ins {
                    Instrument::Counter(c) => SnapshotValue::Counter(*c),
                    Instrument::Gauge(g) => SnapshotValue::Gauge(*g),
                    Instrument::Histogram(h) => SnapshotValue::Histogram(h.clone()),
                };
                (key.render(), v)
            })
            .collect();
        let key_of = |name: &str| -> (String, u64) {
            match name.split_once('[') {
                Some((base, rest)) => {
                    let idx = rest
                        .trim_end_matches(']')
                        .parse::<u64>()
                        .unwrap_or(u64::MAX);
                    (base.to_string(), idx)
                }
                None => (name.to_string(), 0),
            }
        };
        entries.sort_by_key(|(name, _)| key_of(name));
        let dropped_spans = self.trace.dropped();
        Snapshot::new(entries, dropped_spans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruments_accumulate_by_key() {
        let mut r = Registry::new();
        r.count("a", 1);
        r.count("a", 2);
        r.count_at("links", 3, 5);
        r.count_at("links", 3, 5);
        r.count_at("links", 10, 1);
        r.gauge_set("depth", 4);
        r.gauge_add("depth", -1);
        r.record("lat", 9);
        let s = r.snapshot();
        assert_eq!(s.counter("a"), 3);
        assert_eq!(s.counter("links[3]"), 10);
        assert_eq!(s.counter("links[10]"), 1);
        assert_eq!(s.gauge("depth"), 3);
        assert_eq!(s.histogram("lat").unwrap().count(), 1);
    }

    #[test]
    fn sum_saturation_surfaces_as_a_counter() {
        let mut r = Registry::new();
        r.record("lat", 9);
        // No saturation yet: the counter must not exist, so exports from
        // healthy runs are unchanged.
        assert!(r
            .snapshot()
            .entries()
            .iter()
            .all(|(name, _)| name != Registry::SATURATED_COUNTER));
        // Two MAX samples: the second one overflows the running sum.
        r.record("big", u64::MAX);
        r.record("big", u64::MAX);
        let s = r.snapshot();
        assert_eq!(s.counter(Registry::SATURATED_COUNTER), 1);
        assert_eq!(s.histogram("big").unwrap().saturated(), 1);
        assert_eq!(s.histogram("big").unwrap().sum(), u64::MAX);
        // Saturations across different histograms accumulate in the one
        // registry-wide counter.
        r.record("other", u64::MAX);
        r.record("other", u64::MAX);
        assert_eq!(r.snapshot().counter(Registry::SATURATED_COUNTER), 2);
    }

    #[test]
    fn snapshot_order_is_independent_of_recording_order() {
        let mut a = Registry::new();
        a.count("z", 1);
        a.count("a", 1);
        a.count_at("links", 10, 1);
        a.count_at("links", 2, 1);
        let mut b = Registry::new();
        b.count_at("links", 2, 1);
        b.count("a", 1);
        b.count_at("links", 10, 1);
        b.count("z", 1);
        assert_eq!(a.snapshot().to_json(), b.snapshot().to_json());
        // Indexed lanes sort numerically: links[2] before links[10].
        let json = a.snapshot().to_json();
        assert!(json.find("links[2]").unwrap() < json.find("links[10]").unwrap());
    }
}

//! The instrument registry: typed instruments behind interned keys.

use crate::histogram::Histogram;
use crate::snapshot::{Snapshot, SnapshotValue};
use crate::trace::{SpanEvent, Trace};
use std::collections::HashMap;

/// An instrument address: a static name plus an optional index, so a
/// family like per-link utilization is one key with many lanes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct InstrKey {
    name: &'static str,
    index: Option<u64>,
}

impl InstrKey {
    fn render(&self) -> String {
        match self.index {
            None => self.name.to_string(),
            Some(i) => format!("{}[{}]", self.name, i),
        }
    }
}

#[derive(Clone, Debug)]
enum Instrument {
    Counter(u64),
    Gauge(i64),
    // Boxed: a histogram is ~550 bytes against the scalars' 8, and most
    // instruments are counters.
    Histogram(Box<Histogram>),
}

/// The typed instrument registry of one telemetry domain.
///
/// Keys are `&'static str` (plus an optional integer index), interned on
/// first use: the hot path is one hash lookup and one slot update —
/// `O(1)`, and allocation-free after an instrument's first recording.
#[derive(Clone, Debug)]
pub struct Registry {
    slots: HashMap<InstrKey, usize>,
    instruments: Vec<(InstrKey, Instrument)>,
    trace: Trace,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry with the default trace capacity.
    ///
    /// (The trace must be built with [`Trace::new`]: the *derived*
    /// `Trace` default has capacity zero, which silently dropped every
    /// span a registry ever recorded.)
    pub fn new() -> Registry {
        Registry {
            slots: HashMap::new(),
            instruments: Vec::new(),
            trace: Trace::new(),
        }
    }

    fn slot(&mut self, name: &'static str, index: Option<u64>, make: fn() -> Instrument) -> usize {
        let key = InstrKey { name, index };
        match self.slots.get(&key) {
            Some(&i) => i,
            None => {
                let i = self.instruments.len();
                self.instruments.push((key, make()));
                self.slots.insert(key, i);
                i
            }
        }
    }

    /// Adds `n` to the counter `name`.
    pub fn count(&mut self, name: &'static str, n: u64) {
        self.count_at_opt(name, None, n);
    }

    /// Adds `n` to lane `index` of the counter family `name`.
    pub fn count_at(&mut self, name: &'static str, index: u64, n: u64) {
        self.count_at_opt(name, Some(index), n);
    }

    fn count_at_opt(&mut self, name: &'static str, index: Option<u64>, n: u64) {
        let i = self.slot(name, index, || Instrument::Counter(0));
        if let Instrument::Counter(c) = &mut self.instruments[i].1 {
            *c += n;
        }
    }

    /// Sets the gauge `name` to `value`.
    pub fn gauge_set(&mut self, name: &'static str, value: i64) {
        let i = self.slot(name, None, || Instrument::Gauge(0));
        if let Instrument::Gauge(g) = &mut self.instruments[i].1 {
            *g = value;
        }
    }

    /// Adds `delta` (possibly negative) to the gauge `name`.
    pub fn gauge_add(&mut self, name: &'static str, delta: i64) {
        self.gauge_add_at_opt(name, None, delta);
    }

    /// Sets lane `index` of the gauge family `name` (rendered
    /// `name[index]` in exports, like counter families).
    pub fn gauge_set_at(&mut self, name: &'static str, index: u64, value: i64) {
        let i = self.slot(name, Some(index), || Instrument::Gauge(0));
        if let Instrument::Gauge(g) = &mut self.instruments[i].1 {
            *g = value;
        }
    }

    fn gauge_add_at_opt(&mut self, name: &'static str, index: Option<u64>, delta: i64) {
        let i = self.slot(name, index, || Instrument::Gauge(0));
        if let Instrument::Gauge(g) = &mut self.instruments[i].1 {
            *g += delta;
        }
    }

    /// Name of the counter tracking histogram-sum saturations across the
    /// whole registry. It materialises (and shows up in snapshots and the
    /// report table) only once a saturation actually happens, so
    /// saturation-free runs export byte-identical telemetry.
    pub const SATURATED_COUNTER: &'static str = "telemetry.saturated";

    /// Records a sample into the histogram `name`.
    pub fn record(&mut self, name: &'static str, value: u64) {
        let i = self.slot(name, None, || Instrument::Histogram(Box::default()));
        if let Instrument::Histogram(h) = &mut self.instruments[i].1 {
            if h.record(value) {
                self.count(Self::SATURATED_COUNTER, 1);
            }
        }
    }

    /// Folds every instrument of `other` into this registry: counters
    /// and gauges add, histograms merge bucket-wise, trace events append
    /// in `other`'s recording order.
    ///
    /// `other`'s instruments are visited in *interning* order, so a
    /// fixed merge schedule (shards in shard order, fleet chips in chip
    /// index order) yields a deterministic registry — and the sorted
    /// [`snapshot`](Self::snapshot) makes the export independent of the
    /// interning interleave altogether. Merging an instrument that only
    /// `other` has interns it here, zero-valued first, so a shard that
    /// touched an instrument materialises it in the merged export
    /// exactly as a serial run would.
    pub fn merge_from(&mut self, other: &Registry) {
        for (key, ins) in &other.instruments {
            match ins {
                Instrument::Counter(c) => self.count_at_opt(key.name, key.index, *c),
                Instrument::Gauge(g) => self.gauge_add_at_opt(key.name, key.index, *g),
                Instrument::Histogram(h) => {
                    let i = self.slot(
                        key.name,
                        key.index,
                        || Instrument::Histogram(Box::default()),
                    );
                    let saturated = match &mut self.instruments[i].1 {
                        Instrument::Histogram(mine) => mine.merge(h),
                        _ => false,
                    };
                    if saturated {
                        self.count(Self::SATURATED_COUNTER, 1);
                    }
                }
            }
        }
        self.trace.append(other.trace());
    }

    /// Appends a span event to the trace buffer.
    pub fn span(&mut self, e: SpanEvent) {
        self.trace.push(e);
    }

    /// The trace buffer.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Replaces the trace buffer's capacity (existing events kept up to
    /// the new bound).
    pub fn set_trace_capacity(&mut self, capacity: usize) {
        let mut t = Trace::with_capacity(capacity);
        for &e in self.trace.events().iter().take(capacity) {
            t.push(e);
        }
        self.trace = t;
    }

    /// A sorted, integer-only view of every instrument. Sorting is by
    /// rendered name (then index numerically within a family), so the
    /// export is byte-deterministic regardless of recording order.
    pub fn snapshot(&self) -> Snapshot {
        let mut entries: Vec<(String, SnapshotValue)> = self
            .instruments
            .iter()
            .map(|(key, ins)| {
                let v = match ins {
                    Instrument::Counter(c) => SnapshotValue::Counter(*c),
                    Instrument::Gauge(g) => SnapshotValue::Gauge(*g),
                    Instrument::Histogram(h) => SnapshotValue::Histogram(h.clone()),
                };
                (key.render(), v)
            })
            .collect();
        let key_of = |name: &str| -> (String, u64) {
            match name.split_once('[') {
                Some((base, rest)) => {
                    let idx = rest
                        .trim_end_matches(']')
                        .parse::<u64>()
                        .unwrap_or(u64::MAX);
                    (base.to_string(), idx)
                }
                None => (name.to_string(), 0),
            }
        };
        entries.sort_by_key(|(name, _)| key_of(name));
        let dropped_spans = self.trace.dropped();
        Snapshot::new(entries, dropped_spans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruments_accumulate_by_key() {
        let mut r = Registry::new();
        r.count("a", 1);
        r.count("a", 2);
        r.count_at("links", 3, 5);
        r.count_at("links", 3, 5);
        r.count_at("links", 10, 1);
        r.gauge_set("depth", 4);
        r.gauge_add("depth", -1);
        r.record("lat", 9);
        let s = r.snapshot();
        assert_eq!(s.counter("a"), 3);
        assert_eq!(s.counter("links[3]"), 10);
        assert_eq!(s.counter("links[10]"), 1);
        assert_eq!(s.gauge("depth"), 3);
        assert_eq!(s.histogram("lat").unwrap().count(), 1);
    }

    #[test]
    fn sum_saturation_surfaces_as_a_counter() {
        let mut r = Registry::new();
        r.record("lat", 9);
        // No saturation yet: the counter must not exist, so exports from
        // healthy runs are unchanged.
        assert!(r
            .snapshot()
            .entries()
            .iter()
            .all(|(name, _)| name != Registry::SATURATED_COUNTER));
        // Two MAX samples: the second one overflows the running sum.
        r.record("big", u64::MAX);
        r.record("big", u64::MAX);
        let s = r.snapshot();
        assert_eq!(s.counter(Registry::SATURATED_COUNTER), 1);
        assert_eq!(s.histogram("big").unwrap().saturated(), 1);
        assert_eq!(s.histogram("big").unwrap().sum(), u64::MAX);
        // Saturations across different histograms accumulate in the one
        // registry-wide counter.
        r.record("other", u64::MAX);
        r.record("other", u64::MAX);
        assert_eq!(r.snapshot().counter(Registry::SATURATED_COUNTER), 2);
    }

    #[test]
    fn merge_from_reproduces_serial_recording() {
        use crate::trace::{SpanEvent, SpanPhase};
        let ev = |cycle| SpanEvent {
            track: "noc",
            name: "tick",
            id: 1,
            cycle,
            phase: SpanPhase::Instant,
        };
        // One serial registry vs. the same stream split across shards
        // and merged in shard order.
        let mut serial = Registry::new();
        let mut main = Registry::new();
        let mut shard = Registry::new();
        for i in 0..10u64 {
            serial.count("flits", i);
            serial.count_at("links", i % 3, 1);
            serial.gauge_add("load", i as i64 - 4);
            serial.record("lat", i * 7);
            serial.span(ev(i));
            let r = if i % 2 == 0 { &mut main } else { &mut shard };
            r.count("flits", i);
            r.count_at("links", i % 3, 1);
            r.gauge_add("load", i as i64 - 4);
            r.record("lat", i * 7);
        }
        // Spans are emitted on the owner only (the serial sections).
        for i in 0..10u64 {
            main.span(ev(i));
        }
        main.merge_from(&shard);
        assert_eq!(main.snapshot().to_json(), serial.snapshot().to_json());
        assert_eq!(main.trace().events(), serial.trace().events());
        // An instrument only the shard touched still materialises.
        let mut other = Registry::new();
        other.count("shard.only", 0);
        main.merge_from(&other);
        assert_eq!(main.snapshot().counter("shard.only"), 0);
        assert!(main
            .snapshot()
            .entries()
            .iter()
            .any(|(name, _)| name == "shard.only"));
    }

    #[test]
    fn registries_record_spans_by_default() {
        use crate::trace::{SpanEvent, SpanPhase};
        // Regression: the derived Trace default had capacity 0, so every
        // span a fresh registry recorded was silently dropped.
        let mut r = Registry::new();
        r.span(SpanEvent {
            track: "noc",
            name: "tick",
            id: 1,
            cycle: 3,
            phase: SpanPhase::Begin,
        });
        assert_eq!(r.trace().events().len(), 1);
        assert_eq!(r.trace().dropped(), 0);
    }

    #[test]
    fn snapshot_order_is_independent_of_recording_order() {
        let mut a = Registry::new();
        a.count("z", 1);
        a.count("a", 1);
        a.count_at("links", 10, 1);
        a.count_at("links", 2, 1);
        let mut b = Registry::new();
        b.count_at("links", 2, 1);
        b.count("a", 1);
        b.count_at("links", 10, 1);
        b.count("z", 1);
        assert_eq!(a.snapshot().to_json(), b.snapshot().to_json());
        // Indexed lanes sort numerically: links[2] before links[10].
        let json = a.snapshot().to_json();
        assert!(json.find("links[2]").unwrap() < json.find("links[10]").unwrap());
    }
}

//! Cycle-stamped trace spans and the Chrome `trace_event` exporter.

use std::fmt::Write;

/// Default span-event capacity of a trace buffer. Overflow drops the
/// newest events (deterministically) and counts them, so a truncated
/// trace is visible, never silently wrong.
pub const TRACE_CAPACITY_DEFAULT: usize = 1 << 16;

/// Which end of a span (or a point event) an entry marks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpanPhase {
    /// Span opens at this cycle.
    Begin,
    /// Span closes at this cycle.
    End,
    /// A zero-duration marker.
    Instant,
}

impl SpanPhase {
    fn chrome(self) -> char {
        match self {
            SpanPhase::Begin => 'B',
            SpanPhase::End => 'E',
            SpanPhase::Instant => 'i',
        }
    }
}

/// One trace entry, stamped with the recording layer's *simulated*
/// clock (never wall time — replays are bit-identical per seed).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SpanEvent {
    /// The track (one per layer clock: `"noc"`, `"runtime"`, …).
    /// Rendered as a Chrome trace process.
    pub track: &'static str,
    /// Span name (static, interned — recording never allocates).
    pub name: &'static str,
    /// Lane within the track (a worm ID, job ID, …). Rendered as the
    /// Chrome trace thread, so concurrent spans get their own rows.
    pub id: u64,
    /// The simulated-clock stamp, in the track's own cycle domain.
    pub cycle: u64,
    /// Begin, end, or instant.
    pub phase: SpanPhase,
}

/// An append-only, capacity-bounded buffer of [`SpanEvent`]s.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<SpanEvent>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// An empty trace bounded at [`TRACE_CAPACITY_DEFAULT`] events.
    pub fn new() -> Trace {
        Trace::with_capacity(TRACE_CAPACITY_DEFAULT)
    }

    /// An empty trace bounded at `capacity` events.
    pub fn with_capacity(capacity: usize) -> Trace {
        Trace {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an event; a full buffer drops it (counted, deterministic).
    pub fn push(&mut self, e: SpanEvent) {
        if self.events.len() >= self.capacity {
            self.dropped += 1;
        } else {
            self.events.push(e);
        }
    }

    /// Appends every event of `other` (in `other`'s recording order),
    /// then carries over `other`'s drop count. Events that do not fit in
    /// this buffer's remaining capacity are dropped and counted, exactly
    /// as if they had been [`push`](Self::push)ed here originally.
    pub fn append(&mut self, other: &Trace) {
        for &e in other.events() {
            self.push(e);
        }
        self.dropped += other.dropped;
    }

    /// The recorded events, in recording order.
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    /// Events rejected because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the trace as Chrome `trace_event` JSON (the
    /// `{"traceEvents": […]}` object format `chrome://tracing` and
    /// Perfetto load). One simulated cycle maps to one microsecond.
    /// Output is byte-deterministic: events in recording order, tracks
    /// numbered in first-appearance order.
    pub fn to_chrome_json(&self) -> String {
        let mut tracks: Vec<&'static str> = Vec::new();
        for e in &self.events {
            if !tracks.contains(&e.track) {
                tracks.push(e.track);
            }
        }
        let pid_of = |t: &'static str| tracks.iter().position(|&x| x == t).unwrap_or(0);
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for (pid, track) in tracks.iter().enumerate() {
            if !first {
                out.push(',');
            }
            first = false;
            write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"{track}\"}}}}"
            )
            .expect("write to String");
        }
        for e in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            let extra = if e.phase == SpanPhase::Instant {
                ",\"s\":\"t\""
            } else {
                ""
            };
            write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},\
                 \"pid\":{},\"tid\":{}{extra}}}",
                e.name,
                e.track,
                e.phase.chrome(),
                e.cycle,
                pid_of(e.track),
                e.id,
            )
            .expect("write to String");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, cycle: u64, phase: SpanPhase) -> SpanEvent {
        SpanEvent {
            track: "noc",
            name,
            id: 7,
            cycle,
            phase,
        }
    }

    #[test]
    fn capacity_drops_are_counted() {
        let mut t = Trace::with_capacity(2);
        for i in 0..5 {
            t.push(ev("worm", i, SpanPhase::Instant));
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn chrome_json_shape() {
        let mut t = Trace::new();
        t.push(ev("worm", 3, SpanPhase::Begin));
        t.push(ev("worm", 9, SpanPhase::End));
        let j = t.to_chrome_json();
        assert!(j.starts_with("{\"traceEvents\":["));
        assert!(j.contains("\"ph\":\"B\""));
        assert!(j.contains("\"ph\":\"E\""));
        assert!(j.contains("\"ts\":3"));
        assert!(j.contains("process_name"));
        assert!(j.ends_with("]}"));
    }
}

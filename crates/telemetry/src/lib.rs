//! # vlsi-telemetry — deterministic cross-layer observability
//!
//! The dynamic CMP lives or dies on run-time behavior — scaling latency,
//! CSD re-chaining, NoC wormhole traffic, scheduler queueing — and none
//! of it is debuggable from final outputs alone. This crate is the
//! observability layer every simulator crate records into:
//!
//! * **Instruments** ([`Registry`]): monotonic counters, gauges, and
//!   log2-bucketed [`Histogram`]s, addressed by static interned keys
//!   (`&'static str`, optionally indexed). Recording is `O(1)` per call.
//! * **Trace spans** ([`SpanEvent`]): `span_begin`/`span_end` stamped
//!   with each layer's *simulated* clock — never wall time — so traces
//!   are bit-identical for identical seeds. Exported as Chrome
//!   `trace_event` JSON loadable in `chrome://tracing`.
//! * **Snapshots** ([`Snapshot`]): a sorted, integer-only view of every
//!   instrument, exportable as JSON or CSV. Same seed ⇒ byte-identical
//!   export, which CI asserts.
//! * **Reports** ([`report`]): a human-readable end-of-run summary table
//!   used by the examples and the chaos harness.
//!
//! The whole layer is opt-in. Every instrumented constructor takes a
//! [`TelemetryHandle`]; the [`Default`] handle is a no-op whose recording
//! calls are a single branch on `Option::None`, and building with the
//! `compile-out` feature removes even that branch. Disabled telemetry
//! allocates nothing.
//!
//! ```
//! use vlsi_telemetry::TelemetryHandle;
//!
//! let t = TelemetryHandle::active();
//! t.count("noc.link_crossings", 3);
//! t.record("runtime.wait", 17); // lands in the [16, 32) bucket
//! t.span_begin("runtime", "job", 0, 10);
//! t.span_end("runtime", "job", 0, 42);
//! let snap = t.snapshot();
//! if t.is_enabled() { // false when built with `compile-out`
//!     assert_eq!(snap.counter("noc.link_crossings"), 3);
//!     assert!(snap.to_json().contains("runtime.wait"));
//! }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod handle;
mod histogram;
mod registry;
pub mod report;
mod snapshot;
mod trace;

pub use handle::TelemetryHandle;
pub use histogram::{Histogram, HISTOGRAM_BUCKETS};
pub use registry::Registry;
pub use snapshot::{Snapshot, SnapshotValue};
pub use trace::{SpanEvent, SpanPhase, Trace, TRACE_CAPACITY_DEFAULT};

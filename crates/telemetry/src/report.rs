//! Human-readable end-of-run summary tables.

use crate::snapshot::{Snapshot, SnapshotValue};

/// Renders a snapshot as an aligned plain-text table, one instrument per
/// row, suitable for printing at the end of a run:
///
/// ```text
/// instrument                kind        value  min  max  mean
/// ------------------------  ---------  ------  ---  ---  ----
/// noc.link_crossings        counter       312
/// runtime.wait              histogram      55    0  410    96
/// ```
///
/// Counters and gauges show their value; histograms show the sample
/// count plus exact min/max and the integer mean.
pub fn render(snapshot: &Snapshot) -> String {
    let mut rows: Vec<[String; 6]> = vec![[
        "instrument".to_string(),
        "kind".to_string(),
        "value".to_string(),
        "min".to_string(),
        "max".to_string(),
        "mean".to_string(),
    ]];
    for (name, v) in snapshot.entries() {
        let row = match v {
            SnapshotValue::Counter(c) => [
                name.clone(),
                "counter".to_string(),
                c.to_string(),
                String::new(),
                String::new(),
                String::new(),
            ],
            SnapshotValue::Gauge(g) => [
                name.clone(),
                "gauge".to_string(),
                g.to_string(),
                String::new(),
                String::new(),
                String::new(),
            ],
            SnapshotValue::Histogram(h) => [
                name.clone(),
                "histogram".to_string(),
                h.count().to_string(),
                h.min().to_string(),
                h.max().to_string(),
                h.mean().to_string(),
            ],
        };
        rows.push(row);
    }
    let mut widths = [0usize; 6];
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    for (i, row) in rows.iter().enumerate() {
        let mut line = String::new();
        for (col, cell) in row.iter().enumerate() {
            if col > 0 {
                line.push_str("  ");
            }
            if col == 0 {
                // Left-align names; right-align numbers.
                line.push_str(&format!("{:<width$}", cell, width = widths[col]));
            } else {
                line.push_str(&format!("{:>width$}", cell, width = widths[col]));
            }
        }
        out.push_str(line.trim_end());
        out.push('\n');
        if i == 0 {
            let mut rule = String::new();
            for (col, w) in widths.iter().enumerate() {
                if col > 0 {
                    rule.push_str("  ");
                }
                rule.push_str(&"-".repeat(*w));
            }
            out.push_str(rule.trim_end());
            out.push('\n');
        }
    }
    if snapshot.dropped_spans() > 0 {
        out.push_str(&format!(
            "({} span events dropped at trace capacity)\n",
            snapshot.dropped_spans()
        ));
    }
    let losses: Vec<String> = snapshot
        .entries()
        .iter()
        .filter_map(|(name, v)| match v {
            SnapshotValue::Counter(c) if *c > 0 && is_loss_counter(name) => {
                Some(format!("{name}={c}"))
            }
            _ => None,
        })
        .collect();
    if !losses.is_empty() {
        out.push_str(&format!("(loss accounting: {})\n", losses.join(", ")));
    }
    out
}

/// Counters that record work leaving the system without completing —
/// surfaced in a dedicated report footer so a lossy run is impossible
/// to miss in a scrolled table.
fn is_loss_counter(name: &str) -> bool {
    name == "runtime.events_dropped"
        || name == "ingest.gave_up"
        || name.starts_with("fabric.jobs_lost")
        || name.starts_with("ingest.shed.")
        || name.starts_with("ingest.rejected.")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn table_lists_every_instrument() {
        let mut r = Registry::new();
        r.count("noc.link_crossings", 312);
        r.gauge_set("csd.occupancy", 9);
        r.record("runtime.wait", 17);
        let table = render(&r.snapshot());
        assert!(table.contains("instrument"));
        assert!(table.contains("noc.link_crossings"));
        assert!(table.contains("counter"));
        assert!(table.contains("csd.occupancy"));
        assert!(table.contains("gauge"));
        assert!(table.contains("runtime.wait"));
        assert!(table.contains("histogram"));
        // Header + rule + 3 instrument rows.
        assert_eq!(table.lines().count(), 5);
    }

    #[test]
    fn saturation_counter_appears_in_the_table() {
        let mut r = Registry::new();
        r.record("lat", u64::MAX);
        r.record("lat", u64::MAX);
        let table = render(&r.snapshot());
        let line = table
            .lines()
            .find(|l| l.starts_with(Registry::SATURATED_COUNTER))
            .expect("telemetry.saturated row in report table");
        assert!(line.contains("counter"));
        assert!(line.trim_end().ends_with('1'));
    }

    #[test]
    fn empty_snapshot_renders_header_only() {
        let table = render(&Snapshot::default());
        assert_eq!(table.lines().count(), 2);
    }

    #[test]
    fn loss_counters_surface_in_a_footer() {
        let mut r = Registry::new();
        r.count("runtime.events_dropped", 3);
        r.count("fabric.jobs_lost.no_live_chip", 1);
        r.count("ingest.shed.deadline", 7);
        r.count("noc.link_crossings", 500);
        let table = render(&r.snapshot());
        let footer = table.lines().last().unwrap();
        assert!(footer.starts_with("(loss accounting:"), "footer: {footer}");
        assert!(footer.contains("runtime.events_dropped=3"));
        assert!(footer.contains("fabric.jobs_lost.no_live_chip=1"));
        assert!(footer.contains("ingest.shed.deadline=7"));
        assert!(!footer.contains("noc.link_crossings"), "not a loss class");
    }

    #[test]
    fn lossless_run_renders_no_footer() {
        let mut r = Registry::new();
        r.count("runtime.submissions", 10);
        let table = render(&r.snapshot());
        assert_eq!(table.lines().count(), 3, "header + rule + one row only");
    }
}

//! Human-readable end-of-run summary tables.

use crate::snapshot::{Snapshot, SnapshotValue};

/// Renders a snapshot as an aligned plain-text table, one instrument per
/// row, suitable for printing at the end of a run:
///
/// ```text
/// instrument                kind        value  min  max  mean
/// ------------------------  ---------  ------  ---  ---  ----
/// noc.link_crossings        counter       312
/// runtime.wait              histogram      55    0  410    96
/// ```
///
/// Counters and gauges show their value; histograms show the sample
/// count plus exact min/max and the integer mean.
pub fn render(snapshot: &Snapshot) -> String {
    let mut rows: Vec<[String; 6]> = vec![[
        "instrument".to_string(),
        "kind".to_string(),
        "value".to_string(),
        "min".to_string(),
        "max".to_string(),
        "mean".to_string(),
    ]];
    for (name, v) in snapshot.entries() {
        let row = match v {
            SnapshotValue::Counter(c) => [
                name.clone(),
                "counter".to_string(),
                c.to_string(),
                String::new(),
                String::new(),
                String::new(),
            ],
            SnapshotValue::Gauge(g) => [
                name.clone(),
                "gauge".to_string(),
                g.to_string(),
                String::new(),
                String::new(),
                String::new(),
            ],
            SnapshotValue::Histogram(h) => [
                name.clone(),
                "histogram".to_string(),
                h.count().to_string(),
                h.min().to_string(),
                h.max().to_string(),
                h.mean().to_string(),
            ],
        };
        rows.push(row);
    }
    let mut widths = [0usize; 6];
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    for (i, row) in rows.iter().enumerate() {
        let mut line = String::new();
        for (col, cell) in row.iter().enumerate() {
            if col > 0 {
                line.push_str("  ");
            }
            if col == 0 {
                // Left-align names; right-align numbers.
                line.push_str(&format!("{:<width$}", cell, width = widths[col]));
            } else {
                line.push_str(&format!("{:>width$}", cell, width = widths[col]));
            }
        }
        out.push_str(line.trim_end());
        out.push('\n');
        if i == 0 {
            let mut rule = String::new();
            for (col, w) in widths.iter().enumerate() {
                if col > 0 {
                    rule.push_str("  ");
                }
                rule.push_str(&"-".repeat(*w));
            }
            out.push_str(rule.trim_end());
            out.push('\n');
        }
    }
    if snapshot.dropped_spans() > 0 {
        out.push_str(&format!(
            "({} span events dropped at trace capacity)\n",
            snapshot.dropped_spans()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn table_lists_every_instrument() {
        let mut r = Registry::new();
        r.count("noc.link_crossings", 312);
        r.gauge_set("csd.occupancy", 9);
        r.record("runtime.wait", 17);
        let table = render(&r.snapshot());
        assert!(table.contains("instrument"));
        assert!(table.contains("noc.link_crossings"));
        assert!(table.contains("counter"));
        assert!(table.contains("csd.occupancy"));
        assert!(table.contains("gauge"));
        assert!(table.contains("runtime.wait"));
        assert!(table.contains("histogram"));
        // Header + rule + 3 instrument rows.
        assert_eq!(table.lines().count(), 5);
    }

    #[test]
    fn saturation_counter_appears_in_the_table() {
        let mut r = Registry::new();
        r.record("lat", u64::MAX);
        r.record("lat", u64::MAX);
        let table = render(&r.snapshot());
        let line = table
            .lines()
            .find(|l| l.starts_with(Registry::SATURATED_COUNTER))
            .expect("telemetry.saturated row in report table");
        assert!(line.contains("counter"));
        assert!(line.trim_end().ends_with('1'));
    }

    #[test]
    fn empty_snapshot_renders_header_only() {
        let table = render(&Snapshot::default());
        assert_eq!(table.lines().count(), 2);
    }
}

//! The cloneable handle instrumented code records through.

use crate::registry::Registry;
use crate::snapshot::Snapshot;
use crate::trace::{SpanEvent, SpanPhase};
use std::sync::{Arc, Mutex, MutexGuard};

/// A shared, cloneable handle onto one telemetry [`Registry`].
///
/// Instrumented constructors take one of these; clones record into the
/// same registry, so a chip and the runtime driving it share a single
/// set of instruments. The [`Default`] handle is **disabled**: every
/// recording call is a single branch on `Option::None` and allocates
/// nothing. Building with the `compile-out` cargo feature compiles even
/// that branch away — recording methods become empty and
/// [`TelemetryHandle::active`] yields a disabled handle, which the
/// overhead bench relies on.
#[derive(Clone, Debug, Default)]
pub struct TelemetryHandle {
    inner: Option<Arc<Mutex<Registry>>>,
}

impl TelemetryHandle {
    /// A live handle backed by a fresh registry.
    #[cfg(not(feature = "compile-out"))]
    pub fn active() -> TelemetryHandle {
        TelemetryHandle {
            inner: Some(Arc::new(Mutex::new(Registry::new()))),
        }
    }

    /// With `compile-out`, even "active" handles are inert.
    #[cfg(feature = "compile-out")]
    pub fn active() -> TelemetryHandle {
        TelemetryHandle { inner: None }
    }

    /// The no-op handle (same as [`Default`]).
    pub fn disabled() -> TelemetryHandle {
        TelemetryHandle { inner: None }
    }

    /// A *child* handle: live exactly when `self` is live, but backed by
    /// its own fresh registry — nothing recorded through the fork is
    /// visible here until [`absorb`](Self::absorb) or
    /// [`merge_from`](Self::merge_from) folds it back.
    ///
    /// This is the shard-local pattern the parallel paths use: each
    /// worker records into a fork with no lock contention, and the
    /// owner absorbs the forks on a fixed schedule (shard order, chip
    /// index order), which keeps merged exports deterministic.
    pub fn fork(&self) -> TelemetryHandle {
        if self.is_enabled() {
            TelemetryHandle {
                inner: Some(Arc::new(Mutex::new(Registry::new()))),
            }
        } else {
            TelemetryHandle::disabled()
        }
    }

    /// Folds `other`'s instruments into this handle's registry without
    /// touching `other` (counters/gauges add, histograms merge, traces
    /// append — see [`Registry::merge_from`]). No-op when either handle
    /// is disabled or both share one registry.
    pub fn merge_from(&self, other: &TelemetryHandle) {
        let (Some(a), Some(b)) = (&self.inner, &other.inner) else {
            return;
        };
        if Arc::ptr_eq(a, b) {
            return;
        }
        // Clone `other`'s registry out before locking ours: the locks
        // are never held together, so two handles can merge either way
        // around without ordering concerns.
        let theirs = b.lock().unwrap_or_else(|e| e.into_inner()).clone();
        a.lock()
            .unwrap_or_else(|e| e.into_inner())
            .merge_from(&theirs);
    }

    /// [`merge_from`](Self::merge_from), but *draining*: `other`'s
    /// registry is left empty (fresh, default trace capacity). The
    /// per-tick absorb the sharded NoC uses — forks accumulate during a
    /// parallel region, the owner drains them in shard order after.
    pub fn absorb(&self, other: &TelemetryHandle) {
        let (Some(a), Some(b)) = (&self.inner, &other.inner) else {
            return;
        };
        if Arc::ptr_eq(a, b) {
            return;
        }
        let theirs = std::mem::take(&mut *b.lock().unwrap_or_else(|e| e.into_inner()));
        a.lock()
            .unwrap_or_else(|e| e.into_inner())
            .merge_from(&theirs);
    }

    /// Whether recording calls reach a registry.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn lock(&self) -> Option<MutexGuard<'_, Registry>> {
        // Poisoning can't corrupt plain counters; keep recording.
        self.inner
            .as_ref()
            .map(|m| m.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Adds `n` to the counter `name`.
    pub fn count(&self, name: &'static str, n: u64) {
        if let Some(mut r) = self.lock() {
            r.count(name, n);
        }
    }

    /// Adds `n` to lane `index` of the counter family `name`
    /// (rendered `name[index]` in exports).
    pub fn count_at(&self, name: &'static str, index: u64, n: u64) {
        if let Some(mut r) = self.lock() {
            r.count_at(name, index, n);
        }
    }

    /// Sets the gauge `name` to `value`.
    pub fn gauge_set(&self, name: &'static str, value: i64) {
        if let Some(mut r) = self.lock() {
            r.gauge_set(name, value);
        }
    }

    /// Adds `delta` (possibly negative) to the gauge `name`.
    pub fn gauge_add(&self, name: &'static str, delta: i64) {
        if let Some(mut r) = self.lock() {
            r.gauge_add(name, delta);
        }
    }

    /// Sets lane `index` of the gauge family `name` (rendered
    /// `name[index]` in exports).
    pub fn gauge_set_at(&self, name: &'static str, index: u64, value: i64) {
        if let Some(mut r) = self.lock() {
            r.gauge_set_at(name, index, value);
        }
    }

    /// Records a sample into the log2 histogram `name`.
    pub fn record(&self, name: &'static str, value: u64) {
        if let Some(mut r) = self.lock() {
            r.record(name, value);
        }
    }

    fn span(&self, track: &'static str, name: &'static str, id: u64, cycle: u64, phase: SpanPhase) {
        if let Some(mut r) = self.lock() {
            r.span(SpanEvent {
                track,
                name,
                id,
                cycle,
                phase,
            });
        }
    }

    /// Opens span `name` on `track`, lane `id`, at simulated `cycle`.
    pub fn span_begin(&self, track: &'static str, name: &'static str, id: u64, cycle: u64) {
        self.span(track, name, id, cycle, SpanPhase::Begin);
    }

    /// Closes span `name` on `track`, lane `id`, at simulated `cycle`.
    pub fn span_end(&self, track: &'static str, name: &'static str, id: u64, cycle: u64) {
        self.span(track, name, id, cycle, SpanPhase::End);
    }

    /// Marks a zero-duration event on `track`, lane `id`, at `cycle`.
    pub fn instant(&self, track: &'static str, name: &'static str, id: u64, cycle: u64) {
        self.span(track, name, id, cycle, SpanPhase::Instant);
    }

    /// Replaces the trace buffer's event capacity.
    pub fn set_trace_capacity(&self, capacity: usize) {
        if let Some(mut r) = self.lock() {
            r.set_trace_capacity(capacity);
        }
    }

    /// A sorted, integer-only snapshot of every instrument. Disabled
    /// handles yield an empty snapshot.
    pub fn snapshot(&self) -> Snapshot {
        match self.lock() {
            Some(r) => r.snapshot(),
            None => Snapshot::default(),
        }
    }

    /// The trace rendered as Chrome `trace_event` JSON. Disabled handles
    /// yield an empty-but-valid document.
    pub fn trace_chrome_json(&self) -> String {
        match self.lock() {
            Some(r) => r.trace().to_chrome_json(),
            None => String::from("{\"traceEvents\":[]}"),
        }
    }

    /// Span events recorded so far (0 when disabled).
    pub fn span_count(&self) -> usize {
        match self.lock() {
            Some(r) => r.trace().events().len(),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = TelemetryHandle::disabled();
        assert!(!t.is_enabled());
        t.count("x", 5);
        t.record("h", 9);
        t.span_begin("noc", "worm", 1, 0);
        assert!(t.snapshot().is_empty());
        assert_eq!(t.span_count(), 0);
        assert_eq!(t.trace_chrome_json(), "{\"traceEvents\":[]}");
    }

    #[test]
    fn default_is_disabled() {
        assert!(!TelemetryHandle::default().is_enabled());
    }

    #[cfg(not(feature = "compile-out"))]
    #[test]
    fn clones_share_one_registry() {
        let t = TelemetryHandle::active();
        let u = t.clone();
        t.count("x", 2);
        u.count("x", 3);
        assert_eq!(t.snapshot().counter("x"), 5);
    }

    #[cfg(not(feature = "compile-out"))]
    #[test]
    fn fork_isolates_until_absorbed() {
        let t = TelemetryHandle::active();
        t.count("x", 1);
        let f = t.fork();
        assert!(f.is_enabled());
        f.count("x", 2);
        f.record("lat", 8);
        assert_eq!(t.snapshot().counter("x"), 1, "fork is isolated");
        t.absorb(&f);
        assert_eq!(t.snapshot().counter("x"), 3);
        assert_eq!(t.snapshot().histogram("lat").unwrap().count(), 1);
        // Absorb drains: a second absorb adds nothing.
        t.absorb(&f);
        assert_eq!(t.snapshot().counter("x"), 3);
        // The drained fork keeps working.
        f.count("x", 5);
        t.merge_from(&f);
        assert_eq!(t.snapshot().counter("x"), 8);
        // merge_from does not drain.
        t.merge_from(&f);
        assert_eq!(t.snapshot().counter("x"), 13);
    }

    #[cfg(not(feature = "compile-out"))]
    #[test]
    fn self_and_clone_merges_are_no_ops() {
        let t = TelemetryHandle::active();
        t.count("x", 2);
        let c = t.clone();
        t.merge_from(&c); // same registry: must not deadlock or double
        t.absorb(&c);
        assert_eq!(t.snapshot().counter("x"), 2);
        let d = TelemetryHandle::disabled();
        t.merge_from(&d);
        t.absorb(&d);
        assert!(!d.fork().is_enabled());
        assert_eq!(t.snapshot().counter("x"), 2);
    }

    #[cfg(feature = "compile-out")]
    #[test]
    fn compile_out_makes_active_inert() {
        let t = TelemetryHandle::active();
        assert!(!t.is_enabled());
        t.count("x", 2);
        assert!(t.snapshot().is_empty());
    }
}

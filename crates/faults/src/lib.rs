//! # vlsi-faults — deterministic cross-layer fault injection
//!
//! The paper's scaling operations (§3.3–3.4) assume configuration worms
//! program switches flawlessly, but a production-scale mesh treats link
//! and switch failure as routine (Epiphany-V-class arrays; the DNP's
//! explicit error-notification and retransmission path). This crate is
//! the single source of truth for *what breaks, where, and when* across
//! every transport layer of the reproduction:
//!
//! * **NoC** — link failures ([`FaultKind::LinkDown`]), flit
//!   bit-corruption ([`FaultKind::LinkCorrupt`]), and router input-queue
//!   stalls ([`FaultKind::RouterStall`]);
//! * **CSD** — channel-segment failures ([`FaultKind::CsdSegment`]);
//! * **S-topology** — programmable-switch stuck-at faults
//!   ([`FaultKind::SwitchStuck`]).
//!
//! A [`FaultPlan`] is built from a seed and per-layer rates by
//! [`FaultPlanBuilder`]; every draw comes from the workspace's SplitMix64
//! generator, so identical seeds yield bit-identical plans on every
//! machine. Each fault carries an activation time and a duration —
//! [`Fault::transient`] faults heal, [`Fault::permanent`] ones do not —
//! and the plan answers point queries (`link_blocked`, `corruption`,
//! `router_stalled`, …) that the transport simulators call from their
//! cycle loops. Time units are the *consumer's*: the NoC interprets them
//! as router cycles, the runtime as scheduler ticks.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use vlsi_prng::Prng;
use vlsi_topology::{Coord, Dir};

/// What breaks. Locations use each layer's native addressing: NoC faults
/// sit on a router coordinate (and, for links, the outgoing direction),
/// CSD faults on a `(channel, segment)` pair, switch faults on a cluster
/// coordinate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// The link leaving the router at `at` toward `dir` drops every flit
    /// offered while the fault is active (flits wait; nothing crosses).
    LinkDown {
        /// Router the link leaves from.
        at: Coord,
        /// Outgoing direction of the failed link.
        dir: Dir,
    },
    /// The link leaving `at` toward `dir` XORs `mask` into the data word
    /// of every payload flit that crosses while the fault is active.
    LinkCorrupt {
        /// Router the link leaves from.
        at: Coord,
        /// Outgoing direction of the corrupting link.
        dir: Dir,
        /// Bit pattern XORed into crossing payload words (nonzero).
        mask: u64,
    },
    /// The router at `at` cannot run its allocation stage: input queues
    /// stop draining while the fault is active.
    RouterStall {
        /// The stalled router.
        at: Coord,
    },
    /// Segment `segment` of CSD channel `channel` fails: it can carry no
    /// communication until repaired.
    CsdSegment {
        /// The channel index.
        channel: usize,
        /// The segment index within the channel.
        segment: usize,
    },
    /// The programmable switch at `at` is stuck: it rejects all further
    /// programming, so the cluster cannot join (or stay in) a region.
    SwitchStuck {
        /// The stuck cluster.
        at: Coord,
    },
    /// Cluster-level: the whole chip at fleet index `chip` dies — clock
    /// gone, NoC gone, off-chip links severed. Always treated as
    /// permanent by consumers (a die does not heal); the fabric layer
    /// reacts by rerouting around it and evacuating its jobs.
    ChipDown {
        /// Fleet index of the failed chip.
        chip: u16,
    },
}

/// One scheduled fault: a kind, an activation time, and a duration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Fault {
    /// What breaks and where.
    pub kind: FaultKind,
    /// The time unit (cycle or tick) the fault activates at.
    pub start: u64,
    /// How long it stays active; `None` means permanent.
    pub duration: Option<u64>,
}

impl Fault {
    /// A fault active on `[start, start + duration)`.
    pub fn transient(kind: FaultKind, start: u64, duration: u64) -> Fault {
        Fault {
            kind,
            start,
            duration: Some(duration),
        }
    }

    /// A fault active on `[start, ∞)`.
    pub fn permanent(kind: FaultKind, start: u64) -> Fault {
        Fault {
            kind,
            start,
            duration: None,
        }
    }

    /// Whether the fault never heals.
    pub fn is_permanent(&self) -> bool {
        self.duration.is_none()
    }

    /// Whether the fault is active at time `t`.
    pub fn active_at(&self, t: u64) -> bool {
        t >= self.start
            && match self.duration {
                None => true,
                Some(d) => t < self.start.saturating_add(d),
            }
    }
}

/// A deterministic schedule of faults across all transport layers.
///
/// ```
/// use vlsi_faults::{FaultPlan, FaultPlanBuilder};
/// use vlsi_topology::Coord;
///
/// let plan = FaultPlanBuilder::new(42)
///     .grid(4, 4)
///     .horizon(1_000)
///     .link_down_rate(0.05)
///     .switch_stuck_rate(0.02)
///     .build();
/// let replay = FaultPlanBuilder::new(42)
///     .grid(4, 4)
///     .horizon(1_000)
///     .link_down_rate(0.05)
///     .switch_stuck_rate(0.02)
///     .build();
/// assert_eq!(plan.faults(), replay.faults()); // same seed, same plan
/// assert!(FaultPlan::none().is_empty());
/// let _ = plan.link_blocked(500, Coord::new(1, 1), vlsi_topology::Dir::East);
/// ```
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan (perfect hardware).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan from an explicit fault list (tests and targeted injection).
    pub fn from_faults(faults: impl IntoIterator<Item = Fault>) -> FaultPlan {
        FaultPlan {
            faults: faults.into_iter().collect(),
        }
    }

    /// Appends one fault to the schedule.
    pub fn push(&mut self, fault: Fault) {
        self.faults.push(fault);
    }

    /// Whether the plan schedules no fault at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Every scheduled fault, in schedule order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Whether the link leaving `at` toward `dir` is down at `t`.
    pub fn link_blocked(&self, t: u64, at: Coord, dir: Dir) -> bool {
        self.faults.iter().any(|f| {
            matches!(f.kind, FaultKind::LinkDown { at: a, dir: d } if a == at && d == dir)
                && f.active_at(t)
        })
    }

    /// Whether the link leaving `at` toward `dir` is *permanently* dead
    /// as of `t` — the only faults adaptive routing detours around
    /// (transient outages are cheaper to wait out in place).
    pub fn link_dead(&self, t: u64, at: Coord, dir: Dir) -> bool {
        self.faults.iter().any(|f| {
            matches!(f.kind, FaultKind::LinkDown { at: a, dir: d } if a == at && d == dir)
                && f.is_permanent()
                && f.active_at(t)
        })
    }

    /// The XOR mask corrupting payload flits crossing `at → dir` at `t`,
    /// if any (multiple active corruptions compose by XOR).
    pub fn corruption(&self, t: u64, at: Coord, dir: Dir) -> Option<u64> {
        let mut mask = 0u64;
        for f in &self.faults {
            if let FaultKind::LinkCorrupt {
                at: a,
                dir: d,
                mask: m,
            } = f.kind
            {
                if a == at && d == dir && f.active_at(t) {
                    mask ^= m;
                }
            }
        }
        (mask != 0).then_some(mask)
    }

    /// Whether the router at `at` is stalled (cannot allocate) at `t`.
    pub fn router_stalled(&self, t: u64, at: Coord) -> bool {
        self.faults.iter().any(|f| {
            matches!(f.kind, FaultKind::RouterStall { at: a } if a == at) && f.active_at(t)
        })
    }

    /// Whether the router at `at` is *permanently* stalled as of `t` —
    /// adaptive routing detours around such routers just like dead links.
    pub fn router_dead(&self, t: u64, at: Coord) -> bool {
        self.faults.iter().any(|f| {
            matches!(f.kind, FaultKind::RouterStall { at: a } if a == at)
                && f.is_permanent()
                && f.active_at(t)
        })
    }

    /// Whether segment `segment` of CSD channel `channel` is failed at
    /// `t`.
    pub fn csd_segment_down(&self, t: u64, channel: usize, segment: usize) -> bool {
        self.faults.iter().any(|f| {
            matches!(f.kind, FaultKind::CsdSegment { channel: c, segment: s }
                if c == channel && s == segment)
                && f.active_at(t)
        })
    }

    /// CSD segment faults that *activate* exactly at `t` (for clockless
    /// consumers that apply faults edge-triggered).
    pub fn csd_segments_activating_at(&self, t: u64) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.faults.iter().filter_map(move |f| match f.kind {
            FaultKind::CsdSegment { channel, segment } if f.start == t => Some((channel, segment)),
            _ => None,
        })
    }

    /// Chip-death faults that activate exactly at `t`, by fleet index
    /// (edge-triggered, like [`switches_sticking_at`]; chip deaths are
    /// permanent regardless of the fault's recorded duration).
    ///
    /// [`switches_sticking_at`]: FaultPlan::switches_sticking_at
    pub fn chips_failing_at(&self, t: u64) -> impl Iterator<Item = u16> + '_ {
        self.faults.iter().filter_map(move |f| match f.kind {
            FaultKind::ChipDown { chip } if f.start == t => Some(chip),
            _ => None,
        })
    }

    /// Switch stuck-at faults that activate exactly at `t`.
    pub fn switches_sticking_at(&self, t: u64) -> impl Iterator<Item = Coord> + '_ {
        self.faults.iter().filter_map(move |f| match f.kind {
            FaultKind::SwitchStuck { at } if f.start == t => Some(at),
            _ => None,
        })
    }

    /// Permanent NoC faults (dead link or stalled-forever router) that
    /// activate exactly at `t`, by the router coordinate they disable —
    /// what a runtime maps to "this cluster can no longer be reached".
    pub fn noc_failures_at(&self, t: u64) -> impl Iterator<Item = Coord> + '_ {
        self.faults
            .iter()
            .filter(move |f| f.is_permanent() && f.start == t)
            .filter_map(|f| match f.kind {
                FaultKind::LinkDown { at, .. } | FaultKind::RouterStall { at } => Some(at),
                _ => None,
            })
    }

    /// The latest activation time in the plan (0 for an empty plan) —
    /// useful for sizing simulation horizons.
    pub fn last_activation(&self) -> u64 {
        self.faults.iter().map(|f| f.start).max().unwrap_or(0)
    }
}

/// Builds a [`FaultPlan`] from a seed and per-layer rates.
///
/// Rates are *per site over the horizon*: a `link_down_rate` of 0.05
/// means each directed mesh link independently has a 5% chance of one
/// outage somewhere in `[0, horizon)`. Sites are enumerated in a fixed
/// order, so the plan is a pure function of the builder's parameters.
#[derive(Clone, Debug)]
pub struct FaultPlanBuilder {
    seed: u64,
    width: u16,
    height: u16,
    horizon: u64,
    link_down_rate: f64,
    link_corrupt_rate: f64,
    router_stall_rate: f64,
    csd_channels: usize,
    csd_segments: usize,
    csd_segment_rate: f64,
    switch_stuck_rate: f64,
    cluster_chips: usize,
    chip_down_rate: f64,
    permanent_fraction: f64,
    transient_range: (u64, u64),
}

impl FaultPlanBuilder {
    /// A builder with everything at rate zero on a 1×1 grid.
    pub fn new(seed: u64) -> FaultPlanBuilder {
        FaultPlanBuilder {
            seed,
            width: 1,
            height: 1,
            horizon: 1,
            link_down_rate: 0.0,
            link_corrupt_rate: 0.0,
            router_stall_rate: 0.0,
            csd_channels: 0,
            csd_segments: 0,
            csd_segment_rate: 0.0,
            switch_stuck_rate: 0.0,
            cluster_chips: 0,
            chip_down_rate: 0.0,
            permanent_fraction: 0.25,
            transient_range: (16, 128),
        }
    }

    /// The mesh the NoC/switch sites live on.
    pub fn grid(mut self, width: u16, height: u16) -> Self {
        self.width = width;
        self.height = height;
        self
    }

    /// Activation times are drawn uniformly from `[0, horizon)`.
    pub fn horizon(mut self, horizon: u64) -> Self {
        self.horizon = horizon.max(1);
        self
    }

    /// Per-directed-link probability of one outage over the horizon.
    pub fn link_down_rate(mut self, rate: f64) -> Self {
        self.link_down_rate = rate;
        self
    }

    /// Per-directed-link probability of one corruption window.
    pub fn link_corrupt_rate(mut self, rate: f64) -> Self {
        self.link_corrupt_rate = rate;
        self
    }

    /// Per-router probability of one allocation stall window.
    pub fn router_stall_rate(mut self, rate: f64) -> Self {
        self.router_stall_rate = rate;
        self
    }

    /// The CSD geometry faults are drawn over (`channels × segments`).
    pub fn csd(mut self, channels: usize, segments: usize) -> Self {
        self.csd_channels = channels;
        self.csd_segments = segments;
        self
    }

    /// Per-segment probability of one failure over the horizon.
    pub fn csd_segment_rate(mut self, rate: f64) -> Self {
        self.csd_segment_rate = rate;
        self
    }

    /// Per-cluster probability of a stuck-at switch fault. Switch faults
    /// are always permanent (stuck-at means stuck).
    pub fn switch_stuck_rate(mut self, rate: f64) -> Self {
        self.switch_stuck_rate = rate;
        self
    }

    /// The number of chips in the cluster chip-death faults are drawn
    /// over (0 — the default — disables the chip layer entirely).
    pub fn cluster(mut self, chips: usize) -> Self {
        self.cluster_chips = chips;
        self
    }

    /// Per-chip probability of the whole die failing somewhere in the
    /// horizon. Chip deaths are always permanent.
    pub fn chip_down_rate(mut self, rate: f64) -> Self {
        self.chip_down_rate = rate;
        self
    }

    /// Fraction of NoC/CSD faults that are permanent rather than
    /// transient (clamped to `[0, 1]`; switch faults are always
    /// permanent).
    pub fn permanent_fraction(mut self, fraction: f64) -> Self {
        self.permanent_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Inclusive bounds on transient fault durations.
    pub fn transient_duration(mut self, lo: u64, hi: u64) -> Self {
        self.transient_range = (lo.max(1), hi.max(lo.max(1)));
        self
    }

    fn draw_window(&self, rng: &mut Prng) -> (u64, Option<u64>) {
        let start = rng.gen_range(0..self.horizon);
        let permanent = rng.gen_bool(self.permanent_fraction);
        let duration = if permanent {
            None
        } else {
            let (lo, hi) = self.transient_range;
            Some(rng.gen_range(lo..=hi))
        };
        (start, duration)
    }

    /// Materialises the plan. Deterministic: same parameters, same plan.
    pub fn build(&self) -> FaultPlan {
        let mut faults = Vec::new();
        // Independent streams per layer so adding one rate never shifts
        // another layer's draws.
        let mut link_rng = Prng::seed_from_u64(self.seed ^ 0x4C49_4E4B);
        let mut corrupt_rng = Prng::seed_from_u64(self.seed ^ 0x434F_5252);
        let mut stall_rng = Prng::seed_from_u64(self.seed ^ 0x5354_414C);
        let mut csd_rng = Prng::seed_from_u64(self.seed ^ 0x4353_4447);
        let mut switch_rng = Prng::seed_from_u64(self.seed ^ 0x5357_4348);
        let mut chip_rng = Prng::seed_from_u64(self.seed ^ 0x4348_4950);

        for y in 0..self.height {
            for x in 0..self.width {
                let at = Coord::new(x, y);
                for dir in [Dir::North, Dir::South, Dir::East, Dir::West] {
                    // Only links that stay on the mesh are fault sites.
                    let Some(n) = at.step(dir) else { continue };
                    if n.x >= self.width || n.y >= self.height {
                        continue;
                    }
                    if link_rng.gen_bool(self.link_down_rate) {
                        let (start, duration) = self.draw_window(&mut link_rng);
                        faults.push(Fault {
                            kind: FaultKind::LinkDown { at, dir },
                            start,
                            duration,
                        });
                    }
                    if corrupt_rng.gen_bool(self.link_corrupt_rate) {
                        let (start, duration) = self.draw_window(&mut corrupt_rng);
                        let mask = loop {
                            let m = corrupt_rng.next_u64();
                            if m != 0 {
                                break m;
                            }
                        };
                        faults.push(Fault {
                            kind: FaultKind::LinkCorrupt { at, dir, mask },
                            start,
                            duration,
                        });
                    }
                }
                if stall_rng.gen_bool(self.router_stall_rate) {
                    let (start, duration) = self.draw_window(&mut stall_rng);
                    faults.push(Fault {
                        kind: FaultKind::RouterStall { at },
                        start,
                        duration,
                    });
                }
                if switch_rng.gen_bool(self.switch_stuck_rate) {
                    let start = switch_rng.gen_range(0..self.horizon);
                    faults.push(Fault::permanent(FaultKind::SwitchStuck { at }, start));
                }
            }
        }
        for channel in 0..self.csd_channels {
            for segment in 0..self.csd_segments {
                if csd_rng.gen_bool(self.csd_segment_rate) {
                    let (start, duration) = self.draw_window(&mut csd_rng);
                    faults.push(Fault {
                        kind: FaultKind::CsdSegment { channel, segment },
                        start,
                        duration,
                    });
                }
            }
        }
        for chip in 0..self.cluster_chips {
            if chip_rng.gen_bool(self.chip_down_rate) {
                let start = chip_rng.gen_range(0..self.horizon);
                faults.push(Fault::permanent(
                    FaultKind::ChipDown { chip: chip as u16 },
                    start,
                ));
            }
        }
        FaultPlan { faults }
    }
}

/// End-to-end checksum over a packet payload (FNV-1a 64). The NoC
/// computes it at injection and re-checks it at reassembly; any
/// [`FaultKind::LinkCorrupt`] flip changes the digest.
pub fn payload_checksum(words: &[u64]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_plan(seed: u64) -> FaultPlan {
        FaultPlanBuilder::new(seed)
            .grid(8, 8)
            .horizon(10_000)
            .link_down_rate(0.2)
            .link_corrupt_rate(0.2)
            .router_stall_rate(0.2)
            .csd(4, 31)
            .csd_segment_rate(0.2)
            .switch_stuck_rate(0.2)
            .build()
    }

    #[test]
    fn plans_replay_bit_identically() {
        assert_eq!(busy_plan(7), busy_plan(7));
        assert_ne!(busy_plan(7), busy_plan(8), "different seeds diverge");
    }

    #[test]
    fn zero_rates_yield_an_empty_plan() {
        let plan = FaultPlanBuilder::new(3).grid(8, 8).horizon(1_000).build();
        assert!(plan.is_empty());
        assert!(!plan.link_blocked(0, Coord::new(0, 0), Dir::East));
        assert_eq!(plan.corruption(0, Coord::new(0, 0), Dir::East), None);
    }

    #[test]
    fn windows_respect_start_and_duration() {
        let f = Fault::transient(
            FaultKind::RouterStall {
                at: Coord::new(1, 1),
            },
            10,
            5,
        );
        assert!(!f.active_at(9));
        assert!(f.active_at(10));
        assert!(f.active_at(14));
        assert!(!f.active_at(15));
        let p = Fault::permanent(
            FaultKind::SwitchStuck {
                at: Coord::new(0, 0),
            },
            3,
        );
        assert!(!p.active_at(2));
        assert!(p.active_at(u64::MAX));
    }

    #[test]
    fn queries_see_only_their_layer() {
        let at = Coord::new(2, 2);
        let plan = FaultPlan::from_faults([
            Fault::permanent(FaultKind::LinkDown { at, dir: Dir::East }, 0),
            Fault::transient(
                FaultKind::LinkCorrupt {
                    at,
                    dir: Dir::West,
                    mask: 0xFF,
                },
                5,
                10,
            ),
            Fault::transient(FaultKind::RouterStall { at }, 2, 3),
            Fault::permanent(
                FaultKind::CsdSegment {
                    channel: 1,
                    segment: 4,
                },
                7,
            ),
            Fault::permanent(FaultKind::SwitchStuck { at }, 9),
        ]);
        assert!(plan.link_blocked(0, at, Dir::East));
        assert!(plan.link_dead(0, at, Dir::East));
        assert!(!plan.link_blocked(0, at, Dir::West));
        assert_eq!(plan.corruption(6, at, Dir::West), Some(0xFF));
        assert_eq!(plan.corruption(20, at, Dir::West), None);
        assert!(plan.router_stalled(3, at));
        assert!(!plan.router_stalled(5, at));
        assert!(plan.csd_segment_down(7, 1, 4));
        assert!(!plan.csd_segment_down(6, 1, 4));
        assert_eq!(plan.switches_sticking_at(9).collect::<Vec<_>>(), vec![at]);
        assert_eq!(plan.switches_sticking_at(8).count(), 0);
        assert_eq!(plan.last_activation(), 9);
    }

    #[test]
    fn transient_links_block_but_are_not_dead() {
        let at = Coord::new(0, 0);
        let plan = FaultPlan::from_faults([Fault::transient(
            FaultKind::LinkDown { at, dir: Dir::East },
            0,
            100,
        )]);
        assert!(plan.link_blocked(50, at, Dir::East));
        assert!(!plan.link_dead(50, at, Dir::East));
    }

    #[test]
    fn noc_failures_map_to_router_coords() {
        let a = Coord::new(1, 0);
        let b = Coord::new(2, 3);
        let plan = FaultPlan::from_faults([
            Fault::permanent(
                FaultKind::LinkDown {
                    at: a,
                    dir: Dir::East,
                },
                4,
            ),
            Fault::permanent(FaultKind::RouterStall { at: b }, 4),
            Fault::transient(
                FaultKind::LinkDown {
                    at: b,
                    dir: Dir::West,
                },
                4,
                2,
            ),
        ]);
        let got: Vec<Coord> = plan.noc_failures_at(4).collect();
        assert_eq!(got, vec![a, b], "transient faults are not cluster deaths");
    }

    #[test]
    fn chip_deaths_are_permanent_and_edge_triggered() {
        let build = || {
            FaultPlanBuilder::new(5)
                .horizon(100)
                .cluster(8)
                .chip_down_rate(0.5)
                .build()
        };
        let plan = build();
        assert!(!plan.is_empty(), "0.5 over 8 chips should fire");
        assert_eq!(plan, build(), "chip layer replays bit-identically");
        assert!(plan.faults().iter().all(Fault::is_permanent));
        let fired: Vec<u16> = (0..100).flat_map(|t| plan.chips_failing_at(t)).collect();
        assert_eq!(fired.len(), plan.faults().len());
        assert!(fired.iter().all(|&c| c < 8));
        // The chip stream is independent: enabling it must not disturb
        // the other layers' draws.
        let base = FaultPlanBuilder::new(5)
            .grid(4, 4)
            .horizon(100)
            .link_down_rate(0.3)
            .build();
        let with_chips = FaultPlanBuilder::new(5)
            .grid(4, 4)
            .horizon(100)
            .link_down_rate(0.3)
            .cluster(8)
            .chip_down_rate(0.5)
            .build();
        assert_eq!(
            base.faults(),
            &with_chips.faults()[..base.faults().len()],
            "link draws unchanged by the chip layer"
        );
    }

    #[test]
    fn rates_scale_fault_counts() {
        let low = FaultPlanBuilder::new(11)
            .grid(8, 8)
            .horizon(1_000)
            .link_down_rate(0.01)
            .build();
        let high = FaultPlanBuilder::new(11)
            .grid(8, 8)
            .horizon(1_000)
            .link_down_rate(0.5)
            .build();
        assert!(low.faults().len() < high.faults().len());
    }

    #[test]
    fn checksum_detects_any_single_mask() {
        let payload = [1u64, 2, 3, 4];
        let base = payload_checksum(&payload);
        let mut r = Prng::seed_from_u64(99);
        for _ in 0..1_000 {
            let i = r.gen_range(0..payload.len());
            let mask = loop {
                let m = r.next_u64();
                if m != 0 {
                    break m;
                }
            };
            let mut corrupted = payload;
            corrupted[i] ^= mask;
            assert_ne!(payload_checksum(&corrupted), base);
        }
        assert_eq!(payload_checksum(&[]), payload_checksum(&[]));
    }
}

//! Property-based tests for the submission ring.
//!
//! The ring is the determinism boundary of the ingestion layer, so its
//! invariants are checked over randomised capacities, batch shapes, and
//! enqueue-during-drain interleavings rather than a few handpicked
//! cases:
//!
//! * drain order == enqueue order, with contiguous global positions;
//! * a full ring always reports typed backpressure, never drops;
//! * wrap-around over many laps never corrupts or reorders;
//! * interleaving pushes between pops (the "producers racing the tick
//!   boundary" shape, serialised) preserves exactly-once delivery.

use proptest::prelude::*;
use vlsi_ingest::{IngestError, SubmissionRing};

proptest! {
    /// Positions come back contiguous from 0 and values in enqueue
    /// order, across arbitrary capacities and batch sizes.
    #[test]
    fn drain_order_is_enqueue_order(cap in 1usize..32, n in 0usize..80) {
        let ring = SubmissionRing::new(cap);
        let mut expect = Vec::new();
        for v in 0..n as u64 {
            match ring.try_push(v) {
                Ok(pos) => {
                    prop_assert_eq!(pos, expect.len() as u64);
                    expect.push(v);
                }
                Err(IngestError::RingFull { capacity }) => {
                    prop_assert_eq!(capacity, cap.max(1));
                    prop_assert_eq!(ring.len(), cap.max(1), "full means full");
                    break;
                }
                Err(e) => prop_assert!(false, "unexpected error {e:?}"),
            }
        }
        let drained = ring.drain();
        prop_assert_eq!(
            drained,
            expect.iter().enumerate().map(|(i, &v)| (i as u64, v)).collect::<Vec<_>>()
        );
        prop_assert!(ring.is_empty());
    }

    /// At capacity every further push is typed backpressure, and one
    /// pop frees exactly one slot.
    #[test]
    fn full_ring_backpressures_and_frees_slot_by_slot(cap in 1usize..24) {
        let ring = SubmissionRing::new(cap);
        for v in 0..cap as u64 {
            prop_assert!(ring.try_push(v).is_ok());
        }
        for _ in 0..3 {
            prop_assert_eq!(
                ring.try_push(999),
                Err(IngestError::RingFull { capacity: cap.max(1) })
            );
        }
        for lap in 0..cap as u64 {
            prop_assert_eq!(ring.try_pop(), Some((lap, lap)));
            prop_assert!(ring.try_push(100 + lap).is_ok(), "pop frees a push");
            prop_assert_eq!(
                ring.try_push(999),
                Err(IngestError::RingFull { capacity: cap.max(1) }),
                "still full after the paired push"
            );
        }
    }

    /// Many laps around a small ring: the global position sequence
    /// stays contiguous and values arrive exactly once, in order.
    #[test]
    fn wrap_around_preserves_order_across_laps(
        cap in 1usize..8,
        laps in 1usize..40,
        batch in 1usize..6,
    ) {
        let ring = SubmissionRing::new(cap);
        let mut next_value = 0u64;
        let mut next_pos = 0u64;
        for _ in 0..laps {
            let mut pushed = 0;
            while pushed < batch {
                match ring.try_push(next_value) {
                    Ok(pos) => {
                        prop_assert_eq!(pos, next_value);
                        next_value += 1;
                        pushed += 1;
                    }
                    Err(_) => break,
                }
            }
            for (pos, v) in ring.drain() {
                prop_assert_eq!(pos, next_pos);
                prop_assert_eq!(v, next_pos);
                next_pos += 1;
            }
        }
        prop_assert_eq!(next_pos, next_value, "everything pushed was drained");
    }

    /// Enqueue-during-drain interleavings: a seed-driven schedule of
    /// pushes and pops (the serialised shape of producers racing the
    /// consumer) delivers every value exactly once, in enqueue order.
    #[test]
    fn interleaved_push_pop_is_exactly_once(
        cap in 1usize..12,
        ops in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        let ring = SubmissionRing::new(cap);
        let mut pushed = 0u64;
        let mut popped = Vec::new();
        for push in ops {
            if push {
                if ring.try_push(pushed).is_ok() {
                    pushed += 1;
                }
            } else if let Some((pos, v)) = ring.try_pop() {
                prop_assert_eq!(pos, v, "position tracks value by construction");
                popped.push(v);
            }
        }
        for (_, v) in ring.drain() {
            popped.push(v);
        }
        prop_assert_eq!(popped, (0..pushed).collect::<Vec<_>>());
    }
}

//! Client-side resilience: capped exponential retry-with-backoff on
//! ring backpressure, plus submission timeouts.
//!
//! The [`IngestClient`] is a deterministic producer harness: every
//! [`IngestError::RingFull`](crate::error::IngestError::RingFull) it
//! absorbs schedules a retry at `now + min(cap, base << attempt) +
//! jitter`, with the jitter drawn from the deterministic PRNG — so a
//! replay with the same seed backs off identically. A request that
//! exhausts its attempts or outlives its submission timeout is *given
//! up*, counted in [`ClientStats::gave_up`]; nothing ever vanishes.

use std::collections::BTreeMap;
use std::sync::Arc;

use vlsi_prng::Prng;
use vlsi_runtime::JobSpec;
use vlsi_telemetry::TelemetryHandle;

use crate::ring::SubmissionRing;
use crate::service::SubmitRequest;

/// Tunables of the retry policy.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Total enqueue attempts per request (first try included).
    pub max_attempts: u32,
    /// Base backoff delay in ticks; attempt `n` waits
    /// `min(backoff_cap, backoff_base << (n - 1))` plus jitter.
    pub backoff_base: u64,
    /// Ceiling on the exponential backoff delay.
    pub backoff_cap: u64,
    /// Ticks after the first attempt at which a still-unenqueued
    /// request is given up regardless of attempts left.
    pub timeout: u64,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            max_attempts: 5,
            backoff_base: 1,
            backoff_cap: 16,
            timeout: 64,
        }
    }
}

/// Producer-side counters; feeds the conservation ledger in
/// [`accounting`](crate::service::accounting).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Requests handed to [`IngestClient::submit`].
    pub arrivals: u64,
    /// Requests that made it into the ring (possibly after retries).
    pub enqueued: u64,
    /// Retry attempts made after backpressure.
    pub retries: u64,
    /// Requests abandoned after exhausting attempts or timing out.
    pub gave_up: u64,
}

struct PendingRetry {
    req: SubmitRequest,
    attempts: u32,
}

/// A deterministic producer with capped exponential backoff. See the
/// [module docs](self).
pub struct IngestClient {
    ring: Arc<SubmissionRing<SubmitRequest>>,
    rng: Prng,
    config: ClientConfig,
    /// Keyed by (due tick, arrival sequence): retries fire in due-tick
    /// order, arrival order breaking ties — fully deterministic.
    pending: BTreeMap<(u64, u64), PendingRetry>,
    next_seq: u64,
    stats: ClientStats,
    telemetry: TelemetryHandle,
}

impl IngestClient {
    /// A client producing into `ring`, with backoff jitter drawn from a
    /// PRNG seeded by `seed`.
    pub fn new(
        ring: Arc<SubmissionRing<SubmitRequest>>,
        seed: u64,
        config: ClientConfig,
    ) -> IngestClient {
        IngestClient::with_telemetry(ring, seed, config, TelemetryHandle::disabled())
    }

    /// [`new`](Self::new) with the client-side `ingest.*` counters
    /// recording into `telemetry`.
    pub fn with_telemetry(
        ring: Arc<SubmissionRing<SubmitRequest>>,
        seed: u64,
        config: ClientConfig,
        telemetry: TelemetryHandle,
    ) -> IngestClient {
        IngestClient {
            ring,
            rng: Prng::seed_from_u64(seed ^ 0xC11E_57A7),
            config,
            pending: BTreeMap::new(),
            next_seq: 0,
            stats: ClientStats::default(),
            telemetry,
        }
    }

    /// Producer-side counters.
    pub fn stats(&self) -> &ClientStats {
        &self.stats
    }

    /// Whether any requests are waiting on a retry.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Requests waiting on a retry.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Submits one request at tick `now`: tries the ring immediately,
    /// scheduling a backoff retry on [`RingFull`] backpressure. Returns
    /// whether the request landed in the ring on this first attempt.
    ///
    /// [`RingFull`]: crate::error::IngestError::RingFull
    pub fn submit(&mut self, now: u64, tenant: u16, spec: JobSpec) -> bool {
        self.stats.arrivals += 1;
        self.telemetry.count("ingest.arrivals", 1);
        let req = SubmitRequest {
            spec,
            tenant,
            first_attempt_at: now,
        };
        self.try_enqueue(now, req, 1)
    }

    /// Fires every retry due at or before `now`, in (due, arrival)
    /// order. Call once per tick, before delivering new arrivals.
    pub fn tick(&mut self, now: u64) {
        while let Some((&key, _)) = self.pending.iter().next() {
            if key.0 > now {
                break;
            }
            let p = self.pending.remove(&key).expect("key just observed");
            self.stats.retries += 1;
            self.telemetry.count("ingest.retries", 1);
            self.try_enqueue(now, p.req, p.attempts + 1);
        }
    }

    /// One enqueue attempt. On backpressure, either schedules the next
    /// retry or gives up — attempts exhausted, or the submission
    /// timeout elapsed since the first attempt.
    fn try_enqueue(&mut self, now: u64, req: SubmitRequest, attempts: u32) -> bool {
        match self.ring.try_push(req.clone()) {
            Ok(_) => {
                self.stats.enqueued += 1;
                self.telemetry.count("ingest.enqueued", 1);
                true
            }
            Err(_) => {
                let timed_out = now.saturating_sub(req.first_attempt_at) >= self.config.timeout;
                if attempts >= self.config.max_attempts || timed_out {
                    self.stats.gave_up += 1;
                    self.telemetry.count("ingest.gave_up", 1);
                    return false;
                }
                let shift = (attempts - 1).min(63);
                let delay = self
                    .config
                    .backoff_cap
                    .min(self.config.backoff_base << shift)
                    .max(1);
                let jitter = self.rng.gen_range(0..=delay / 2);
                let due = now + delay + jitter;
                let seq = self.next_seq;
                self.next_seq += 1;
                self.pending
                    .insert((due, seq), PendingRetry { req, attempts });
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_runtime::Workload;

    fn spec() -> JobSpec {
        JobSpec::new("t", 1, Workload::Idle { ticks: 1 })
    }

    fn tiny_ring() -> Arc<SubmissionRing<SubmitRequest>> {
        let ring = Arc::new(SubmissionRing::new(1));
        ring.try_push(SubmitRequest {
            spec: spec(),
            tenant: 0,
            first_attempt_at: 0,
        })
        .unwrap();
        ring
    }

    #[test]
    fn backpressure_schedules_capped_backoff_retries() {
        let ring = tiny_ring();
        let mut client = IngestClient::new(
            Arc::clone(&ring),
            7,
            ClientConfig {
                max_attempts: 3,
                backoff_base: 2,
                backoff_cap: 4,
                timeout: 1000,
            },
        );
        assert!(!client.submit(1, 0, spec()), "ring full: first try fails");
        assert_eq!(client.pending_len(), 1);
        // Drive ticks until the retry chain resolves; ring stays full,
        // so after 3 attempts the request is given up.
        for t in 2..40 {
            client.tick(t);
        }
        assert_eq!(client.stats().gave_up, 1);
        assert_eq!(client.stats().retries, 2, "attempts 2 and 3 were retries");
        assert!(!client.has_pending());
    }

    #[test]
    fn retry_succeeds_once_ring_drains() {
        let ring = tiny_ring();
        let mut client = IngestClient::new(Arc::clone(&ring), 7, ClientConfig::default());
        assert!(!client.submit(1, 0, spec()));
        ring.drain();
        for t in 2..40 {
            client.tick(t);
            if client.stats().enqueued == 1 {
                break;
            }
        }
        assert_eq!(client.stats().enqueued, 1);
        assert_eq!(client.stats().gave_up, 0);
        assert!(!client.has_pending());
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn timeout_gives_up_before_attempts_exhaust() {
        let ring = tiny_ring();
        let mut client = IngestClient::new(
            Arc::clone(&ring),
            7,
            ClientConfig {
                max_attempts: 100,
                backoff_base: 1,
                backoff_cap: 2,
                timeout: 5,
            },
        );
        assert!(!client.submit(1, 0, spec()));
        for t in 2..40 {
            client.tick(t);
        }
        assert_eq!(client.stats().gave_up, 1);
        assert!(!client.has_pending());
    }

    #[test]
    fn backoff_schedule_replays_per_seed() {
        let trace = |seed: u64| {
            let ring = tiny_ring();
            let mut client = IngestClient::new(
                Arc::clone(&ring),
                seed,
                ClientConfig {
                    max_attempts: 6,
                    ..ClientConfig::default()
                },
            );
            client.submit(1, 0, spec());
            let mut fired = Vec::new();
            for t in 2..200 {
                let before = client.stats().retries;
                client.tick(t);
                if client.stats().retries > before {
                    fired.push(t);
                }
            }
            fired
        };
        assert_eq!(trace(42), trace(42), "same seed, same backoff schedule");
        assert_ne!(trace(42), trace(43), "jitter differs across seeds");
    }
}

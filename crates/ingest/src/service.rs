//! The ingest service: drains the submission ring at tick boundaries,
//! applies admission, and drives the sink underneath.
//!
//! One [`IngestService`] fronts one [`IngestSink`] — a [`Runtime`], a
//! [`Fleet`], or a [`Cluster`] — with a fixed intra-tick order:
//!
//! 1. bucket refills ([`AdmissionControl::begin_tick`]);
//! 2. ring drain, in global enqueue order, one typed
//!    [`AdmissionVerdict`] per request (accepted requests record their
//!    sojourn — first enqueue attempt to sink submission — in the
//!    `ingest.sojourn` histogram);
//! 3. degraded-mode hysteresis against the post-drain backlog;
//! 4. one sink tick;
//! 5. service-rate EWMA update (the queue-sojourn estimate the
//!    deadline shedder uses).
//!
//! Because the drain happens only here, in ring order, and every
//! decision reads deterministic state, a run is bit-identical given
//! the same arrival trace — at any sink thread count.

use std::sync::Arc;

use vlsi_fabric::Cluster;
use vlsi_runtime::{Fleet, JobSpec, Runtime, Workload};
use vlsi_telemetry::TelemetryHandle;
use vlsi_workloads::ArrivalEvent;

use crate::admission::{AdmissionConfig, AdmissionControl, AdmissionVerdict, RejectReason};
use crate::client::IngestClient;
use crate::error::IngestError;
use crate::ring::SubmissionRing;

/// One request in the submission ring: the job plus the ingest-side
/// metadata admission needs.
#[derive(Clone, Debug)]
pub struct SubmitRequest {
    /// The job to submit once accepted.
    pub spec: JobSpec,
    /// Tenant for rate limiting.
    pub tenant: u16,
    /// Tick of the *first* enqueue attempt — sojourn is measured from
    /// here, so retries lengthen it honestly.
    pub first_attempt_at: u64,
}

/// What the service can feed jobs into. Implemented for [`Runtime`]
/// (one chip), [`Fleet`] (independent chips; least-loaded placement),
/// and [`Cluster`] (fabric-connected chips with migration).
pub trait IngestSink {
    /// Submits a job. `false` means the sink cannot take it at all (no
    /// live chip large enough) — the service counts a typed rejection.
    fn submit_job(&mut self, spec: JobSpec) -> bool;
    /// Advances the sink one tick.
    fn tick_sink(&mut self) -> Result<(), IngestError>;
    /// Jobs queued or running inside the sink.
    fn outstanding(&self) -> usize;
    /// Jobs completed so far.
    fn completed(&self) -> u64;
    /// Jobs failed (gracefully, typed) so far.
    fn failed(&self) -> u64;
    /// Jobs lost with a typed reason (cluster-side only; 0 elsewhere).
    fn lost(&self) -> u64 {
        0
    }
}

impl IngestSink for Runtime {
    fn submit_job(&mut self, spec: JobSpec) -> bool {
        // The runtime itself turns impossible requests into graceful,
        // typed failures, so submission always lands.
        self.submit(spec);
        true
    }

    fn tick_sink(&mut self) -> Result<(), IngestError> {
        self.tick().map_err(|e| IngestError::Sink {
            detail: e.to_string(),
        })
    }

    fn outstanding(&self) -> usize {
        Runtime::outstanding(self)
    }

    fn completed(&self) -> u64 {
        self.stats().completed
    }

    fn failed(&self) -> u64 {
        self.stats().failed
    }
}

impl IngestSink for Fleet {
    /// Least-loaded placement: the chip with the most free clusters
    /// that can hold the job, lowest index on ties.
    fn submit_job(&mut self, spec: JobSpec) -> bool {
        let mut best: Option<(usize, usize)> = None;
        for c in 0..self.len() {
            let chip = self.chip(c).chip();
            if chip.usable_clusters() < spec.clusters {
                continue;
            }
            let free = chip.free_clusters();
            if best.is_none_or(|(bf, _)| free > bf) {
                best = Some((free, c));
            }
        }
        let Some((_, c)) = best else {
            return false;
        };
        self.chip_mut(c).submit(spec);
        true
    }

    fn tick_sink(&mut self) -> Result<(), IngestError> {
        self.tick().map_err(|e| IngestError::Sink {
            detail: e.to_string(),
        })
    }

    fn outstanding(&self) -> usize {
        self.chips().map(Runtime::outstanding).sum()
    }

    fn completed(&self) -> u64 {
        self.chips().map(|c| c.stats().completed).sum()
    }

    fn failed(&self) -> u64 {
        self.chips().map(|c| c.stats().failed).sum()
    }
}

impl IngestSink for Cluster {
    fn submit_job(&mut self, spec: JobSpec) -> bool {
        self.try_submit(spec).is_some()
    }

    fn tick_sink(&mut self) -> Result<(), IngestError> {
        self.tick().map_err(|e| IngestError::Sink {
            detail: e.to_string(),
        })
    }

    fn outstanding(&self) -> usize {
        Cluster::outstanding(self)
    }

    fn completed(&self) -> u64 {
        self.fleet().chips().map(|c| c.stats().completed).sum()
    }

    fn failed(&self) -> u64 {
        self.fleet().chips().map(|c| c.stats().failed).sum()
    }

    fn lost(&self) -> u64 {
        self.lost_jobs().len() as u64
    }
}

/// Tunables of the service.
#[derive(Clone, Debug)]
pub struct IngestConfig {
    /// Slots in the submission ring.
    pub ring_capacity: usize,
    /// The admission layer's tunables.
    pub admission: AdmissionConfig,
}

impl Default for IngestConfig {
    fn default() -> IngestConfig {
        IngestConfig {
            ring_capacity: 64,
            admission: AdmissionConfig::default(),
        }
    }
}

/// Service-side verdict counters. Together with the client's
/// [`ClientStats`](crate::client::ClientStats) these balance exactly —
/// see [`accounting`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Requests drained from the ring.
    pub drained: u64,
    /// Requests submitted into the sink.
    pub accepted: u64,
    /// Requests shed because their deadline was unmeetable.
    pub shed_deadline: u64,
    /// Requests shed by degraded mode.
    pub shed_degraded: u64,
    /// Requests rejected by a tenant rate limit.
    pub rejected_rate: u64,
    /// Requests the sink could not take (no live chip large enough).
    pub rejected_sink: u64,
    /// Degraded-level transitions (rises and falls).
    pub degraded_transitions: u64,
}

impl IngestStats {
    /// Every terminal verdict: accepted + shed + rejected.
    pub fn decided(&self) -> u64 {
        self.accepted
            + self.shed_deadline
            + self.shed_degraded
            + self.rejected_rate
            + self.rejected_sink
    }
}

/// The ingestion/admission service. See the [module docs](self).
pub struct IngestService<S: IngestSink> {
    sink: S,
    ring: Arc<SubmissionRing<SubmitRequest>>,
    admission: AdmissionControl,
    now: u64,
    stats: IngestStats,
    /// EWMA of sink throughput in milli-jobs per tick (shift-3 decay).
    service_rate_milli: u64,
    last_finished: u64,
    telemetry: TelemetryHandle,
}

impl<S: IngestSink> IngestService<S> {
    /// A service fronting `sink`. The `ingest.*` instruments record
    /// into `telemetry`.
    pub fn with_telemetry(
        sink: S,
        config: IngestConfig,
        telemetry: TelemetryHandle,
    ) -> IngestService<S> {
        IngestService {
            sink,
            ring: Arc::new(SubmissionRing::new(config.ring_capacity)),
            admission: AdmissionControl::new(config.admission),
            now: 0,
            stats: IngestStats::default(),
            service_rate_milli: 0,
            last_finished: 0,
            telemetry,
        }
    }

    /// [`with_telemetry`](Self::with_telemetry) without instrumentation.
    pub fn new(sink: S, config: IngestConfig) -> IngestService<S> {
        IngestService::with_telemetry(sink, config, TelemetryHandle::disabled())
    }

    /// The shared submission ring producers enqueue into.
    pub fn ring(&self) -> Arc<SubmissionRing<SubmitRequest>> {
        Arc::clone(&self.ring)
    }

    /// The sink underneath.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// The sink underneath, mutably (fault plans, inspection).
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// The current service tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Service-side verdict counters.
    pub fn stats(&self) -> &IngestStats {
        &self.stats
    }

    /// The active degraded level (0 = nothing shed).
    pub fn degraded_level(&self) -> u8 {
        self.admission.level()
    }

    /// The telemetry handle the `ingest.*` instruments record into.
    pub fn telemetry(&self) -> &TelemetryHandle {
        &self.telemetry
    }

    /// Estimated queue sojourn in ticks: sink backlog over the EWMA
    /// service rate. Zero until the first completions calibrate the
    /// rate (optimistic — nothing is shed on a cold estimate).
    pub fn estimated_wait(&self) -> u64 {
        if self.service_rate_milli == 0 {
            return 0;
        }
        (self.sink.outstanding() as u64 * 1000) / self.service_rate_milli
    }

    /// Whether the ring is drained and the sink idle.
    pub fn is_idle(&self) -> bool {
        self.ring.is_empty() && self.sink.outstanding() == 0
    }

    /// Advances the service one tick. See the [module docs](self) for
    /// the fixed phase order.
    pub fn tick(&mut self) -> Result<(), IngestError> {
        self.now += 1;
        let now = self.now;
        self.admission.begin_tick();
        self.telemetry
            .gauge_set("ingest.ring_occupancy", self.ring.len() as i64);

        // Drain the ring in global enqueue order — the only place
        // requests leave the ring, so replay is bit-identical.
        let est = self.estimated_wait();
        for (_, req) in self.ring.drain() {
            self.stats.drained += 1;
            let verdict =
                self.admission
                    .verdict(req.tenant, req.spec.priority, req.spec.deadline, now, est);
            let verdict = match verdict {
                AdmissionVerdict::Accepted if !self.sink.submit_job(req.spec) => {
                    AdmissionVerdict::Rejected(RejectReason::SinkSaturated)
                }
                v => v,
            };
            match verdict {
                AdmissionVerdict::Accepted => {
                    self.stats.accepted += 1;
                    self.telemetry.count("ingest.accepted", 1);
                    self.telemetry
                        .record("ingest.sojourn", now - req.first_attempt_at);
                }
                AdmissionVerdict::Shed(reason) => {
                    match reason {
                        crate::admission::ShedReason::DeadlineUnmeetable => {
                            self.stats.shed_deadline += 1;
                            self.telemetry.count("ingest.shed.deadline", 1);
                        }
                        crate::admission::ShedReason::Degraded => {
                            self.stats.shed_degraded += 1;
                            self.telemetry.count("ingest.shed.degraded", 1);
                        }
                    };
                }
                AdmissionVerdict::Rejected(reason) => match reason {
                    RejectReason::RateLimited => {
                        self.stats.rejected_rate += 1;
                        self.telemetry.count("ingest.rejected.rate_limit", 1);
                    }
                    RejectReason::SinkSaturated => {
                        self.stats.rejected_sink += 1;
                        self.telemetry.count("ingest.rejected.sink", 1);
                    }
                },
            }
        }

        // Degraded-mode hysteresis against the post-drain backlog.
        let backlog = self.ring.len() + self.sink.outstanding();
        if let Some(level) = self.admission.update_water(backlog) {
            self.stats.degraded_transitions += 1;
            self.telemetry.count("ingest.degraded.transitions", 1);
            self.telemetry
                .gauge_set("ingest.degraded_level", level as i64);
        }

        self.sink.tick_sink()?;

        // Shift-3 EWMA of finished jobs per tick, in milli-jobs.
        let finished = self.sink.completed() + self.sink.failed() + self.sink.lost();
        let delta_milli = (finished - self.last_finished) * 1000;
        self.last_finished = finished;
        self.service_rate_milli =
            self.service_rate_milli - (self.service_rate_milli >> 3) + (delta_milli >> 3);
        Ok(())
    }
}

/// Maps an [`ArrivalEvent`] onto the job spec the sink will run: an
/// idle hold of the requested size at the event's priority, with the
/// deadline made absolute from the arrival tick.
pub fn spec_for_arrival(ev: &ArrivalEvent) -> JobSpec {
    let mut spec = JobSpec::new(
        "arrival",
        ev.clusters,
        Workload::Idle {
            ticks: ev.hold_ticks,
        },
    )
    .with_priority(ev.priority);
    if let Some(slack) = ev.deadline_slack {
        spec = spec.with_deadline(ev.at + slack);
    }
    spec
}

/// Drives a full open-loop run: each tick delivers the client's due
/// retries, then the trace's arrivals for that tick, then advances the
/// service. Returns the ticks simulated, or [`IngestError::Hung`] if
/// the system fails to drain within `max_ticks` — the bounded-progress
/// guard.
pub fn run_trace<S: IngestSink>(
    service: &mut IngestService<S>,
    client: &mut IngestClient,
    trace: &[ArrivalEvent],
    max_ticks: u64,
) -> Result<u64, IngestError> {
    let mut idx = 0usize;
    let mut ticks = 0u64;
    while idx < trace.len() || client.has_pending() || !service.is_idle() {
        if ticks >= max_ticks {
            return Err(IngestError::Hung {
                ticks,
                outstanding: (trace.len() - idx) as u64
                    + client.pending_len() as u64
                    + service.ring().len() as u64
                    + service.sink().outstanding() as u64,
            });
        }
        let t = service.now() + 1;
        client.tick(t);
        while idx < trace.len() && trace[idx].at <= t {
            let ev = &trace[idx];
            client.submit(t, ev.tenant, spec_for_arrival(ev));
            idx += 1;
        }
        service.tick()?;
        ticks += 1;
    }
    Ok(ticks)
}

/// The exact job-conservation ledger of a run — every arrival is
/// accounted for, in flight or terminally. See
/// [`is_balanced`](AccountingReport::is_balanced).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccountingReport {
    /// Client-side arrivals.
    pub arrivals: u64,
    /// Requests the client gave up on (backpressure retries exhausted
    /// or timed out).
    pub gave_up: u64,
    /// Still waiting for a client retry.
    pub in_retry: u64,
    /// Enqueued but not yet drained.
    pub in_ring: u64,
    /// Service-side verdict counters.
    pub stats: IngestStats,
    /// Queued or running inside the sink.
    pub sink_outstanding: u64,
    /// Completed inside the sink.
    pub completed: u64,
    /// Failed (typed) inside the sink.
    pub failed: u64,
    /// Lost (typed) cluster-side.
    pub lost: u64,
}

impl AccountingReport {
    /// The two conservation equations, both exact at any instant:
    ///
    /// ```text
    /// arrivals = decided + gave_up + in_retry + in_ring
    /// accepted = completed + failed + lost + sink_outstanding
    /// ```
    ///
    /// A silent loss anywhere — ring, admission, sink — breaks one of
    /// them.
    pub fn is_balanced(&self) -> bool {
        self.arrivals == self.stats.decided() + self.gave_up + self.in_retry + self.in_ring
            && self.stats.accepted
                == self.completed + self.failed + self.lost + self.sink_outstanding
    }
}

/// Snapshots the full conservation ledger for `service` and `client`.
pub fn accounting<S: IngestSink>(
    service: &IngestService<S>,
    client: &IngestClient,
) -> AccountingReport {
    let cs = client.stats();
    AccountingReport {
        arrivals: cs.arrivals,
        gave_up: cs.gave_up,
        in_retry: client.pending_len() as u64,
        in_ring: service.ring().len() as u64,
        stats: *service.stats(),
        sink_outstanding: service.sink().outstanding() as u64,
        completed: service.sink().completed(),
        failed: service.sink().failed(),
        lost: service.sink().lost(),
    }
}

//! Typed failures of the ingestion layer.

use std::fmt;

/// Errors raised at the ingestion boundary. Overload is *never* a
/// silent drop: a full ring is a typed [`IngestError::RingFull`] the
/// producer must handle (retry, back off, or give up — all counted).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum IngestError {
    /// The submission ring is at capacity; the producer should back off
    /// and retry (see `IngestClient`) or give up, typed.
    RingFull {
        /// The ring's fixed capacity.
        capacity: usize,
    },
    /// The service loop ran past its tick budget without draining —
    /// the bounded-progress guard, mirroring the cluster's `Hung`.
    Hung {
        /// Ticks simulated before giving up.
        ticks: u64,
        /// Work still in the ring, retry queue, or sink.
        outstanding: u64,
    },
    /// The sink underneath the service failed unrecoverably.
    Sink {
        /// The sink's own error, rendered.
        detail: String,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::RingFull { capacity } => {
                write!(f, "submission ring full ({capacity} slots)")
            }
            IngestError::Hung { ticks, outstanding } => write!(
                f,
                "ingest service did not drain within {ticks} ticks ({outstanding} outstanding)"
            ),
            IngestError::Sink { detail } => write!(f, "sink error: {detail}"),
        }
    }
}

impl std::error::Error for IngestError {}

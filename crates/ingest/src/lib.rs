//! # vlsi-ingest — service-grade ingestion with overload protection
//!
//! The runtime, fleet, and cluster layers assume a well-behaved caller:
//! jobs appear exactly when the simulation loop says so. A *service*
//! has no such luxury — submissions arrive open-loop, bursty, from many
//! tenants, while the fleet is mid-tick. This crate is the front door
//! that makes that safe without giving up determinism:
//!
//! * [`SubmissionRing`] — a fixed-capacity MPSC ring (safe Rust,
//!   seqlock-style slot sequencing). Producers enqueue concurrently;
//!   the service drains only at tick boundaries, in global enqueue
//!   order, so a run replays bit-identically from the arrival trace.
//! * [`AdmissionControl`] — typed [`AdmissionVerdict`]s: accept, shed
//!   (deadline-unmeetable, degraded mode), or reject (tenant rate
//!   limit, saturated sink). Overload is never a silent drop.
//! * [`IngestClient`] — producer-side resilience: capped exponential
//!   retry-with-backoff on [`IngestError::RingFull`], deterministic
//!   jitter, submission timeouts.
//! * [`IngestService`] — the tick-boundary drain loop over any
//!   [`IngestSink`] ([`Runtime`](vlsi_runtime::Runtime),
//!   [`Fleet`](vlsi_runtime::Fleet), [`Cluster`](vlsi_fabric::Cluster)),
//!   with degraded-mode hysteresis and `ingest.*` telemetry.
//! * [`accounting`] — the exact job-conservation ledger: arrivals
//!   balance against verdicts, give-ups, and in-flight work at any
//!   instant; the chaos harness asserts it after every storm.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod client;
pub mod error;
pub mod ring;
pub mod service;

pub use admission::{
    AdmissionConfig, AdmissionControl, AdmissionVerdict, RejectReason, ShedReason, TokenBucket,
};
pub use client::{ClientConfig, ClientStats, IngestClient};
pub use error::IngestError;
pub use ring::SubmissionRing;
pub use service::{
    accounting, run_trace, spec_for_arrival, AccountingReport, IngestConfig, IngestService,
    IngestSink, IngestStats, SubmitRequest,
};

//! Overload protection: typed admission verdicts, per-tenant token
//! buckets, deadline-aware shedding, and degraded-mode hysteresis.
//!
//! Every request drained from the ring gets an explicit
//! [`AdmissionVerdict`] — accepted, shed, or rejected with a typed
//! reason — so overload is always visible in the accounting, never a
//! silent loss. The degraded-mode controller is a small hysteresis
//! loop: when backlog crosses the high-water mark the shed level rises
//! one priority class per tick (lowest classes first), and it falls
//! again only once backlog sinks below the low-water mark, so the
//! system does not flap at the boundary.

use std::collections::BTreeMap;

/// Why a request was shed (dropped deliberately, with accounting).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ShedReason {
    /// Queue sojourn estimates say the deadline cannot be met; shedding
    /// up front beats burning capacity on a job doomed to miss.
    DeadlineUnmeetable,
    /// Degraded mode is shedding this priority class (backlog crossed
    /// the high-water mark).
    Degraded,
}

impl ShedReason {
    /// A short label for telemetry and traces.
    pub fn label(&self) -> &'static str {
        match self {
            ShedReason::DeadlineUnmeetable => "deadline",
            ShedReason::Degraded => "degraded",
        }
    }
}

/// Why a request was rejected (refused before reaching the fleet).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RejectReason {
    /// The tenant's token bucket is empty.
    RateLimited,
    /// No sink underneath could take the job (no live chip large
    /// enough, or every chip is gone).
    SinkSaturated,
}

impl RejectReason {
    /// A short label for telemetry and traces.
    pub fn label(&self) -> &'static str {
        match self {
            RejectReason::RateLimited => "rate-limit",
            RejectReason::SinkSaturated => "sink",
        }
    }
}

/// The typed outcome of admitting one drained request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AdmissionVerdict {
    /// Submitted to the sink.
    Accepted,
    /// Deliberately dropped, with a reason.
    Shed(ShedReason),
    /// Refused, with a reason.
    Rejected(RejectReason),
}

/// A per-tenant token bucket in milli-tokens (1000 = one job), refilled
/// once per tick — integer-only, so rate limiting replays exactly.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    level_milli: u64,
    capacity_milli: u64,
    refill_milli: u64,
}

impl TokenBucket {
    /// A bucket holding at most `burst` jobs, refilled at `rate_milli`
    /// milli-jobs per tick. Starts full. A `burst` of zero means a
    /// zero-capacity bucket: it admits nothing, ever — refills cap at
    /// the (zero) capacity, so a tenant configured to admit nothing
    /// really does admit nothing rather than being silently bumped to a
    /// one-job allowance.
    pub fn new(burst: u64, rate_milli: u64) -> TokenBucket {
        let capacity_milli = burst * 1000;
        TokenBucket {
            level_milli: capacity_milli,
            capacity_milli,
            refill_milli: rate_milli,
        }
    }

    /// One tick's refill.
    pub fn refill(&mut self) {
        self.level_milli = (self.level_milli + self.refill_milli).min(self.capacity_milli);
    }

    /// Takes one job's worth of tokens if available.
    pub fn try_take(&mut self) -> bool {
        if self.level_milli >= 1000 {
            self.level_milli -= 1000;
            true
        } else {
            false
        }
    }

    /// Current level in milli-tokens.
    pub fn level_milli(&self) -> u64 {
        self.level_milli
    }
}

/// Tunables of the admission layer.
#[derive(Clone, Debug)]
pub struct AdmissionConfig {
    /// Per-tenant refill rate in milli-jobs per tick; 0 disables rate
    /// limiting entirely (no bucket is consulted).
    pub tenant_rate_milli: u64,
    /// Per-tenant bucket capacity in whole jobs (the burst allowance).
    pub tenant_burst: u64,
    /// Backlog (ring + sink outstanding) at or above which the degraded
    /// level rises one class per tick.
    pub high_water: usize,
    /// Backlog at or below which the degraded level falls one class per
    /// tick. Must sit below `high_water` for real hysteresis.
    pub low_water: usize,
    /// Ceiling on the degraded level. With priorities 0..=3, a ceiling
    /// of 4 can shed every class.
    pub max_degraded_level: u8,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            tenant_rate_milli: 0,
            tenant_burst: 8,
            high_water: 48,
            low_water: 16,
            max_degraded_level: 4,
        }
    }
}

/// The admission controller: verdicts, buckets, and the degraded-mode
/// hysteresis state. Telemetry is the caller's job (the service owns
/// the handle); this type is pure deterministic state.
#[derive(Clone, Debug)]
pub struct AdmissionControl {
    config: AdmissionConfig,
    buckets: BTreeMap<u16, TokenBucket>,
    level: u8,
}

impl AdmissionControl {
    /// A controller with `config` and no degraded shedding active.
    pub fn new(config: AdmissionConfig) -> AdmissionControl {
        AdmissionControl {
            config,
            buckets: BTreeMap::new(),
            level: 0,
        }
    }

    /// The active degraded level: priority classes strictly below it
    /// are shed.
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Refills every tenant bucket — call once per tick, before
    /// draining the ring.
    pub fn begin_tick(&mut self) {
        for bucket in self.buckets.values_mut() {
            bucket.refill();
        }
    }

    /// Applies the hysteresis rule to the current backlog: at or above
    /// high water the level rises one class, at or below low water it
    /// falls one. Returns the new level when it changed.
    pub fn update_water(&mut self, backlog: usize) -> Option<u8> {
        let before = self.level;
        if backlog >= self.config.high_water {
            self.level = (self.level + 1).min(self.config.max_degraded_level);
        } else if backlog <= self.config.low_water {
            self.level = self.level.saturating_sub(1);
        }
        (self.level != before).then_some(self.level)
    }

    /// The pre-sink verdict for one drained request: degraded shedding
    /// first (cheapest, protects the whole system), then the tenant's
    /// token bucket, then the deadline check against `estimated_wait`
    /// ticks of queue sojourn. [`AdmissionVerdict::Accepted`] here
    /// still requires the sink to take the job.
    pub fn verdict(
        &mut self,
        tenant: u16,
        priority: u8,
        deadline: Option<u64>,
        now: u64,
        estimated_wait: u64,
    ) -> AdmissionVerdict {
        if priority < self.level {
            return AdmissionVerdict::Shed(ShedReason::Degraded);
        }
        if self.config.tenant_rate_milli > 0 {
            let bucket = self.buckets.entry(tenant).or_insert_with(|| {
                TokenBucket::new(self.config.tenant_burst, self.config.tenant_rate_milli)
            });
            if !bucket.try_take() {
                return AdmissionVerdict::Rejected(RejectReason::RateLimited);
            }
        }
        if let Some(d) = deadline {
            if now + estimated_wait > d {
                return AdmissionVerdict::Shed(ShedReason::DeadlineUnmeetable);
            }
        }
        AdmissionVerdict::Accepted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_bucket_enforces_rate_and_burst() {
        let mut b = TokenBucket::new(2, 500);
        assert!(b.try_take() && b.try_take(), "burst of 2 available");
        assert!(!b.try_take(), "bucket empty");
        b.refill();
        assert!(!b.try_take(), "500 milli is not a whole token yet");
        b.refill();
        assert!(b.try_take(), "two refills make one token");
        for _ in 0..100 {
            b.refill();
        }
        assert_eq!(b.level_milli(), 2000, "capped at the burst");
    }

    #[test]
    fn zero_burst_bucket_admits_nothing() {
        let mut b = TokenBucket::new(0, 5000);
        assert_eq!(b.level_milli(), 0, "zero-burst bucket starts empty");
        assert!(!b.try_take(), "nothing to take");
        for _ in 0..100 {
            b.refill();
        }
        assert_eq!(b.level_milli(), 0, "refill caps at the zero capacity");
        assert!(!b.try_take(), "still nothing after any number of refills");

        // And through the controller: a zero-burst tenant is rejected
        // with the typed rate-limit reason on every request.
        let mut a = AdmissionControl::new(AdmissionConfig {
            tenant_rate_milli: 1500,
            tenant_burst: 0,
            ..AdmissionConfig::default()
        });
        for _ in 0..5 {
            a.begin_tick();
            assert_eq!(
                a.verdict(3, 2, None, 1, 0),
                AdmissionVerdict::Rejected(RejectReason::RateLimited)
            );
        }
    }

    #[test]
    fn hysteresis_rises_and_falls_one_class_per_tick() {
        let mut a = AdmissionControl::new(AdmissionConfig {
            high_water: 10,
            low_water: 4,
            max_degraded_level: 3,
            ..AdmissionConfig::default()
        });
        assert_eq!(a.update_water(10), Some(1));
        assert_eq!(a.update_water(50), Some(2));
        assert_eq!(a.update_water(50), Some(3));
        assert_eq!(a.update_water(50), None, "capped at max level");
        // Between the marks: hold steady (the hysteresis band).
        assert_eq!(a.update_water(7), None);
        assert_eq!(a.level(), 3);
        assert_eq!(a.update_water(4), Some(2));
        assert_eq!(a.update_water(0), Some(1));
        assert_eq!(a.update_water(0), Some(0));
        assert_eq!(a.update_water(0), None, "floored at zero");
    }

    #[test]
    fn degraded_mode_sheds_lowest_priorities_first() {
        let mut a = AdmissionControl::new(AdmissionConfig::default());
        a.update_water(1000);
        assert_eq!(a.level(), 1);
        assert_eq!(
            a.verdict(0, 0, None, 5, 0),
            AdmissionVerdict::Shed(ShedReason::Degraded)
        );
        assert_eq!(a.verdict(0, 1, None, 5, 0), AdmissionVerdict::Accepted);
    }

    #[test]
    fn rate_limit_rejects_typed_per_tenant() {
        let mut a = AdmissionControl::new(AdmissionConfig {
            tenant_rate_milli: 1000,
            tenant_burst: 1,
            ..AdmissionConfig::default()
        });
        a.begin_tick();
        assert_eq!(a.verdict(7, 2, None, 1, 0), AdmissionVerdict::Accepted);
        assert_eq!(
            a.verdict(7, 2, None, 1, 0),
            AdmissionVerdict::Rejected(RejectReason::RateLimited)
        );
        // Another tenant has its own bucket.
        assert_eq!(a.verdict(8, 2, None, 1, 0), AdmissionVerdict::Accepted);
    }

    #[test]
    fn unmeetable_deadline_is_shed_up_front() {
        let mut a = AdmissionControl::new(AdmissionConfig::default());
        assert_eq!(
            a.verdict(0, 3, Some(20), 10, 15),
            AdmissionVerdict::Shed(ShedReason::DeadlineUnmeetable)
        );
        assert_eq!(
            a.verdict(0, 3, Some(30), 10, 15),
            AdmissionVerdict::Accepted
        );
        assert_eq!(a.verdict(0, 3, None, 10, 1000), AdmissionVerdict::Accepted);
    }
}

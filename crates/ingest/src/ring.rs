//! The fixed-capacity MPSC submission ring.
//!
//! External producers enqueue while the fleet ticks; the service drains
//! at tick boundaries only, in ring order. The design is a bounded
//! Vyukov-style queue with seqlock-style slot sequence numbers, built
//! entirely in safe Rust (the workspace forbids `unsafe`): each slot
//! pairs an `AtomicU64` sequence word with a mutex-held cell. The
//! sequence protocol guarantees the cell mutex is **uncontended** — a
//! producer only touches a cell after winning the CAS on `tail` for
//! that position, and the consumer only after observing the producer's
//! release-store of the sequence — so the mutex is a formality for the
//! borrow checker, not a lock anyone waits on.
//!
//! Slot `i` carries sequence values in lockstep with the positions that
//! map to it: `seq == pos` means "free for the producer claiming
//! `pos`", `seq == pos + 1` means "filled, awaiting the consumer", and
//! the consumer recycles the slot with `seq = pos + capacity` for the
//! next lap. A producer whose claimed position sits a full `capacity`
//! ahead of the consumer's head has lapped the drain: the ring is full,
//! and the push returns a typed [`IngestError::RingFull`] — never a
//! silent drop.
//!
//! Every successful push returns its global position, a total order
//! over all producers; the consumer pops in exactly that order, which
//! is what makes replay bit-identical given the same arrival trace.

use crate::error::IngestError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

struct Slot<T> {
    seq: AtomicU64,
    cell: Mutex<Option<T>>,
}

/// A fixed-capacity multi-producer single-consumer ring. See the
/// [module docs](self) for the slot protocol.
pub struct SubmissionRing<T> {
    slots: Box<[Slot<T>]>,
    /// Next position a producer claims.
    tail: AtomicU64,
    /// Next position the consumer drains.
    head: AtomicU64,
}

impl<T> SubmissionRing<T> {
    /// A ring with `capacity` slots (at least 1).
    pub fn new(capacity: usize) -> SubmissionRing<T> {
        let capacity = capacity.max(1);
        let slots: Vec<Slot<T>> = (0..capacity)
            .map(|i| Slot {
                seq: AtomicU64::new(i as u64),
                cell: Mutex::new(None),
            })
            .collect();
        SubmissionRing {
            slots: slots.into_boxed_slice(),
            tail: AtomicU64::new(0),
            head: AtomicU64::new(0),
        }
    }

    /// The fixed slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Entries currently enqueued (approximate under concurrent
    /// producers; exact at a tick boundary when producers are quiet).
    pub fn len(&self) -> usize {
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        tail.saturating_sub(head) as usize
    }

    /// Whether the ring holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `value` from any producer thread. Returns the global
    /// enqueue position on success (the total order the consumer drains
    /// in), or [`IngestError::RingFull`] — the typed backpressure
    /// signal — when the ring is at capacity.
    pub fn try_push(&self, value: T) -> Result<u64, IngestError> {
        let cap = self.slots.len() as u64;
        let mut pos = self.tail.load(Ordering::Acquire);
        loop {
            // Full check against the consumer's head: `cap` undrained
            // positions ahead of head means every slot is occupied.
            // Head only grows, so a stale read can at worst report a
            // ring that *was* full a moment ago — typed backpressure
            // the producer retries, never a lost entry.
            let head = self.head.load(Ordering::Acquire);
            if pos.saturating_sub(head) >= cap {
                return Err(IngestError::RingFull {
                    capacity: self.slots.len(),
                });
            }
            let slot = &self.slots[(pos % cap) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos {
                match self.tail.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        // This producer owns the slot exclusively until
                        // the release-store below publishes it.
                        *slot.cell.lock().unwrap_or_else(|e| e.into_inner()) = Some(value);
                        slot.seq.store(pos + 1, Ordering::Release);
                        return Ok(pos);
                    }
                    Err(current) => pos = current,
                }
            } else {
                // Another producer claimed `pos` (tail moved), or the
                // consumer is mid-recycle; chase the tail. Progress is
                // guaranteed: either tail has advanced, or the slot's
                // recycled sequence lands and the claim above succeeds,
                // or the full check fires.
                pos = self.tail.load(Ordering::Acquire);
            }
        }
    }

    /// Dequeues the next entry in enqueue order, with its global
    /// position, or `None` when the ring is empty (or the producer that
    /// claimed the head slot has not finished publishing it — the
    /// consumer simply sees it next drain). Single consumer only.
    pub fn try_pop(&self) -> Option<(u64, T)> {
        let cap = self.slots.len() as u64;
        let pos = self.head.load(Ordering::Acquire);
        let slot = &self.slots[(pos % cap) as usize];
        let seq = slot.seq.load(Ordering::Acquire);
        if seq != pos + 1 {
            return None;
        }
        let value = slot
            .cell
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("slot protocol: published slot holds a value");
        // Recycle the slot for the producer one lap ahead.
        slot.seq.store(pos + cap, Ordering::Release);
        self.head.store(pos + 1, Ordering::Release);
        Some((pos, value))
    }

    /// Drains every currently published entry in enqueue order — the
    /// tick-boundary consumer step.
    pub fn drain(&self) -> Vec<(u64, T)> {
        let mut out = Vec::new();
        while let Some(e) = self.try_pop() {
            out.push(e);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn drain_order_is_enqueue_order() {
        let ring = SubmissionRing::new(8);
        for v in 0..5u32 {
            ring.try_push(v).unwrap();
        }
        let drained = ring.drain();
        assert_eq!(
            drained,
            (0..5).map(|v| (v as u64, v)).collect::<Vec<_>>(),
            "positions and values in enqueue order"
        );
        assert!(ring.is_empty());
    }

    #[test]
    fn full_ring_reports_typed_backpressure() {
        let ring = SubmissionRing::new(4);
        for v in 0..4u32 {
            ring.try_push(v).unwrap();
        }
        assert_eq!(
            ring.try_push(99),
            Err(IngestError::RingFull { capacity: 4 }),
            "no silent drop"
        );
        assert_eq!(ring.len(), 4);
        // Draining one slot frees exactly one push.
        assert_eq!(ring.try_pop(), Some((0, 0)));
        assert_eq!(ring.try_push(99), Ok(4));
        assert_eq!(
            ring.try_push(100),
            Err(IngestError::RingFull { capacity: 4 })
        );
    }

    #[test]
    fn wrap_around_many_laps() {
        let ring = SubmissionRing::new(3);
        let mut expect = 0u64;
        for round in 0..100u64 {
            ring.try_push(round * 2).unwrap();
            ring.try_push(round * 2 + 1).unwrap();
            for (pos, v) in ring.drain() {
                assert_eq!(pos, expect);
                assert_eq!(v, expect);
                expect += 1;
            }
        }
        assert_eq!(expect, 200);
    }

    #[test]
    fn concurrent_producers_lose_nothing() {
        let ring = Arc::new(SubmissionRing::new(64));
        let producers = 4;
        let per = 500u64;
        let mut handles = Vec::new();
        for p in 0..producers {
            let ring = Arc::clone(&ring);
            handles.push(std::thread::spawn(move || {
                let mut pushed = 0u64;
                while pushed < per {
                    if ring.try_push(p as u64 * per + pushed).is_ok() {
                        pushed += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        let mut seen = Vec::new();
        while seen.len() < (producers as usize) * per as usize {
            for (_, v) in ring.drain() {
                seen.push(v);
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(ring.is_empty());
        // Every value arrived exactly once, and each producer's own
        // values arrived in its program order.
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..producers as u64 * per).collect::<Vec<_>>());
        for p in 0..producers as u64 {
            let mine: Vec<u64> = seen.iter().copied().filter(|v| *v / per == p).collect();
            assert!(mine.windows(2).all(|w| w[0] < w[1]), "FIFO per producer");
        }
    }
}

//! vlsi-fabric: deterministic inter-chip interconnect and cluster
//! scheduling.
//!
//! The paper's machine does not stop at one die: chips connect through
//! a dedicated network processor into multi-chip systems. This crate
//! reproduces that layer in the simulator. It has three floors:
//!
//! * [`ClusterTopology`] — how dies are wired (ring or 2-D torus of
//!   chips) and the pure-function chip-level routing over that wiring.
//! * [`ClusterNetwork`] — the moving fabric: one dedicated NoC plane
//!   per die plus bounded-latency chip-to-chip links. Each tick runs
//!   the planes in parallel on the shared [`vlsi_par::Pool`] (chip `i`
//!   is always task `i`) and then commits every off-chip crossing
//!   serially in ascending `(source chip, source router)` order — the
//!   same two-phase discipline as the sharded NoC tick, so a run is
//!   bit-identical at any thread count.
//! * [`Cluster`] — fleet-level scheduling on top: cluster-wide
//!   admission, queued-job migration at tick boundaries, and chaos
//!   recovery when a [`FaultKind::ChipDown`] plan kills a whole die
//!   mid-run — its jobs relocate over the fabric or fail typed, never
//!   hang.
//!
//! ```
//! use vlsi_core::VlsiChip;
//! use vlsi_fabric::{Cluster, ClusterConfig, ClusterTopology};
//! use vlsi_par::Pool;
//! use vlsi_runtime::{Fifo, JobSpec, Runtime, RuntimeConfig, Workload};
//! use vlsi_topology::Cluster as ClusterShape;
//!
//! let pool = Pool::new(2);
//! let mut cluster = Cluster::new(
//!     ClusterTopology::ring(4),
//!     (8, 8),
//!     pool,
//!     ClusterConfig::standard(),
//! );
//! for _ in 0..4 {
//!     let chip = VlsiChip::new(8, 8, ClusterShape::default());
//!     cluster.push_chip(Runtime::new(chip, Box::new(Fifo), RuntimeConfig::default()));
//! }
//! cluster.submit(JobSpec::new("warm", 4, Workload::Idle { ticks: 3 }));
//! let summary = cluster.run_until_idle(10_000).unwrap();
//! assert_eq!(summary.completed, 1);
//! ```
//!
//! [`FaultKind::ChipDown`]: vlsi_faults::FaultKind::ChipDown

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod cluster;
mod error;
mod network;
mod topology;

pub use cluster::{Cluster, ClusterConfig, ClusterSummary, GlobalJobId};
pub use error::{ClusterError, FabricError};
pub use network::{ClusterNetwork, Delivery, FabricConfig, FabricStats, MessageId, FABRIC_HEADER};
pub use topology::{link_dir_index, ClusterTopology, LINK_DIRS};

//! Chip-level topology: how the dies of a cluster are wired together.
//!
//! A [`ClusterTopology`] is a torus of chips — a ring is the degenerate
//! `M × 1` case — with one bidirectional off-chip link per mesh
//! direction. Routing between chips is greedy dimension-order with a
//! fixed tie-break (East before South, shorter wrap preferred), so the
//! chip-level path of a message is a pure function of `(from, to, dead
//! set)` and never depends on traffic or thread count.

use vlsi_topology::Dir;

/// The four chip-level link directions, in *commit order*: every
/// per-link loop in the fabric walks links as `chip * 4 + dir_index`
/// with this ordering, which is what makes cross-chip commits
/// deterministic.
pub const LINK_DIRS: [Dir; 4] = [Dir::East, Dir::South, Dir::West, Dir::North];

/// Dense index of a chip-level link direction (see [`LINK_DIRS`]).
pub fn link_dir_index(dir: Dir) -> usize {
    match dir {
        Dir::East => 0,
        Dir::South => 1,
        Dir::West => 2,
        Dir::North => 3,
        Dir::Up | Dir::Down => unreachable!("chip links are planar"),
    }
}

/// A torus of chips. See the [module docs](self).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ClusterTopology {
    width: usize,
    height: usize,
}

impl ClusterTopology {
    /// A `width × height` torus of chips (both dimensions ≥ 1).
    pub fn torus(width: usize, height: usize) -> ClusterTopology {
        assert!(width >= 1 && height >= 1, "empty cluster topology");
        ClusterTopology { width, height }
    }

    /// A ring of `chips` dies — the `chips × 1` torus.
    pub fn ring(chips: usize) -> ClusterTopology {
        ClusterTopology::torus(chips, 1)
    }

    /// Chips in the cluster.
    pub fn chips(&self) -> usize {
        self.width * self.height
    }

    /// Torus width in chips.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Torus height in chips.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Chip-grid coordinates of fleet index `chip`.
    pub fn coords(&self, chip: usize) -> (usize, usize) {
        (chip % self.width, chip / self.width)
    }

    /// Fleet index of the chip at `(x, y)` (wrapping).
    pub fn chip_at(&self, x: usize, y: usize) -> usize {
        (y % self.height) * self.width + (x % self.width)
    }

    /// The neighbouring chip in `dir`, wrapping torus-style. In a
    /// dimension of size 1 the neighbour is the chip itself.
    pub fn neighbor(&self, chip: usize, dir: Dir) -> usize {
        let (x, y) = self.coords(chip);
        match dir {
            Dir::East => self.chip_at(x + 1, y),
            Dir::West => self.chip_at(x + self.width - 1, y),
            Dir::South => self.chip_at(x, y + 1),
            Dir::North => self.chip_at(x, y + self.height - 1),
            Dir::Up | Dir::Down => chip,
        }
    }

    /// The next link direction a message at `from` takes toward `to`,
    /// avoiding chips marked in `dead`. Greedy: productive directions
    /// first (x before y, shorter wrap, East/South on ties), then the
    /// remaining directions in [`LINK_DIRS`] order as detours. Returns
    /// `None` when every candidate neighbour is dead (the caller fails
    /// the message typed rather than spinning).
    pub fn next_hop(&self, from: usize, to: usize, dead: &[bool]) -> Option<Dir> {
        if from == to {
            return None;
        }
        let (fx, fy) = self.coords(from);
        let (tx, ty) = self.coords(to);
        let mut candidates: Vec<Dir> = Vec::with_capacity(6);
        if fx != tx {
            let east = (tx + self.width - fx) % self.width;
            let west = (fx + self.width - tx) % self.width;
            candidates.push(if east <= west { Dir::East } else { Dir::West });
        }
        if fy != ty {
            let south = (ty + self.height - fy) % self.height;
            let north = (fy + self.height - ty) % self.height;
            candidates.push(if south <= north {
                Dir::South
            } else {
                Dir::North
            });
        }
        candidates.extend(LINK_DIRS);
        for dir in candidates {
            let n = self.neighbor(from, dir);
            if n != from && !dead.get(n).copied().unwrap_or(false) {
                return Some(dir);
            }
        }
        None
    }

    /// Livelock bound on chip-level hops: detours around dead chips may
    /// wander, but never farther than a couple of torus perimeters.
    pub fn hop_budget(&self) -> u64 {
        2 * (self.width as u64 + self.height as u64) + 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraps_both_ways() {
        let t = ClusterTopology::ring(4);
        assert_eq!(t.chips(), 4);
        assert_eq!(t.neighbor(3, Dir::East), 0);
        assert_eq!(t.neighbor(0, Dir::West), 3);
        // Height 1: vertical neighbours are the chip itself.
        assert_eq!(t.neighbor(2, Dir::South), 2);
    }

    #[test]
    fn next_hop_prefers_the_short_way_round() {
        let t = ClusterTopology::ring(6);
        let dead = vec![false; 6];
        assert_eq!(t.next_hop(0, 1, &dead), Some(Dir::East));
        assert_eq!(t.next_hop(0, 5, &dead), Some(Dir::West));
        // Equidistant: East wins the tie.
        assert_eq!(t.next_hop(0, 3, &dead), Some(Dir::East));
        assert_eq!(t.next_hop(2, 2, &dead), None);
    }

    #[test]
    fn next_hop_detours_around_dead_chips() {
        let t = ClusterTopology::ring(4);
        let mut dead = vec![false; 4];
        dead[1] = true;
        // 0 → 2 would go East through 1; the detour goes West via 3.
        assert_eq!(t.next_hop(0, 2, &dead), Some(Dir::West));
        // Fully cut off: both neighbours dead.
        dead[3] = true;
        assert_eq!(t.next_hop(0, 2, &dead), None);
    }

    #[test]
    fn torus_routes_x_before_y() {
        let t = ClusterTopology::torus(3, 3);
        let dead = vec![false; 9];
        // chip 0 = (0,0), chip 4 = (1,1): x first.
        assert_eq!(t.next_hop(0, 4, &dead), Some(Dir::East));
        // chip 3 = (0,1): pure y move.
        assert_eq!(t.next_hop(0, 3, &dead), Some(Dir::South));
        // Wrap: (0,0) → (2,0) is one West hop on a width-3 torus... East
        // distance 2, West distance 1.
        assert_eq!(t.next_hop(0, 2, &dead), Some(Dir::West));
    }

    #[test]
    fn greedy_routes_terminate_on_live_toruses() {
        // Walk every pair on a 4×3 torus and assert the greedy walk
        // reaches the destination within the hop budget.
        let t = ClusterTopology::torus(4, 3);
        let dead = vec![false; 12];
        for from in 0..12 {
            for to in 0..12 {
                if from == to {
                    continue;
                }
                let mut at = from;
                let mut hops = 0u64;
                while at != to {
                    let dir = t.next_hop(at, to, &dead).expect("live torus routes");
                    at = t.neighbor(at, dir);
                    hops += 1;
                    assert!(hops <= t.hop_budget(), "{from}→{to} wandered");
                }
            }
        }
    }
}

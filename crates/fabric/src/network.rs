//! The inter-chip interconnect: per-die fabric planes bridged by
//! off-chip links.
//!
//! Every chip contributes one *fabric plane* — a dedicated
//! [`NocNetwork`] mesh the size of the die, modelled after the DNP's
//! separate network processor — plus four off-chip **edge ports**, one
//! router per mesh direction, that feed latency/bandwidth-limited links
//! to the neighbouring chips of the [`ClusterTopology`].
//!
//! ## Tick discipline (why this is deterministic)
//!
//! One [`ClusterNetwork::tick`] runs `cycles_per_tick` fabric cycles.
//! Each cycle mirrors the sharded NoC tick's two-phase shape, one level
//! up:
//!
//! 1. **In-phase, parallel** — every live plane advances one cycle on
//!    the `vlsi-par` pool with the static chip-`i`-is-task-`i`
//!    assignment. Intra-chip crossings commit here, inside each plane,
//!    exactly as they would stand-alone.
//! 2. **Proposals, serial** — the owner drains each plane's delivered
//!    list in ascending chip order; within a chip the NoC has already
//!    committed deliveries in ascending router order. A message
//!    delivered at an edge port that still has chips to cross becomes a
//!    *link proposal*, committed onto the link queue immediately — so
//!    the queue order is exactly ascending (source chip, source router),
//!    independent of thread count.
//!
//! After the cycle loop, links transmit in fixed index order
//! (`chip * 4 + direction`): up to `link_bandwidth` packets whose
//! latency has elapsed hop to the neighbour chip and are re-injected at
//! its opposite edge port.
//!
//! ## Failure model
//!
//! [`fail_chip`] kills a die mid-run: its plane stops ticking, all
//! eight adjacent link queues are severed, and every in-flight message
//! touching it is either retransmitted from its source (counted in
//! `fabric.retransmits`) or failed typed — never dropped silently. A
//! plane may also carry its own [`FaultPlan`]; worms its fault-tolerant
//! transport gives up on surface here as fabric-level retransmissions.
//!
//! [`fail_chip`]: ClusterNetwork::fail_chip

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};

use vlsi_faults::FaultPlan;
use vlsi_noc::{NocNetwork, WormId};
use vlsi_par::Pool;
use vlsi_telemetry::TelemetryHandle;
use vlsi_topology::{Coord, Dir};

use crate::error::FabricError;
use crate::topology::{link_dir_index, ClusterTopology, LINK_DIRS};

/// Identifier of a fabric message, in send order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MessageId(pub u64);

impl std::fmt::Display for MessageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "msg{}", self.0)
    }
}

/// Tunables of the interconnect. [`Default`] is what the integration
/// tests and the cluster bench use.
#[derive(Clone, Debug)]
pub struct FabricConfig {
    /// Ticks a packet spends on an off-chip wire before it may hop.
    pub link_latency: u64,
    /// Packets one link may deliver per tick (serialisation limit).
    pub link_bandwidth: usize,
    /// On-die fabric-plane cycles simulated per cluster tick.
    pub cycles_per_tick: u64,
    /// Fabric-level (re)transmissions per message before it fails typed.
    pub max_attempts: u32,
}

impl Default for FabricConfig {
    fn default() -> FabricConfig {
        FabricConfig {
            link_latency: 2,
            link_bandwidth: 4,
            cycles_per_tick: 32,
            max_attempts: 4,
        }
    }
}

/// A message handed to its destination chip.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Delivery {
    /// The message.
    pub msg: MessageId,
    /// Chip it was sent from.
    pub src_chip: usize,
    /// Chip it arrived on.
    pub dst_chip: usize,
    /// Router it arrived at.
    pub dst: Coord,
    /// The payload, as given to [`ClusterNetwork::send`].
    pub payload: Vec<u64>,
    /// Cluster ticks from send to delivery.
    pub latency: u64,
}

/// Where a pending message currently sits.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Location {
    /// Travelling inside chip `chip`'s fabric plane.
    InPlane(usize),
    /// Queued on link `link` (index `chip * 4 + dir`).
    OnLink(usize),
}

/// Book-keeping for one undelivered message.
#[derive(Clone, Debug)]
struct Pending {
    src_chip: usize,
    src: Coord,
    dst_chip: usize,
    dst: Coord,
    payload: Vec<u64>,
    attempts: u32,
    hops: u64,
    sent_at: u64,
    at: Coord,
    location: Location,
}

/// One packet riding an off-chip link.
#[derive(Clone, Copy, Debug)]
struct LinkEntry {
    msg: u64,
    ready_at: u64,
}

/// Aggregate interconnect counters (also exported as `fabric.*`
/// telemetry).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Cluster ticks simulated.
    pub ticks: u64,
    /// Messages accepted by [`ClusterNetwork::send`].
    pub messages: u64,
    /// Messages delivered end-to-end.
    pub delivered: u64,
    /// Off-chip link crossings.
    pub crossings: u64,
    /// Fabric-level retransmissions (chip deaths, severed links, worms
    /// the on-die transport gave up on).
    pub retransmits: u64,
    /// Messages failed typed.
    pub undeliverable: u64,
    /// Chips killed by [`ClusterNetwork::fail_chip`].
    pub chip_failures: u64,
}

/// `M` fabric planes bridged into one cluster. See the
/// [module docs](self).
pub struct ClusterNetwork {
    topo: ClusterTopology,
    mesh: (u16, u16),
    planes: Vec<NocNetwork>,
    dead: Vec<bool>,
    links: Vec<VecDeque<LinkEntry>>,
    pending: BTreeMap<u64, Pending>,
    worm_msg: Vec<BTreeMap<WormId, u64>>,
    delivered: Vec<Delivery>,
    failed: Vec<(MessageId, FabricError)>,
    next_msg: u64,
    now: u64,
    config: FabricConfig,
    pool: Arc<Pool>,
    stats: FabricStats,
    telemetry: TelemetryHandle,
}

impl ClusterNetwork {
    /// A cluster of `topo.chips()` planes, each a `mesh.0 × mesh.1`
    /// die, with no telemetry.
    pub fn new(
        topo: ClusterTopology,
        mesh: (u16, u16),
        pool: Arc<Pool>,
        config: FabricConfig,
    ) -> ClusterNetwork {
        ClusterNetwork::with_telemetry(topo, mesh, pool, config, TelemetryHandle::disabled())
    }

    /// Like [`new`](Self::new), recording `fabric.*` instruments through
    /// `telemetry`. Each plane records through its own fork (live
    /// exactly when `telemetry` is), merged in chip order by
    /// [`merged_telemetry`](Self::merged_telemetry) — the fork-per-shard
    /// pattern that keeps exports byte-identical at any thread count.
    pub fn with_telemetry(
        topo: ClusterTopology,
        mesh: (u16, u16),
        pool: Arc<Pool>,
        config: FabricConfig,
        telemetry: TelemetryHandle,
    ) -> ClusterNetwork {
        let chips = topo.chips();
        let planes: Vec<NocNetwork> = (0..chips)
            .map(|_| NocNetwork::with_telemetry(mesh.0, mesh.1, telemetry.fork()))
            .collect();
        ClusterNetwork {
            topo,
            mesh,
            planes,
            dead: vec![false; chips],
            links: (0..chips * 4).map(|_| VecDeque::new()).collect(),
            pending: BTreeMap::new(),
            worm_msg: (0..chips).map(|_| BTreeMap::new()).collect(),
            delivered: Vec::new(),
            failed: Vec::new(),
            next_msg: 0,
            now: 0,
            config,
            pool,
            stats: FabricStats::default(),
            telemetry,
        }
    }

    /// The chip-level topology.
    pub fn topology(&self) -> &ClusterTopology {
        &self.topo
    }

    /// The fabric-level telemetry handle (plane instruments live in
    /// per-plane forks; see [`merged_telemetry`](Self::merged_telemetry)).
    pub fn telemetry(&self) -> &TelemetryHandle {
        &self.telemetry
    }

    /// Aggregate counters.
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// Cluster ticks simulated so far.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Whether `chip` is still alive.
    pub fn alive(&self, chip: usize) -> bool {
        !self.dead[chip]
    }

    /// Messages accepted but not yet delivered or failed.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Whether no message is in flight anywhere.
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty()
    }

    /// The edge-port router serving off-chip direction `dir` on every
    /// die: East `(w-1, h/2)`, West `(0, h/2)`, South `(w/2, h-1)`,
    /// North `(w/2, 0)`.
    pub fn port(&self, dir: Dir) -> Coord {
        let (w, h) = self.mesh;
        match dir {
            Dir::East => Coord::new(w - 1, h / 2),
            Dir::West => Coord::new(0, h / 2),
            Dir::South => Coord::new(w / 2, h - 1),
            Dir::North => Coord::new(w / 2, 0),
            Dir::Up | Dir::Down => unreachable!("chip links are planar"),
        }
    }

    /// Attaches a fault plan (times in plane cycles) to chip `chip`'s
    /// fabric plane — the plane transports fault-tolerantly and worms it
    /// gives up on come back as fabric-level retransmissions. Note that
    /// a plane's clock only advances while it carries traffic, so plan
    /// times count *busy* plane cycles, not wall fabric cycles.
    pub fn attach_plane_fault_plan(&mut self, chip: usize, plan: FaultPlan) {
        self.planes[chip].attach_fault_plan(plan);
    }

    /// Sends `payload` from router `src` on `src_chip` to router `dst`
    /// on `dst_chip`. Routing, link scheduling, and retransmission are
    /// the network's business; the caller polls
    /// [`take_delivered`](Self::take_delivered) /
    /// [`take_failed`](Self::take_failed). A send from or to a dead chip
    /// is refused up front; a message that becomes undeliverable later
    /// fails typed on the failed list instead.
    pub fn send(
        &mut self,
        src_chip: usize,
        src: Coord,
        dst_chip: usize,
        dst: Coord,
        payload: Vec<u64>,
    ) -> Result<MessageId, FabricError> {
        assert!(src_chip < self.topo.chips(), "source chip out of cluster");
        assert!(
            dst_chip < self.topo.chips(),
            "destination chip out of cluster"
        );
        if self.dead[src_chip] {
            return Err(FabricError::ChipDown { chip: src_chip });
        }
        if self.dead[dst_chip] {
            return Err(FabricError::ChipDown { chip: dst_chip });
        }
        let msg = self.next_msg;
        self.next_msg += 1;
        self.pending.insert(
            msg,
            Pending {
                src_chip,
                src,
                dst_chip,
                dst,
                payload,
                attempts: 1,
                hops: 0,
                sent_at: self.now,
                at: src,
                location: Location::InPlane(src_chip),
            },
        );
        self.stats.messages += 1;
        self.telemetry.count("fabric.messages", 1);
        self.inject_hop(msg);
        Ok(MessageId(msg))
    }

    /// Kills the chip at `chip`: the plane stops ticking, its eight
    /// adjacent link queues are severed, and every in-flight message
    /// touching it is retransmitted from its source or failed typed —
    /// in ascending message order, so the outcome is deterministic.
    pub fn fail_chip(&mut self, chip: usize) {
        if self.dead[chip] {
            return;
        }
        self.dead[chip] = true;
        self.stats.chip_failures += 1;
        self.telemetry.count("fabric.chip_failures", 1);
        self.worm_msg[chip].clear();
        // Messages inside the dead plane, or addressed to it, first.
        let msgs: Vec<u64> = self.pending.keys().copied().collect();
        for msg in msgs {
            let p = &self.pending[&msg];
            if p.dst_chip == chip {
                self.fail_msg(msg, "destination chip down");
            } else if p.location == Location::InPlane(chip) {
                self.retransmit_or_fail(msg, "transit chip down");
            }
        }
        // Then the severed link queues, in link-index order.
        for li in 0..self.links.len() {
            let src = li / 4;
            let dir = LINK_DIRS[li % 4];
            if src != chip && self.topo.neighbor(src, dir) != chip {
                continue;
            }
            let q = std::mem::take(&mut self.links[li]);
            for entry in q {
                if self.pending.contains_key(&entry.msg) {
                    self.retransmit_or_fail(entry.msg, "link severed");
                }
            }
        }
    }

    /// Advances the cluster one tick: `cycles_per_tick` two-phase fabric
    /// cycles, then one round of link transmission. See the
    /// [module docs](self) for the ordering discipline.
    pub fn tick(&mut self) {
        self.now += 1;
        self.stats.ticks += 1;
        let chips = self.planes.len();
        for _ in 0..self.config.cycles_per_tick {
            // Phase 1 — in-phase, parallel: chip i is task i. Idle
            // planes are skipped, so a plane's clock only advances
            // while it carries traffic; idleness is pure simulation
            // state, so the skip is identical at every thread count.
            {
                let dead = &self.dead;
                let views: Vec<Mutex<&mut NocNetwork>> =
                    self.planes.iter_mut().map(Mutex::new).collect();
                self.pool.run(chips, &|i| {
                    if !dead[i] {
                        let mut plane = views[i].lock().unwrap_or_else(|e| e.into_inner());
                        if !plane.is_idle() {
                            plane.tick();
                        }
                    }
                });
            }
            // Phase 2 — serial commit, ascending (chip, router) order:
            // the NoC already commits a cycle's deliveries in ascending
            // router order, so draining chips in index order yields the
            // canonical proposal order.
            for c in 0..chips {
                if self.dead[c] {
                    continue;
                }
                for (packet, _) in self.planes[c].take_delivered() {
                    let Some(msg) = self.worm_msg[c].remove(&packet.worm) else {
                        continue;
                    };
                    if self.pending.contains_key(&msg) {
                        self.arrive(c, msg);
                    }
                }
                for (worm, _) in self.planes[c].take_failed() {
                    let Some(msg) = self.worm_msg[c].remove(&worm) else {
                        continue;
                    };
                    if self.pending.contains_key(&msg) {
                        self.retransmit_or_fail(msg, "plane transport failed");
                    }
                }
            }
        }
        // Link transmission, fixed link-index order.
        for li in 0..self.links.len() {
            let src = li / 4;
            if self.dead[src] {
                continue;
            }
            let dir = LINK_DIRS[li % 4];
            let dst = self.topo.neighbor(src, dir);
            let mut budget = self.config.link_bandwidth;
            while budget > 0 {
                let Some(front) = self.links[li].front() else {
                    break;
                };
                if front.ready_at > self.now {
                    break;
                }
                let msg = self.links[li].pop_front().expect("front exists").msg;
                budget -= 1;
                if !self.pending.contains_key(&msg) {
                    continue;
                }
                self.stats.crossings += 1;
                self.telemetry.count("fabric.crossings", 1);
                self.telemetry.count_at("fabric.link_util", li as u64, 1);
                let ingress = self.port(dir.opposite());
                let hop_budget = self.topo.hop_budget();
                let p = self.pending.get_mut(&msg).expect("pending");
                p.hops += 1;
                if p.hops > hop_budget {
                    self.fail_msg(msg, "hop budget");
                    continue;
                }
                p.location = Location::InPlane(dst);
                p.at = ingress;
                self.inject_hop(msg);
            }
        }
        // Per-link occupancy, sampled once per tick per link while the
        // fabric is busy (state-dependent, so still deterministic).
        if !self.pending.is_empty() {
            for q in &self.links {
                self.telemetry
                    .record("fabric.link_occupancy", q.len() as u64);
            }
        }
    }

    /// Messages delivered since the last call, in commit order.
    pub fn take_delivered(&mut self) -> Vec<Delivery> {
        std::mem::take(&mut self.delivered)
    }

    /// Messages failed typed since the last call, in commit order.
    pub fn take_failed(&mut self) -> Vec<(MessageId, FabricError)> {
        std::mem::take(&mut self.failed)
    }

    /// A fresh registry holding the fabric's own instruments plus every
    /// plane's, merged in chip order — byte-identical per seed at any
    /// thread count.
    pub fn merged_telemetry(&self) -> TelemetryHandle {
        let merged = TelemetryHandle::active();
        merged.merge_from(&self.telemetry);
        for plane in &self.planes {
            merged.merge_from(plane.telemetry());
        }
        merged
    }

    /// Injects the next on-die leg of `msg` into the plane it currently
    /// sits on: toward the final destination router if this is the last
    /// chip, else toward the edge port of the next chip-level hop.
    fn inject_hop(&mut self, msg: u64) {
        let (chip, dst_chip, dst, from) = {
            let p = &self.pending[&msg];
            let Location::InPlane(chip) = p.location else {
                unreachable!("inject_hop on a link-resident message");
            };
            (chip, p.dst_chip, p.dst, p.at)
        };
        let target = if dst_chip == chip {
            dst
        } else {
            match self.topo.next_hop(chip, dst_chip, &self.dead) {
                Some(dir) => self.port(dir),
                None => {
                    self.fail_msg(msg, "no route");
                    return;
                }
            }
        };
        // Two header words model the routing envelope a cross-chip
        // message carries on the wire.
        let p = &self.pending[&msg];
        let mut payload = Vec::with_capacity(2 + p.payload.len());
        payload.push(FABRIC_HEADER);
        payload.push(msg);
        payload.extend_from_slice(&p.payload);
        match self.planes[chip].inject(from, target, payload) {
            Ok(worm) => {
                self.worm_msg[chip].insert(worm, msg);
            }
            Err(_) => self.fail_msg(msg, "inject refused"),
        }
    }

    /// A leg of `msg` completed on chip `c`: final delivery, or a link
    /// proposal committed in arrival order.
    fn arrive(&mut self, c: usize, msg: u64) {
        let p = self.pending.get_mut(&msg).expect("pending");
        if p.dst_chip == c {
            let p = self.pending.remove(&msg).expect("pending");
            let latency = self.now - p.sent_at;
            self.stats.delivered += 1;
            self.telemetry.count("fabric.delivered", 1);
            self.telemetry.record("fabric.msg_latency", latency);
            self.delivered.push(Delivery {
                msg: MessageId(msg),
                src_chip: p.src_chip,
                dst_chip: p.dst_chip,
                dst: p.dst,
                payload: p.payload,
                latency,
            });
            return;
        }
        match self.topo.next_hop(c, p.dst_chip, &self.dead) {
            Some(dir) => {
                let li = c * 4 + link_dir_index(dir);
                p.location = Location::OnLink(li);
                let ready_at = self.now + self.config.link_latency;
                self.links[li].push_back(LinkEntry { msg, ready_at });
            }
            None => self.fail_msg(msg, "no route"),
        }
    }

    /// Re-sends `msg` from its source, or fails it typed once the
    /// attempt budget is spent or no live path can exist.
    fn retransmit_or_fail(&mut self, msg: u64, reason: &'static str) {
        let p = self.pending.get_mut(&msg).expect("pending");
        if self.dead[p.src_chip] || self.dead[p.dst_chip] {
            self.fail_msg(msg, reason);
            return;
        }
        if p.attempts >= self.config.max_attempts {
            self.fail_msg(msg, "retries");
            return;
        }
        p.attempts += 1;
        p.hops = 0;
        p.at = p.src;
        p.location = Location::InPlane(p.src_chip);
        self.stats.retransmits += 1;
        self.telemetry.count("fabric.retransmits", 1);
        self.inject_hop(msg);
    }

    /// Fails `msg` typed onto the failed list.
    fn fail_msg(&mut self, msg: u64, reason: &'static str) {
        if self.pending.remove(&msg).is_some() {
            self.stats.undeliverable += 1;
            self.telemetry.count("fabric.undeliverable", 1);
            self.failed.push((
                MessageId(msg),
                FabricError::Undeliverable {
                    msg: MessageId(msg),
                    reason,
                },
            ));
        }
    }
}

/// First payload word of every on-wire fabric leg (a recognisable
/// envelope marker in plane-level dumps; identification itself uses the
/// worm→message map, not the payload).
pub const FABRIC_HEADER: u64 = 0xFAB0_C0DE_0000_0001;

#[cfg(test)]
mod tests {
    use super::*;

    fn net(threads: usize, topo: ClusterTopology) -> ClusterNetwork {
        ClusterNetwork::with_telemetry(
            topo,
            (8, 8),
            Pool::new(threads),
            FabricConfig::default(),
            TelemetryHandle::active(),
        )
    }

    fn drain(net: &mut ClusterNetwork, max: u64) {
        let mut t = 0;
        while !net.is_idle() {
            net.tick();
            t += 1;
            assert!(t < max, "fabric did not drain");
        }
    }

    #[test]
    fn same_chip_sends_deliver_without_crossings() {
        let mut n = net(1, ClusterTopology::ring(2));
        let msg = n
            .send(0, Coord::new(0, 0), 0, Coord::new(7, 7), vec![1, 2, 3])
            .unwrap();
        drain(&mut n, 100);
        let d = n.take_delivered();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].msg, msg);
        assert_eq!(d[0].payload, vec![1, 2, 3]);
        assert_eq!(n.stats().crossings, 0);
        assert!(n.take_failed().is_empty());
    }

    #[test]
    fn cross_chip_sends_cross_links_and_keep_payloads() {
        let mut n = net(1, ClusterTopology::ring(4));
        let msg = n
            .send(0, Coord::new(2, 3), 2, Coord::new(5, 1), vec![9, 8, 7])
            .unwrap();
        drain(&mut n, 400);
        let d = n.take_delivered();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].msg, msg);
        assert_eq!(d[0].dst_chip, 2);
        assert_eq!(d[0].payload, vec![9, 8, 7]);
        assert_eq!(n.stats().crossings, 2, "0→1→2 is two link hops");
        assert!(d[0].latency > 0);
    }

    #[test]
    fn storm_is_bit_identical_across_thread_counts() {
        let run = |threads: usize| {
            let mut n = net(threads, ClusterTopology::torus(2, 2));
            let mut k = 0u64;
            for src in 0..4usize {
                for dst in 0..4usize {
                    for i in 0..4u16 {
                        k += 1;
                        n.send(
                            src,
                            Coord::new(i, (k % 8) as u16),
                            dst,
                            Coord::new(7 - i, ((k * 3) % 8) as u16),
                            vec![k, k * 17, k * 31],
                        )
                        .unwrap();
                    }
                }
            }
            drain(&mut n, 2_000);
            format!(
                "{:?}\n{:?}\n{:?}\n{}",
                n.take_delivered(),
                n.take_failed(),
                n.stats(),
                n.merged_telemetry().snapshot().to_json(),
            )
        };
        let serial = run(1);
        for threads in [2, 8] {
            assert_eq!(run(threads), serial, "{threads} threads");
        }
    }

    #[test]
    fn chip_death_reroutes_or_fails_typed_never_hangs() {
        let mut n = net(1, ClusterTopology::ring(4));
        // A message that must transit chip 1 (0 → 2 goes East), plus one
        // addressed to chip 1 itself.
        let transit = n
            .send(0, Coord::new(0, 0), 2, Coord::new(4, 4), vec![1])
            .unwrap();
        let doomed = n
            .send(0, Coord::new(0, 1), 1, Coord::new(3, 3), vec![2])
            .unwrap();
        n.tick();
        n.fail_chip(1);
        drain(&mut n, 1_000);
        let delivered = n.take_delivered();
        let failed = n.take_failed();
        assert_eq!(delivered.len(), 1, "transit message detours via chip 3");
        assert_eq!(delivered[0].msg, transit);
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].0, doomed);
        assert!(matches!(
            failed[0].1,
            FabricError::Undeliverable {
                reason: "destination chip down",
                ..
            }
        ));
        assert!(n.stats().retransmits > 0 || n.stats().crossings >= 2);
        // Sending to/from the dead chip is refused up front.
        assert_eq!(
            n.send(1, Coord::new(0, 0), 2, Coord::new(0, 0), vec![]),
            Err(FabricError::ChipDown { chip: 1 })
        );
        assert_eq!(
            n.send(2, Coord::new(0, 0), 1, Coord::new(0, 0), vec![]),
            Err(FabricError::ChipDown { chip: 1 })
        );
    }

    #[test]
    fn isolated_destination_fails_every_message_typed() {
        let mut n = net(2, ClusterTopology::ring(3));
        n.fail_chip(1);
        n.fail_chip(2);
        // Only chip 0 lives; nothing can leave it.
        let msg = n.send(0, Coord::new(0, 0), 0, Coord::new(1, 1), vec![5]);
        assert!(msg.is_ok(), "same-chip send still works");
        drain(&mut n, 200);
        assert_eq!(n.take_delivered().len(), 1);
        assert!(n.take_failed().is_empty());
    }

    #[test]
    fn telemetry_counts_crossings_and_occupancy() {
        let mut n = net(1, ClusterTopology::ring(2));
        for i in 0..6u64 {
            n.send(
                0,
                Coord::new(0, i as u16),
                1,
                Coord::new(7, i as u16),
                vec![i],
            )
            .unwrap();
        }
        drain(&mut n, 400);
        let snap = n.merged_telemetry().snapshot();
        assert_eq!(snap.counter("fabric.crossings"), n.stats().crossings);
        assert_eq!(snap.counter("fabric.delivered"), 6);
        assert!(snap.histogram("fabric.link_occupancy").is_some());
        assert!(snap.histogram("fabric.msg_latency").is_some());
    }
}

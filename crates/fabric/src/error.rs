//! Typed failures of the inter-chip layer.

use crate::network::MessageId;
use vlsi_runtime::FleetError;

/// Why the fabric could not carry a message. Failures are graceful:
/// they land on [`ClusterNetwork::take_failed`], never panic or hang.
///
/// [`ClusterNetwork::take_failed`]: crate::ClusterNetwork::take_failed
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FabricError {
    /// The chip at `chip` is dead, so the send (or delivery) is
    /// impossible.
    ChipDown {
        /// Fleet index of the dead chip.
        chip: usize,
    },
    /// The message was given up on; `reason` is a short label
    /// (`"no route"`, `"hop budget"`, `"retries"`, `"destination chip
    /// down"`, …).
    Undeliverable {
        /// The failed message.
        msg: MessageId,
        /// Short reason label.
        reason: &'static str,
    },
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricError::ChipDown { chip } => write!(f, "chip {chip} is down"),
            FabricError::Undeliverable { msg, reason } => {
                write!(f, "{msg} undeliverable: {reason}")
            }
        }
    }
}

impl std::error::Error for FabricError {}

/// Why a cluster run stopped. Per-job losses are *not* errors — they
/// are typed on the job (see [`Cluster::lost_jobs`]); an error here
/// means the run itself could not continue.
///
/// [`Cluster::lost_jobs`]: crate::Cluster::lost_jobs
#[derive(Clone, PartialEq, Debug)]
pub enum ClusterError {
    /// A live chip's runtime errored (lowest chip index wins, like
    /// [`FleetError`]).
    Chip(FleetError),
    /// The cluster did not drain within the tick budget.
    Hung {
        /// Ticks simulated before giving up.
        ticks: u64,
        /// Jobs still outstanding (queued, running, or in flight).
        outstanding: usize,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Chip(e) => write!(f, "cluster: {e}"),
            ClusterError::Hung { ticks, outstanding } => {
                write!(
                    f,
                    "cluster hung after {ticks} ticks ({outstanding} outstanding)"
                )
            }
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<FleetError> for ClusterError {
    fn from(e: FleetError) -> ClusterError {
        ClusterError::Chip(e)
    }
}

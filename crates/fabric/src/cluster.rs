//! Fleet-level scheduling over the fabric: cluster-wide admission, job
//! migration, and whole-chip chaos.
//!
//! A [`Cluster`] owns a [`Fleet`] of runtimes and a [`ClusterNetwork`]
//! bridging their dies, and drives both with one clock. Each
//! [`tick`](Cluster::tick) performs, in a fixed order:
//!
//! 1. **Chip deaths** — [`FaultKind::ChipDown`] entries of the attached
//!    plan fire: the chip's plane and links are severed, its runtime is
//!    [`evacuated`](vlsi_runtime::Runtime::evacuate), and every
//!    displaced job is relocated over the fabric or failed typed.
//! 2. **Runtime tick** — live chips advance one tick in parallel
//!    ([`Fleet::tick_masked`], chip `i` = task `i`).
//! 3. **Migration scan** — serial, ascending chip/job order: a queued
//!    job its chip cannot gather right now (probed with
//!    `largest_gatherable`) moves to the live chip with the most
//!    gatherable room (strictly more than home; ties to the lowest
//!    index). The checkpoint travels as a real fabric message, so
//!    migration pays link latency and shows up in `fabric.*` telemetry.
//! 4. **Fabric tick** — [`ClusterNetwork::tick`].
//! 5. **Arrivals** — delivered checkpoints are submitted on their
//!    destination chip; failed ones are re-placed or marked lost.
//!
//! Every decision reads only post-barrier serial state, so a cluster
//! run is bit-identical at any thread count.
//!
//! [`FaultKind::ChipDown`]: vlsi_faults::FaultKind::ChipDown

use std::collections::BTreeMap;
use std::sync::Arc;

use vlsi_faults::FaultPlan;
use vlsi_par::Pool;
use vlsi_runtime::{Fleet, JobId, JobSpec, Runtime, RuntimeEvent, RuntimeSummary};
use vlsi_telemetry::TelemetryHandle;
use vlsi_topology::Coord;

use crate::error::ClusterError;
use crate::network::{ClusterNetwork, FabricConfig};
use crate::topology::ClusterTopology;

/// Identifier of a job across the whole cluster, in submission order.
/// Local [`JobId`]s change when a job migrates; this one never does.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GlobalJobId(pub u64);

impl std::fmt::Display for GlobalJobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gjob{}", self.0)
    }
}

/// Tunables of the cluster scheduler.
#[derive(Clone, Debug, Default)]
pub struct ClusterConfig {
    /// Interconnect parameters.
    pub fabric: FabricConfig,
    /// Times a single job may ride the fabric — steals and death
    /// relocations combined — before it must stay put (bounds
    /// ping-pong; 0 disables work stealing). A displaced job past the
    /// cap is still re-placed, just directly instead of by checkpoint
    /// message.
    pub migration_cap: u32,
    /// Base words of a migrating job's checkpoint message; one more
    /// word rides along per 16 requested clusters (a compressed
    /// register summary, not full state — full state would serialize a
    /// multi-thousand-flit worm through every plane it crosses).
    pub checkpoint_words: usize,
}

impl ClusterConfig {
    /// The defaults the integration tests and cluster bench use.
    pub fn standard() -> ClusterConfig {
        ClusterConfig {
            fabric: FabricConfig::default(),
            migration_cap: 4,
            checkpoint_words: 4,
        }
    }
}

/// Where a global job currently is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Placement {
    /// Submitted on a chip under a local id.
    OnChip(usize, JobId),
    /// Checkpoint in flight toward a chip.
    InFlight(usize),
    /// Gone: no live chip could take it (reason label attached).
    Lost(&'static str),
}

/// Cluster-side record of one job.
#[derive(Clone, Debug)]
struct GlobalJob {
    placement: Placement,
    migrations: u32,
}

/// A checkpoint riding the fabric.
struct Ticket {
    gid: u64,
    spec: JobSpec,
    dst: usize,
}

/// What [`Cluster::run_until_idle`] returns.
#[derive(Clone, Debug)]
pub struct ClusterSummary {
    /// Cluster ticks simulated.
    pub ticks: u64,
    /// Jobs completed, summed over every chip (dead ones included —
    /// work finished before a death still counts).
    pub completed: u64,
    /// Jobs failed typed on some chip.
    pub failed: u64,
    /// Jobs lost cluster-side (no live chip could take them).
    pub lost: u64,
    /// Migrations and evacuations committed onto the fabric.
    pub migrated: u64,
    /// Chips that died.
    pub chip_failures: u64,
    /// Per-chip runtime summaries, in chip order.
    pub per_chip: Vec<RuntimeSummary>,
}

/// Fleet scheduling over an inter-chip fabric. See the
/// [module docs](self).
pub struct Cluster {
    fleet: Fleet,
    net: ClusterNetwork,
    alive: Vec<bool>,
    plan: FaultPlan,
    jobs: Vec<GlobalJob>,
    index: BTreeMap<(usize, u64), u64>,
    tickets: BTreeMap<u64, Ticket>,
    lost: Vec<(GlobalJobId, &'static str)>,
    now: u64,
    config: ClusterConfig,
    telemetry: TelemetryHandle,
}

impl Cluster {
    /// An empty cluster: `topo` chips of `mesh`-sized dies, driven on
    /// `pool`. Push exactly [`ClusterTopology::chips`] runtimes with
    /// [`push_chip`](Self::push_chip) before ticking. `telemetry`
    /// carries the `fabric.*` instruments; per-chip instruments live on
    /// the runtimes' own handles.
    pub fn with_telemetry(
        topo: ClusterTopology,
        mesh: (u16, u16),
        pool: Arc<Pool>,
        config: ClusterConfig,
        telemetry: TelemetryHandle,
    ) -> Cluster {
        let net = ClusterNetwork::with_telemetry(
            topo,
            mesh,
            pool.clone(),
            config.fabric.clone(),
            telemetry.clone(),
        );
        Cluster {
            fleet: Fleet::new(pool),
            net,
            alive: vec![true; topo.chips()],
            plan: FaultPlan::none(),
            jobs: Vec::new(),
            index: BTreeMap::new(),
            tickets: BTreeMap::new(),
            lost: Vec::new(),
            now: 0,
            config,
            telemetry,
        }
    }

    /// [`with_telemetry`](Self::with_telemetry) without instrumentation.
    pub fn new(
        topo: ClusterTopology,
        mesh: (u16, u16),
        pool: Arc<Pool>,
        config: ClusterConfig,
    ) -> Cluster {
        Cluster::with_telemetry(topo, mesh, pool, config, TelemetryHandle::disabled())
    }

    /// Adds the next chip's runtime; returns its fleet index. Panics if
    /// the topology is already full.
    pub fn push_chip(&mut self, rt: Runtime) -> usize {
        assert!(
            self.fleet.len() < self.net.topology().chips(),
            "topology holds {} chips",
            self.net.topology().chips()
        );
        self.fleet.push(rt)
    }

    /// The underlying fleet.
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// The underlying fleet, mutably (per-chip fault plans, inspection).
    pub fn fleet_mut(&mut self) -> &mut Fleet {
        &mut self.fleet
    }

    /// The interconnect.
    pub fn network(&self) -> &ClusterNetwork {
        &self.net
    }

    /// Whether `chip` is still alive.
    pub fn alive(&self, chip: usize) -> bool {
        self.alive[chip]
    }

    /// Cluster ticks simulated.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Jobs lost cluster-side, in loss order: jobs a chip death
    /// displaced that no live chip could hold, with a reason label.
    pub fn lost_jobs(&self) -> &[(GlobalJobId, &'static str)] {
        &self.lost
    }

    /// Where `gid` was last placed: `(chip, local id)` — the job may be
    /// queued, running, or already finished there. `None` while its
    /// checkpoint is in flight or after it was lost.
    pub fn locate(&self, gid: GlobalJobId) -> Option<(usize, JobId)> {
        match self.jobs.get(gid.0 as usize)?.placement {
            Placement::OnChip(chip, local) => Some((chip, local)),
            _ => None,
        }
    }

    /// Attaches (merges) a fault plan whose times are cluster ticks;
    /// [`FaultKind::ChipDown`] entries fire during [`tick`](Self::tick).
    /// Like the runtime's, starts shift to "now + 1 + start" so a plan
    /// attached mid-run stays in the future. Non-chip faults are kept
    /// but inert at this level.
    ///
    /// [`FaultKind::ChipDown`]: vlsi_faults::FaultKind::ChipDown
    pub fn attach_fault_plan(&mut self, plan: FaultPlan) {
        let shift = self.now + 1;
        for f in plan.faults() {
            let mut f = *f;
            f.start += shift;
            self.plan.push(f);
        }
    }

    /// Submits a job cluster-wide: it is placed on the live chip with
    /// the most free clusters (lowest index on ties). A job too large
    /// for every live chip still lands somewhere and fails typed there.
    pub fn submit(&mut self, spec: JobSpec) -> GlobalJobId {
        let chip = self.pick_chip(spec.clusters).unwrap_or(0);
        self.submit_to(chip, spec)
    }

    /// Submits a job only if some live chip can (eventually) hold it.
    /// Returns `None` — no placement, no side effects — when every
    /// live chip is too small or the whole cluster is dead, so a
    /// service front-end can turn "nowhere to run" into a typed
    /// rejection instead of the panic [`Cluster::submit_to`] reserves
    /// for internal misuse.
    pub fn try_submit(&mut self, spec: JobSpec) -> Option<GlobalJobId> {
        let chip = self.pick_chip(spec.clusters)?;
        Some(self.submit_to(chip, spec))
    }

    /// Submits a job to a specific chip (tests pin placements with
    /// this; saturating one chip is how migration is exercised).
    pub fn submit_to(&mut self, chip: usize, spec: JobSpec) -> GlobalJobId {
        assert!(self.alive[chip], "submitting to a dead chip");
        let gid = self.jobs.len() as u64;
        let local = self.fleet.chip_mut(chip).submit(spec);
        self.jobs.push(GlobalJob {
            placement: Placement::OnChip(chip, local),
            migrations: 0,
        });
        self.index.insert((chip, local.0), gid);
        GlobalJobId(gid)
    }

    /// The live chip with the most free clusters that can (eventually)
    /// hold `clusters`, lowest index on ties.
    fn pick_chip(&self, clusters: usize) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None;
        for c in 0..self.fleet.len() {
            if !self.alive[c] {
                continue;
            }
            let rt = self.fleet.chip(c);
            if rt.chip().usable_clusters() < clusters {
                continue;
            }
            let free = rt.chip().free_clusters();
            if best.is_none_or(|(bf, _)| free > bf) {
                best = Some((free, c));
            }
        }
        best.map(|(_, c)| c)
    }

    /// Advances the cluster one tick. See the [module docs](self) for
    /// the phase order.
    pub fn tick(&mut self) -> Result<(), ClusterError> {
        self.now += 1;
        // 1. Chip deaths scheduled for this tick.
        let dying: Vec<u16> = self.plan.chips_failing_at(self.now).collect();
        for chip in dying {
            self.kill_chip(chip as usize);
        }
        // 2. Live chips tick in parallel.
        self.fleet.tick_masked(&self.alive)?;
        // 3. Work stealing at the tick boundary.
        self.migration_scan();
        // 4. The fabric moves.
        self.net.tick();
        // 5. Arrivals and fabric failures.
        for d in self.net.take_delivered() {
            let Some(ticket) = self.tickets.remove(&d.msg.0) else {
                continue;
            };
            self.place(ticket.gid, ticket.dst, ticket.spec);
        }
        for (msg, _) in self.net.take_failed() {
            let Some(ticket) = self.tickets.remove(&msg.0) else {
                continue;
            };
            self.relocate(ticket.gid, ticket.spec);
        }
        Ok(())
    }

    /// Ticks until every live chip is idle and the fabric is drained,
    /// or errs [`ClusterError::Hung`] after `max_ticks`.
    pub fn run_until_idle(&mut self, max_ticks: u64) -> Result<ClusterSummary, ClusterError> {
        let mut ticks = 0;
        while !self.is_idle() {
            if ticks >= max_ticks {
                return Err(ClusterError::Hung {
                    ticks,
                    outstanding: self.outstanding(),
                });
            }
            self.tick()?;
            ticks += 1;
        }
        Ok(self.summary())
    }

    /// Whether no work is queued, running, or in flight anywhere. A
    /// pending chip-death whose tick has not come yet does not count —
    /// run horizons must cover the plan.
    pub fn is_idle(&self) -> bool {
        self.tickets.is_empty()
            && self.net.is_idle()
            && (0..self.fleet.len())
                .all(|c| !self.alive[c] || self.fleet.chip(c).outstanding() == 0)
    }

    /// Jobs queued or running on live chips plus checkpoints in flight.
    pub fn outstanding(&self) -> usize {
        self.tickets.len()
            + (0..self.fleet.len())
                .filter(|&c| self.alive[c])
                .map(|c| self.fleet.chip(c).outstanding())
                .sum::<usize>()
    }

    /// The run's digest so far.
    pub fn summary(&self) -> ClusterSummary {
        let per_chip: Vec<RuntimeSummary> = self.fleet.chips().map(Runtime::summary).collect();
        ClusterSummary {
            ticks: self.now,
            completed: per_chip.iter().map(|s| s.completed).sum(),
            failed: per_chip.iter().map(|s| s.failed).sum(),
            lost: self.lost.len() as u64,
            migrated: self.net.stats().messages,
            chip_failures: self.net.stats().chip_failures,
            per_chip,
        }
    }

    /// Every chip's event log merged in chip order (dead chips keep the
    /// log up to their death).
    pub fn merged_events(&self) -> Vec<(usize, RuntimeEvent)> {
        self.fleet.merged_events()
    }

    /// One registry holding fabric, plane, and chip instruments, merged
    /// in that fixed order — byte-identical per seed at any thread
    /// count.
    pub fn merged_telemetry(&self) -> TelemetryHandle {
        let merged = self.net.merged_telemetry();
        for chip in self.fleet.chips() {
            merged.merge_from(chip.telemetry());
        }
        merged
    }

    /// Kills `chip`: severs it in the fabric, evacuates its runtime,
    /// and re-places every displaced job (or marks it lost, typed).
    fn kill_chip(&mut self, chip: usize) {
        if !self.alive[chip] {
            return;
        }
        self.alive[chip] = false;
        self.net.fail_chip(chip);
        let displaced = self.fleet.chip_mut(chip).evacuate();
        for (local, spec) in displaced {
            let Some(gid) = self.index.remove(&(chip, local.0)) else {
                continue;
            };
            self.relocate(gid, spec);
        }
        // Checkpoints already in flight *toward* the dead chip fail in
        // the fabric and re-place via the failure path next tick.
    }

    /// Re-places a displaced job: direct resubmit if the checkpoint
    /// home *is* the target, else a fresh checkpoint over the fabric
    /// from the lowest-index live chip (where the controller keeps its
    /// replicas). Marks the job lost, typed, when no live chip can ever
    /// hold it.
    fn relocate(&mut self, gid: u64, spec: JobSpec) {
        let Some(target) = self.pick_chip(spec.clusters) else {
            self.jobs[gid as usize].placement = Placement::Lost("no capacity");
            self.lost.push((GlobalJobId(gid), "no capacity"));
            self.telemetry.count("fabric.jobs_lost", 1);
            self.telemetry.count("fabric.jobs_lost.no_capacity", 1);
            return;
        };
        let Some(home) = (0..self.fleet.len()).find(|&c| self.alive[c]) else {
            self.jobs[gid as usize].placement = Placement::Lost("no live chip");
            self.lost.push((GlobalJobId(gid), "no live chip"));
            self.telemetry.count("fabric.jobs_lost", 1);
            self.telemetry.count("fabric.jobs_lost.no_live_chip", 1);
            return;
        };
        self.telemetry.count("fabric.relocations", 1);
        self.jobs[gid as usize].migrations += 1;
        // Past the cap (e.g. the live chips are partitioned and every
        // checkpoint fails "no route"), stop riding the fabric and
        // place directly — bounded progress beats a livelock.
        if home == target || self.jobs[gid as usize].migrations > self.config.migration_cap {
            self.place(gid, target, spec);
        } else {
            self.ship(gid, home, target, spec);
        }
    }

    /// Submits `spec` on `chip` and updates the global index.
    fn place(&mut self, gid: u64, chip: usize, spec: JobSpec) {
        let local = self.fleet.chip_mut(chip).submit(spec);
        self.jobs[gid as usize].placement = Placement::OnChip(chip, local);
        self.index.insert((chip, local.0), gid);
    }

    /// Puts `gid`'s checkpoint on the wire from `src` to `dst`.
    fn ship(&mut self, gid: u64, src: usize, dst: usize, spec: JobSpec) {
        let words = (self.config.checkpoint_words + spec.clusters / 16).max(1);
        let payload: Vec<u64> = std::iter::repeat_n(gid, words).collect();
        let mesh_port = |c: usize| {
            let rt = self.fleet.chip(c);
            Coord::new(rt.chip().grid().width() / 2, rt.chip().grid().height() / 2)
        };
        let src_coord = mesh_port(src);
        let dst_coord = mesh_port(dst);
        match self.net.send(src, src_coord, dst, dst_coord, payload) {
            Ok(msg) => {
                self.jobs[gid as usize].placement = Placement::InFlight(dst);
                self.tickets.insert(msg.0, Ticket { gid, spec, dst });
            }
            Err(_) => {
                // A chip died between pick and send; try again with the
                // fresh live set.
                self.relocate(gid, spec);
            }
        }
    }

    /// Work stealing: a queued job that cannot be gathered on its chip
    /// right now (the admission probe is `largest_gatherable`, not the
    /// raw free count — fragmentation is what actually blocks a
    /// gather) moves to the live chip with strictly more gatherable
    /// room. Serial and order-fixed (ascending source chip, then queue
    /// order), so it is deterministic at any thread count.
    fn migration_scan(&mut self) {
        if self.config.migration_cap == 0 {
            return;
        }
        let chips = self.fleet.len();
        if (0..chips).all(|c| !self.alive[c] || self.fleet.chip(c).queued_ids().is_empty()) {
            return;
        }
        // One gatherable-region probe per chip per scan: withdrawing a
        // queued job frees no clusters and shipped jobs only land on
        // delivery, so occupancy cannot change mid-scan — `planned`
        // tracks the reservations instead.
        let largest: Vec<usize> = (0..chips)
            .map(|c| self.fleet.chip(c).chip().largest_gatherable())
            .collect();
        let mut planned = vec![0usize; chips];
        for s in 0..chips {
            if !self.alive[s] {
                continue;
            }
            let free_s = largest[s];
            let queued: Vec<JobId> = self.fleet.chip(s).queued_ids().to_vec();
            for local in queued {
                let Ok(rec) = self.fleet.chip(s).job(local) else {
                    continue;
                };
                let need = rec.spec.clusters;
                if need <= free_s.saturating_sub(planned[s]) {
                    continue; // admissible at home right now
                }
                let Some(&gid) = self.index.get(&(s, local.0)) else {
                    continue;
                };
                if self.jobs[gid as usize].migrations >= self.config.migration_cap {
                    continue;
                }
                let mut best: Option<(usize, usize)> = None;
                for d in 0..chips {
                    if d == s || !self.alive[d] {
                        continue;
                    }
                    let rt = self.fleet.chip(d);
                    if rt.chip().usable_clusters() < need {
                        continue;
                    }
                    let avail = largest[d].saturating_sub(planned[d]);
                    if avail >= need && avail > free_s && best.is_none_or(|(ba, _)| avail > ba) {
                        best = Some((avail, d));
                    }
                }
                let Some((_, d)) = best else {
                    continue;
                };
                let Some(spec) = self.fleet.chip_mut(s).withdraw(local) else {
                    continue;
                };
                self.index.remove(&(s, local.0));
                planned[d] += need;
                self.jobs[gid as usize].migrations += 1;
                self.telemetry.count("fabric.migrations", 1);
                self.ship(gid, s, d, spec);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_core::VlsiChip;
    use vlsi_runtime::{mix::mixed_jobs, Fifo, RuntimeConfig, Workload};
    use vlsi_topology::Cluster as ClusterShape;

    fn chip_runtime() -> Runtime {
        let chip = VlsiChip::with_telemetry(
            8,
            8,
            ClusterShape::default(),
            vlsi_telemetry::TelemetryHandle::active(),
        );
        Runtime::new(chip, Box::new(Fifo), RuntimeConfig::default())
    }

    fn cluster_of(chips: usize, threads: usize) -> Cluster {
        let mut cluster = Cluster::with_telemetry(
            ClusterTopology::ring(chips),
            (8, 8),
            Pool::new(threads),
            ClusterConfig::standard(),
            vlsi_telemetry::TelemetryHandle::active(),
        );
        for _ in 0..chips {
            cluster.push_chip(chip_runtime());
        }
        cluster
    }

    fn idle(clusters: usize, ticks: u64) -> JobSpec {
        JobSpec::new("idle", clusters, Workload::Idle { ticks })
    }

    /// Every observable of a finished run, as one string.
    fn digest(cluster: &Cluster) -> String {
        let s = cluster.summary();
        let mut out = format!(
            "ticks={} completed={} failed={} lost={} migrated={} deaths={}\n",
            s.ticks, s.completed, s.failed, s.lost, s.migrated, s.chip_failures
        );
        for (i, c) in s.per_chip.iter().enumerate() {
            out.push_str(&format!(
                "chip{i}: completed={} failed={} migrated_out={}\n",
                c.completed, c.failed, c.stats.migrated_out
            ));
        }
        for (chip, ev) in cluster.merged_events() {
            out.push_str(&format!("chip{chip} t{} {:?}\n", ev.tick, ev.kind));
        }
        out.push_str(&cluster.merged_telemetry().snapshot().to_json());
        out
    }

    #[test]
    fn single_chip_cluster_degenerates_to_a_runtime() {
        let mut cluster = cluster_of(1, 1);
        let gid = cluster.submit(idle(4, 3));
        let summary = cluster.run_until_idle(1_000).unwrap();
        assert_eq!(summary.completed, 1);
        assert_eq!(summary.migrated, 0, "nowhere to steal to");
        assert_eq!(cluster.locate(gid), Some((0, JobId(0))), "never moved");
    }

    #[test]
    fn overflow_migrates_over_the_fabric_and_completes() {
        let mut cluster = cluster_of(4, 2);
        // Six 24-cluster jobs pinned on chip 0: two run (48 of 64
        // clusters), the other four cannot fit and must be stolen.
        for _ in 0..6 {
            cluster.submit_to(0, idle(24, 40));
        }
        let summary = cluster.run_until_idle(5_000).unwrap();
        assert_eq!(summary.completed, 6, "every job finishes somewhere");
        assert!(
            summary.migrated >= 3,
            "overflow must ride the fabric, got {} migrations",
            summary.migrated
        );
        assert!(summary.per_chip[0].stats.migrated_out >= 3);
        let off_chip: u64 = summary.per_chip[1..].iter().map(|c| c.completed).sum();
        assert!(
            off_chip >= 3,
            "stolen jobs complete off-chip, got {off_chip}"
        );
        // The checkpoints really crossed links.
        assert!(cluster.network().stats().crossings > 0);
        assert_eq!(cluster.network().stats().undeliverable, 0);
    }

    #[test]
    fn balanced_load_stays_put() {
        let mut cluster = cluster_of(4, 2);
        for c in 0..4 {
            cluster.submit_to(c, idle(8, 10));
        }
        let summary = cluster.run_until_idle(1_000).unwrap();
        assert_eq!(summary.completed, 4);
        assert_eq!(summary.migrated, 0, "no reason to move anything");
    }

    #[test]
    fn chip_death_relocates_jobs_and_the_run_survives() {
        let mut cluster = cluster_of(4, 2);
        for c in 0..4 {
            for _ in 0..3 {
                cluster.submit_to(c, idle(12, 60));
            }
        }
        let mut plan = FaultPlan::none();
        plan.push(vlsi_faults::Fault::permanent(
            vlsi_faults::FaultKind::ChipDown { chip: 1 },
            4,
        ));
        cluster.attach_fault_plan(plan);
        let summary = cluster.run_until_idle(5_000).unwrap();
        assert!(!cluster.alive(1));
        assert_eq!(summary.chip_failures, 1);
        assert_eq!(summary.lost, 0, "plenty of spare capacity: nothing lost");
        // Chip 1's three jobs finish elsewhere (it dies at tick 5,
        // before any 60-tick job can complete).
        assert_eq!(summary.per_chip[1].completed, 0);
        assert_eq!(summary.completed, 12, "all twelve jobs still complete");
        assert!(summary.per_chip[1].stats.migrated_out == 3);
    }

    #[test]
    fn death_of_every_chip_loses_jobs_typed_never_hangs() {
        let mut cluster = cluster_of(2, 1);
        for c in 0..2 {
            cluster.submit_to(c, idle(8, 200));
        }
        let mut plan = FaultPlan::none();
        for chip in 0..2 {
            plan.push(vlsi_faults::Fault::permanent(
                vlsi_faults::FaultKind::ChipDown { chip },
                3 + chip as u64,
            ));
        }
        cluster.attach_fault_plan(plan);
        let summary = cluster.run_until_idle(5_000).unwrap();
        assert_eq!(summary.chip_failures, 2);
        assert_eq!(summary.completed, 0);
        assert_eq!(summary.lost, 2, "no live chip left: typed loss");
        assert!(cluster
            .lost_jobs()
            .iter()
            .all(|(_, reason)| *reason == "no capacity" || *reason == "no live chip"));
    }

    #[test]
    fn telemetry_report_tables_the_fabric_links_and_replays() {
        let run = || {
            let mut cluster = cluster_of(4, 2);
            for _ in 0..6 {
                cluster.submit_to(0, idle(24, 40));
            }
            cluster.run_until_idle(5_000).unwrap();
            vlsi_telemetry::report::render(&cluster.merged_telemetry().snapshot())
        };
        let table = run();
        // The link counters and the per-link occupancy histogram show
        // up as rows of the end-of-run report table.
        assert!(table.contains("fabric.crossings"), "{table}");
        assert!(table.contains("fabric.messages"), "{table}");
        assert!(table.contains("fabric.migrations"), "{table}");
        assert!(table.contains("fabric.link_occupancy"), "{table}");
        assert!(table.contains("fabric.link_util"), "{table}");
        // Byte-identical per seed: the same run renders the same table.
        assert_eq!(table, run());
    }

    #[test]
    fn cluster_runs_are_bit_identical_across_thread_counts() {
        let mut digests = Vec::new();
        for threads in [1usize, 2, 8] {
            let mut cluster = cluster_of(4, threads);
            // A saturating mix pinned on chip 0 plus background load,
            // with a mid-run chip death.
            for spec in mixed_jobs(0xC1A5_7E12, 18) {
                cluster.submit_to(0, spec);
            }
            for c in 1..4 {
                cluster.submit_to(c, idle(8, 25));
            }
            let mut plan = FaultPlan::none();
            plan.push(vlsi_faults::Fault::permanent(
                vlsi_faults::FaultKind::ChipDown { chip: 2 },
                6,
            ));
            cluster.attach_fault_plan(plan);
            cluster.run_until_idle(20_000).unwrap();
            digests.push(digest(&cluster));
        }
        assert_eq!(digests[0], digests[1], "1 vs 2 threads diverged");
        assert_eq!(digests[0], digests[2], "1 vs 8 threads diverged");
    }
}

//! Clusters and the chip-wide cluster grid.
//!
//! Figure 4(b): the unit that is "simply replicated" across the chip. A
//! cluster bundles compute objects, memory objects, one system object, and
//! one programmable switch. §3.3 scales processors by *gathering clusters*,
//! so the cluster is the granularity of every scaling decision.

use crate::coord::Coord;
use crate::error::TopologyError;
use std::fmt;

/// Identifier of a cluster (row-major position in the grid).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ClusterId(pub u32);

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cluster{}", self.0)
    }
}

/// Resource composition of one cluster.
///
/// The paper's minimum AP has 16 physical objects and 16 memory objects
/// (§4.1, Table 4); a cluster carrying 4 + 4 means a minimum AP gathers a
/// 2×2 cluster patch. The composition is a parameter so cost ablations can
/// trade FPUs for memory ("We can coordinate the number of FPUs and
/// memories").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Cluster {
    /// Compute physical objects in the cluster.
    pub compute_objects: usize,
    /// Memory objects (64 KiB blocks) in the cluster.
    pub memory_objects: usize,
    /// System objects (sequencer/control; Figure 4(b) shows one).
    pub system_objects: usize,
}

impl Default for Cluster {
    fn default() -> Cluster {
        Cluster {
            compute_objects: 4,
            memory_objects: 4,
            system_objects: 1,
        }
    }
}

impl Cluster {
    /// Total objects of all kinds.
    pub fn total_objects(&self) -> usize {
        self.compute_objects + self.memory_objects + self.system_objects
    }
}

/// The chip floorplan: a `width × height` grid of identical clusters
/// (× `layers` dies for chip-on-chip stacking).
#[derive(Clone, Debug)]
pub struct ClusterGrid {
    width: u16,
    height: u16,
    layers: u8,
    cluster: Cluster,
}

impl ClusterGrid {
    /// A planar grid.
    pub fn new(width: u16, height: u16, cluster: Cluster) -> ClusterGrid {
        ClusterGrid {
            width,
            height,
            layers: 1,
            cluster,
        }
    }

    /// A die-stacked grid (Figure 6(d)).
    pub fn stacked(width: u16, height: u16, layers: u8, cluster: Cluster) -> ClusterGrid {
        ClusterGrid {
            width,
            height,
            layers: layers.max(1),
            cluster,
        }
    }

    /// Grid width in clusters.
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Grid height in clusters.
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Number of stacked dies.
    pub fn layers(&self) -> u8 {
        self.layers
    }

    /// The replicated cluster composition.
    pub fn cluster(&self) -> Cluster {
        self.cluster
    }

    /// Total clusters on the chip.
    pub fn cluster_count(&self) -> usize {
        self.width as usize * self.height as usize * self.layers as usize
    }

    /// Whether `c` is on the chip.
    pub fn contains(&self, c: Coord) -> bool {
        c.x < self.width && c.y < self.height && c.layer < self.layers
    }

    /// Validates that `c` is on the chip.
    pub fn check(&self, c: Coord) -> Result<(), TopologyError> {
        if self.contains(c) {
            Ok(())
        } else {
            Err(TopologyError::OutOfGrid(c))
        }
    }

    /// Row-major (then layer-major) ID of a coordinate.
    pub fn id_of(&self, c: Coord) -> Option<ClusterId> {
        if !self.contains(c) {
            return None;
        }
        let per_layer = self.width as u32 * self.height as u32;
        Some(ClusterId(
            c.layer as u32 * per_layer + c.y as u32 * self.width as u32 + c.x as u32,
        ))
    }

    /// Coordinate of a cluster ID.
    pub fn coord_of(&self, id: ClusterId) -> Option<Coord> {
        let per_layer = self.width as u32 * self.height as u32;
        let layer = id.0 / per_layer;
        let rem = id.0 % per_layer;
        let c = Coord::on_layer(
            (rem % self.width as u32) as u16,
            (rem / self.width as u32) as u16,
            layer as u8,
        );
        self.contains(c).then_some(c)
    }

    /// Neighbours of `c` that are on the chip.
    pub fn neighbours(&self, c: Coord) -> impl Iterator<Item = Coord> + '_ {
        crate::coord::Dir::ALL
            .into_iter()
            .filter_map(move |d| c.step(d))
            .filter(|&n| self.contains(n))
    }

    /// All coordinates, row-major, layer by layer.
    pub fn coords(&self) -> impl Iterator<Item = Coord> + '_ {
        (0..self.layers).flat_map(move |l| {
            (0..self.height)
                .flat_map(move |y| (0..self.width).map(move |x| Coord::on_layer(x, y, l)))
        })
    }

    /// Total compute objects on the chip.
    pub fn total_compute_objects(&self) -> usize {
        self.cluster_count() * self.cluster.compute_objects
    }

    /// Total memory objects on the chip.
    pub fn total_memory_objects(&self) -> usize {
        self.cluster_count() * self.cluster.memory_objects
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_geometry() {
        let g = ClusterGrid::new(8, 8, Cluster::default());
        assert_eq!(g.cluster_count(), 64);
        assert!(g.contains(Coord::new(7, 7)));
        assert!(!g.contains(Coord::new(8, 0)));
        assert!(!g.contains(Coord::on_layer(0, 0, 1)));
        assert_eq!(g.total_compute_objects(), 256);
    }

    #[test]
    fn id_coord_roundtrip() {
        let g = ClusterGrid::stacked(4, 3, 2, Cluster::default());
        for c in g.coords().collect::<Vec<_>>() {
            let id = g.id_of(c).unwrap();
            assert_eq!(g.coord_of(id), Some(c));
        }
        assert_eq!(g.id_of(Coord::new(0, 0)), Some(ClusterId(0)));
        assert_eq!(g.id_of(Coord::new(1, 0)), Some(ClusterId(1)));
        assert_eq!(g.id_of(Coord::new(0, 1)), Some(ClusterId(4)));
        assert_eq!(g.id_of(Coord::on_layer(0, 0, 1)), Some(ClusterId(12)));
        assert_eq!(g.coord_of(ClusterId(24)), None);
    }

    #[test]
    fn neighbours_respect_bounds() {
        let g = ClusterGrid::new(3, 3, Cluster::default());
        let corner: Vec<_> = g.neighbours(Coord::new(0, 0)).collect();
        assert_eq!(corner.len(), 2);
        let centre: Vec<_> = g.neighbours(Coord::new(1, 1)).collect();
        assert_eq!(centre.len(), 4);
        // Stacked grid gains the Up neighbour.
        let s = ClusterGrid::stacked(3, 3, 2, Cluster::default());
        let centre3d: Vec<_> = s.neighbours(Coord::new(1, 1)).collect();
        assert_eq!(centre3d.len(), 5);
    }

    #[test]
    fn cluster_composition() {
        let c = Cluster::default();
        assert_eq!(c.total_objects(), 9);
        // A 2x2 patch of default clusters yields the paper's 16+16 AP.
        assert_eq!(4 * c.compute_objects, 16);
        assert_eq!(4 * c.memory_objects, 16);
    }

    #[test]
    fn coords_iterates_everything_once() {
        let g = ClusterGrid::stacked(5, 2, 2, Cluster::default());
        let all: Vec<_> = g.coords().collect();
        assert_eq!(all.len(), g.cluster_count());
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), all.len());
    }
}

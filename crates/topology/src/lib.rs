//! # vlsi-topology — the S-topology and its programmable switches
//!
//! The adaptive processor's stack wants a *linear* array, but silicon is a
//! plane. §3 proposes the **S-topology**: the chip is a grid of replicated
//! **clusters** (Figure 4(b) — compute objects, memory objects, a system
//! object, and a programmable switch), and the linear array is *folded*
//! through the grid along a serpentine path (Figure 4(c)). The fold's
//! defining property — consecutive stack slots are physically adjacent —
//! is what keeps the stack shift a neighbour-to-neighbour move.
//!
//! §3.1's requirements for the topology map to this crate directly:
//!
//! 1. *hierarchical/fractal* — [`fold::serpentine`] works at any
//!    rectangular scale and composes across two stacked dies
//!    ([`fold::die_stack`], Figure 6(d));
//! 2. *minimum number of layout patterns* — one [`cluster::Cluster`]
//!    shape is replicated everywhere;
//! 3. *regular chain/unchain switch points* — every cluster boundary has
//!    a [`switch::SwitchState`] (see [`switch`]), default **unchained**.
//!
//! Regions of clusters ([`region::Region`]) are gathered into a scaled
//! processor by programming the switches along a path that threads every
//! cluster of the region; a closed path yields the ring of Figure 5.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod alloc;
pub mod cluster;
pub mod coord;
pub mod error;
pub mod fold;
pub mod index;
pub mod region;
pub mod switch;

pub use alloc::RegionFinder;
pub use cluster::{Cluster, ClusterGrid, ClusterId};
pub use coord::{Coord, Dir};
pub use error::TopologyError;
pub use fold::FoldMap;
pub use index::FabricIndex;
pub use region::Region;
pub use switch::{SwitchFabric, SwitchState};

//! Regions: arbitrary connected shapes of clusters forming one scaled AP.
//!
//! §3.1: "The S-topology network supports the ability to unchain (split)
//! the array into any arbitrary shape that may be formed by connecting the
//! clusters" — and Figure 5 shows such shapes closed into rings.
//!
//! A [`Region`] is a set of cluster coordinates. To become a processor it
//! needs a **linear path** visiting every cluster exactly once (the folded
//! stack). Rectangles take the serpentine directly; arbitrary shapes use a
//! bounded backtracking search (regions are tens of clusters, far below
//! the budget). A **ring path** (Figure 5) is a linear path whose ends are
//! adjacent.

use crate::coord::Coord;
use crate::error::TopologyError;
use crate::fold::{serpentine, FoldMap};
use std::collections::{BTreeSet, HashSet, VecDeque};

/// Budget of backtracking steps for path search on irregular shapes.
const SEARCH_BUDGET: usize = 2_000_000;

/// A set of clusters intended to form one scaled processor.
///
/// ```
/// use vlsi_topology::{Coord, Region};
///
/// // A 4x2 rectangle threads as a serpentine and closes as a ring.
/// let region = Region::rect(Coord::new(1, 1), 4, 2);
/// let fold = region.linear_path().unwrap();
/// assert_eq!(fold.len(), 8);
/// assert!(fold.max_hop_distance() <= 1); // stack shifts stay single-hop
/// assert!(region.ring_path().unwrap().closes_as_ring());
///
/// // Arbitrary connected shapes work too (an L of 5 clusters).
/// let l = Region::new([
///     Coord::new(0, 0), Coord::new(0, 1), Coord::new(0, 2),
///     Coord::new(1, 2), Coord::new(2, 2),
/// ]);
/// assert!(l.is_connected());
/// assert_eq!(l.linear_path().unwrap().len(), 5);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Region {
    cells: BTreeSet<Coord>,
}

impl Region {
    /// A region from any collection of coordinates.
    pub fn new(cells: impl IntoIterator<Item = Coord>) -> Region {
        Region {
            cells: cells.into_iter().collect(),
        }
    }

    /// A `w × h` rectangle anchored at `origin` (planar).
    pub fn rect(origin: Coord, w: u16, h: u16) -> Region {
        Region::new((0..h).flat_map(|dy| {
            (0..w).map(move |dx| Coord::on_layer(origin.x + dx, origin.y + dy, origin.layer))
        }))
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Whether `c` belongs to the region.
    pub fn contains(&self, c: Coord) -> bool {
        self.cells.contains(&c)
    }

    /// Iterates the cells in coordinate order.
    pub fn cells(&self) -> impl Iterator<Item = Coord> + '_ {
        self.cells.iter().copied()
    }

    /// Whether the region is 4/6-connected.
    pub fn is_connected(&self) -> bool {
        let Some(&start) = self.cells.iter().next() else {
            return false;
        };
        let mut seen = HashSet::from([start]);
        let mut queue = VecDeque::from([start]);
        while let Some(c) = queue.pop_front() {
            for d in crate::coord::Dir::ALL {
                if let Some(n) = c.step(d) {
                    if self.cells.contains(&n) && seen.insert(n) {
                        queue.push_back(n);
                    }
                }
            }
        }
        seen.len() == self.cells.len()
    }

    /// Whether the region is another region's disjoint neighbour (used for
    /// fuse legality checks).
    pub fn is_disjoint(&self, other: &Region) -> bool {
        self.cells.is_disjoint(&other.cells)
    }

    /// The union of two regions (fusing).
    pub fn union(&self, other: &Region) -> Region {
        Region {
            cells: self.cells.union(&other.cells).copied().collect(),
        }
    }

    /// Removes `other`'s cells (splitting / defect excision).
    pub fn difference(&self, other: &Region) -> Region {
        Region {
            cells: self.cells.difference(&other.cells).copied().collect(),
        }
    }

    /// If the region is an axis-aligned full rectangle on one layer,
    /// returns `(origin, w, h)`.
    pub fn as_rect(&self) -> Option<(Coord, u16, u16)> {
        let first = *self.cells.iter().next()?;
        let (mut min_x, mut max_x) = (u16::MAX, 0u16);
        let (mut min_y, mut max_y) = (u16::MAX, 0u16);
        for c in &self.cells {
            if c.layer != first.layer {
                return None;
            }
            min_x = min_x.min(c.x);
            max_x = max_x.max(c.x);
            min_y = min_y.min(c.y);
            max_y = max_y.max(c.y);
        }
        let w = max_x - min_x + 1;
        let h = max_y - min_y + 1;
        (w as usize * h as usize == self.cells.len())
            .then(|| (Coord::on_layer(min_x, min_y, first.layer), w, h))
    }

    /// The Manhattan diameter of the region — the worst physical distance
    /// between any two of its clusters, which bounds the global-wire span
    /// of any chain inside the gathered processor (the §4 delay driver).
    pub fn diameter(&self) -> u32 {
        let mut best = 0;
        for a in &self.cells {
            for b in &self.cells {
                best = best.max(a.manhattan(*b));
            }
        }
        best
    }

    /// Finds a linear path (Hamiltonian path over the region's adjacency
    /// graph): the fold of the scaled processor's stack.
    pub fn linear_path(&self) -> Result<FoldMap, TopologyError> {
        self.path_inner(false)
    }

    /// Finds a ring path (Hamiltonian cycle, returned as a path whose ends
    /// are adjacent): Figure 5.
    pub fn ring_path(&self) -> Result<FoldMap, TopologyError> {
        self.path_inner(true)
    }

    fn path_inner(&self, ring: bool) -> Result<FoldMap, TopologyError> {
        if self.cells.is_empty() {
            return Err(TopologyError::EmptyRegion);
        }
        if !self.is_connected() {
            return Err(TopologyError::Disconnected);
        }
        if self.cells.len() == 1 {
            if ring {
                return Err(TopologyError::NoRingPath);
            }
            return FoldMap::from_path(self.cells.iter().copied().collect());
        }
        // Fast path: rectangles use the serpentine.
        if let Some((origin, w, h)) = self.as_rect() {
            let fold = serpentine(w, h);
            let path: Vec<Coord> = fold
                .path()
                .iter()
                .map(|c| Coord::on_layer(origin.x + c.x, origin.y + c.y, origin.layer))
                .collect();
            if !ring {
                let fold = FoldMap::from_path(path).expect("translated serpentine stays valid");
                return Ok(fold);
            }
            let Some(cycle) = crate::fold::rect_ring(w, h) else {
                return Err(TopologyError::NoRingPath);
            };
            let path: Vec<Coord> = cycle
                .path()
                .iter()
                .map(|c| Coord::on_layer(origin.x + c.x, origin.y + c.y, origin.layer))
                .collect();
            let fold = FoldMap::from_path(path).expect("translated ring stays valid");
            return Ok(fold);
        }
        // Serpentine-prefix shapes (full rows plus one partial row — what
        // the allocator carves) thread directly without search.
        if !ring {
            if let Some(path) = self.serpentine_prefix_path() {
                return FoldMap::from_path(path);
            }
        }
        // General case: bounded backtracking from every possible start.
        let cells: Vec<Coord> = self.cells.iter().copied().collect();
        let mut budget = SEARCH_BUDGET;
        for &start in &cells {
            let mut path = vec![start];
            let mut visited = HashSet::from([start]);
            if self.backtrack(&mut path, &mut visited, ring, &mut budget)? {
                return FoldMap::from_path(path);
            }
        }
        Err(if ring {
            TopologyError::NoRingPath
        } else {
            TopologyError::NoLinearPath
        })
    }

    /// If the region is a *prefix of a serpentine* over its bounding box —
    /// all rows full except the last, whose cells sit at the end the
    /// serpentine reaches them — returns that path directly.
    fn serpentine_prefix_path(&self) -> Option<Vec<Coord>> {
        let first = *self.cells.iter().next()?;
        let layer = first.layer;
        let (mut min_x, mut max_x, mut min_y, mut max_y) = (u16::MAX, 0u16, u16::MAX, 0u16);
        for c in &self.cells {
            if c.layer != layer {
                return None;
            }
            min_x = min_x.min(c.x);
            max_x = max_x.max(c.x);
            min_y = min_y.min(c.y);
            max_y = max_y.max(c.y);
        }
        let w = max_x - min_x + 1;
        let h = max_y - min_y + 1;
        // Build the serpentine over the bounding box and check that the
        // region is exactly its first |region| cells.
        let fold = serpentine(w, h);
        let path: Vec<Coord> = fold
            .path()
            .iter()
            .take(self.cells.len())
            .map(|c| Coord::on_layer(min_x + c.x, min_y + c.y, layer))
            .collect();
        if path.len() == self.cells.len() && path.iter().all(|c| self.cells.contains(c)) {
            Some(path)
        } else {
            None
        }
    }

    fn backtrack(
        &self,
        path: &mut Vec<Coord>,
        visited: &mut HashSet<Coord>,
        ring: bool,
        budget: &mut usize,
    ) -> Result<bool, TopologyError> {
        if *budget == 0 {
            return Err(TopologyError::SearchBudgetExceeded);
        }
        *budget -= 1;
        if path.len() == self.cells.len() {
            return Ok(!ring || path[0].is_adjacent(*path.last().unwrap()));
        }
        let cur = *path.last().unwrap();
        for d in crate::coord::Dir::ALL {
            let Some(n) = cur.step(d) else { continue };
            if !self.cells.contains(&n) || visited.contains(&n) {
                continue;
            }
            path.push(n);
            visited.insert(n);
            if self.backtrack(path, visited, ring, budget)? {
                return Ok(true);
            }
            path.pop();
            visited.remove(&n);
        }
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(x: u16, y: u16) -> Coord {
        Coord::new(x, y)
    }

    #[test]
    fn rect_region_geometry() {
        let r = Region::rect(c(2, 1), 3, 2);
        assert_eq!(r.len(), 6);
        assert!(r.contains(c(4, 2)));
        assert!(!r.contains(c(1, 1)));
        assert_eq!(r.as_rect(), Some((c(2, 1), 3, 2)));
    }

    #[test]
    fn diameter_is_the_manhattan_worst_case() {
        assert_eq!(Region::rect(c(0, 0), 4, 4).diameter(), 6);
        assert_eq!(Region::rect(c(0, 0), 8, 1).diameter(), 7);
        assert_eq!(Region::new([c(3, 3)]).diameter(), 0);
        assert_eq!(Region::new([]).diameter(), 0);
    }

    #[test]
    fn connectivity() {
        let connected = Region::new([c(0, 0), c(1, 0), c(1, 1)]);
        assert!(connected.is_connected());
        let split = Region::new([c(0, 0), c(2, 0)]);
        assert!(!split.is_connected());
        assert!(!Region::new([]).is_connected());
    }

    #[test]
    fn rect_linear_path_is_serpentine() {
        let r = Region::rect(c(0, 0), 4, 4);
        let f = r.linear_path().unwrap();
        assert_eq!(f.len(), 16);
        assert!(f.max_hop_distance() <= 1);
    }

    #[test]
    fn offset_rect_paths_stay_inside() {
        let r = Region::rect(c(5, 5), 3, 2);
        let f = r.linear_path().unwrap();
        for &p in f.path() {
            assert!(r.contains(p));
        }
        assert!(f.max_hop_distance() <= 1);
    }

    #[test]
    fn l_shape_has_linear_path() {
        // L-shaped region: 3x1 arm + 1x2 arm.
        let r = Region::new([c(0, 0), c(1, 0), c(2, 0), c(0, 1), c(0, 2)]);
        let f = r.linear_path().unwrap();
        assert_eq!(f.len(), 5);
        assert!(f.max_hop_distance() <= 1);
    }

    #[test]
    fn ring_on_even_rect() {
        let r = Region::rect(c(0, 0), 4, 2);
        let f = r.ring_path().unwrap();
        assert!(f.closes_as_ring());
    }

    #[test]
    fn ring_on_odd_rows_even_columns_uses_transpose() {
        let r = Region::rect(c(0, 0), 2, 3);
        let f = r.ring_path().unwrap();
        assert!(f.closes_as_ring());
        assert_eq!(f.len(), 6);
    }

    #[test]
    fn no_ring_on_a_line() {
        let r = Region::rect(c(0, 0), 4, 1);
        assert!(matches!(r.ring_path(), Err(TopologyError::NoRingPath)));
    }

    #[test]
    fn hollow_square_ring() {
        // Figure 5's donut: 3x3 minus the centre.
        let mut cells: Vec<Coord> = Region::rect(c(0, 0), 3, 3).cells().collect();
        cells.retain(|&p| p != c(1, 1));
        let r = Region::new(cells);
        let f = r.ring_path().unwrap();
        assert_eq!(f.len(), 8);
        assert!(f.closes_as_ring());
    }

    #[test]
    fn disconnected_region_rejected() {
        let r = Region::new([c(0, 0), c(5, 5)]);
        assert!(matches!(r.linear_path(), Err(TopologyError::Disconnected)));
    }

    #[test]
    fn single_cluster() {
        let r = Region::new([c(3, 3)]);
        assert_eq!(r.linear_path().unwrap().len(), 1);
        assert!(r.ring_path().is_err());
    }

    #[test]
    fn union_and_difference() {
        let a = Region::rect(c(0, 0), 2, 2);
        let b = Region::rect(c(2, 0), 2, 2);
        assert!(a.is_disjoint(&b));
        let fused = a.union(&b);
        assert_eq!(fused.len(), 8);
        assert_eq!(fused.as_rect(), Some((c(0, 0), 4, 2)));
        let back = fused.difference(&b);
        assert_eq!(back, a);
    }

    #[test]
    fn empty_region_errors() {
        assert!(matches!(
            Region::new([]).linear_path(),
            Err(TopologyError::EmptyRegion)
        ));
    }
}

//! Cluster allocation: finding a free region for a resource request.
//!
//! §1's first benefit — "Application designers know the optimal amount of
//! resources, and thus they should be able to control the reconfiguration"
//! — means requests arrive as *counts*, not shapes. The allocator turns
//! "give me `k` clusters" into a concrete free region: the squarest
//! serpentine-prefix shape (full rows plus one partial row) that fits,
//! scanned row-major across the chip. Serpentine prefixes always admit a
//! linear stack path, so every allocation is gatherable by construction.
//!
//! §5 contrasts this with mesh tile processors where "a host system has
//! to manage the placement, routing, replacement, and defragmentation";
//! here the placement policy is this one deterministic function, and
//! [`fragmentation`] measures how badly a chip's free space has decayed.

use crate::cluster::ClusterGrid;
use crate::coord::Coord;
use crate::fold::serpentine;
use crate::region::Region;

/// A reusable free-space index over one snapshot of the chip.
///
/// [`find_region`] answers a single request but pays an O(grid) predicate
/// sweep every call, which makes probe-heavy callers — the binary searches
/// in [`fragmentation`] and `VlsiChip::largest_gatherable` — quadratic in
/// practice. A `RegionFinder` does the sweep once into a 2-D integral
/// image and then answers [`find`](Self::find) probes with O(1) work per
/// anchor: a serpentine prefix is always "`full` complete rows plus one
/// partial row", so fit is one rectangle query plus one row-span query.
///
/// The finder is a snapshot: rebuild it after any allocation change.
/// Placement decisions are bit-identical to [`find_region`]'s.
pub struct RegionFinder {
    gw: usize,
    gh: usize,
    free_total: usize,
    /// Integral image, stride `gw + 1`: `ii[y * (gw+1) + x]` counts the
    /// free cells in rows `[0, y)` × columns `[0, x)`.
    ii: Vec<u32>,
}

impl RegionFinder {
    /// Sweeps `is_free` exactly once per cell and builds the index.
    pub fn new(grid: &ClusterGrid, mut is_free: impl FnMut(Coord) -> bool) -> RegionFinder {
        let gw = usize::from(grid.width());
        let gh = usize::from(grid.height());
        let stride = gw + 1;
        let mut ii = vec![0u32; stride * (gh + 1)];
        let mut free_total = 0usize;
        for y in 0..gh {
            let mut row = 0u32;
            for x in 0..gw {
                let f = is_free(Coord::new(x as u16, y as u16));
                free_total += usize::from(f);
                row += u32::from(f);
                ii[(y + 1) * stride + (x + 1)] = ii[y * stride + (x + 1)] + row;
            }
        }
        RegionFinder {
            gw,
            gh,
            free_total,
            ii,
        }
    }

    /// Total free cells in the snapshot.
    pub fn free_total(&self) -> usize {
        self.free_total
    }

    /// Free cells in rows `[y0, y1)` × columns `[x0, x1)`.
    #[inline]
    fn rect_free(&self, x0: usize, y0: usize, x1: usize, y1: usize) -> usize {
        let s = self.gw + 1;
        (self.ii[y1 * s + x1] + self.ii[y0 * s + x0] - self.ii[y0 * s + x1] - self.ii[y1 * s + x0])
            as usize
    }

    /// Finds a free region of exactly `clusters` clusters, or `None` —
    /// same candidate-width order and row-major first-fit anchor scan as
    /// [`find_region`], so the placement is identical.
    pub fn find(&self, clusters: usize) -> Option<Region> {
        if clusters == 0 || clusters > self.gw * self.gh || self.free_total < clusters {
            return None;
        }
        // Candidate widths, squarest first.
        let ideal = (clusters as f64).sqrt();
        let mut widths: Vec<usize> = (1..=self.gw.min(clusters)).collect();
        widths.sort_by(|&a, &b| {
            (a as f64 - ideal)
                .abs()
                .partial_cmp(&(b as f64 - ideal).abs())
                .unwrap()
                .then(b.cmp(&a))
        });
        for w in widths {
            let h = clusters.div_ceil(w);
            if h > self.gh {
                continue;
            }
            // A k-cell serpentine prefix of a w×h box is `full` complete
            // rows plus `rem` cells in row `full` — left-aligned when that
            // row is traversed left→right (even index), right-aligned
            // otherwise. Fit is therefore one rect query + one row query.
            let full = clusters / w;
            let rem = clusters % w;
            for y0 in 0..=(self.gh - h) {
                for x0 in 0..=(self.gw - w) {
                    if self.rect_free(x0, y0, x0 + w, y0 + full) != w * full {
                        continue;
                    }
                    if rem > 0 {
                        let y = y0 + full;
                        let (a, b) = if full.is_multiple_of(2) {
                            (x0, x0 + rem)
                        } else {
                            (x0 + w - rem, x0 + w)
                        };
                        if self.rect_free(a, y, b, y + 1) != rem {
                            continue;
                        }
                    }
                    return Some(Region::new(
                        serpentine(w as u16, h as u16)
                            .path()
                            .iter()
                            .take(clusters)
                            .map(|c| Coord::new(x0 as u16 + c.x, y0 as u16 + c.y)),
                    ));
                }
            }
        }
        None
    }

    /// The largest `k` for which [`find`](Self::find) succeeds (0 when
    /// nothing fits). Serpentine-prefix fit is monotone in the request
    /// size, so this is a binary search over O(1)-amortised probes.
    pub fn largest_fit(&self) -> usize {
        let (mut lo, mut hi) = (0usize, self.free_total);
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if self.find(mid).is_some() {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        lo
    }
}

/// Finds a free region of exactly `clusters` clusters, or `None`.
///
/// `is_free` reports whether a coordinate is allocatable (unowned,
/// non-defective, on the chip). Candidate widths are tried squarest-first;
/// anchors row-major — the first fit wins, so allocation is deterministic.
///
/// One-shot convenience over [`RegionFinder`]; callers probing many sizes
/// against one snapshot should build the finder once instead.
pub fn find_region(
    grid: &ClusterGrid,
    clusters: usize,
    is_free: impl FnMut(Coord) -> bool,
) -> Option<Region> {
    if clusters == 0 || clusters > grid.cluster_count() {
        return None;
    }
    RegionFinder::new(grid, is_free).find(clusters)
}

/// Free-space fragmentation in `[0, 1]`: 0 when the largest allocatable
/// square region covers all free clusters, approaching 1 when free
/// clusters exist but only tiny requests can be placed.
pub fn fragmentation(grid: &ClusterGrid, is_free: impl FnMut(Coord) -> bool) -> f64 {
    // One predicate sweep; every probe of the binary search inside
    // `largest_fit` then runs off the shared integral image.
    let finder = RegionFinder::new(grid, is_free);
    if finder.free_total() == 0 {
        return 0.0;
    }
    1.0 - finder.largest_fit() as f64 / finder.free_total() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use std::collections::HashSet;

    fn grid() -> ClusterGrid {
        ClusterGrid::new(8, 8, Cluster::default())
    }

    #[test]
    fn exact_squares_allocate_as_squares() {
        let g = grid();
        let r = find_region(&g, 16, |_| true).unwrap();
        assert_eq!(r.len(), 16);
        assert_eq!(r.as_rect().map(|(_, w, h)| (w, h)), Some((4, 4)));
        // And it's gatherable.
        assert!(r.linear_path().is_ok());
    }

    #[test]
    fn non_rect_counts_get_serpentine_prefixes() {
        let g = grid();
        for k in [1usize, 3, 5, 7, 11, 13, 23, 37] {
            let r = find_region(&g, k, |_| true).unwrap_or_else(|| panic!("k={k} must allocate"));
            assert_eq!(r.len(), k);
            let f = r.linear_path().unwrap_or_else(|e| panic!("k={k}: {e}"));
            assert!(f.max_hop_distance() <= 1);
        }
    }

    #[test]
    fn allocation_respects_occupancy() {
        let g = grid();
        // Occupy the left half.
        let occupied: HashSet<Coord> = Region::rect(Coord::new(0, 0), 4, 8).cells().collect();
        let r = find_region(&g, 16, |c| !occupied.contains(&c)).unwrap();
        for c in r.cells() {
            assert!(!occupied.contains(&c));
        }
    }

    #[test]
    fn oversized_requests_fail() {
        let g = grid();
        assert!(find_region(&g, 65, |_| true).is_none());
        assert!(find_region(&g, 0, |_| true).is_none());
        // Free space exists but no contiguous 9 fits in two 2x2 holes.
        let holes: HashSet<Coord> = Region::rect(Coord::new(0, 0), 2, 2)
            .union(&Region::rect(Coord::new(6, 6), 2, 2))
            .cells()
            .collect();
        assert!(find_region(&g, 8, |c| holes.contains(&c)).is_none());
        assert!(find_region(&g, 4, |c| holes.contains(&c)).is_some());
    }

    #[test]
    fn allocation_is_deterministic() {
        let g = grid();
        let a = find_region(&g, 6, |_| true).unwrap();
        let b = find_region(&g, 6, |_| true).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fragmentation_metric() {
        let g = grid();
        // Whole chip free: a 64-cluster request fits, fragmentation 0.
        assert_eq!(fragmentation(&g, |_| true), 0.0);
        // Checkerboard of free 1x1 holes: only 1-cluster requests fit.
        let frag = fragmentation(&g, |c| (c.x + c.y) % 2 == 0);
        assert!(frag > 0.9, "checkerboard fragmentation {frag}");
    }
}

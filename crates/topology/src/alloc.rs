//! Cluster allocation: finding a free region for a resource request.
//!
//! §1's first benefit — "Application designers know the optimal amount of
//! resources, and thus they should be able to control the reconfiguration"
//! — means requests arrive as *counts*, not shapes. The allocator turns
//! "give me `k` clusters" into a concrete free region: the squarest
//! serpentine-prefix shape (full rows plus one partial row) that fits,
//! scanned row-major across the chip. Serpentine prefixes always admit a
//! linear stack path, so every allocation is gatherable by construction.
//!
//! §5 contrasts this with mesh tile processors where "a host system has
//! to manage the placement, routing, replacement, and defragmentation";
//! here the placement policy is this one deterministic function, and
//! [`fragmentation`] measures how badly a chip's free space has decayed.

use crate::cluster::ClusterGrid;
use crate::coord::Coord;
use crate::fold::serpentine;
use crate::region::Region;

/// Finds a free region of exactly `clusters` clusters, or `None`.
///
/// `is_free` reports whether a coordinate is allocatable (unowned,
/// non-defective, on the chip). Candidate widths are tried squarest-first;
/// anchors row-major — the first fit wins, so allocation is deterministic.
pub fn find_region(
    grid: &ClusterGrid,
    clusters: usize,
    mut is_free: impl FnMut(Coord) -> bool,
) -> Option<Region> {
    if clusters == 0 || clusters > grid.cluster_count() {
        return None;
    }
    let gw = grid.width();
    let gh = grid.height();
    let (gw_us, gh_us) = (usize::from(gw), usize::from(gh));
    // Evaluate the predicate exactly once per cell into per-row prefix
    // sums; every anchor probe below is then O(region height) instead of
    // O(region cells) predicate calls. `pre[y * (gw+1) + x]` counts the
    // free cells of row `y` in columns `[0, x)`.
    let mut free_total = 0usize;
    let mut pre = vec![0u32; (gw_us + 1) * gh_us];
    for y in 0..gh_us {
        let base = y * (gw_us + 1);
        for x in 0..gw_us {
            let f = is_free(Coord::new(x as u16, y as u16));
            free_total += usize::from(f);
            pre[base + x + 1] = pre[base + x] + u32::from(f);
        }
    }
    if free_total < clusters {
        return None;
    }
    // Free cells of row `y` in columns `[x0, x1)`.
    let row_free = |y: usize, x0: usize, x1: usize| -> usize {
        let base = y * (gw_us + 1);
        (pre[base + x1] - pre[base + x0]) as usize
    };
    // Candidate widths, squarest first.
    let ideal = (clusters as f64).sqrt();
    let mut widths: Vec<u16> = (1..=gw.min(clusters as u16)).collect();
    widths.sort_by(|&a, &b| {
        (f64::from(a) - ideal)
            .abs()
            .partial_cmp(&(f64::from(b) - ideal).abs())
            .unwrap()
            .then(b.cmp(&a))
    });
    for w in widths {
        let h = (clusters as u16).div_ceil(w);
        if h > gh {
            continue;
        }
        // Cells of the serpentine prefix within a w×h box, and their
        // per-row column spans `[min_x, max_x+1)` — contiguous by the
        // serpentine's construction (each row is traversed monotonically).
        let prefix: Vec<Coord> = serpentine(w, h)
            .path()
            .iter()
            .take(clusters)
            .copied()
            .collect();
        let mut spans: Vec<(usize, usize)> = vec![(usize::MAX, 0); usize::from(h)];
        for c in &prefix {
            let s = &mut spans[usize::from(c.y)];
            s.0 = s.0.min(usize::from(c.x));
            s.1 = s.1.max(usize::from(c.x) + 1);
        }
        debug_assert_eq!(
            spans.iter().map(|s| s.1 - s.0).sum::<usize>(),
            clusters,
            "serpentine prefix rows must be contiguous"
        );
        for y0 in 0..=(gh - h) {
            'anchor: for x0 in 0..=(gw - w) {
                for (dy, &(sx0, sx1)) in spans.iter().enumerate() {
                    let y = usize::from(y0) + dy;
                    let a = usize::from(x0) + sx0;
                    let b = usize::from(x0) + sx1;
                    if row_free(y, a, b) != b - a {
                        continue 'anchor;
                    }
                }
                return Some(Region::new(
                    prefix.iter().map(|c| Coord::new(x0 + c.x, y0 + c.y)),
                ));
            }
        }
    }
    None
}

/// Free-space fragmentation in `[0, 1]`: 0 when the largest allocatable
/// square region covers all free clusters, approaching 1 when free
/// clusters exist but only tiny requests can be placed.
pub fn fragmentation(grid: &ClusterGrid, mut is_free: impl FnMut(Coord) -> bool) -> f64 {
    // Evaluate the predicate once per cell; the binary search below then
    // probes a flat bitmap instead of re-running caller lookups.
    let gw = usize::from(grid.width());
    let mut free = vec![false; grid.cluster_count()];
    let mut free_count = 0usize;
    for c in grid.coords() {
        if is_free(c) {
            free[usize::from(c.y) * gw + usize::from(c.x)] = true;
            free_count += 1;
        }
    }
    if free_count == 0 {
        return 0.0;
    }
    // Largest k such that a k-cluster request still fits.
    let mut best = 0usize;
    let mut lo = 1usize;
    let mut hi = free_count;
    while lo <= hi {
        let mid = (lo + hi) / 2;
        let fits = find_region(grid, mid, |c| {
            free[usize::from(c.y) * gw + usize::from(c.x)]
        })
        .is_some();
        if fits {
            best = mid;
            lo = mid + 1;
        } else {
            hi = mid - 1;
        }
    }
    1.0 - best as f64 / free_count as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use std::collections::HashSet;

    fn grid() -> ClusterGrid {
        ClusterGrid::new(8, 8, Cluster::default())
    }

    #[test]
    fn exact_squares_allocate_as_squares() {
        let g = grid();
        let r = find_region(&g, 16, |_| true).unwrap();
        assert_eq!(r.len(), 16);
        assert_eq!(r.as_rect().map(|(_, w, h)| (w, h)), Some((4, 4)));
        // And it's gatherable.
        assert!(r.linear_path().is_ok());
    }

    #[test]
    fn non_rect_counts_get_serpentine_prefixes() {
        let g = grid();
        for k in [1usize, 3, 5, 7, 11, 13, 23, 37] {
            let r = find_region(&g, k, |_| true).unwrap_or_else(|| panic!("k={k} must allocate"));
            assert_eq!(r.len(), k);
            let f = r.linear_path().unwrap_or_else(|e| panic!("k={k}: {e}"));
            assert!(f.max_hop_distance() <= 1);
        }
    }

    #[test]
    fn allocation_respects_occupancy() {
        let g = grid();
        // Occupy the left half.
        let occupied: HashSet<Coord> = Region::rect(Coord::new(0, 0), 4, 8).cells().collect();
        let r = find_region(&g, 16, |c| !occupied.contains(&c)).unwrap();
        for c in r.cells() {
            assert!(!occupied.contains(&c));
        }
    }

    #[test]
    fn oversized_requests_fail() {
        let g = grid();
        assert!(find_region(&g, 65, |_| true).is_none());
        assert!(find_region(&g, 0, |_| true).is_none());
        // Free space exists but no contiguous 9 fits in two 2x2 holes.
        let holes: HashSet<Coord> = Region::rect(Coord::new(0, 0), 2, 2)
            .union(&Region::rect(Coord::new(6, 6), 2, 2))
            .cells()
            .collect();
        assert!(find_region(&g, 8, |c| holes.contains(&c)).is_none());
        assert!(find_region(&g, 4, |c| holes.contains(&c)).is_some());
    }

    #[test]
    fn allocation_is_deterministic() {
        let g = grid();
        let a = find_region(&g, 6, |_| true).unwrap();
        let b = find_region(&g, 6, |_| true).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fragmentation_metric() {
        let g = grid();
        // Whole chip free: a 64-cluster request fits, fragmentation 0.
        assert_eq!(fragmentation(&g, |_| true), 0.0);
        // Checkerboard of free 1x1 holes: only 1-cluster requests fit.
        let frag = fragmentation(&g, |c| (c.x + c.y) % 2 == 0);
        assert!(frag > 0.9, "checkerboard fragmentation {frag}");
    }
}

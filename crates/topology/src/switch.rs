//! Programmable switches (Figure 6(b)/(c)) and the chip-wide switch fabric.
//!
//! Every cluster boundary carries two programmable networks:
//!
//! * the **unidirectional** stack-shift path (Figure 6(b)) — one inbound
//!   and one outbound direction per cluster, forming the folded linear
//!   array of the region;
//! * the **bidirectional** chain network (Figure 6(c)) — per-direction
//!   chain bits that splice the segmented CSD channels of adjacent
//!   clusters together.
//!
//! "The default status of programmable switches is a 'unchained'" (§3.2).
//! Scaling *is* programming these registers: "we can reconfigure the
//! processor by storing the appropriate configuration data to appropriate
//! switch" (§3.3) — no dedicated scaling instruction exists anywhere.
//!
//! Each switch also holds the **reservation flag** wormhole configuration
//! stores "to avoid a resource (cluster) allocation conflict among the
//! scaling configurations" (§3.3): a switch owned by one region rejects
//! programming by any other region until released.
//!
//! ## Storage
//!
//! A fabric built with [`SwitchFabric::sized`] packs every in-grid
//! switch into a dense row-major slab at 8 bytes per cell
//! (`PackedSwitch`: owner tag + flag byte + two `Dir`-index bytes + a
//! chain bitmask), so a 128×128 mesh costs 128 KiB instead of a
//! per-cell hash map of unpacked [`SwitchState`] entries. Coordinates
//! the slab does not cover — stacked layers, out-of-range coords, or
//! any coordinate of an unsized fabric — spill to a `BTreeMap`, whose
//! ordered iteration keeps every fabric walk deterministic.

use crate::coord::{Coord, Dir};
use crate::error::TopologyError;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use vlsi_telemetry::TelemetryHandle;

/// Identity of the region (scaled processor) owning a switch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RegionTag(pub u32);

impl fmt::Display for RegionTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region{}", self.0)
    }
}

/// Programming registers of one cluster's switch.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SwitchState {
    /// Direction the stack shift enters from (unidirectional network).
    pub shift_in: Option<Dir>,
    /// Direction the stack shift leaves toward.
    pub shift_out: Option<Dir>,
    /// Chain bits of the bidirectional network, indexed by [`Dir::index`].
    pub chained: [bool; 6],
    /// Reservation flag stored by wormhole configuration.
    pub reserved_by: Option<RegionTag>,
}

impl SwitchState {
    /// Whether any network is programmed.
    pub fn is_programmed(&self) -> bool {
        self.shift_in.is_some() || self.shift_out.is_some() || self.chained.iter().any(|&b| b)
    }
}

/// Set when `reserved` carries a live owner tag (tag values are
/// unrestricted, so presence needs its own bit rather than a sentinel).
const HAS_OWNER: u8 = 1;

/// One switch packed into 8 bytes for the dense slab.
///
/// `shift_in`/`shift_out` store `Dir::index() + 1` with 0 meaning
/// unprogrammed; `chained` is a bitmask over [`Dir::index`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct PackedSwitch {
    reserved: u32,
    flags: u8,
    shift_in: u8,
    shift_out: u8,
    chained: u8,
}

impl PackedSwitch {
    const DEFAULT: PackedSwitch = PackedSwitch {
        reserved: 0,
        flags: 0,
        shift_in: 0,
        shift_out: 0,
        chained: 0,
    };

    fn pack(s: SwitchState) -> PackedSwitch {
        let dir = |d: Option<Dir>| d.map_or(0, |d| d.index() as u8 + 1);
        let mut chained = 0u8;
        for (i, &bit) in s.chained.iter().enumerate() {
            if bit {
                chained |= 1 << i;
            }
        }
        PackedSwitch {
            reserved: s.reserved_by.map_or(0, |t| t.0),
            flags: if s.reserved_by.is_some() {
                HAS_OWNER
            } else {
                0
            },
            shift_in: dir(s.shift_in),
            shift_out: dir(s.shift_out),
            chained,
        }
    }

    fn unpack(self) -> SwitchState {
        let dir = |b: u8| (b > 0).then(|| Dir::ALL[usize::from(b - 1)]);
        let mut chained = [false; 6];
        for (i, bit) in chained.iter_mut().enumerate() {
            *bit = self.chained & (1 << i) != 0;
        }
        SwitchState {
            shift_in: dir(self.shift_in),
            shift_out: dir(self.shift_out),
            chained,
            reserved_by: (self.flags & HAS_OWNER != 0).then_some(RegionTag(self.reserved)),
        }
    }

    fn is_default(self) -> bool {
        self == PackedSwitch::DEFAULT
    }
}

/// The chip-wide collection of programmable switches.
#[derive(Clone, Debug, Default)]
pub struct SwitchFabric {
    /// Dense row-major slab over layer-0 coordinates inside
    /// `slab_width × slab_height`; empty for unsized fabrics.
    slab: Vec<PackedSwitch>,
    slab_width: u16,
    slab_height: u16,
    /// Deterministic overflow store for every coordinate the slab does
    /// not cover (unsized fabrics, stacked layers, out-of-range).
    spill: BTreeMap<Coord, SwitchState>,
    /// Switch-health tracking: coordinates whose programming registers
    /// are stuck. A stuck switch rejects every further store (reserve,
    /// chain, program) with [`TopologyError::SwitchStuck`]; releases
    /// still work, since clearing a region must never wedge on the fault
    /// that killed it.
    stuck: BTreeSet<Coord>,
    programming_stores: u64,
    /// Observability sink; the default handle is a no-op.
    telemetry: TelemetryHandle,
}

impl SwitchFabric {
    /// A fabric with every switch in the default (unchained, unreserved)
    /// state. Switch state is created lazily per coordinate.
    pub fn new() -> SwitchFabric {
        SwitchFabric::default()
    }

    /// A fabric recording every programming-register store into
    /// `telemetry` (the `topology.switch_stores` counter).
    pub fn with_telemetry(telemetry: TelemetryHandle) -> SwitchFabric {
        SwitchFabric {
            telemetry,
            ..SwitchFabric::default()
        }
    }

    /// A fabric whose layer-0 `width × height` grid is pre-packed into
    /// the dense slab (8 bytes per switch). Coordinates outside the
    /// grid still work; they spill to the ordered overflow map.
    pub fn sized(width: u16, height: u16) -> SwitchFabric {
        SwitchFabric::sized_with_telemetry(width, height, TelemetryHandle::disabled())
    }

    /// [`sized`](Self::sized) with a telemetry sink attached.
    pub fn sized_with_telemetry(
        width: u16,
        height: u16,
        telemetry: TelemetryHandle,
    ) -> SwitchFabric {
        SwitchFabric {
            slab: vec![PackedSwitch::DEFAULT; usize::from(width) * usize::from(height)],
            slab_width: width,
            slab_height: height,
            telemetry,
            ..SwitchFabric::default()
        }
    }

    fn store(&mut self, n: u64) {
        self.programming_stores += n;
        self.telemetry.count("topology.switch_stores", n);
    }

    fn slab_index(&self, c: Coord) -> Option<usize> {
        (c.layer == 0 && c.x < self.slab_width && c.y < self.slab_height)
            .then(|| usize::from(c.y) * usize::from(self.slab_width) + usize::from(c.x))
    }

    /// Applies `f` to the switch state at `c`, storing the result back
    /// into the slab (packed) or the spill map.
    fn update(&mut self, c: Coord, f: impl FnOnce(&mut SwitchState)) {
        match self.slab_index(c) {
            Some(i) => {
                let mut s = self.slab[i].unpack();
                f(&mut s);
                self.slab[i] = PackedSwitch::pack(s);
            }
            None => f(self.spill.entry(c).or_default()),
        }
    }

    /// The switch state at `c` (default state if never touched).
    pub fn state(&self, c: Coord) -> SwitchState {
        match self.slab_index(c) {
            Some(i) => self.slab[i].unpack(),
            None => self.spill.get(&c).copied().unwrap_or_default(),
        }
    }

    /// The owner of the switch at `c`.
    pub fn owner(&self, c: Coord) -> Option<RegionTag> {
        self.state(c).reserved_by
    }

    /// Marks the switch at `c` stuck (a permanent stuck-at fault in its
    /// programming registers). From now on every programming store at
    /// `c` fails typed; existing state is frozen as-is.
    pub fn mark_stuck(&mut self, c: Coord) {
        self.stuck.insert(c);
    }

    /// Whether the switch at `c` is marked stuck.
    pub fn is_stuck(&self, c: Coord) -> bool {
        self.stuck.contains(&c)
    }

    /// Stuck switches, in coordinate order.
    pub fn stuck_coords(&self) -> impl Iterator<Item = Coord> + '_ {
        self.stuck.iter().copied()
    }

    fn check_healthy(&self, c: Coord) -> Result<(), TopologyError> {
        if self.is_stuck(c) {
            Err(TopologyError::SwitchStuck { at: c })
        } else {
            Ok(())
        }
    }

    /// Stores the reservation flag at `c` for `owner` — the per-switch
    /// effect of a configuration worm passing through. Fails if another
    /// region holds the switch.
    pub fn reserve(&mut self, c: Coord, owner: RegionTag) -> Result<(), TopologyError> {
        self.check_healthy(c)?;
        match self.owner(c) {
            Some(o) if o != owner => Err(TopologyError::SwitchConflict { at: c }),
            _ => {
                self.update(c, |s| s.reserved_by = Some(owner));
                self.store(1);
                Ok(())
            }
        }
    }

    /// Chains the bidirectional network between adjacent clusters `a` and
    /// `b`. Both switches must be reserved by `owner`.
    pub fn chain(&mut self, a: Coord, b: Coord, owner: RegionTag) -> Result<(), TopologyError> {
        let d = a.dir_to(b).ok_or(TopologyError::NotAdjacent(a, b))?;
        for (c, dir) in [(a, d), (b, d.opposite())] {
            self.check_healthy(c)?;
            if self.owner(c) != Some(owner) {
                return Err(TopologyError::SwitchConflict { at: c });
            }
            self.update(c, |s| s.chained[dir.index()] = true);
            self.store(1);
        }
        Ok(())
    }

    /// Unchains the bidirectional network between `a` and `b` (splitting).
    pub fn unchain(&mut self, a: Coord, b: Coord) -> Result<(), TopologyError> {
        let d = a.dir_to(b).ok_or(TopologyError::NotAdjacent(a, b))?;
        for (c, dir) in [(a, d), (b, d.opposite())] {
            self.check_healthy(c)?;
            self.update(c, |s| s.chained[dir.index()] = false);
            self.store(1);
        }
        Ok(())
    }

    /// Whether the chain network connects adjacent `a` and `b` (both ends
    /// must be chained).
    pub fn is_chained(&self, a: Coord, b: Coord) -> bool {
        let Some(d) = a.dir_to(b) else { return false };
        self.state(a).chained[d.index()] && self.state(b).chained[d.opposite().index()]
    }

    /// Programs the unidirectional stack-shift path along `path` (already
    /// validated as hop-adjacent), plus the chain network between every
    /// consecutive pair. `close_ring` additionally chains last → first
    /// (Figure 5). All touched switches must be reserved by `owner` first.
    pub fn program_path(
        &mut self,
        path: &[Coord],
        owner: RegionTag,
        close_ring: bool,
    ) -> Result<(), TopologyError> {
        for w in path.windows(2) {
            let (a, b) = (w[0], w[1]);
            let d = a.dir_to(b).ok_or(TopologyError::NotAdjacent(a, b))?;
            self.check_healthy(a)?;
            self.check_healthy(b)?;
            if self.owner(a) != Some(owner) {
                return Err(TopologyError::SwitchConflict { at: a });
            }
            if self.owner(b) != Some(owner) {
                return Err(TopologyError::SwitchConflict { at: b });
            }
            self.update(a, |s| s.shift_out = Some(d));
            self.update(b, |s| s.shift_in = Some(d.opposite()));
            self.store(2);
            self.chain(a, b, owner)?;
        }
        if close_ring && path.len() >= 3 {
            let (last, first) = (*path.last().unwrap(), path[0]);
            let d = last
                .dir_to(first)
                .ok_or(TopologyError::NotAdjacent(last, first))?;
            self.check_healthy(last)?;
            self.check_healthy(first)?;
            self.update(last, |s| s.shift_out = Some(d));
            self.update(first, |s| s.shift_in = Some(d.opposite()));
            self.store(2);
            self.chain(last, first, owner)?;
        }
        Ok(())
    }

    /// Applies a decoded per-switch program at `c` — the effect of one
    /// configuration worm's payload arriving at its target cluster. The
    /// switch must already hold `owner`'s reservation flag (stored by the
    /// same worm via [`reserve`](Self::reserve)).
    pub fn apply_program(
        &mut self,
        c: Coord,
        owner: RegionTag,
        program: SwitchState,
    ) -> Result<(), TopologyError> {
        self.check_healthy(c)?;
        if self.owner(c) != Some(owner) {
            return Err(TopologyError::SwitchConflict { at: c });
        }
        self.update(c, |s| {
            s.shift_in = program.shift_in;
            s.shift_out = program.shift_out;
            s.chained = program.chained;
        });
        self.store(1);
        Ok(())
    }

    /// Releases every switch owned by `owner`, restoring the default
    /// state — the down-scale path ("clearing active state, turns to be a
    /// release", §3.4).
    pub fn release_owner(&mut self, owner: RegionTag) -> usize {
        let mut released = 0;
        for p in self.slab.iter_mut() {
            if p.flags & HAS_OWNER != 0 && p.reserved == owner.0 {
                *p = PackedSwitch::DEFAULT;
                released += 1;
            }
        }
        for s in self.spill.values_mut() {
            if s.reserved_by == Some(owner) {
                *s = SwitchState::default();
                released += 1;
            }
        }
        if released > 0 {
            self.store(released as u64);
        }
        released
    }

    /// Follows the programmed shift path from `start` (useful to recover
    /// a region's linear order from switch state alone). Stops after
    /// `limit` hops or when the path ends or loops back to `start`.
    pub fn trace_shift_path(&self, start: Coord, limit: usize) -> Vec<Coord> {
        let mut path = vec![start];
        let mut cur = start;
        for _ in 0..limit {
            let Some(d) = self.state(cur).shift_out else {
                break;
            };
            let Some(next) = cur.step(d) else { break };
            if next == start {
                break; // closed ring
            }
            path.push(next);
            cur = next;
        }
        path
    }

    /// Total programming-register stores performed — the paper's cost
    /// currency for reconfiguration ("simply requires routing and storing
    /// the data set", §5).
    pub fn store_count(&self) -> u64 {
        self.programming_stores
    }

    /// Coordinates whose switch deviates from the default state, slab
    /// row-major first, then spill coordinates in order.
    pub fn programmed_coords(&self) -> impl Iterator<Item = Coord> + '_ {
        let w = usize::from(self.slab_width);
        self.slab
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.is_default())
            .map(move |(i, _)| Coord::new((i % w) as u16, (i / w) as u16))
            .chain(
                self.spill
                    .iter()
                    .filter(|(_, s)| s.is_programmed() || s.reserved_by.is_some())
                    .map(|(&c, _)| c),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(x: u16, y: u16) -> Coord {
        Coord::new(x, y)
    }

    #[test]
    fn default_is_unchained_and_unreserved() {
        let f = SwitchFabric::new();
        let s = f.state(c(3, 3));
        assert!(!s.is_programmed());
        assert_eq!(s.reserved_by, None);
        assert!(!f.is_chained(c(0, 0), c(1, 0)));
    }

    #[test]
    fn reservation_conflicts_detected() {
        let mut f = SwitchFabric::new();
        f.reserve(c(0, 0), RegionTag(1)).unwrap();
        // Same owner re-reserves fine.
        f.reserve(c(0, 0), RegionTag(1)).unwrap();
        // Other owner rejected.
        assert_eq!(
            f.reserve(c(0, 0), RegionTag(2)),
            Err(TopologyError::SwitchConflict { at: c(0, 0) })
        );
    }

    #[test]
    fn chain_requires_reservation_and_adjacency() {
        let mut f = SwitchFabric::new();
        assert!(matches!(
            f.chain(c(0, 0), c(2, 0), RegionTag(1)),
            Err(TopologyError::NotAdjacent(_, _))
        ));
        assert!(matches!(
            f.chain(c(0, 0), c(1, 0), RegionTag(1)),
            Err(TopologyError::SwitchConflict { .. })
        ));
        f.reserve(c(0, 0), RegionTag(1)).unwrap();
        f.reserve(c(1, 0), RegionTag(1)).unwrap();
        f.chain(c(0, 0), c(1, 0), RegionTag(1)).unwrap();
        assert!(f.is_chained(c(0, 0), c(1, 0)));
        assert!(f.is_chained(c(1, 0), c(0, 0)));
    }

    #[test]
    fn unchain_splits() {
        let mut f = SwitchFabric::new();
        f.reserve(c(0, 0), RegionTag(1)).unwrap();
        f.reserve(c(1, 0), RegionTag(1)).unwrap();
        f.chain(c(0, 0), c(1, 0), RegionTag(1)).unwrap();
        f.unchain(c(0, 0), c(1, 0)).unwrap();
        assert!(!f.is_chained(c(0, 0), c(1, 0)));
    }

    #[test]
    fn program_path_sets_shift_and_chain() {
        let mut f = SwitchFabric::new();
        let path = [c(0, 0), c(1, 0), c(1, 1)];
        for &p in &path {
            f.reserve(p, RegionTag(7)).unwrap();
        }
        f.program_path(&path, RegionTag(7), false).unwrap();
        assert_eq!(f.state(c(0, 0)).shift_out, Some(Dir::East));
        assert_eq!(f.state(c(1, 0)).shift_in, Some(Dir::West));
        assert_eq!(f.state(c(1, 0)).shift_out, Some(Dir::South));
        assert_eq!(f.state(c(1, 1)).shift_in, Some(Dir::North));
        assert!(f.is_chained(c(0, 0), c(1, 0)));
        assert_eq!(f.trace_shift_path(c(0, 0), 10), path.to_vec());
    }

    #[test]
    fn ring_closes_the_path() {
        let mut f = SwitchFabric::new();
        let path = [c(0, 0), c(1, 0), c(1, 1), c(0, 1)];
        for &p in &path {
            f.reserve(p, RegionTag(1)).unwrap();
        }
        f.program_path(&path, RegionTag(1), true).unwrap();
        assert!(f.is_chained(c(0, 1), c(0, 0)));
        assert_eq!(f.state(c(0, 1)).shift_out, Some(Dir::North));
        // The trace stops when it loops back to the start.
        assert_eq!(f.trace_shift_path(c(0, 0), 100).len(), 4);
    }

    #[test]
    fn release_owner_restores_defaults() {
        let mut f = SwitchFabric::new();
        let path = [c(0, 0), c(1, 0)];
        for &p in &path {
            f.reserve(p, RegionTag(1)).unwrap();
        }
        f.program_path(&path, RegionTag(1), false).unwrap();
        assert_eq!(f.release_owner(RegionTag(1)), 2);
        assert!(!f.state(c(0, 0)).is_programmed());
        assert_eq!(f.owner(c(0, 0)), None);
        // Another region can take the clusters now.
        f.reserve(c(0, 0), RegionTag(2)).unwrap();
    }

    #[test]
    fn stuck_switch_rejects_programming_typed() {
        let mut f = SwitchFabric::new();
        f.mark_stuck(c(1, 0));
        assert!(f.is_stuck(c(1, 0)));
        assert_eq!(
            f.reserve(c(1, 0), RegionTag(1)),
            Err(TopologyError::SwitchStuck { at: c(1, 0) })
        );
        // A path through the stuck switch fails typed, never silently
        // mis-programs.
        f.reserve(c(0, 0), RegionTag(1)).unwrap();
        assert_eq!(
            f.program_path(&[c(0, 0), c(1, 0)], RegionTag(1), false),
            Err(TopologyError::SwitchStuck { at: c(1, 0) })
        );
        // Healthy switches are unaffected.
        f.reserve(c(0, 1), RegionTag(1)).unwrap();
        f.program_path(&[c(0, 0), c(0, 1)], RegionTag(1), false)
            .unwrap();
    }

    #[test]
    fn release_still_works_on_a_stuck_switch() {
        let mut f = SwitchFabric::new();
        f.reserve(c(0, 0), RegionTag(1)).unwrap();
        f.reserve(c(1, 0), RegionTag(1)).unwrap();
        f.chain(c(0, 0), c(1, 0), RegionTag(1)).unwrap();
        // The switch gets stuck mid-life; tearing the region down must
        // not wedge on it.
        f.mark_stuck(c(1, 0));
        assert_eq!(f.release_owner(RegionTag(1)), 2);
        assert_eq!(f.owner(c(1, 0)), None);
        // But it stays unusable for the next region.
        assert!(f.reserve(c(1, 0), RegionTag(2)).is_err());
        assert_eq!(f.stuck_coords().collect::<Vec<_>>(), vec![c(1, 0)]);
    }

    #[test]
    fn programming_store_accounting() {
        let mut f = SwitchFabric::new();
        let before = f.store_count();
        f.reserve(c(0, 0), RegionTag(1)).unwrap();
        f.reserve(c(1, 0), RegionTag(1)).unwrap();
        f.chain(c(0, 0), c(1, 0), RegionTag(1)).unwrap();
        assert!(f.store_count() > before);
    }

    #[test]
    fn packed_switch_round_trips_every_field() {
        let mut state = SwitchState {
            shift_in: Some(Dir::Up),
            shift_out: Some(Dir::West),
            chained: [true, false, true, false, true, true],
            reserved_by: Some(RegionTag(u32::MAX)),
        };
        assert_eq!(PackedSwitch::pack(state).unpack(), state);
        // Tag 0 and no tag must stay distinguishable.
        state.reserved_by = Some(RegionTag(0));
        assert_eq!(PackedSwitch::pack(state).unpack(), state);
        state.reserved_by = None;
        assert_eq!(PackedSwitch::pack(state).unpack(), state);
        assert!(PackedSwitch::pack(SwitchState::default()).is_default());
        assert_eq!(std::mem::size_of::<PackedSwitch>(), 8);
    }

    #[test]
    fn sized_fabric_matches_unsized_behaviour() {
        let mut sized = SwitchFabric::sized(4, 4);
        let mut lazy = SwitchFabric::new();
        for f in [&mut sized, &mut lazy] {
            let path = [c(0, 0), c(1, 0), c(1, 1)];
            for &p in &path {
                f.reserve(p, RegionTag(3)).unwrap();
            }
            f.program_path(&path, RegionTag(3), false).unwrap();
            f.reserve(c(3, 3), RegionTag(9)).unwrap();
        }
        for x in 0..4 {
            for y in 0..4 {
                assert_eq!(sized.state(c(x, y)), lazy.state(c(x, y)));
            }
        }
        assert_eq!(sized.store_count(), lazy.store_count());
        let mut a: Vec<Coord> = sized.programmed_coords().collect();
        let mut b: Vec<Coord> = lazy.programmed_coords().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(sized.release_owner(RegionTag(3)), 3);
        assert_eq!(lazy.release_owner(RegionTag(3)), 3);
        assert_eq!(sized.owner(c(3, 3)), Some(RegionTag(9)));
    }

    #[test]
    fn sized_fabric_spills_out_of_grid_and_stacked_coords() {
        let mut f = SwitchFabric::sized(2, 2);
        // Beyond the slab bounds.
        f.reserve(c(7, 7), RegionTag(1)).unwrap();
        assert_eq!(f.owner(c(7, 7)), Some(RegionTag(1)));
        // On a stacked layer above a slab-covered (x, y).
        let up = Coord::on_layer(0, 0, 1);
        f.reserve(up, RegionTag(2)).unwrap();
        assert_eq!(f.owner(up), Some(RegionTag(2)));
        // The layer-0 cell underneath is untouched.
        assert_eq!(f.owner(c(0, 0)), None);
        let coords: Vec<Coord> = f.programmed_coords().collect();
        assert_eq!(coords.len(), 2);
        assert!(coords.contains(&up) && coords.contains(&c(7, 7)));
        assert_eq!(f.release_owner(RegionTag(1)), 1);
        assert_eq!(f.owner(c(7, 7)), None);
    }
}

//! Programmable switches (Figure 6(b)/(c)) and the chip-wide switch fabric.
//!
//! Every cluster boundary carries two programmable networks:
//!
//! * the **unidirectional** stack-shift path (Figure 6(b)) — one inbound
//!   and one outbound direction per cluster, forming the folded linear
//!   array of the region;
//! * the **bidirectional** chain network (Figure 6(c)) — per-direction
//!   chain bits that splice the segmented CSD channels of adjacent
//!   clusters together.
//!
//! "The default status of programmable switches is a 'unchained'" (§3.2).
//! Scaling *is* programming these registers: "we can reconfigure the
//! processor by storing the appropriate configuration data to appropriate
//! switch" (§3.3) — no dedicated scaling instruction exists anywhere.
//!
//! Each switch also holds the **reservation flag** wormhole configuration
//! stores "to avoid a resource (cluster) allocation conflict among the
//! scaling configurations" (§3.3): a switch owned by one region rejects
//! programming by any other region until released.

use crate::coord::{Coord, Dir};
use crate::error::TopologyError;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use vlsi_telemetry::TelemetryHandle;

/// Identity of the region (scaled processor) owning a switch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RegionTag(pub u32);

impl fmt::Display for RegionTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region{}", self.0)
    }
}

/// Programming registers of one cluster's switch.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SwitchState {
    /// Direction the stack shift enters from (unidirectional network).
    pub shift_in: Option<Dir>,
    /// Direction the stack shift leaves toward.
    pub shift_out: Option<Dir>,
    /// Chain bits of the bidirectional network, indexed by [`Dir::index`].
    pub chained: [bool; 6],
    /// Reservation flag stored by wormhole configuration.
    pub reserved_by: Option<RegionTag>,
}

impl SwitchState {
    /// Whether any network is programmed.
    pub fn is_programmed(&self) -> bool {
        self.shift_in.is_some() || self.shift_out.is_some() || self.chained.iter().any(|&b| b)
    }
}

/// The chip-wide collection of programmable switches.
#[derive(Clone, Debug, Default)]
pub struct SwitchFabric {
    switches: HashMap<Coord, SwitchState>,
    /// Switch-health tracking: coordinates whose programming registers
    /// are stuck. A stuck switch rejects every further store (reserve,
    /// chain, program) with [`TopologyError::SwitchStuck`]; releases
    /// still work, since clearing a region must never wedge on the fault
    /// that killed it.
    stuck: BTreeSet<Coord>,
    programming_stores: u64,
    /// Observability sink; the default handle is a no-op.
    telemetry: TelemetryHandle,
}

impl SwitchFabric {
    /// A fabric with every switch in the default (unchained, unreserved)
    /// state. Switch state is created lazily per coordinate.
    pub fn new() -> SwitchFabric {
        SwitchFabric::default()
    }

    /// A fabric recording every programming-register store into
    /// `telemetry` (the `topology.switch_stores` counter).
    pub fn with_telemetry(telemetry: TelemetryHandle) -> SwitchFabric {
        SwitchFabric {
            telemetry,
            ..SwitchFabric::default()
        }
    }

    fn store(&mut self, n: u64) {
        self.programming_stores += n;
        self.telemetry.count("topology.switch_stores", n);
    }

    /// The switch state at `c` (default state if never touched).
    pub fn state(&self, c: Coord) -> SwitchState {
        self.switches.get(&c).copied().unwrap_or_default()
    }

    /// The owner of the switch at `c`.
    pub fn owner(&self, c: Coord) -> Option<RegionTag> {
        self.state(c).reserved_by
    }

    /// Marks the switch at `c` stuck (a permanent stuck-at fault in its
    /// programming registers). From now on every programming store at
    /// `c` fails typed; existing state is frozen as-is.
    pub fn mark_stuck(&mut self, c: Coord) {
        self.stuck.insert(c);
    }

    /// Whether the switch at `c` is marked stuck.
    pub fn is_stuck(&self, c: Coord) -> bool {
        self.stuck.contains(&c)
    }

    /// Stuck switches, in coordinate order.
    pub fn stuck_coords(&self) -> impl Iterator<Item = Coord> + '_ {
        self.stuck.iter().copied()
    }

    fn check_healthy(&self, c: Coord) -> Result<(), TopologyError> {
        if self.is_stuck(c) {
            Err(TopologyError::SwitchStuck { at: c })
        } else {
            Ok(())
        }
    }

    /// Stores the reservation flag at `c` for `owner` — the per-switch
    /// effect of a configuration worm passing through. Fails if another
    /// region holds the switch.
    pub fn reserve(&mut self, c: Coord, owner: RegionTag) -> Result<(), TopologyError> {
        self.check_healthy(c)?;
        let s = self.switches.entry(c).or_default();
        match s.reserved_by {
            Some(o) if o != owner => Err(TopologyError::SwitchConflict { at: c }),
            _ => {
                s.reserved_by = Some(owner);
                self.store(1);
                Ok(())
            }
        }
    }

    /// Chains the bidirectional network between adjacent clusters `a` and
    /// `b`. Both switches must be reserved by `owner`.
    pub fn chain(&mut self, a: Coord, b: Coord, owner: RegionTag) -> Result<(), TopologyError> {
        let d = a.dir_to(b).ok_or(TopologyError::NotAdjacent(a, b))?;
        for (c, dir) in [(a, d), (b, d.opposite())] {
            self.check_healthy(c)?;
            if self.owner(c) != Some(owner) {
                return Err(TopologyError::SwitchConflict { at: c });
            }
            self.switches.entry(c).or_default().chained[dir.index()] = true;
            self.store(1);
        }
        Ok(())
    }

    /// Unchains the bidirectional network between `a` and `b` (splitting).
    pub fn unchain(&mut self, a: Coord, b: Coord) -> Result<(), TopologyError> {
        let d = a.dir_to(b).ok_or(TopologyError::NotAdjacent(a, b))?;
        for (c, dir) in [(a, d), (b, d.opposite())] {
            self.check_healthy(c)?;
            self.switches.entry(c).or_default().chained[dir.index()] = false;
            self.store(1);
        }
        Ok(())
    }

    /// Whether the chain network connects adjacent `a` and `b` (both ends
    /// must be chained).
    pub fn is_chained(&self, a: Coord, b: Coord) -> bool {
        let Some(d) = a.dir_to(b) else { return false };
        self.state(a).chained[d.index()] && self.state(b).chained[d.opposite().index()]
    }

    /// Programs the unidirectional stack-shift path along `path` (already
    /// validated as hop-adjacent), plus the chain network between every
    /// consecutive pair. `close_ring` additionally chains last → first
    /// (Figure 5). All touched switches must be reserved by `owner` first.
    pub fn program_path(
        &mut self,
        path: &[Coord],
        owner: RegionTag,
        close_ring: bool,
    ) -> Result<(), TopologyError> {
        for w in path.windows(2) {
            let (a, b) = (w[0], w[1]);
            let d = a.dir_to(b).ok_or(TopologyError::NotAdjacent(a, b))?;
            self.check_healthy(a)?;
            self.check_healthy(b)?;
            if self.owner(a) != Some(owner) {
                return Err(TopologyError::SwitchConflict { at: a });
            }
            if self.owner(b) != Some(owner) {
                return Err(TopologyError::SwitchConflict { at: b });
            }
            self.switches.entry(a).or_default().shift_out = Some(d);
            self.switches.entry(b).or_default().shift_in = Some(d.opposite());
            self.store(2);
            self.chain(a, b, owner)?;
        }
        if close_ring && path.len() >= 3 {
            let (last, first) = (*path.last().unwrap(), path[0]);
            let d = last
                .dir_to(first)
                .ok_or(TopologyError::NotAdjacent(last, first))?;
            self.check_healthy(last)?;
            self.check_healthy(first)?;
            self.switches.entry(last).or_default().shift_out = Some(d);
            self.switches.entry(first).or_default().shift_in = Some(d.opposite());
            self.store(2);
            self.chain(last, first, owner)?;
        }
        Ok(())
    }

    /// Applies a decoded per-switch program at `c` — the effect of one
    /// configuration worm's payload arriving at its target cluster. The
    /// switch must already hold `owner`'s reservation flag (stored by the
    /// same worm via [`reserve`](Self::reserve)).
    pub fn apply_program(
        &mut self,
        c: Coord,
        owner: RegionTag,
        program: SwitchState,
    ) -> Result<(), TopologyError> {
        self.check_healthy(c)?;
        if self.owner(c) != Some(owner) {
            return Err(TopologyError::SwitchConflict { at: c });
        }
        let s = self.switches.entry(c).or_default();
        s.shift_in = program.shift_in;
        s.shift_out = program.shift_out;
        s.chained = program.chained;
        self.store(1);
        Ok(())
    }

    /// Releases every switch owned by `owner`, restoring the default
    /// state — the down-scale path ("clearing active state, turns to be a
    /// release", §3.4).
    pub fn release_owner(&mut self, owner: RegionTag) -> usize {
        let mut released = 0;
        for s in self.switches.values_mut() {
            if s.reserved_by == Some(owner) {
                *s = SwitchState::default();
                released += 1;
            }
        }
        if released > 0 {
            self.store(released as u64);
        }
        released
    }

    /// Follows the programmed shift path from `start` (useful to recover
    /// a region's linear order from switch state alone). Stops after
    /// `limit` hops or when the path ends or loops back to `start`.
    pub fn trace_shift_path(&self, start: Coord, limit: usize) -> Vec<Coord> {
        let mut path = vec![start];
        let mut cur = start;
        for _ in 0..limit {
            let Some(d) = self.state(cur).shift_out else {
                break;
            };
            let Some(next) = cur.step(d) else { break };
            if next == start {
                break; // closed ring
            }
            path.push(next);
            cur = next;
        }
        path
    }

    /// Total programming-register stores performed — the paper's cost
    /// currency for reconfiguration ("simply requires routing and storing
    /// the data set", §5).
    pub fn store_count(&self) -> u64 {
        self.programming_stores
    }

    /// Coordinates whose switch deviates from the default state.
    pub fn programmed_coords(&self) -> impl Iterator<Item = Coord> + '_ {
        self.switches
            .iter()
            .filter(|(_, s)| s.is_programmed() || s.reserved_by.is_some())
            .map(|(&c, _)| c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(x: u16, y: u16) -> Coord {
        Coord::new(x, y)
    }

    #[test]
    fn default_is_unchained_and_unreserved() {
        let f = SwitchFabric::new();
        let s = f.state(c(3, 3));
        assert!(!s.is_programmed());
        assert_eq!(s.reserved_by, None);
        assert!(!f.is_chained(c(0, 0), c(1, 0)));
    }

    #[test]
    fn reservation_conflicts_detected() {
        let mut f = SwitchFabric::new();
        f.reserve(c(0, 0), RegionTag(1)).unwrap();
        // Same owner re-reserves fine.
        f.reserve(c(0, 0), RegionTag(1)).unwrap();
        // Other owner rejected.
        assert_eq!(
            f.reserve(c(0, 0), RegionTag(2)),
            Err(TopologyError::SwitchConflict { at: c(0, 0) })
        );
    }

    #[test]
    fn chain_requires_reservation_and_adjacency() {
        let mut f = SwitchFabric::new();
        assert!(matches!(
            f.chain(c(0, 0), c(2, 0), RegionTag(1)),
            Err(TopologyError::NotAdjacent(_, _))
        ));
        assert!(matches!(
            f.chain(c(0, 0), c(1, 0), RegionTag(1)),
            Err(TopologyError::SwitchConflict { .. })
        ));
        f.reserve(c(0, 0), RegionTag(1)).unwrap();
        f.reserve(c(1, 0), RegionTag(1)).unwrap();
        f.chain(c(0, 0), c(1, 0), RegionTag(1)).unwrap();
        assert!(f.is_chained(c(0, 0), c(1, 0)));
        assert!(f.is_chained(c(1, 0), c(0, 0)));
    }

    #[test]
    fn unchain_splits() {
        let mut f = SwitchFabric::new();
        f.reserve(c(0, 0), RegionTag(1)).unwrap();
        f.reserve(c(1, 0), RegionTag(1)).unwrap();
        f.chain(c(0, 0), c(1, 0), RegionTag(1)).unwrap();
        f.unchain(c(0, 0), c(1, 0)).unwrap();
        assert!(!f.is_chained(c(0, 0), c(1, 0)));
    }

    #[test]
    fn program_path_sets_shift_and_chain() {
        let mut f = SwitchFabric::new();
        let path = [c(0, 0), c(1, 0), c(1, 1)];
        for &p in &path {
            f.reserve(p, RegionTag(7)).unwrap();
        }
        f.program_path(&path, RegionTag(7), false).unwrap();
        assert_eq!(f.state(c(0, 0)).shift_out, Some(Dir::East));
        assert_eq!(f.state(c(1, 0)).shift_in, Some(Dir::West));
        assert_eq!(f.state(c(1, 0)).shift_out, Some(Dir::South));
        assert_eq!(f.state(c(1, 1)).shift_in, Some(Dir::North));
        assert!(f.is_chained(c(0, 0), c(1, 0)));
        assert_eq!(f.trace_shift_path(c(0, 0), 10), path.to_vec());
    }

    #[test]
    fn ring_closes_the_path() {
        let mut f = SwitchFabric::new();
        let path = [c(0, 0), c(1, 0), c(1, 1), c(0, 1)];
        for &p in &path {
            f.reserve(p, RegionTag(1)).unwrap();
        }
        f.program_path(&path, RegionTag(1), true).unwrap();
        assert!(f.is_chained(c(0, 1), c(0, 0)));
        assert_eq!(f.state(c(0, 1)).shift_out, Some(Dir::North));
        // The trace stops when it loops back to the start.
        assert_eq!(f.trace_shift_path(c(0, 0), 100).len(), 4);
    }

    #[test]
    fn release_owner_restores_defaults() {
        let mut f = SwitchFabric::new();
        let path = [c(0, 0), c(1, 0)];
        for &p in &path {
            f.reserve(p, RegionTag(1)).unwrap();
        }
        f.program_path(&path, RegionTag(1), false).unwrap();
        assert_eq!(f.release_owner(RegionTag(1)), 2);
        assert!(!f.state(c(0, 0)).is_programmed());
        assert_eq!(f.owner(c(0, 0)), None);
        // Another region can take the clusters now.
        f.reserve(c(0, 0), RegionTag(2)).unwrap();
    }

    #[test]
    fn stuck_switch_rejects_programming_typed() {
        let mut f = SwitchFabric::new();
        f.mark_stuck(c(1, 0));
        assert!(f.is_stuck(c(1, 0)));
        assert_eq!(
            f.reserve(c(1, 0), RegionTag(1)),
            Err(TopologyError::SwitchStuck { at: c(1, 0) })
        );
        // A path through the stuck switch fails typed, never silently
        // mis-programs.
        f.reserve(c(0, 0), RegionTag(1)).unwrap();
        assert_eq!(
            f.program_path(&[c(0, 0), c(1, 0)], RegionTag(1), false),
            Err(TopologyError::SwitchStuck { at: c(1, 0) })
        );
        // Healthy switches are unaffected.
        f.reserve(c(0, 1), RegionTag(1)).unwrap();
        f.program_path(&[c(0, 0), c(0, 1)], RegionTag(1), false)
            .unwrap();
    }

    #[test]
    fn release_still_works_on_a_stuck_switch() {
        let mut f = SwitchFabric::new();
        f.reserve(c(0, 0), RegionTag(1)).unwrap();
        f.reserve(c(1, 0), RegionTag(1)).unwrap();
        f.chain(c(0, 0), c(1, 0), RegionTag(1)).unwrap();
        // The switch gets stuck mid-life; tearing the region down must
        // not wedge on it.
        f.mark_stuck(c(1, 0));
        assert_eq!(f.release_owner(RegionTag(1)), 2);
        assert_eq!(f.owner(c(1, 0)), None);
        // But it stays unusable for the next region.
        assert!(f.reserve(c(1, 0), RegionTag(2)).is_err());
        assert_eq!(f.stuck_coords().collect::<Vec<_>>(), vec![c(1, 0)]);
    }

    #[test]
    fn programming_store_accounting() {
        let mut f = SwitchFabric::new();
        let before = f.store_count();
        f.reserve(c(0, 0), RegionTag(1)).unwrap();
        f.reserve(c(1, 0), RegionTag(1)).unwrap();
        f.chain(c(0, 0), c(1, 0), RegionTag(1)).unwrap();
        assert!(f.store_count() > before);
    }
}
